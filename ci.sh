#!/usr/bin/env bash
# CI entry point: configure, build, run the labelled test suite (unit /
# concurrency / integration, each with its own timeout, plus the persistence
# label as its own class), smoke-run the four examples/ binaries, smoke one
# benchmark under a 2-second cap, then snapshot a real driver pool and verify
# the on-disk format with tools/snapshot_dump. Mirrors the tier-1 verify line
# in ROADMAP.md; keep the two in sync.
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure =="
cmake -B "${BUILD_DIR}" -S .

echo "== build (-j${JOBS}) =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

# Per-label runs with per-label timeouts (labels assigned in CMakeLists.txt).
# The per-test TIMEOUT property is the hard cap; --timeout is the ctest-side
# guard so a wedged binary cannot stall the whole job.
echo "== ctest: unit (120s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L unit --timeout 120

echo "== ctest: concurrency (300s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L concurrency --timeout 300

echo "== ctest: integration (600s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L integration --timeout 600

# The persistence suites also run above via their unit/concurrency labels;
# this pass exists so snapshot/restore regressions fail under their own name.
echo "== ctest: persistence (300s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L persistence --timeout 300

echo "== examples smoke =="
# The examples/ binaries are runnable documentation; each must exit 0.
for example in quickstart cloud_serving offline_replay edge_assistant; do
  echo "-- ${example}"
  timeout 300 "${BUILD_DIR}/${example}" > /dev/null
done

echo "== smoke bench (2s cap) =="
# Smoke only proves the harness binary starts and emits output; hitting the
# cap (exit 124) is fine, any other failure is not.
rc=0
timeout 2 "${BUILD_DIR}/bench_driver_throughput" || rc=$?
if [[ "${rc}" -ne 0 && "${rc}" -ne 124 ]]; then
  echo "smoke bench failed with exit ${rc}" >&2
  exit "${rc}"
fi

echo "== sharded-commit-pipeline + stage-0 + observability acceptance =="
# Full lifecycle + background maintenance on hnsw at 1 vs 8 threads from the
# same restored seed snapshot. Exit-enforces: identical decisions, a
# request-path parallel fraction >= 0.94, and ZERO windows stalled waiting on
# the background maintenance planner. The second section replays a
# duplicate-heavy trace with the stage-0 response tier on and exit-enforces
# its gate: hit rate >= 25%, fewer generated tokens than the stage0-off run,
# byte-identical decisions at 1 vs 8 threads and 1 vs 4 commit lanes, and
# the parallel fraction still >= 0.94. The third section exit-enforces the
# flight-recorder gate: decisions byte-identical with tracing on vs off at
# {1,8} threads x {1,4} lanes, tracing overhead <= 2%, and the exported
# Chrome trace + Prometheus metrics parse and cover every pipeline stage.
TRACE_JSON="$(mktemp -u /tmp/iccache_ci_trace_XXXXXX.json)"
METRICS_PROM="$(mktemp -u /tmp/iccache_ci_metrics_XXXXXX.prom)"
timeout 600 "${BUILD_DIR}/bench_driver_throughput" --acceptance --requests=3000 \
  --trace-out="${TRACE_JSON}" --metrics-out="${METRICS_PROM}"

echo "== observability export smoke (trace_dump + metrics grep) =="
# trace_dump re-parses the exported JSON with the strict in-repo parser and
# must see the per-request commit span; the Prometheus text must expose the
# core request counter under the iccache_ prefix.
timeout 60 "${BUILD_DIR}/trace_dump" "${TRACE_JSON}" | tee /dev/stderr | grep -q "lane_commit"
grep -q "^iccache_requests_total " "${METRICS_PROM}"
rm -f "${TRACE_JSON}" "${METRICS_PROM}"

echo "== snapshot format smoke (driver checkpoint -> snapshot_dump) =="
# A short lifecycle run (stage-0 tier on) that takes real checkpoints, then
# snapshot_dump re-validates every section CRC, walks every example record,
# and must report the stage-0 response-cache section.
SNAP="$(mktemp -u /tmp/iccache_ci_pool_XXXXXX.snap)"
trap 'rm -f "${SNAP}" "${SNAP}.tmp"' EXIT
timeout 300 "${BUILD_DIR}/bench_driver_throughput" \
  --requests=600 --sweep=off --stage0=on --snapshot="${SNAP}" > /dev/null
timeout 60 "${BUILD_DIR}/snapshot_dump" "${SNAP}" | tee /dev/stderr | grep -q "^stage0:"

echo "== ci.sh OK =="
