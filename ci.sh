#!/usr/bin/env bash
# CI entry point: configure, build, run the labelled test suite (unit /
# concurrency / integration, each with its own timeout, plus the persistence
# label as its own class), smoke-run the four examples/ binaries, smoke one
# benchmark under a 2-second cap, rerun the SIMD kernel + quantization suites
# under the forced-scalar dispatch path, exit-enforce the stage-1 retrieval
# scaling bars at 100k vectors (float hnsw vs flat, int8 vs float), then
# snapshot a real driver pool and verify the on-disk format with
# tools/snapshot_dump. Set ICCACHE_CI_SCALE=full to also run the 1M-vector
# full-scale retrieval gate (~20 min single-core). Mirrors the tier-1 verify
# line in ROADMAP.md; keep the two in sync.
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure =="
cmake -B "${BUILD_DIR}" -S .

echo "== build (-j${JOBS}) =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

# Per-label runs with per-label timeouts (labels assigned in CMakeLists.txt).
# The per-test TIMEOUT property is the hard cap; --timeout is the ctest-side
# guard so a wedged binary cannot stall the whole job.
echo "== ctest: unit (120s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L unit --timeout 120

echo "== ctest: concurrency (300s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L concurrency --timeout 300

echo "== ctest: integration (600s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L integration --timeout 600

# The persistence suites also run above via their unit/concurrency labels;
# this pass exists so snapshot/restore regressions fail under their own name.
echo "== ctest: persistence (300s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L persistence --timeout 300

echo "== examples smoke =="
# The examples/ binaries are runnable documentation; each must exit 0.
for example in quickstart cloud_serving offline_replay edge_assistant; do
  echo "-- ${example}"
  timeout 300 "${BUILD_DIR}/${example}" > /dev/null
done

echo "== smoke bench (2s cap) =="
# Smoke only proves the harness binary starts and emits output; hitting the
# cap (exit 124) is fine, any other failure is not.
rc=0
timeout 2 "${BUILD_DIR}/bench_driver_throughput" || rc=$?
if [[ "${rc}" -ne 0 && "${rc}" -ne 124 ]]; then
  echo "smoke bench failed with exit ${rc}" >&2
  exit "${rc}"
fi

echo "== simd kernel + quantization suites: forced-scalar dispatch =="
# The unit label above already runs both suites under the best kernel the
# box offers (avx2 where available); this rerun pins the portable scalar
# fallback so both dispatch paths stay green everywhere. The override is
# read once at first kernel use, so each rerun needs a fresh process.
ICCACHE_FORCE_SCALAR=1 timeout 120 "${BUILD_DIR}/common_simd_test" > /dev/null
ICCACHE_FORCE_SCALAR=1 timeout 300 "${BUILD_DIR}/index_quantized_test" > /dev/null

echo "== retrieval scaling acceptance (100k, int8 vs float hnsw) =="
# Exit-enforces the stage-1 retrieval bars on a clustered 128-d corpus:
# float hnsw >= 5x flat at recall@10 >= 0.9; int8 hnsw >= 1.3x the float
# graph at recall@10 >= 0.95 with <= 160 B/vec of vector arena; and the
# quantized graph image round-trips through save/restore. ~90 s: the two
# 100k graph builds dominate, the 1000-query search windows keep the
# timing comparison out of the noise floor.
timeout 900 "${BUILD_DIR}/bench_retrieval_scaling" \
  --sizes=100000 --dim=128 --queries=1000 --M=16 --efc=100 --efs=192 \
  --sigma=0.12 --acceptance

# Forced-scalar end-to-end smoke: the same harness must stay correct (not
# fast) when dispatch is pinned to the fallback kernels.
ICCACHE_FORCE_SCALAR=1 timeout 300 "${BUILD_DIR}/bench_retrieval_scaling" \
  --sizes=10000 --dim=128 --queries=100 --M=16 --efc=100 --efs=96 \
  --sigma=0.12 > /dev/null

if [[ "${ICCACHE_CI_SCALE:-}" == "full" ]]; then
  echo "== retrieval scaling acceptance (1M full-scale) =="
  # The million-example proof: same bars at 1M vectors plus the snapshot
  # save/restore round-trip at that scale. ~20 min single-core; run on
  # demand and before cutting a release.
  timeout 3600 "${BUILD_DIR}/bench_retrieval_scaling" \
    --sizes=1000000 --dim=128 --queries=400 --M=16 --efc=100 --efs=192 \
    --sigma=0.12 --acceptance
else
  echo "== retrieval scaling (1M) skipped: set ICCACHE_CI_SCALE=full to run =="
fi

echo "== sharded-commit-pipeline + stage-0 + observability acceptance =="
# Full lifecycle + background maintenance on hnsw at 1 vs 8 threads from the
# same restored seed snapshot. Exit-enforces: identical decisions, a
# request-path parallel fraction >= 0.94, and ZERO windows stalled waiting on
# the background maintenance planner. The second section replays a
# duplicate-heavy trace with the stage-0 response tier on and exit-enforces
# its gate: hit rate >= 25%, fewer generated tokens than the stage0-off run,
# byte-identical decisions at 1 vs 8 threads and 1 vs 4 commit lanes, and
# the parallel fraction still >= 0.94. The third section exit-enforces the
# flight-recorder gate: decisions byte-identical with tracing on vs off at
# {1,8} threads x {1,4} lanes, tracing overhead <= 2%, and the exported
# Chrome trace + Prometheus metrics parse and cover every pipeline stage.
TRACE_JSON="$(mktemp -u /tmp/iccache_ci_trace_XXXXXX.json)"
METRICS_PROM="$(mktemp -u /tmp/iccache_ci_metrics_XXXXXX.prom)"
timeout 600 "${BUILD_DIR}/bench_driver_throughput" --acceptance --requests=3000 \
  --trace-out="${TRACE_JSON}" --metrics-out="${METRICS_PROM}"

echo "== observability export smoke (trace_dump + metrics grep) =="
# trace_dump re-parses the exported JSON with the strict in-repo parser and
# must see the per-request commit span; the Prometheus text must expose the
# core request counter under the iccache_ prefix.
timeout 60 "${BUILD_DIR}/trace_dump" "${TRACE_JSON}" | tee /dev/stderr | grep -q "lane_commit"
grep -q "^iccache_requests_total " "${METRICS_PROM}"
rm -f "${TRACE_JSON}" "${METRICS_PROM}"

echo "== snapshot format smoke (driver checkpoint -> snapshot_dump) =="
# A short lifecycle run (stage-0 tier on) that takes real checkpoints, then
# snapshot_dump re-validates every section CRC, walks every example record,
# and must report the stage-0 response-cache section.
SNAP="$(mktemp -u /tmp/iccache_ci_pool_XXXXXX.snap)"
trap 'rm -f "${SNAP}" "${SNAP}.tmp"' EXIT
timeout 300 "${BUILD_DIR}/bench_driver_throughput" \
  --requests=600 --sweep=off --stage0=on --snapshot="${SNAP}" > /dev/null
timeout 60 "${BUILD_DIR}/snapshot_dump" "${SNAP}" | tee /dev/stderr | grep -q "^stage0:"

echo "== ci.sh OK =="
