#!/usr/bin/env bash
# CI entry point: configure, build, run the labelled test suite (unit /
# concurrency / integration, each with its own timeout, plus the persistence
# label as its own class), smoke-run the four examples/ binaries, smoke one
# benchmark under a 2-second cap, rerun the SIMD kernel + quantization suites
# under the forced-scalar dispatch path, exit-enforce the stage-1 retrieval
# scaling bars at 100k vectors (float hnsw vs flat, int8 vs float), then
# snapshot a real driver pool and verify the on-disk format with
# tools/snapshot_dump. The observability acceptance additionally exit-enforces
# the perf-trajectory gate: the run's BENCH json must stay inside the
# committed baseline's tolerance bands (tools/bench_compare), and a doctored
# -20% throughput copy must make the strict gate fail (red-path self-test).
# Set ICCACHE_CI_SCALE=full to also run the 1M-vector full-scale retrieval
# gate (~20 min single-core). Set ICCACHE_CI_ARTIFACT_DIR to keep the trace /
# metrics / BENCH json exports instead of deleting them (the GitHub workflow
# uploads that directory as a build artifact). Mirrors the tier-1 verify line
# in ROADMAP.md; keep the two in sync.
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
ARTIFACT_DIR="${ICCACHE_CI_ARTIFACT_DIR:-}"
if [[ -n "${ARTIFACT_DIR}" ]]; then
  mkdir -p "${ARTIFACT_DIR}"
fi

echo "== configure =="
cmake -B "${BUILD_DIR}" -S .

echo "== build (-j${JOBS}) =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

# Per-label runs with per-label timeouts (labels assigned in CMakeLists.txt).
# The per-test TIMEOUT property is the hard cap; --timeout is the ctest-side
# guard so a wedged binary cannot stall the whole job.
echo "== ctest: unit (120s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L unit --timeout 120

echo "== ctest: concurrency (300s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L concurrency --timeout 300

echo "== ctest: integration (600s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L integration --timeout 600

# The persistence suites also run above via their unit/concurrency labels;
# this pass exists so snapshot/restore regressions fail under their own name.
echo "== ctest: persistence (300s/test) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L persistence --timeout 300

echo "== examples smoke =="
# The examples/ binaries are runnable documentation; each must exit 0.
for example in quickstart cloud_serving offline_replay edge_assistant; do
  echo "-- ${example}"
  timeout 300 "${BUILD_DIR}/${example}" > /dev/null
done

echo "== smoke bench (2s cap) =="
# Smoke only proves the harness binary starts and emits output; hitting the
# cap (exit 124) is fine, any other failure is not.
rc=0
timeout 2 "${BUILD_DIR}/bench_driver_throughput" || rc=$?
if [[ "${rc}" -ne 0 && "${rc}" -ne 124 ]]; then
  echo "smoke bench failed with exit ${rc}" >&2
  exit "${rc}"
fi

echo "== simd kernel + quantization suites: forced-scalar dispatch =="
# The unit label above already runs both suites under the best kernel the
# box offers (avx2 where available); this rerun pins the portable scalar
# fallback so both dispatch paths stay green everywhere. The override is
# read once at first kernel use, so each rerun needs a fresh process.
ICCACHE_FORCE_SCALAR=1 timeout 120 "${BUILD_DIR}/common_simd_test" > /dev/null
ICCACHE_FORCE_SCALAR=1 timeout 300 "${BUILD_DIR}/index_quantized_test" > /dev/null
ICCACHE_FORCE_SCALAR=1 timeout 300 "${BUILD_DIR}/index_batch_test" > /dev/null

echo "== retrieval scaling acceptance (100k, int8 vs float hnsw) =="
# Exit-enforces the stage-1 retrieval bars on a clustered 128-d corpus:
# float hnsw >= 5x flat at recall@10 >= 0.9; int8 hnsw >= 1.3x the float
# graph at recall@10 >= 0.95 with <= 160 B/vec of vector arena; and the
# quantized graph image round-trips through save/restore. --batch adds the
# batched-traversal bars: SearchBatch >= 1.2x single-query us/q on hnsw
# (float AND int8) with bit-identical results and zero steady-state scratch
# allocations. ~90 s: the two 100k graph builds dominate, the 1000-query
# search windows keep the timing comparison out of the noise floor.
RETRIEVAL_JSON="$(mktemp -u /tmp/iccache_ci_retrieval_XXXXXX.json)"
timeout 900 "${BUILD_DIR}/bench_retrieval_scaling" \
  --sizes=100000 --dim=128 --queries=1000 --M=16 --efc=100 --efs=192 \
  --sigma=0.12 --acceptance --batch --json-out="${RETRIEVAL_JSON}"
if [[ -n "${ARTIFACT_DIR}" ]]; then
  cp "${RETRIEVAL_JSON}" "${ARTIFACT_DIR}/BENCH_retrieval_scaling.json"
fi
rm -f "${RETRIEVAL_JSON}"

# Forced-scalar end-to-end smoke: the same harness must stay correct (not
# fast) when dispatch is pinned to the fallback kernels.
ICCACHE_FORCE_SCALAR=1 timeout 300 "${BUILD_DIR}/bench_retrieval_scaling" \
  --sizes=10000 --dim=128 --queries=100 --M=16 --efc=100 --efs=96 \
  --sigma=0.12 > /dev/null

if [[ "${ICCACHE_CI_SCALE:-}" == "full" ]]; then
  echo "== retrieval scaling acceptance (1M full-scale) =="
  # The million-example proof: same bars at 1M vectors plus the snapshot
  # save/restore round-trip at that scale. ~20 min single-core; run on
  # demand and before cutting a release.
  timeout 3600 "${BUILD_DIR}/bench_retrieval_scaling" \
    --sizes=1000000 --dim=128 --queries=400 --M=16 --efc=100 --efs=192 \
    --sigma=0.12 --acceptance
else
  echo "== retrieval scaling (1M) skipped: set ICCACHE_CI_SCALE=full to run =="
fi

echo "== sharded-commit-pipeline + stage-0 + observability acceptance =="
# Full lifecycle + background maintenance on hnsw at 1 vs 8 threads from the
# same restored seed snapshot. Exit-enforces: identical decisions (including
# across prepare_chunk {1,16,32}, with identical tail exemplars and
# byte-identical pool contents), a request-path parallel fraction >= 0.94,
# and ZERO windows stalled waiting on the background maintenance planner. The second section replays a
# duplicate-heavy trace with the stage-0 response tier on and exit-enforces
# its gate: hit rate >= 25%, fewer generated tokens than the stage0-off run,
# byte-identical decisions at 1 vs 8 threads and 1 vs 4 commit lanes, and
# the parallel fraction still >= 0.94. The third section exit-enforces the
# flight-recorder gate: decisions AND tail exemplars byte-identical with
# tracing + armed watchdog on vs off at {1,8} threads x {1,4} lanes x
# {1,32} prepare chunk,
# observability overhead <= 3%, tail attribution >= 90% of the p99 cohort's
# wall time, the armed watchdog silent on the clean run, and the exported
# Chrome trace + Prometheus metrics parse and cover every pipeline stage.
# The fourth section injects a stage-0 hit-rate collapse and requires the
# watchdog to flag it.
TRACE_JSON="$(mktemp -u /tmp/iccache_ci_trace_XXXXXX.json)"
METRICS_PROM="$(mktemp -u /tmp/iccache_ci_metrics_XXXXXX.prom)"
BENCH_JSON="$(mktemp -u /tmp/iccache_ci_bench_XXXXXX.json)"
timeout 600 "${BUILD_DIR}/bench_driver_throughput" --acceptance --requests=3000 \
  --trace-out="${TRACE_JSON}" --metrics-out="${METRICS_PROM}" --json-out="${BENCH_JSON}"

echo "== observability export smoke (trace_dump + tail_report + metrics grep) =="
# trace_dump re-parses the exported JSON with the strict in-repo parser,
# lints window-parent integrity, and must see the per-request commit span;
# the Prometheus text must expose the core request counter under the
# iccache_ prefix.
# No `grep -q` under pipefail: an early-exit grep SIGPIPEs the dump binary.
timeout 60 "${BUILD_DIR}/trace_dump" "${TRACE_JSON}" | grep "lane_commit" > /dev/null
# Per-request timeline mode: any request id that appears in the trace must
# assemble into a renderable cross-thread timeline.
# Single-process extraction: the trace is one giant JSON line, so any
# grep|head pipe either SIGPIPEs under pipefail or returns every id at once.
REQ_ID="$(awk 'match($0, /"request_id":[1-9][0-9]*/) { print substr($0, RSTART + 13, RLENGTH - 13); exit }' "${TRACE_JSON}")"
timeout 60 "${BUILD_DIR}/trace_dump" --request="${REQ_ID}" "${TRACE_JSON}" \
  | grep "request ${REQ_ID}" > /dev/null
# Offline tail-attribution gate over the same trace: >= 90% of the p99
# cohort's wall time must land in named stages.
timeout 60 "${BUILD_DIR}/tail_report" --min-attribution=0.9 "${TRACE_JSON}" > /dev/null
grep -q "^iccache_requests_total " "${METRICS_PROM}"

echo "== perf trajectory gate (bench_compare vs committed baseline) =="
# Green path: this run's BENCH json must stay inside the committed
# baseline's tolerance bands. Machine-dependent metrics (req/s, wall clock)
# report but do not gate across machines; the simulated metrics are
# seed-deterministic and gate everywhere.
timeout 60 "${BUILD_DIR}/bench_compare" bench/baselines/BENCH_driver.json "${BENCH_JSON}"
# Red-path self-test: doctor a 20% throughput drop into a copy of this run
# and require the strict gate (same machine, so machine metrics gate too) to
# FAIL — a gate that cannot fire protects nothing.
DOCTORED_JSON="$(mktemp -u /tmp/iccache_ci_doctored_XXXXXX.json)"
timeout 60 "${BUILD_DIR}/bench_compare" --scale=requests_per_second=0.8 \
  "${BENCH_JSON}" "${DOCTORED_JSON}" > /dev/null
if timeout 60 "${BUILD_DIR}/bench_compare" --strict "${BENCH_JSON}" "${DOCTORED_JSON}" > /dev/null; then
  echo "bench_compare failed to flag a doctored 20% throughput regression" >&2
  exit 1
fi
echo "doctored -20% req/s correctly rejected by bench_compare --strict"

if [[ -n "${ARTIFACT_DIR}" ]]; then
  cp "${TRACE_JSON}" "${ARTIFACT_DIR}/trace.json"
  cp "${METRICS_PROM}" "${ARTIFACT_DIR}/metrics.prom"
  cp "${BENCH_JSON}" "${ARTIFACT_DIR}/BENCH_driver.json"
fi
rm -f "${TRACE_JSON}" "${METRICS_PROM}" "${BENCH_JSON}" "${DOCTORED_JSON}"

echo "== snapshot format smoke (driver checkpoint -> snapshot_dump) =="
# A short lifecycle run (stage-0 tier on) that takes real checkpoints, then
# snapshot_dump re-validates every section CRC, walks every example record,
# and must report the stage-0 response-cache section.
SNAP="$(mktemp -u /tmp/iccache_ci_pool_XXXXXX.snap)"
trap 'rm -f "${SNAP}" "${SNAP}.tmp"' EXIT
timeout 300 "${BUILD_DIR}/bench_driver_throughput" \
  --requests=600 --sweep=off --stage0=on --snapshot="${SNAP}" > /dev/null
timeout 60 "${BUILD_DIR}/snapshot_dump" "${SNAP}" | grep "^stage0:" > /dev/null

echo "== ci.sh OK =="
