#!/usr/bin/env bash
# CI entry point: configure, build, run the full test suite, then smoke-run
# one benchmark under a 2-second cap. Mirrors the tier-1 verify line in
# ROADMAP.md; keep the two in sync.
set -euo pipefail

cd "$(dirname "$0")"

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

echo "== configure =="
cmake -B "${BUILD_DIR}" -S .

echo "== build (-j${JOBS}) =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== ctest =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== smoke bench (2s cap) =="
# Smoke only proves the harness binary starts and emits output; hitting the
# cap (exit 124) is fine, any other failure is not.
rc=0
timeout 2 "${BUILD_DIR}/bench_driver_throughput" || rc=$?
if [[ "${rc}" -ne 0 && "${rc}" -ne 124 ]]; then
  echo "smoke bench failed with exit ${rc}" >&2
  exit "${rc}"
fi

echo "== ci.sh OK =="
