// Edge deployment scenario (section 3, "Edge Deployment"): a small on-device
// model answers locally, augmented by a personal example cache of past
// cloud-answered queries. Walks through the Figure-26 flow: a question the
// bare small model fumbles, the retrieved neighbours, and the corrected
// augmented answer — then quantifies the effect over a session.
//
//   $ ./examples/edge_assistant
#include <cstdio>
#include <memory>

#include "src/common/stats.h"
#include "src/core/service.h"
#include "src/workload/query_generator.h"

int main() {
  using namespace iccache;

  ModelCatalog catalog;
  GenerationSimulator backend(26);
  auto embedder = std::make_shared<HashingEmbedder>();

  ServiceConfig config;
  config.small_model = "gemma-2-2b";   // on-device
  config.large_model = "gemma-2-27b";  // cloud fallback
  IcCacheService assistant(config, &catalog, &backend, embedder);

  // The user's personal history: past questions answered in the cloud.
  DatasetProfile profile = GetDatasetProfile(DatasetId::kNaturalQuestions);
  profile.num_topics = 200;
  QueryGenerator history(profile, 61);
  for (int i = 0; i < 1200; ++i) {
    assistant.SeedExample(history.Next(), 0.0);
  }
  assistant.PretrainProxy(800);

  // --- The Figure-26 walkthrough: pick a question the bare device model
  // answers poorly and show what the retrieved history does to it.
  QueryGenerator session(profile, 62);
  Rng rng(63);
  const ModelProfile& device_model = assistant.small_model();
  std::printf("== Figure-26 style walkthrough ==\n");
  for (int attempt = 0; attempt < 2000; ++attempt) {
    const Request query = session.Next();
    const GenerationResult bare = backend.Generate(device_model, query, {});
    if (bare.latent_quality > 0.45) {
      continue;  // looking for a question the device model fumbles
    }
    std::printf("user query        : %s\n", query.text.c_str());
    std::printf("on-device answer  : quality %.2f (poor)\n", bare.latent_quality);

    const auto selected = assistant.selector().Select(query, device_model, 1.0);
    std::printf("retrieved examples (%zu):\n", selected.size());
    std::vector<ExampleView> views;
    for (const auto& sel : selected) {
      const Example* example = assistant.cache().Get(sel.example_id);
      std::printf("  * [sim %.2f, util %.2f] %s\n", sel.similarity, sel.predicted_utility,
                  example->request.text.c_str());
      ExampleView view;
      view.relevance = StructuralRelevance(query, example->request, rng);
      view.quality = example->response_quality;
      view.source_capability = example->source_capability;
      view.tokens = example->PromptTokens();
      views.push_back(view);
    }
    const GenerationResult augmented = backend.Generate(device_model, query, views);
    const GenerationResult cloud =
        backend.Generate(assistant.large_model(), query, {});
    std::printf("augmented answer  : quality %.2f (cloud would give %.2f)\n",
                augmented.latent_quality, cloud.latent_quality);
    break;
  }

  // --- Session-level effect: a day of assistant queries, fully on device.
  RunningStat bare_quality;
  RunningStat augmented_quality;
  int stayed_local = 0;
  const int session_len = 300;
  for (int i = 0; i < session_len; ++i) {
    const Request query = session.Next();
    bare_quality.Add(backend.Generate(device_model, query, {}).latent_quality);
    const ServeOutcome outcome = assistant.ServeRequest(query, 100.0 + i);
    augmented_quality.Add(outcome.generation.latent_quality);
    stayed_local += outcome.offloaded ? 1 : 0;
  }
  std::printf("\n== session summary (%d queries) ==\n", session_len);
  std::printf("bare on-device quality : %.3f\n", bare_quality.mean());
  std::printf("IC-Cache quality       : %.3f\n", augmented_quality.mean());
  std::printf("answered on device     : %.0f%% (rest sent to cloud)\n",
              100.0 * stayed_local / session_len);
  return 0;
}
