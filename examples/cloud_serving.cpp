// Cloud deployment scenario (section 3, "Cloud Deployment"): IC-Cache in
// front of a simulated GPU cluster, absorbing a bursty 20-minute trace by
// offloading traffic from two Gemma-27B replicas to four Gemma-2B replicas.
// Prints a per-minute dashboard: arrival rate, cluster load, offload ratio,
// and latency — then the end-of-run summary against an always-large baseline.
//
//   $ ./examples/cloud_serving
#include <cstdio>
#include <memory>

#include "src/common/stats.h"
#include "src/core/service.h"
#include "src/serving/cluster.h"
#include "src/workload/query_generator.h"
#include "src/workload/trace.h"

int main() {
  using namespace iccache;

  ModelCatalog catalog;
  GenerationSimulator backend(11);
  auto embedder = std::make_shared<HashingEmbedder>();
  IcCacheService service(ServiceConfig{}, &catalog, &backend, embedder);

  DatasetProfile profile = GetDatasetProfile(DatasetId::kLmsysChat);
  profile.num_topics = 400;  // scaled-down pool density
  QueryGenerator history(profile, 21);
  for (int i = 0; i < 2000; ++i) {
    service.SeedExample(history.Next(), 0.0);
  }
  service.PretrainProxy(1200);

  const ModelProfile& large = service.large_model();
  const ModelProfile& small = service.small_model();
  ClusterSim cluster;
  cluster.AddPool(large, 2);
  cluster.AddPool(small, 4);
  std::printf("cluster: 2x %s + 4x %s (%d GPUs total)\n", large.name.c_str(),
              small.name.c_str(), cluster.TotalGpus());

  TraceConfig trace_config;
  trace_config.kind = TraceKind::kDiurnalBursty;
  trace_config.mean_rps = 2.2;
  trace_config.duration_s = 1200.0;
  trace_config.bursts_per_hour = 10.0;
  trace_config.burst_max_multiplier = 6.0;
  ArrivalTrace trace(trace_config);
  const auto arrivals = trace.GenerateArrivals();

  QueryGenerator users(profile, 31);
  uint64_t rid = 1;
  int offloaded = 0;
  int minute = -1;
  int minute_requests = 0;
  int minute_offloads = 0;
  for (double t : arrivals) {
    cluster.AdvanceTo(t);
    const int this_minute = static_cast<int>(t / 60.0);
    if (this_minute != minute) {
      if (minute >= 0 && minute % 2 == 0) {
        std::printf("  minute %2d: %3d reqs, offload %3.0f%%, large-pool load %.2f\n", minute,
                    minute_requests, minute_requests ? 100.0 * minute_offloads / minute_requests
                                                     : 0.0,
                    cluster.PoolLoad(large.name));
      }
      minute = this_minute;
      minute_requests = 0;
      minute_offloads = 0;
    }

    Request req = users.Next();
    req.arrival_time = t;
    service.ObserveLoad(cluster.PoolLoad(large.name));
    const ServeOutcome outcome = service.ServeRequest(req, t);
    offloaded += outcome.offloaded ? 1 : 0;
    ++minute_requests;
    minute_offloads += outcome.offloaded ? 1 : 0;

    ServingRequest serving;
    serving.id = rid++;
    serving.arrival_time = t;
    serving.prompt_tokens = outcome.generation.prompt_tokens;
    serving.output_tokens = outcome.generation.output_tokens;
    cluster.Submit(outcome.generation.model_name, serving);

    if (static_cast<int>(t) % 300 == 0) {
      service.RunMaintenance(t);  // off-peak decay/replay/eviction
    }
  }
  cluster.RunUntilIdle();

  PercentileTracker latency;
  for (const auto& record : cluster.completions()) {
    latency.Add(record.E2eLatency());
  }
  std::printf("\nIC-Cache served %zu requests: offload %.0f%%, latency P50 %.2fs P99 %.2fs\n",
              arrivals.size(), 100.0 * offloaded / arrivals.size(), latency.Percentile(50),
              latency.Percentile(99));

  // Always-large baseline on the same arrivals and hardware.
  ClusterSim baseline;
  baseline.AddPool(large, 2);
  baseline.AddPool(small, 4);
  QueryGenerator users2(profile, 31);
  rid = 1;
  for (double t : arrivals) {
    baseline.AdvanceTo(t);
    const Request req = users2.Next();
    ServingRequest serving;
    serving.id = rid++;
    serving.arrival_time = t;
    serving.prompt_tokens = req.input_tokens;
    serving.output_tokens = req.target_output_tokens;
    baseline.Submit(large.name, serving);
  }
  baseline.RunUntilIdle();
  PercentileTracker baseline_latency;
  for (const auto& record : baseline.completions()) {
    baseline_latency.Add(record.E2eLatency());
  }
  std::printf("always-%s baseline:            latency P50 %.2fs P99 %.2fs\n", large.name.c_str(),
              baseline_latency.Percentile(50), baseline_latency.Percentile(99));
  std::printf("=> P50 latency reduction: %.0f%%\n",
              100.0 * (1.0 - latency.Percentile(50) / baseline_latency.Percentile(50)));
  return 0;
}
