// Quickstart: the Figure-6 integration pattern in a dozen lines.
//
// A client session wraps the IC-Cache service; Generate() runs the full
// Algorithm-1 path (retrieve examples -> route -> generate -> manage), and
// UpdateCache() registers request-response pairs explicitly.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/client.h"
#include "src/core/service.h"
#include "src/workload/query_generator.h"

int main() {
  using namespace iccache;

  // Backend setup: model catalog, generation backend (simulated offline),
  // shared embedder, and the IC-Cache service for a Gemma 27B/2B pair.
  ModelCatalog catalog;
  GenerationSimulator backend(/*seed=*/42);
  auto embedder = std::make_shared<HashingEmbedder>();
  ServiceConfig config;  // defaults: gemma-2-27b large, gemma-2-2b small
  config.stage0.enabled = true;  // stage-0 response tier: repeats cost nothing
  IcCacheService service(config, &catalog, &backend, embedder);

  // Populate the example cache with historical traffic answered by the large
  // model, then train the stage-2 proxy offline.
  QueryGenerator history(GetDatasetProfile(DatasetId::kNaturalQuestions), 7);
  for (int i = 0; i < 1500; ++i) {
    service.SeedExample(history.Next(), 0.0);
  }
  service.PretrainProxy(1000);
  std::printf("example cache ready: %zu entries (%.1f KB plaintext)\n", service.cache().size(),
              service.cache().used_bytes() / 1024.0);

  // The Figure-6 client API.
  IcCacheClient client(&service);
  QueryGenerator users(GetDatasetProfile(DatasetId::kNaturalQuestions), 99);

  std::vector<Request> session;
  for (int i = 0; i < 10; ++i) {
    session.push_back(users.Next());
  }
  for (int i = 0; i < 10; ++i) {
    const Request& request = session[i];
    const GenerationResult response = client.Generate(request);
    const ServeOutcome& outcome = client.last_outcome();
    std::printf("req %2d [%-42.42s] -> %-11s %s examples=%zu quality=%.2f latency=%.2fs\n",
                i, request.text.c_str(), response.model_name.c_str(),
                outcome.offloaded ? "(offloaded)" : "(large)    ",
                outcome.examples_used.size(), response.latent_quality,
                response.e2e_latency_s);
    client.UpdateCache(request, response);
  }

  // Re-serve the SAME requests: each now probes the stage-0 response cache
  // at similarity 1.0 and comes back with zero generated tokens.
  std::printf("\nre-serving the same 10 requests (stage-0 response tier):\n");
  for (int i = 0; i < 10; ++i) {
    const GenerationResult response = client.Generate(session[i]);
    const ServeOutcome& outcome = client.last_outcome();
    std::printf("req %2d -> %-12s %s  tokens=%d latency=%.3fs\n", i,
                response.model_name.c_str(),
                outcome.stage0_hit ? "(stage-0 hit) " : "(regenerated) ",
                response.output_tokens, response.e2e_latency_s);
  }

  client.Stop();
  const MetricsRegistry& metrics = service.metrics();
  std::printf("\nserved %.0f requests, offloaded %.0f (%.0f%%)\n",
              metrics.Get("requests_total"), metrics.Get("requests_offloaded"),
              100.0 * metrics.Ratio("requests_offloaded", "requests_total"));
  std::printf("stage-0: %.0f hits, %.0f generated tokens saved\n",
              metrics.Get("stage0_hits"), metrics.Get("stage0_tokens_saved"));
  return 0;
}
