// Offline maintenance scenario (section 4.3): what the Example Manager does
// during off-peak hours. Shows the cost-aware replay ranking (G(e) EMA), the
// best-of-n refinement of hot low-quality examples, the hourly utility decay,
// and knapsack eviction under a byte budget — then snapshots the improved
// pool and warm-starts a SECOND service from the file, verifying the
// replay-earned quality survives the process boundary (the persistence
// subsystem's whole point: off-peak work is never lost to a restart).
//
//   $ ./examples/offline_replay
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "src/core/service.h"
#include "src/workload/query_generator.h"

int main() {
  using namespace iccache;

  ModelCatalog catalog;
  GenerationSimulator backend(77);
  auto embedder = std::make_shared<HashingEmbedder>();

  ServiceConfig config;
  config.cache.capacity_bytes = 512 * 1024;  // tight on-disk budget
  IcCacheService service(config, &catalog, &backend, embedder);

  DatasetProfile profile = GetDatasetProfile(DatasetId::kOpenOrca);
  profile.num_topics = 300;
  QueryGenerator history(profile, 78);
  for (int i = 0; i < 1500; ++i) {
    service.SeedExample(history.Next(), 0.0);
  }
  service.PretrainProxy(800);

  // A day of traffic accumulates usage statistics on the cache.
  QueryGenerator day(profile, 79);
  for (int i = 0; i < 1000; ++i) {
    service.ServeRequest(day.Next(), static_cast<double>(i));
  }

  // Inspect the replay ranking before the pass.
  ExampleCache& cache = service.cache();
  std::vector<const Example*> examples;
  for (uint64_t id : cache.AllIds()) {
    examples.push_back(cache.Get(id));
  }
  std::sort(examples.begin(), examples.end(), [](const Example* a, const Example* b) {
    return a->replay_gain_ema > b->replay_gain_ema;
  });
  std::printf("cache: %zu examples, %.0f KB used (budget %.0f KB)\n", cache.size(),
              cache.used_bytes() / 1024.0, config.cache.capacity_bytes / 1024.0);
  std::printf("top replay candidates by G(e) EMA:\n");
  for (size_t i = 0; i < 5 && i < examples.size(); ++i) {
    std::printf("  G=%.3f q=%.2f accesses=%llu replays=%d  %.48s\n",
                examples[i]->replay_gain_ema, examples[i]->response_quality,
                static_cast<unsigned long long>(examples[i]->access_count),
                examples[i]->replay_count, examples[i]->request.text.c_str());
  }

  // Off-peak replay passes: best-of-n regeneration of the ranked head.
  double quality_gain_total = 0.0;
  for (int pass = 0; pass < 4; ++pass) {
    const ReplayReport report = service.manager().RunReplayPass();
    quality_gain_total += report.total_quality_gain;
    std::printf("replay pass %d: %zu candidates, %zu replayed, %zu improved (+%.2f quality)\n",
                pass, report.candidates, report.replayed, report.improved,
                report.total_quality_gain);
  }
  std::printf("total stored-quality gain from replay: %.2f\n", quality_gain_total);

  // Hourly maintenance: decay + knapsack eviction to the byte budget.
  service.RunMaintenance(3600.0 * 2);
  std::printf("after maintenance: %zu examples, %.0f KB used (within budget: %s)\n",
              cache.size(), cache.used_bytes() / 1024.0,
              cache.used_bytes() <= config.cache.capacity_bytes ? "yes" : "no");

  // Persist the refined pool and warm-start a second service from the file —
  // a restarted off-peak worker must not redo (or lose) tonight's replays.
  const std::string snapshot_path =
      "/tmp/iccache_offline_replay_" + std::to_string(::getpid()) + ".snap";
  const Status saved = service.SaveSnapshot(snapshot_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "snapshot failed: %s\n", saved.ToString().c_str());
    return 1;
  }

  ServiceConfig warm_config = config;
  warm_config.snapshot_path = snapshot_path;
  warm_config.restore_on_start = true;
  GenerationSimulator warm_backend(77);
  IcCacheService warm(warm_config, &catalog, &warm_backend, embedder);
  std::remove(snapshot_path.c_str());
  if (!warm.restored_from_snapshot() || !warm.restore_status().ok()) {
    std::fprintf(stderr, "warm start failed: %s\n", warm.restore_status().ToString().c_str());
    return 1;
  }

  // The replayed gains must survive the round trip: every example the first
  // service refined comes back with the same improved quality and replay
  // budget consumed, and the byte accounting is exact.
  ExampleCache& warm_cache = warm.cache();
  bool round_trip_ok = warm_cache.size() == cache.size() &&
                       warm_cache.used_bytes() == cache.used_bytes();
  size_t replayed_checked = 0;
  for (uint64_t id : cache.AllIds()) {
    const Example* before = cache.Get(id);
    const Example* after = warm_cache.Get(id);
    if (after == nullptr) {
      round_trip_ok = false;
      break;
    }
    if (before->replay_count > 0) {
      ++replayed_checked;
      round_trip_ok = round_trip_ok &&
                      after->response_quality == before->response_quality &&
                      after->replay_count == before->replay_count &&
                      after->replay_gain_ema == before->replay_gain_ema;
    }
  }
  std::printf("warm start from snapshot: %zu examples, %zu replay-refined records verified "
              "bit-identical: %s\n",
              warm_cache.size(), replayed_checked, round_trip_ok ? "yes" : "NO (BUG)");
  return round_trip_ok && replayed_checked > 0 ? 0 : 1;
}
