// Offline inspector/validator for exported Chrome trace-event JSON
// (bench_driver_throughput --trace-out=..., or any Perfetto-loadable file
// this repo writes). Parses the document with the dependency-free JSON
// parser, then prints a per-span summary table: count, total duration, and
// mean duration per span name, plus counter-track and drop accounting.
//
//   trace_dump <trace.json>
//
// Exit codes: 0 parsed cleanly, 1 malformed/unreadable trace, 2 usage.
// ci.sh uses this as the "emitted JSON parses" gate for the observability
// export smoke.
#include <cstdio>
#include <string>

#include "src/obs/export.h"

int main(int argc, char** argv) {
  using namespace iccache;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.json>\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  StatusOr<std::string> contents = ReadTextFile(path);
  if (!contents.ok()) {
    std::fprintf(stderr, "trace_dump: %s\n", contents.status().ToString().c_str());
    return 1;
  }

  ChromeTraceSummary summary;
  std::string error;
  if (!ParseChromeTrace(contents.value(), &summary, &error)) {
    std::fprintf(stderr, "trace_dump: %s: invalid trace JSON: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }

  std::printf("trace: %s\n", path.c_str());
  std::printf("  events: %zu total  (emitted=%llu dropped=%llu)\n", summary.total_events,
              static_cast<unsigned long long>(summary.emitted),
              static_cast<unsigned long long>(summary.dropped));

  if (!summary.span_counts.empty()) {
    std::printf("  %-20s %10s %14s %12s\n", "span", "count", "total (ms)", "mean (us)");
    for (const auto& [name, count] : summary.span_counts) {
      const auto duration = summary.span_duration_us.find(name);
      const double total_us = duration == summary.span_duration_us.end() ? 0.0 : duration->second;
      std::printf("  %-20s %10llu %14.3f %12.2f\n", name.c_str(),
                  static_cast<unsigned long long>(count), total_us / 1000.0,
                  count > 0 ? total_us / static_cast<double>(count) : 0.0);
    }
  }
  if (!summary.counter_counts.empty()) {
    std::printf("  counter tracks (per-window series samples):\n");
    for (const auto& [name, count] : summary.counter_counts) {
      std::printf("  %-28s %10llu samples\n", name.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }
  return 0;
}
