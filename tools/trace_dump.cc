// Offline inspector/validator for exported Chrome trace-event JSON
// (bench_driver_throughput --trace-out=..., or any Perfetto-loadable file
// this repo writes). Parses the document with the dependency-free JSON
// parser, lints window-parent integrity (every lane/merge/publish span must
// fall inside some batch window), then prints either a per-span summary
// table — count, total duration, and mean duration per span name, plus
// counter-track and drop accounting — or, with --request, one request's
// assembled cross-thread timeline.
//
//   trace_dump <trace.json>
//   trace_dump --request=<id> <trace.json>
//
// Exit codes: 0 parsed cleanly, 1 malformed/unreadable trace or integrity
// violation (or unknown request id), 2 usage. ci.sh uses this as the
// "emitted JSON parses and is structurally sane" gate for the observability
// export smoke.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/timeline.h"

int main(int argc, char** argv) {
  using namespace iccache;
  uint64_t request_id = 0;
  bool request_mode = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--request=", 0) == 0) {
      request_mode = true;
      request_id = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (path.empty() && !arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: %s [--request=<id>] <trace.json>\n", argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s [--request=<id>] <trace.json>\n", argv[0]);
    return 2;
  }
  StatusOr<std::string> contents = ReadTextFile(path);
  if (!contents.ok()) {
    std::fprintf(stderr, "trace_dump: %s\n", contents.status().ToString().c_str());
    return 1;
  }

  ChromeTraceSummary summary;
  std::string error;
  if (!ParseChromeTrace(contents.value(), &summary, &error)) {
    std::fprintf(stderr, "trace_dump: %s: invalid trace JSON: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::vector<TimelineSpan> spans;
  if (!ParseChromeTraceSpans(contents.value(), &spans, &error)) {
    std::fprintf(stderr, "trace_dump: %s: invalid trace JSON: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  // Structural lint: window-scoped spans (lanes, merge, publish) orphaned
  // outside every "window" span mean the exporter or the recorder lost the
  // enclosing phase — fail loudly rather than summarize a broken trace.
  if (!CheckTraceIntegrity(spans, &error)) {
    std::fprintf(stderr, "trace_dump: %s: integrity violation: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }

  if (request_mode) {
    const std::vector<RequestTimeline> timelines = AssembleTimelines(spans);
    for (const RequestTimeline& timeline : timelines) {
      if (timeline.request_id == request_id) {
        std::printf("%s", RenderRequestTimeline(timeline).c_str());
        return 0;
      }
    }
    std::fprintf(stderr, "trace_dump: request %llu has no per-request spans in %s\n",
                 static_cast<unsigned long long>(request_id), path.c_str());
    return 1;
  }

  std::printf("trace: %s\n", path.c_str());
  std::printf("  events: %zu total  (emitted=%llu dropped=%llu)\n", summary.total_events,
              static_cast<unsigned long long>(summary.emitted),
              static_cast<unsigned long long>(summary.dropped));

  if (!summary.span_counts.empty()) {
    std::printf("  %-20s %10s %14s %12s\n", "span", "count", "total (ms)", "mean (us)");
    for (const auto& [name, count] : summary.span_counts) {
      const auto duration = summary.span_duration_us.find(name);
      const double total_us = duration == summary.span_duration_us.end() ? 0.0 : duration->second;
      std::printf("  %-20s %10llu %14.3f %12.2f\n", name.c_str(),
                  static_cast<unsigned long long>(count), total_us / 1000.0,
                  count > 0 ? total_us / static_cast<double>(count) : 0.0);
    }
  }
  if (!summary.counter_counts.empty()) {
    std::printf("  counter tracks (per-window series samples):\n");
    for (const auto& [name, count] : summary.counter_counts) {
      std::printf("  %-28s %10llu samples\n", name.c_str(),
                  static_cast<unsigned long long>(count));
    }
  }
  return 0;
}
