// Perf-trajectory gate over the versioned BENCH_*.json records the benches
// emit with --json-out (schema "iccache-bench/1", see src/obs/bench_json.h).
//
//   bench_compare [--strict] <baseline.json> <run.json>
//       Diffs `run` against `baseline` using the baseline's per-metric
//       tolerance bands. Exit 0 when every gated metric stays inside its
//       band (improvements never fail), 1 on any regression / missing gated
//       metric / schema mismatch. Machine-dependent metrics (wall clock,
//       req/s) report always but gate only under --strict — a committed
//       baseline crosses machines, while the simulated metrics are
//       deterministic for a given seed and gate everywhere.
//
//   bench_compare --scale=<metric>=<factor> <in.json> <out.json>
//       Rewrites one metric's value by `factor` and writes the doctored
//       record — the ci.sh red-path self-test that proves the gate actually
//       fails on a regression.
//
// Exit codes: 0 pass, 1 regression or bad input, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/bench_json.h"

int main(int argc, char** argv) {
  using namespace iccache;
  bool strict = false;
  std::string scale_spec;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--strict") {
      strict = true;
    } else if (arg.rfind("--scale=", 0) == 0) {
      scale_spec = arg.substr(8);
    } else if (!arg.empty() && arg[0] != '-') {
      paths.push_back(arg);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--strict] <baseline.json> <run.json>\n"
                   "       %s --scale=<metric>=<factor> <in.json> <out.json>\n",
                   argv[0], argv[0]);
      return 2;
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr, "%s: expected exactly two file arguments\n", argv[0]);
    return 2;
  }

  if (!scale_spec.empty()) {
    const size_t eq = scale_spec.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "%s: --scale wants <metric>=<factor>\n", argv[0]);
      return 2;
    }
    const std::string metric = scale_spec.substr(0, eq);
    const double factor = std::strtod(scale_spec.c_str() + eq + 1, nullptr);
    StatusOr<BenchRunRecord> record = ReadBenchRun(paths[0]);
    if (!record.ok()) {
      std::fprintf(stderr, "%s: %s: %s\n", argv[0], paths[0].c_str(),
                   record.status().ToString().c_str());
      return 1;
    }
    BenchMetric* target = record.value().Find(metric);
    if (target == nullptr) {
      std::fprintf(stderr, "%s: metric '%s' not in %s\n", argv[0], metric.c_str(),
                   paths[0].c_str());
      return 1;
    }
    target->value *= factor;
    const Status written = WriteBenchRun(paths[1], record.value());
    if (!written.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[0], written.ToString().c_str());
      return 1;
    }
    std::printf("scaled %s by %g: %s -> %s\n", metric.c_str(), factor, paths[0].c_str(),
                paths[1].c_str());
    return 0;
  }

  StatusOr<BenchRunRecord> baseline = ReadBenchRun(paths[0]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0], paths[0].c_str(),
                 baseline.status().ToString().c_str());
    return 1;
  }
  StatusOr<BenchRunRecord> run = ReadBenchRun(paths[1]);
  if (!run.ok()) {
    std::fprintf(stderr, "%s: %s: %s\n", argv[0], paths[1].c_str(),
                 run.status().ToString().c_str());
    return 1;
  }
  const BenchCompareResult result =
      CompareBenchRuns(baseline.value(), run.value(), strict);
  std::printf("baseline: %s\nrun:      %s\n%s", paths[0].c_str(), paths[1].c_str(),
              RenderBenchCompare(result).c_str());
  return result.ok() ? 0 : 1;
}
