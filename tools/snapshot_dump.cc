// snapshot_dump: inspect an IC-Cache pool snapshot without loading it into a
// serving process — the on-call tool for "what is in this checkpoint, and is
// it intact?". Doubles as the format smoke-check in ci.sh (any integrity
// failure exits non-zero before a single byte is interpreted).
//
//   $ ./snapshot_dump pool.snap
//   snapshot: pool.snap (13412 bytes, format v1)
//   sections:
//     meta          37 B   crc 0x1f2e3d4c
//     examples   11984 B   crc 0x...
//     ...
//   pool: 105 examples, 58 KB, 4 shards, dim 128, native hnsw image, t=93.1s
//   domains:
//     domain 0    71 examples      41203 B
//     domain 2    34 examples      17455 B
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "src/persist/pool_codec.h"
#include "src/persist/snapshot.h"

int main(int argc, char** argv) {
  using namespace iccache;
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <snapshot-file>\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];

  SnapshotReader reader;
  const Status open = reader.Open(path);
  if (!open.ok()) {
    std::fprintf(stderr, "snapshot_dump: %s\n", open.ToString().c_str());
    return 1;
  }
  std::printf("snapshot: %s (%" PRIu64 " bytes, format v%u, %zu sections)\n", path.c_str(),
              reader.file_size(), reader.format_version(), reader.sections().size());
  std::printf("sections:\n");
  for (const SnapshotSectionInfo& info : reader.sections()) {
    std::printf("  %-10s %10" PRIu64 " B   crc 0x%08x\n", SnapshotSectionName(info.id),
                info.size, info.crc32);
  }

  PoolMeta meta;
  const Status meta_status = DecodePoolMeta(reader, &meta);
  if (!meta_status.ok()) {
    std::fprintf(stderr, "snapshot_dump: %s\n", meta_status.ToString().c_str());
    return 1;
  }
  std::printf("pool: %" PRIu64 " examples, %.1f KB, %" PRIu64 " shard%s, dim %u, %s, t=%.1fs\n",
              meta.example_count, static_cast<double>(meta.used_bytes) / 1024.0,
              meta.shard_count, meta.shard_count == 1 ? "" : "s", meta.embed_dim,
              meta.has_native_index != 0 ? "native hnsw index image"
                                         : "no native index (rebuild on restore)",
              meta.sim_time);

  // Walk every example record (this re-validates the full encoding) and
  // aggregate per-privacy-domain usage.
  struct DomainUsage {
    uint64_t examples = 0;
    int64_t bytes = 0;
  };
  std::map<uint32_t, DomainUsage> domains;
  uint64_t walked = 0;
  int64_t walked_bytes = 0;
  const Status walk = ForEachSnapshotExample(
      reader, [&domains, &walked, &walked_bytes](const Example& example,
                                                 const std::vector<float>& embedding) {
        (void)embedding;
        ++walked;
        walked_bytes += example.SizeBytes();
        DomainUsage& usage = domains[example.request.privacy_domain];
        ++usage.examples;
        usage.bytes += example.SizeBytes();
      });
  if (!walk.ok()) {
    std::fprintf(stderr, "snapshot_dump: %s\n", walk.ToString().c_str());
    return 1;
  }
  if (walked != meta.example_count || walked_bytes != meta.used_bytes) {
    std::fprintf(stderr,
                 "snapshot_dump: meta/examples disagree (meta %" PRIu64 " examples / %lld B, "
                 "walked %" PRIu64 " / %lld B)\n",
                 meta.example_count, static_cast<long long>(meta.used_bytes), walked,
                 static_cast<long long>(walked_bytes));
    return 1;
  }
  std::printf("domains:\n");
  for (const auto& [domain, usage] : domains) {
    std::printf("  domain %-4u %8" PRIu64 " examples %10lld B\n", domain, usage.examples,
                static_cast<long long>(usage.bytes));
  }

  // Stage-0 response-cache section (present only when the writer served with
  // the stage-0 tier enabled).
  if (reader.Section(SnapshotSection::kStage0) != nullptr) {
    Stage0Summary stage0;
    const Status stage0_status = DecodeStage0Summary(reader, &stage0);
    if (!stage0_status.ok()) {
      std::fprintf(stderr, "snapshot_dump: %s\n", stage0_status.ToString().c_str());
      return 1;
    }
    std::printf("stage0: %" PRIu64 " cached responses, %.1f KB, hit threshold %.3f "
                "(%" PRIu64 " requests seen), %s\n",
                stage0.entry_count, static_cast<double>(stage0.used_bytes) / 1024.0,
                stage0.hit_threshold, stage0.requests_seen,
                stage0.has_native_index != 0 ? "native hnsw index image"
                                             : "no native index (rebuild on restore)");
  }
  std::printf("integrity: OK (all section CRCs verified, %" PRIu64 " records walked)\n", walked);
  return 0;
}
