// Tail-attribution report over an exported Chrome trace: stitches every
// request's spans (prepare / commit lane / merge step across threads) into a
// per-request timeline, then contrasts where the p99 cohort's wall time goes
// against the typical (<= median) request.
//
//   tail_report [--min-attribution=<frac>] <trace.json>
//
// With --min-attribution, exits 1 unless the tail cohort's attributed share
// of wall time reaches the bound — ci.sh gates the driver's instrumentation
// coverage with this (a p99 whose time mostly lands in no named stage means
// the trace can no longer explain the tail).
//
// Exit codes: 0 ok, 1 malformed trace or attribution below the bound, 2 usage.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/timeline.h"

int main(int argc, char** argv) {
  using namespace iccache;
  double min_attribution = -1.0;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--min-attribution=", 0) == 0) {
      min_attribution = std::strtod(arg.c_str() + 18, nullptr);
    } else if (path.empty() && !arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "usage: %s [--min-attribution=<frac>] <trace.json>\n", argv[0]);
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: %s [--min-attribution=<frac>] <trace.json>\n", argv[0]);
    return 2;
  }
  StatusOr<std::string> contents = ReadTextFile(path);
  if (!contents.ok()) {
    std::fprintf(stderr, "tail_report: %s\n", contents.status().ToString().c_str());
    return 1;
  }
  std::vector<TimelineSpan> spans;
  std::string error;
  if (!ParseChromeTraceSpans(contents.value(), &spans, &error)) {
    std::fprintf(stderr, "tail_report: %s: invalid trace JSON: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  const std::vector<RequestTimeline> timelines = AssembleTimelines(spans);
  if (timelines.empty()) {
    std::fprintf(stderr, "tail_report: %s: no per-request spans in trace\n", path.c_str());
    return 1;
  }
  const TailAttribution attribution = AttributeTails(timelines);
  std::printf("trace: %s\n%s", path.c_str(), RenderTailAttribution(attribution).c_str());
  if (min_attribution >= 0.0 && attribution.tail_attribution_fraction < min_attribution) {
    std::fprintf(stderr,
                 "tail_report: tail attribution %.1f%% below required %.1f%%\n",
                 100.0 * attribution.tail_attribution_fraction, 100.0 * min_attribution);
    return 1;
  }
  return 0;
}
