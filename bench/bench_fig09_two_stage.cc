// Figure 9: the two-stage selection mechanism improves response quality over
// stage-1 (relevance-only) retrieval. Paper (small model's average pairwise
// score vs the large model, higher is better): Open Orca -0.51 -> -0.29,
// Alpaca -0.22 -> -0.10.
#include <cstdio>

#include "bench/bench_common.h"

namespace iccache {
namespace {

struct StageScores {
  double stage1_only = 0.0;
  double two_stage = 0.0;
};

StageScores Evaluate(DatasetId dataset) {
  benchutil::BundleOptions options;
  options.pool_size = 2500;
  options.warmup_requests = 600;
  options.seed = 0x9a + static_cast<uint64_t>(dataset);
  auto bundle = benchutil::MakeBundle(dataset, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  PairwiseJudge judge;
  Rng rng(0x9b);

  auto views_for = [&](const Request& req, const std::vector<SelectedExample>& selected) {
    std::vector<ExampleView> views;
    for (const auto& sel : selected) {
      const Example* example = bundle->service->cache().Get(sel.example_id);
      ExampleView view;
      view.relevance = StructuralRelevance(req, example->request, rng);
      view.quality = example->response_quality;
      view.source_capability = example->source_capability;
      view.tokens = example->PromptTokens();
      views.push_back(view);
    }
    return views;
  };

  SideBySideStats stage1_scores;
  SideBySideStats two_stage_scores;
  for (int i = 0; i < 400; ++i) {
    const Request req = bundle->gen->Next();
    const double large_quality = sim.Generate(large, req, {}).latent_quality;

    auto& selector = bundle->service->selector();
    const auto stage1 = selector.SelectStage1Only(req, small, 2000.0 + i);
    const auto both = selector.Select(req, small, 2000.0 + i);

    const double q1 = sim.Generate(small, req, views_for(req, stage1)).latent_quality;
    const double q2 = sim.Generate(small, req, views_for(req, both)).latent_quality;
    stage1_scores.Add(judge.Compare(q1, large_quality));
    two_stage_scores.Add(judge.Compare(q2, large_quality));
  }
  return StageScores{stage1_scores.mean_score(), two_stage_scores.mean_score()};
}

}  // namespace
}  // namespace iccache

int main() {
  using iccache::benchutil::PrintNote;
  using iccache::benchutil::PrintRule;
  using iccache::benchutil::PrintTitle;

  PrintTitle("Figure 9: two-stage example selection improves response quality");
  std::printf("  %-14s %14s %14s\n", "dataset", "Stage1 only", "Stage1&2");
  PrintRule();
  const iccache::StageScores orca = iccache::Evaluate(iccache::DatasetId::kOpenOrca);
  std::printf("  %-14s %14.2f %14.2f\n", "Open Orca", orca.stage1_only, orca.two_stage);
  const iccache::StageScores alpaca = iccache::Evaluate(iccache::DatasetId::kAlpaca);
  std::printf("  %-14s %14.2f %14.2f\n", "Alpaca", alpaca.stage1_only, alpaca.two_stage);
  PrintNote("paper: Open Orca -0.51 -> -0.29, Alpaca -0.22 -> -0.10");
  return 0;
}
