// Figures 27 and 28 (Appendix B): full score distributions. For three model
// families (Gemini, Gemma-2, Phi-3) and five datasets, the histogram of the
// judge's per-request average score (small vs large) with and without
// in-context examples. IC shifts the whole distribution rightward — the
// paper's Phi-3 Natural Questions panel moves its mean from -2.33 to -0.89
// with ~50% of requests at or above large-model level.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/stats.h"

namespace iccache {
namespace {

void Evaluate(const char* family, const std::pair<std::string, std::string>& models,
              DatasetId dataset) {
  benchutil::BundleOptions options;
  options.pool_size = 2000;
  options.warmup_requests = 300;
  options.models = models;
  options.seed = 0x27 ^ (static_cast<uint64_t>(dataset) << 3);
  auto bundle = benchutil::MakeBundle(dataset, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  PairwiseJudge judge;
  Rng rng(0x275);

  Histogram baseline(-3.0, 3.0, 7);
  Histogram with_ic(-3.0, 3.0, 7);
  RunningStat base_mean;
  RunningStat ic_mean;
  QueryGenerator eval_gen(bundle->profile, 0x27e);
  for (int i = 0; i < 300; ++i) {
    const Request req = eval_gen.Next();
    const double large_quality = sim.Generate(large, req, {}).latent_quality;
    const double plain_score =
        judge.Compare(sim.Generate(small, req, {}).latent_quality, large_quality);
    baseline.Add(plain_score);
    base_mean.Add(plain_score);

    const auto selected = bundle->service->selector().Select(req, small, 9500.0 + i);
    std::vector<ExampleView> views;
    for (const auto& sel : selected) {
      const Example* example = bundle->service->cache().Get(sel.example_id);
      ExampleView view;
      view.relevance = StructuralRelevance(req, example->request, rng);
      view.quality = example->response_quality;
      view.source_capability = example->source_capability;
      view.tokens = example->PromptTokens();
      views.push_back(view);
    }
    const double ic_score =
        judge.Compare(sim.Generate(small, req, views).latent_quality, large_quality);
    with_ic.Add(ic_score);
    ic_mean.Add(ic_score);
  }

  std::printf("  %-8s %-18s mean %.2f -> %.2f | density@[-3..3] base[", family,
              DatasetName(dataset), base_mean.mean(), ic_mean.mean());
  for (size_t b = 0; b < 7; ++b) {
    std::printf("%s%.2f", b ? " " : "", baseline.Density(b));
  }
  std::printf("] ic[");
  for (size_t b = 0; b < 7; ++b) {
    std::printf("%s%.2f", b ? " " : "", with_ic.Density(b));
  }
  std::printf("]\n");
}

}  // namespace
}  // namespace iccache

int main() {
  using iccache::DatasetId;
  using iccache::ModelCatalog;
  iccache::benchutil::PrintTitle(
      "Figures 27/28: score distributions (baseline vs IC) across families and datasets");
  const DatasetId datasets[] = {DatasetId::kAlpaca, DatasetId::kLmsysChat, DatasetId::kMsMarco,
                                DatasetId::kNaturalQuestions, DatasetId::kOpenOrca};
  for (const auto& [family, pair] :
       {std::make_pair("Gemini", ModelCatalog::GeminiPair()),
        std::make_pair("Gemma-2", ModelCatalog::GemmaPair()),
        std::make_pair("Phi-3", ModelCatalog::PhiPair())}) {
    for (DatasetId dataset : datasets) {
      iccache::Evaluate(family, pair, dataset);
    }
  }
  iccache::benchutil::PrintNote(
      "paper: IC shifts every distribution rightward; e.g., Phi-3 on Natural Questions "
      "moves its mean from -2.33 to -0.89");
  return 0;
}
