// Figure 21: differentially private synthetic example pools. Replacing the
// raw historical cache with a DP-synthesized clone costs a little quality but
// IC-Cache still clearly beats the no-IC baseline. Paper win rates (small vs
// large): LMSys-Chat 40.5% -> 39.0% with DP; MS MARCO 57.3% -> 52.0%.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/core/dp_synthesis.h"

namespace iccache {
namespace {

void Evaluate(DatasetId dataset, const char* paper) {
  benchutil::BundleOptions options;
  options.pool_size = 2500;
  options.warmup_requests = 400;
  options.seed = 0x21 + static_cast<uint64_t>(dataset);
  auto bundle = benchutil::MakeBundle(dataset, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  PairwiseJudge judge;
  Rng rng(0x215);

  // Build the DP-synthetic clone of the warmed cache and a service around it.
  benchutil::BundleOptions dp_options = options;
  dp_options.pool_size = 1;
  dp_options.warmup_requests = 0;
  dp_options.proxy_pretrain_samples = 0;
  dp_options.service_config.cache.admission_mode = CacheAdmissionMode::kAllowAll;
  auto dp_bundle = benchutil::MakeBundle(dataset, dp_options);
  const DpSynthesisReport report =
      SynthesizeDpCache(bundle->service->cache(), &dp_bundle->service->cache());
  dp_bundle->service->PretrainProxy(800);

  auto win_rate = [&](benchutil::ServiceBundle& b) {
    SideBySideStats wins;
    QueryGenerator eval_gen(bundle->profile, 0x21e);
    for (int i = 0; i < 350; ++i) {
      const Request req = eval_gen.Next();
      const double large_quality = sim.Generate(large, req, {}).latent_quality;
      const auto selected = b.service->selector().Select(req, small, 9400.0 + i);
      std::vector<ExampleView> views;
      for (const auto& sel : selected) {
        const Example* example = b.service->cache().Get(sel.example_id);
        ExampleView view;
        view.relevance = StructuralRelevance(req, example->request, rng);
        view.quality = example->response_quality;
        view.source_capability = example->source_capability;
        view.tokens = example->PromptTokens();
        views.push_back(view);
      }
      wins.Add(judge.Compare(sim.Generate(small, req, views).latent_quality, large_quality));
    }
    return 100.0 * wins.win_rate();
  };

  std::printf("  %-18s w/o DP %.1f %%   w/ DP %.1f %%   (eps=%.1f, token keep p=%.2f)\n",
              DatasetName(dataset), win_rate(*bundle), win_rate(*dp_bundle),
              report.epsilon_spent, report.token_keep_probability);
  benchutil::PrintNote(paper);
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::benchutil::PrintTitle(
      "Figure 21: DP-synthetic example pool costs little quality");
  iccache::Evaluate(iccache::DatasetId::kLmsysChat, "paper: 40.5 -> 39.0");
  iccache::Evaluate(iccache::DatasetId::kMsMarco, "paper: 57.3 -> 52.0");
  return 0;
}
