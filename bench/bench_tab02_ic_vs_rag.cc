// Table 2: IC-Cache vs (and with) RAG. Gemma-2-2B against Gemma-2-27B on
// MS MARCO. Paper: avg score / win rate = -0.4272 / 41.54% (2B),
// 0.0047 / 52.63% (+RAG), 0.0667 / 56.35% (+IC), 0.2972 / 62.40% (+IC+RAG).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/rag.h"

namespace iccache {
namespace {

void Run() {
  benchutil::BundleOptions options;
  options.pool_size = 2500;
  options.warmup_requests = 400;
  options.seed = 0x22a;
  auto bundle = benchutil::MakeBundle(DatasetId::kMsMarco, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  RagPipeline rag(bundle->profile);
  PairwiseJudge judge;
  Rng rng(0x22b);

  SideBySideStats plain;
  SideBySideStats with_rag;
  SideBySideStats with_ic;
  SideBySideStats with_both;
  QueryGenerator eval_gen(bundle->profile, 0x22c);
  for (int i = 0; i < 450; ++i) {
    const Request req = eval_gen.Next();
    const double large_quality = sim.Generate(large, req, {}).latent_quality;

    const auto selected = bundle->service->selector().Select(req, small, 9600.0 + i);
    std::vector<ExampleView> views;
    for (const auto& sel : selected) {
      const Example* example = bundle->service->cache().Get(sel.example_id);
      ExampleView view;
      view.relevance = StructuralRelevance(req, example->request, rng);
      view.quality = example->response_quality;
      view.source_capability = example->source_capability;
      view.tokens = example->PromptTokens();
      views.push_back(view);
    }
    const RagContext rag_context = rag.Retrieve(req);

    plain.Add(judge.Compare(sim.Generate(small, req, {}).latent_quality, large_quality));
    with_rag.Add(judge.Compare(
        sim.Generate(small, req, {}, rag_context.capability_boost).latent_quality,
        large_quality));
    with_ic.Add(judge.Compare(sim.Generate(small, req, views).latent_quality, large_quality));
    with_both.Add(judge.Compare(
        sim.Generate(small, req, views, rag_context.capability_boost).latent_quality,
        large_quality));
  }

  benchutil::PrintTitle("Table 2: IC-Cache complements RAG (Gemma-2B vs 27B, MS MARCO)");
  std::printf("  %-14s %12s %12s   %s\n", "config", "avg score", "win rate %", "paper");
  benchutil::PrintRule();
  std::printf("  %-14s %12.4f %12.2f   %s\n", "Gemma-2B", plain.mean_score(),
              100.0 * plain.win_rate(), "-0.4272 / 41.54");
  std::printf("  %-14s %12.4f %12.2f   %s\n", "+RAG", with_rag.mean_score(),
              100.0 * with_rag.win_rate(), " 0.0047 / 52.63");
  std::printf("  %-14s %12.4f %12.2f   %s\n", "+IC", with_ic.mean_score(),
              100.0 * with_ic.win_rate(), " 0.0667 / 56.35");
  std::printf("  %-14s %12.4f %12.2f   %s\n", "+IC+RAG", with_both.mean_score(),
              100.0 * with_both.win_rate(), " 0.2972 / 62.40");
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::Run();
  return 0;
}
