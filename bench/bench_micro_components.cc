// google-benchmark microbenchmarks for the hot paths of the IC-Cache runtime:
// embedding, index search (flat vs K-Means as the pool grows — the K=sqrt(N)
// payoff), two-stage selection, routing decisions, the knapsack eviction
// solver, and the judge protocol.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_common.h"
#include "src/common/knapsack.h"
#include "src/common/mathutil.h"
#include "src/index/vector_index.h"

namespace iccache {
namespace {

std::vector<float> RandomUnitVector(Rng& rng, size_t dim) {
  std::vector<float> v(dim);
  for (auto& x : v) {
    x = static_cast<float>(rng.Normal());
  }
  NormalizeL2(v);
  return v;
}

void BM_EmbedQuery(benchmark::State& state) {
  HashingEmbedder embedder;
  QueryGenerator gen(GetDatasetProfile(DatasetId::kLmsysChat), 1);
  const Request req = gen.Next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(embedder.Embed(req.text));
  }
}
BENCHMARK(BM_EmbedQuery);

void BM_FlatSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  FlatIndex index(128);
  for (uint64_t i = 0; i < n; ++i) {
    index.Add(i, RandomUnitVector(rng, 128));
  }
  const auto query = RandomUnitVector(rng, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(query, 10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_FlatSearch)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_KMeansSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  KMeansIndexConfig config;
  config.dim = 128;
  KMeansIndex index(config);
  for (uint64_t i = 0; i < n; ++i) {
    index.Add(i, RandomUnitVector(rng, 128));
  }
  index.Rebuild();
  const auto query = RandomUnitVector(rng, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Search(query, 10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_KMeansSearch)->Arg(1000)->Arg(10000)->Arg(50000);

struct SelectorEnv {
  std::unique_ptr<benchutil::ServiceBundle> bundle;
  SelectorEnv() {
    benchutil::BundleOptions options;
    options.pool_size = 4000;
    options.warmup_requests = 100;
    options.proxy_pretrain_samples = 300;
    bundle = benchutil::MakeBundle(DatasetId::kMsMarco, options);
  }
};

void BM_TwoStageSelect(benchmark::State& state) {
  static SelectorEnv env;
  QueryGenerator gen(env.bundle->profile, 4);
  double now = 0.0;
  for (auto _ : state) {
    const Request req = gen.Next();
    now += 1.0;
    benchmark::DoNotOptimize(
        env.bundle->service->selector().Select(req, env.bundle->Small(), now));
  }
}
BENCHMARK(BM_TwoStageSelect);

void BM_RouterDecision(benchmark::State& state) {
  static SelectorEnv env;
  QueryGenerator gen(env.bundle->profile, 5);
  const Request req = gen.Next();
  const auto selected = env.bundle->service->selector().Select(req, env.bundle->Small(), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(env.bundle->service->router().Route(req, selected));
  }
}
BENCHMARK(BM_RouterDecision);

void BM_ServeRequestEndToEnd(benchmark::State& state) {
  static SelectorEnv env;
  QueryGenerator gen(env.bundle->profile, 6);
  double now = 0.0;
  for (auto _ : state) {
    const Request req = gen.Next();
    now += 1.0;
    benchmark::DoNotOptimize(env.bundle->service->ServeRequest(req, now));
  }
}
BENCHMARK(BM_ServeRequestEndToEnd);

void BM_KnapsackEviction(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<KnapsackItem> items;
  int64_t total_weight = 0;
  for (size_t i = 0; i < n; ++i) {
    KnapsackItem item;
    item.weight = static_cast<int64_t>(rng.UniformInt(200, 2000));
    item.value = rng.Uniform();
    total_weight += item.weight;
    items.push_back(item);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveKnapsack(items, total_weight / 2));
  }
}
BENCHMARK(BM_KnapsackEviction)->Arg(1000)->Arg(10000);

void BM_JudgeProtocol(benchmark::State& state) {
  PairwiseJudge judge;
  for (auto _ : state) {
    benchmark::DoNotOptimize(judge.Compare(0.72, 0.68));
  }
}
BENCHMARK(BM_JudgeProtocol);

}  // namespace
}  // namespace iccache

BENCHMARK_MAIN();
