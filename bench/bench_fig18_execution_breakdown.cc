// Figure 18: execution breakdown.
// Left: contention-free (zero-load, no batching) serving latency for
// Gemma-2-2B, Gemma-2-2B + IC-Cache (with routing/retrieval overheads
// itemized), and Gemma-2-27B. Paper: 2.66s / 2.57s (incl. ~0.08s overhead,
// 3% faster than bare 2B thanks to shorter decodes) / 8.94s.
// Right: serving cost as GPUs needed per unit throughput, normalized to
// Gemma-2-2B. Paper: 1.00 / 1.18 / 7.17.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/serving/cluster.h"

namespace iccache {
namespace {

struct Breakdown {
  double generation_s = 0.0;
  double routing_s = 0.0;
  double retrieval1_s = 0.0;
  double retrieval2_s = 0.0;
  double Total() const { return generation_s + routing_s + retrieval1_s + retrieval2_s; }
};

// Max sustainable throughput of one replica of `model` on the given request
// shape, measured by saturating the simulated server.
double ReplicaThroughput(const ModelProfile& model, int prompt_tokens, int output_tokens) {
  ClusterSim cluster;
  cluster.AddPool(model, 1);
  const int n = 600;
  for (int i = 0; i < n; ++i) {
    ServingRequest req;
    req.id = static_cast<uint64_t>(i + 1);
    req.arrival_time = 0.0;  // everything queued at once: measures capacity
    req.prompt_tokens = prompt_tokens;
    req.output_tokens = output_tokens;
    cluster.Submit(model.name, req);
  }
  cluster.RunUntilIdle();
  return static_cast<double>(n) / cluster.now();
}

}  // namespace
}  // namespace iccache

int main() {
  using namespace iccache;
  benchutil::BundleOptions options;
  options.pool_size = 2500;
  options.warmup_requests = 400;
  options.seed = 0x18a;
  auto bundle = benchutil::MakeBundle(DatasetId::kLmsysChat, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  const ServiceConfig& config = bundle->service->config();
  Rng rng(0x18b);

  RunningStat lat_small;
  RunningStat lat_small_ic_gen;
  RunningStat lat_large;
  RunningStat prompt_small;
  RunningStat prompt_small_ic;
  RunningStat output_tokens;
  QueryGenerator eval_gen(bundle->profile, 0x18c);
  for (int i = 0; i < 400; ++i) {
    const Request req = eval_gen.Next();
    const GenerationResult plain = sim.Generate(small, req, {});
    lat_small.Add(plain.e2e_latency_s);
    prompt_small.Add(plain.prompt_tokens);
    output_tokens.Add(plain.output_tokens);

    const auto selected = bundle->service->selector().Select(req, small, 9300.0 + i);
    std::vector<ExampleView> views;
    for (const auto& sel : selected) {
      const Example* example = bundle->service->cache().Get(sel.example_id);
      ExampleView view;
      view.relevance = StructuralRelevance(req, example->request, rng);
      view.quality = example->response_quality;
      view.source_capability = example->source_capability;
      view.tokens = example->PromptTokens();
      views.push_back(view);
    }
    const GenerationResult augmented = sim.Generate(small, req, views);
    lat_small_ic_gen.Add(augmented.e2e_latency_s);
    prompt_small_ic.Add(augmented.prompt_tokens);

    lat_large.Add(sim.Generate(large, req, {}).e2e_latency_s);
  }

  Breakdown ic;
  ic.generation_s = lat_small_ic_gen.mean();
  ic.routing_s = config.router_latency_s;
  ic.retrieval1_s = config.selector_stage1_latency_s;
  ic.retrieval2_s = config.selector_stage2_latency_s;

  benchutil::PrintTitle("Figure 18 (left): zero-load serving latency (s)");
  std::printf("  %-22s prefill+decode=%.2f total=%.2f  %s\n", "Gemma-2-2B", lat_small.mean(),
              lat_small.mean(), benchutil::PaperRef("2.66").c_str());
  std::printf("  %-22s prefill+decode=%.2f routing=%.3f retr1=%.3f retr2=%.3f total=%.2f  %s\n",
              "Gemma-2-2B w/ IC-Cache", ic.generation_s, ic.routing_s, ic.retrieval1_s,
              ic.retrieval2_s, ic.Total(), benchutil::PaperRef("2.57").c_str());
  std::printf("  %-22s prefill+decode=%.2f total=%.2f  %s\n", "Gemma-2-27B", lat_large.mean(),
              lat_large.mean(), benchutil::PaperRef("8.94").c_str());

  benchutil::PrintTitle("Figure 18 (right): GPUs per unit throughput (normalized)");
  const int out = static_cast<int>(output_tokens.mean());
  const double thpt_small = ReplicaThroughput(small, static_cast<int>(prompt_small.mean()), out);
  const double thpt_small_ic =
      ReplicaThroughput(small, static_cast<int>(prompt_small_ic.mean()),
                        static_cast<int>(output_tokens.mean() * 0.92));
  const double thpt_large = ReplicaThroughput(large, static_cast<int>(prompt_small.mean()), out);
  const double cost_small = small.gpus_required / thpt_small;
  const double cost_small_ic = small.gpus_required / thpt_small_ic;
  const double cost_large = large.gpus_required / thpt_large;
  std::printf("  %-22s GPU/QPS = %.2f  %s\n", "Gemma-2-2B", cost_small / cost_small,
              benchutil::PaperRef("1.00").c_str());
  std::printf("  %-22s GPU/QPS = %.2f  %s\n", "Gemma-2-2B w/ IC-Cache",
              cost_small_ic / cost_small, benchutil::PaperRef("1.18").c_str());
  std::printf("  %-22s GPU/QPS = %.2f  %s\n", "Gemma-2-27B", cost_large / cost_small,
              benchutil::PaperRef("7.17").c_str());
  std::printf("  => IC-Cache sustains %.1fx the throughput of always-large at equal GPUs %s\n",
              cost_large / cost_small_ic, benchutil::PaperRef("5.1x").c_str());
  return 0;
}
