// Figure 11: cost-aware example replay ("distillation" of better responses
// via best-of-n regeneration) improves final response quality. Paper (small
// model's average score vs the large model, Gemini pair): Open Orca
// -0.26 -> -0.20, Math Reasoning -0.42 -> -0.19, Code Generation
// -0.66 -> -0.41.
#include <cstdio>

#include "bench/bench_common.h"

namespace iccache {
namespace {

struct ReplayScores {
  double before = 0.0;
  double after = 0.0;
};

ReplayScores Evaluate(DatasetId dataset) {
  benchutil::BundleOptions options;
  options.pool_size = 2000;
  options.warmup_requests = 400;
  options.models = ModelCatalog::GeminiPair();
  options.seed = 0xbb + static_cast<uint64_t>(dataset);
  auto bundle = benchutil::MakeBundle(dataset, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  PairwiseJudge judge;
  Rng rng(0xbc);

  auto evaluate_quality = [&](uint64_t base_seed) {
    QueryGenerator eval_gen(bundle->profile, base_seed);
    SideBySideStats scores;
    for (int i = 0; i < 300; ++i) {
      const Request req = eval_gen.Next();
      const auto selected = bundle->service->selector().Select(req, small, 5000.0 + i);
      std::vector<ExampleView> views;
      for (const auto& sel : selected) {
        const Example* example = bundle->service->cache().Get(sel.example_id);
        ExampleView view;
        view.relevance = StructuralRelevance(req, example->request, rng);
        view.quality = example->response_quality;
        view.source_capability = example->source_capability;
        view.tokens = example->PromptTokens();
        views.push_back(view);
      }
      const double small_quality = sim.Generate(small, req, views).latent_quality;
      const double large_quality = sim.Generate(large, req, {}).latent_quality;
      scores.Add(judge.Compare(small_quality, large_quality));
    }
    return scores.mean_score();
  };

  ReplayScores result;
  result.before = evaluate_quality(0xe1);
  // Several off-peak replay passes refine the hottest, lowest-quality
  // examples in place.
  for (int pass = 0; pass < 6; ++pass) {
    bundle->service->manager().RunReplayPass();
  }
  result.after = evaluate_quality(0xe1);
  return result;
}

}  // namespace
}  // namespace iccache

int main() {
  using iccache::benchutil::PrintNote;
  using iccache::benchutil::PrintRule;
  using iccache::benchutil::PrintTitle;

  PrintTitle("Figure 11: example replay (distillation) improves response quality");
  std::printf("  %-18s %18s %18s\n", "task", "w/o distillation", "w/ distillation");
  PrintRule();
  const struct {
    iccache::DatasetId dataset;
    const char* label;
  } rows[] = {
      {iccache::DatasetId::kOpenOrca, "Open Orca"},
      {iccache::DatasetId::kMath500, "Math Reasoning"},
      {iccache::DatasetId::kNl2Bash, "Code Generation"},
  };
  for (const auto& row : rows) {
    const iccache::ReplayScores scores = iccache::Evaluate(row.dataset);
    std::printf("  %-18s %18.2f %18.2f\n", row.label, scores.before, scores.after);
  }
  PrintNote("paper: -0.26->-0.20 (Orca), -0.42->-0.19 (math), -0.66->-0.41 (code)");
  return 0;
}
