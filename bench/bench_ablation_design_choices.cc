// Ablation harness for the design choices DESIGN.md calls out (beyond the
// paper's own Figure 16 ablation):
//
//   A. Router policy — contextual Thompson sampling vs epsilon-greedy vs a
//      pure-greedy (no-exploration) variant, on reward regret.
//   B. Load controller — the Theorem-4 tanh bias vs a hard on/off threshold,
//      on offload-ratio stability around the operational threshold.
//   C. Cache eviction — knapsack (value-aware) vs LRU vs random, on retained
//      offload value under a byte budget.
//   D. Index probe count — K-Means nprobe sweep, recall@1 vs probed fraction
//      (the K = sqrt(N) + nprobe trade the paper sizes in section 4.1).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "bench/bench_common.h"
#include "src/common/knapsack.h"
#include "src/common/mathutil.h"
#include "src/core/bandit.h"
#include "src/index/vector_index.h"

namespace iccache {
namespace {

// --- A: router policy regret ----------------------------------------------
void RouterPolicyAblation() {
  benchutil::PrintTitle("Ablation A: router policy (cumulative regret, lower is better)");
  // Two-arm contextual world: arm 0 good on easy (x1 low), arm 1 on hard.
  auto reward = [](size_t arm, double x1, Rng& rng) {
    const double base = arm == 0 ? (0.9 - 0.5 * x1) : (0.5 + 0.3 * x1);
    return Clamp(base + rng.Normal(0.0, 0.05), 0.0, 1.0);
  };
  auto optimal = [](double x1) { return std::max(0.9 - 0.5 * x1, 0.5 + 0.3 * x1); };

  const int horizon = 4000;
  for (const char* policy : {"thompson", "epsilon-greedy", "greedy"}) {
    ContextualBandit bandit(2, 2, 0xab1);
    Rng rng(0xab2);
    double regret = 0.0;
    for (int t = 0; t < horizon; ++t) {
      const double x1 = rng.Uniform();
      const std::vector<double> context = {1.0, x1};
      size_t arm = 0;
      if (std::string(policy) == "thompson") {
        arm = bandit.Select(context, {}).arm;
      } else {
        const BanditSelection sel = bandit.Select(context, {});
        arm = static_cast<size_t>(std::max_element(sel.mean_scores.begin(),
                                                   sel.mean_scores.end()) -
                                  sel.mean_scores.begin());
        if (std::string(policy) == "epsilon-greedy" && rng.Bernoulli(0.1)) {
          arm = rng.UniformInt(2);
        }
      }
      const double r = reward(arm, x1, rng);
      regret += optimal(x1) - (arm == 0 ? 0.9 - 0.5 * x1 : 0.5 + 0.3 * x1);
      bandit.Update(arm, context, r);
    }
    std::printf("  %-16s cumulative regret over %d rounds: %.1f\n", policy, horizon, regret);
  }
  benchutil::PrintNote("expected: thompson < epsilon-greedy < greedy (greedy can lock in)");
}

// --- B: load controller ----------------------------------------------------
void LoadControllerAblation() {
  benchutil::PrintTitle("Ablation B: tanh bias vs hard threshold (offload ratio by load)");
  const double mu_small = 0.58;
  const double mu_large = 0.62;  // large slightly better on quality
  const double cost_small = 0.11;
  const double cost_large = 1.0;
  const double lambda0 = 1.5;
  const double gamma = 2.0;
  const double threshold = 0.75;
  std::printf("  %-8s %-14s %s\n", "load", "tanh offload", "hard-threshold offload");
  for (double load : {0.2, 0.6, 0.74, 0.76, 0.9, 1.2, 2.0}) {
    const double dev = std::max(0.0, load - threshold);
    const double tanh_bias = lambda0 * std::tanh(gamma * dev);
    const auto probs_tanh = Softmax(
        {mu_small - tanh_bias * cost_small, mu_large - tanh_bias * cost_large}, 0.05);
    const double hard_bias = load > threshold ? lambda0 : 0.0;
    const auto probs_hard = Softmax(
        {mu_small - hard_bias * cost_small, mu_large - hard_bias * cost_large}, 0.05);
    std::printf("  %-8.2f %-14.2f %.2f\n", load, probs_tanh[0], probs_hard[0]);
  }
  benchutil::PrintNote(
      "expected: tanh ramps smoothly past the threshold; the hard controller slams from "
      "quality-first to cheap-only at 0.75 (instability under load noise)");
}

// --- C: eviction policy -----------------------------------------------------
void EvictionAblation() {
  benchutil::PrintTitle("Ablation C: eviction policy (retained offload value at 50% budget)");
  Rng rng(0xab3);
  const size_t n = 4000;
  struct Entry {
    int64_t bytes;
    double value;          // decayed offload value
    double last_access;    // recency for LRU
  };
  std::vector<Entry> entries;
  int64_t total_bytes = 0;
  double total_value = 0.0;
  for (size_t i = 0; i < n; ++i) {
    Entry e;
    e.bytes = static_cast<int64_t>(rng.UniformInt(300, 3000));
    // Long-tail value correlated with recency (hot examples are recent).
    e.value = rng.Bernoulli(0.15) ? rng.Uniform(2.0, 30.0) : rng.Uniform(0.0, 0.5);
    e.last_access = Clamp(e.value / 30.0 + rng.Uniform(0.0, 0.6), 0.0, 1.0);
    total_bytes += e.bytes;
    total_value += e.value;
    entries.push_back(e);
  }
  const int64_t budget = total_bytes / 2;

  auto retained = [&](const std::vector<size_t>& order) {
    int64_t used = 0;
    double value = 0.0;
    for (size_t idx : order) {
      if (used + entries[idx].bytes <= budget) {
        used += entries[idx].bytes;
        value += entries[idx].value;
      }
    }
    return value / total_value;
  };

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  // Knapsack (greedy density, as the production path uses at this scale).
  std::vector<KnapsackItem> items;
  for (const Entry& e : entries) {
    items.push_back({e.bytes, e.value});
  }
  const KnapsackSolution solution = SolveKnapsackGreedy(items, budget);
  double knapsack_value = 0.0;
  for (size_t idx : solution.selected) {
    knapsack_value += entries[idx].value;
  }

  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return entries[a].last_access > entries[b].last_access;
  });
  const double lru_value = retained(order);

  Rng shuffle_rng(0xab4);
  const std::vector<size_t> random_order = shuffle_rng.Permutation(n);
  const double random_value = retained(random_order);

  std::printf("  knapsack: %.2f   LRU: %.2f   random: %.2f (fraction of value retained)\n",
              knapsack_value / total_value, lru_value, random_value);
  benchutil::PrintNote("expected: knapsack > LRU > random (Figure 19's mechanism)");
}

// --- D: nprobe sweep ---------------------------------------------------------
void NprobeAblation() {
  benchutil::PrintTitle(
      "Ablation D: K-Means index nprobe sweep (recall@1, 10k topically clustered vectors)");
  Rng rng(0xab5);
  const size_t n = 10000;
  const size_t dim = 64;
  const size_t topics = 400;
  // Query embeddings cluster by topic in production (section 2.3); vectors
  // are drawn as topic centroids plus small noise.
  std::vector<std::vector<float>> centroids;
  for (size_t t = 0; t < topics; ++t) {
    std::vector<float> c(dim);
    for (auto& x : c) {
      x = static_cast<float>(rng.Normal());
    }
    NormalizeL2(c);
    centroids.push_back(c);
  }
  std::vector<std::vector<float>> vectors;
  FlatIndex exact(dim);
  for (uint64_t i = 0; i < n; ++i) {
    const auto& c = centroids[rng.UniformInt(topics)];
    std::vector<float> v(dim);
    for (size_t d = 0; d < dim; ++d) {
      v[d] = c[d] + static_cast<float>(rng.Normal(0.0, 0.12));
    }
    NormalizeL2(v);
    vectors.push_back(v);
    exact.Add(i, v);
  }
  std::printf("  %-8s %-10s %s\n", "nprobe", "recall@1", "clusters probed / K=sqrt(N)=100");
  for (size_t nprobe : {1u, 2u, 3u, 5u, 10u}) {
    KMeansIndexConfig config;
    config.dim = dim;
    config.nprobe = nprobe;
    config.seed = 0xab6;
    KMeansIndex approx(config);
    for (uint64_t i = 0; i < n; ++i) {
      approx.Add(i, vectors[i]);
    }
    approx.Rebuild();
    int hits = 0;
    const int queries = 200;
    Rng qrng(0xab7);
    for (int q = 0; q < queries; ++q) {
      const auto& c = centroids[qrng.UniformInt(topics)];
      std::vector<float> query(dim);
      for (size_t d = 0; d < dim; ++d) {
        query[d] = c[d] + static_cast<float>(qrng.Normal(0.0, 0.12));
      }
      NormalizeL2(query);
      const auto a = approx.Search(query, 1);
      const auto e = exact.Search(query, 1);
      if (!a.empty() && !e.empty() && a[0].id == e[0].id) {
        ++hits;
      }
    }
    std::printf("  %-8zu %-10.2f %zu/%zu\n", nprobe, static_cast<double>(hits) / queries, nprobe,
                approx.num_clusters());
  }
  benchutil::PrintNote("expected: recall climbs quickly with nprobe; 3 probes ~ high recall at "
                       "3% of the flat-search cost");
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::RouterPolicyAblation();
  iccache::LoadControllerAblation();
  iccache::EvictionAblation();
  iccache::NprobeAblation();
  return 0;
}
