// Figure 17 (and Appendix B.1): side-by-side response quality with the router
// pinned so every request is answered by BOTH models — the small model with
// and without in-context examples vs the large model. Paper win rates for the
// small side: Gemini on LMSys-Chat 36.7% -> 44.2% w/ IC; Gemini on OpenOrca
// 44.6% -> 57.0%; Qwen-7B vs DeepSeek-R1 on Natural Questions 7.9% -> 24.4%.
#include <cstdio>

#include "bench/bench_common.h"

namespace iccache {
namespace {

void Evaluate(const char* label, DatasetId dataset,
              const std::pair<std::string, std::string>& models, const char* paper) {
  benchutil::BundleOptions options;
  options.pool_size = 2500;
  options.warmup_requests = 400;
  options.models = models;
  options.seed = 0x17 + static_cast<uint64_t>(dataset);
  auto bundle = benchutil::MakeBundle(dataset, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  PairwiseJudge judge;
  Rng rng(0x175);

  SideBySideStats without_ic;
  SideBySideStats with_ic;
  QueryGenerator eval_gen(bundle->profile, 0x17e);
  for (int i = 0; i < 450; ++i) {
    const Request req = eval_gen.Next();
    const double large_quality = sim.Generate(large, req, {}).latent_quality;
    without_ic.Add(judge.Compare(sim.Generate(small, req, {}).latent_quality, large_quality));

    const auto selected = bundle->service->selector().Select(req, small, 9200.0 + i);
    std::vector<ExampleView> views;
    for (const auto& sel : selected) {
      const Example* example = bundle->service->cache().Get(sel.example_id);
      ExampleView view;
      view.relevance = StructuralRelevance(req, example->request, rng);
      view.quality = example->response_quality;
      view.source_capability = example->source_capability;
      view.tokens = example->PromptTokens();
      views.push_back(view);
    }
    with_ic.Add(judge.Compare(sim.Generate(small, req, views).latent_quality, large_quality));
  }

  std::printf("  %s\n", label);
  std::printf("    %-8s win/tie/loss = %4.1f/%4.1f/%4.1f %%  -> win rate %5.1f %%\n", "w/o IC",
              100.0 * without_ic.win_fraction(), 100.0 * without_ic.tie_fraction(),
              100.0 * without_ic.loss_fraction(), 100.0 * without_ic.win_rate());
  std::printf("    %-8s win/tie/loss = %4.1f/%4.1f/%4.1f %%  -> win rate %5.1f %%\n", "w/ IC",
              100.0 * with_ic.win_fraction(), 100.0 * with_ic.tie_fraction(),
              100.0 * with_ic.loss_fraction(), 100.0 * with_ic.win_rate());
  benchutil::PrintNote(paper);
}

}  // namespace
}  // namespace iccache

int main() {
  using iccache::DatasetId;
  using iccache::ModelCatalog;
  iccache::benchutil::PrintTitle("Figure 17: side-by-side quality with and without IC");
  iccache::Evaluate("LMSys-Chat: Gemini-Flash vs Gemini-Pro", DatasetId::kLmsysChat,
                    ModelCatalog::GeminiPair(), "paper: 36.7% w/o IC -> 44.2% w/ IC");
  iccache::Evaluate("OpenOrca: Gemini-Flash vs Gemini-Pro", DatasetId::kOpenOrca,
                    ModelCatalog::GeminiPair(), "paper: 44.6% w/o IC -> 57.0% w/ IC");
  iccache::Evaluate("Natural Questions: Qwen-2.5-7B vs DeepSeek-R1", DatasetId::kNaturalQuestions,
                    ModelCatalog::DeepSeekPair(), "paper: 7.9% w/o IC -> 24.4% w/ IC");
  return 0;
}
