// Figure 19: impact of example cache size. Qwen2.5-3B accuracy on code
// generation and translation as the example pool is capped at 5-100% of the
// full set, comparing (i) Naive Cache — random retention — against (ii)
// IC-Cache — utility-aware retention via the knapsack policy. Paper: IC-Cache
// saturates with a tiny cache (2,022 examples for code, 12,056 for
// translation, <20 MB) while naive retention degrades sharply.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

namespace iccache {
namespace {

struct SizePoint {
  double naive_accuracy = 0.0;
  double ic_accuracy = 0.0;
};

SizePoint Evaluate(DatasetId dataset, double keep_fraction, uint64_t seed) {
  benchutil::BundleOptions options;
  options.pool_size = 3000;
  options.warmup_requests = 300;
  options.models = ModelCatalog::QwenPair();
  options.seed = seed;
  auto bundle = benchutil::MakeBundle(dataset, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  ExampleCache& cache = bundle->service->cache();
  Rng rng(seed ^ 0x19);

  // Retention: drop (1 - keep_fraction) of the pool under each policy.
  const std::vector<uint64_t> ids = cache.AllIds();
  const size_t keep = static_cast<size_t>(keep_fraction * ids.size());

  // Utility-aware retention keeps the examples with the highest accumulated
  // offload value (warmup populated these); naive keeps a random subset.
  std::vector<uint64_t> by_value = ids;
  std::sort(by_value.begin(), by_value.end(), [&cache](uint64_t a, uint64_t b) {
    const Example* ea = cache.Get(a);
    const Example* eb = cache.Get(b);
    const double va = ea->offload_value + 0.01 * static_cast<double>(ea->access_count);
    const double vb = eb->offload_value + 0.01 * static_cast<double>(eb->access_count);
    return va > vb;
  });

  auto run_eval = [&](const std::vector<uint64_t>& keep_ids) {
    // Build a fresh service sharing nothing, fill its cache with the kept
    // examples, and measure accuracy with selected examples.
    benchutil::BundleOptions fresh_options = options;
    fresh_options.pool_size = 1;  // minimal; we refill manually
    fresh_options.warmup_requests = 0;
    fresh_options.proxy_pretrain_samples = 0;
    auto fresh = benchutil::MakeBundle(dataset, fresh_options);
    for (uint64_t id : keep_ids) {
      const Example* example = cache.Get(id);
      fresh->service->cache().Put(example->request, "[resp]", example->response_quality,
                                  example->source_capability, example->response_tokens, 0.0);
    }
    fresh->service->PretrainProxy(400);
    QueryGenerator eval_gen(bundle->profile, seed ^ 0x19e);
    Rng view_rng(seed ^ 0x19f);
    int correct = 0;
    const int n = 250;
    for (int i = 0; i < n; ++i) {
      const Request req = eval_gen.Next();
      const auto selected = fresh->service->selector().Select(req, small, 100.0 + i);
      std::vector<ExampleView> views;
      for (const auto& sel : selected) {
        const Example* example = fresh->service->cache().Get(sel.example_id);
        ExampleView view;
        view.relevance = StructuralRelevance(req, example->request, view_rng);
        view.quality = example->response_quality;
        view.source_capability = example->source_capability;
        view.tokens = example->PromptTokens();
        views.push_back(view);
      }
      correct += sim.Generate(small, req, views).correct ? 1 : 0;
    }
    return 100.0 * correct / n;
  };

  SizePoint point;
  std::vector<uint64_t> random_keep;
  for (size_t idx : rng.SampleWithoutReplacement(ids.size(), keep)) {
    random_keep.push_back(ids[idx]);
  }
  point.naive_accuracy = run_eval(random_keep);
  point.ic_accuracy = run_eval(std::vector<uint64_t>(by_value.begin(), by_value.begin() + keep));
  return point;
}

void Sweep(DatasetId dataset, const char* label) {
  std::printf("  %s:\n", label);
  std::printf("    %-12s %-14s %s\n", "cache size", "Naive Cache", "IC-Cache");
  for (double fraction : {0.05, 0.10, 0.25, 0.50, 1.00}) {
    const SizePoint point = Evaluate(dataset, fraction, 0x19a + static_cast<uint64_t>(dataset));
    std::printf("    %-12.0f %-14.1f %.1f\n", 100.0 * fraction, point.naive_accuracy,
                point.ic_accuracy);
  }
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::benchutil::PrintTitle("Figure 19: accuracy vs example cache size (Qwen2.5-3B)");
  iccache::Sweep(iccache::DatasetId::kNl2Bash, "Code Generation");
  iccache::Sweep(iccache::DatasetId::kWmt16, "Translation");
  iccache::benchutil::PrintNote(
      "paper: IC-Cache nearly saturates at small cache fractions; naive retention "
      "needs the full pool");
  return 0;
}
