// Figure 4: live capability augmentation of Qwen2.5-3B with five examples
// from Qwen2.5-32B on NL2Bash code generation and Math500-Hard reasoning.
// (a) Accuracy: plain vs +random examples vs +IC (selected) examples —
//     paper: 37.4 / 24.8 / 54.5 (code) and 37.5 / 34.4 / 46.0 (math).
// (b) TTFT: examples lengthen prefill slightly but stay far below the large
//     model — paper: 0.024 / 0.049 / 0.29 s (code); 0.092 / 0.45 / 0.99 s.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/stats.h"

namespace iccache {
namespace {

struct AccuracyRow {
  double plain = 0.0;
  double random_examples = 0.0;
  double ic_examples = 0.0;
  double ttft_plain = 0.0;
  double ttft_ic = 0.0;
  double ttft_large = 0.0;
};

AccuracyRow Evaluate(DatasetId dataset) {
  benchutil::BundleOptions options;
  options.pool_size = 4000;
  options.warmup_requests = 300;
  options.models = ModelCatalog::QwenPair();  // 32B large, 3B small
  options.seed = 0x4a + static_cast<uint64_t>(dataset);
  auto bundle = benchutil::MakeBundle(dataset, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  Rng rng(0x4b);

  AccuracyRow row;
  RunningStat ttft_plain;
  RunningStat ttft_ic;
  RunningStat ttft_large;
  int n = 400;
  int correct_plain = 0;
  int correct_random = 0;
  int correct_ic = 0;
  for (int i = 0; i < n; ++i) {
    const Request req = bundle->gen->Next();

    // Plain small model.
    const GenerationResult plain = sim.Generate(small, req, {});
    correct_plain += plain.correct ? 1 : 0;
    ttft_plain.Add(plain.ttft_s);

    // Five random (irrelevant) examples: shuffled cache entries.
    std::vector<ExampleView> random_views;
    const auto ids = bundle->service->cache().AllIds();
    for (size_t pick = 0; pick < 5 && !ids.empty(); ++pick) {
      const Example* example = bundle->service->cache().Get(ids[rng.UniformInt(ids.size())]);
      ExampleView view;
      view.relevance = StructuralRelevance(req, example->request, rng);
      view.quality = example->response_quality;
      view.source_capability = example->source_capability;
      view.tokens = example->PromptTokens();
      random_views.push_back(view);
    }
    correct_random += sim.Generate(small, req, random_views).correct ? 1 : 0;

    // Selected IC examples via the two-stage selector.
    const auto selected = bundle->service->selector().Select(req, small, 1000.0 + i);
    std::vector<ExampleView> ic_views;
    for (const auto& sel : selected) {
      const Example* example = bundle->service->cache().Get(sel.example_id);
      ExampleView view;
      view.relevance = StructuralRelevance(req, example->request, rng);
      view.quality = example->response_quality;
      view.source_capability = example->source_capability;
      view.tokens = example->PromptTokens();
      ic_views.push_back(view);
    }
    const GenerationResult ic = sim.Generate(small, req, ic_views);
    correct_ic += ic.correct ? 1 : 0;
    ttft_ic.Add(ic.ttft_s);

    ttft_large.Add(sim.Generate(large, req, {}).ttft_s);
  }
  row.plain = 100.0 * correct_plain / n;
  row.random_examples = 100.0 * correct_random / n;
  row.ic_examples = 100.0 * correct_ic / n;
  row.ttft_plain = ttft_plain.mean();
  row.ttft_ic = ttft_ic.mean();
  row.ttft_large = ttft_large.mean();
  return row;
}

}  // namespace
}  // namespace iccache

int main() {
  using iccache::benchutil::PrintNote;
  using iccache::benchutil::PrintRule;
  using iccache::benchutil::PrintTitle;

  const iccache::AccuracyRow code = iccache::Evaluate(iccache::DatasetId::kNl2Bash);
  const iccache::AccuracyRow math = iccache::Evaluate(iccache::DatasetId::kMath500);

  PrintTitle("Figure 4(a): response quality with examples (accuracy %)");
  std::printf("  %-16s %12s %16s %12s\n", "task", "Qwen-3B", "+Random Ex.", "+IC Ex.");
  PrintRule();
  std::printf("  %-16s %12.1f %16.1f %12.1f\n", "Code Generation", code.plain,
              code.random_examples, code.ic_examples);
  std::printf("  %-16s %12.1f %16.1f %12.1f\n", "Math Reasoning", math.plain,
              math.random_examples, math.ic_examples);
  PrintNote("paper: 37.4 / 24.8 / 54.5 (code), 37.5 / 34.4 / 46.0 (math)");

  PrintTitle("Figure 4(b): TTFT (s)");
  std::printf("  %-16s %12s %16s %12s\n", "task", "Qwen-3B", "Qwen-3B+IC", "Qwen-32B");
  PrintRule();
  std::printf("  %-16s %12.3f %16.3f %12.3f\n", "Code Generation", code.ttft_plain, code.ttft_ic,
              code.ttft_large);
  std::printf("  %-16s %12.3f %16.3f %12.3f\n", "Math Reasoning", math.ttft_plain, math.ttft_ic,
              math.ttft_large);
  PrintNote("paper: 0.024 / 0.049 / 0.29 (code), 0.092 / 0.45 / 0.99 (math)");
  return 0;
}
