// Shared machinery for the figure/table reproduction harnesses.
//
// Every bench binary is self-contained, takes no arguments, prints the same
// rows/series the paper reports (plus the paper's reference values where the
// paper states them), and finishes in seconds. Workloads are scaled down
// uniformly from Table 1 sizes; topic counts are scaled with the pool so the
// similarity density matches the paper's measurements (section 2.3).
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/service.h"
#include "src/judge/judge.h"
#include "src/llm/generation.h"
#include "src/llm/model_profile.h"
#include "src/workload/query_generator.h"

namespace iccache {
namespace benchutil {

// Scales a Table 1 profile down to `pool_size` examples while keeping the
// examples-per-topic density of the full-size dataset, so retrieval hit
// characteristics match the paper's.
inline DatasetProfile ScaledProfile(DatasetId id, size_t pool_size) {
  DatasetProfile profile = GetDatasetProfile(id);
  pool_size = std::min(pool_size, profile.example_pool_size);
  const double scale =
      static_cast<double>(pool_size) / static_cast<double>(profile.example_pool_size);
  profile.num_topics = std::max<size_t>(
      40, static_cast<size_t>(static_cast<double>(profile.num_topics) *
                              std::min(1.0, scale * 8.0)));
  profile.example_pool_size = pool_size;
  return profile;
}

// A fully wired IC-Cache deployment over one dataset and one model pair.
struct ServiceBundle {
  ModelCatalog catalog;
  std::shared_ptr<const Embedder> embedder;
  std::unique_ptr<GenerationSimulator> sim;
  std::unique_ptr<QueryGenerator> gen;
  std::unique_ptr<IcCacheService> service;
  DatasetProfile profile;

  const ModelProfile& Small() const { return service->small_model(); }
  const ModelProfile& Large() const { return service->large_model(); }
};

struct BundleOptions {
  size_t pool_size = 2000;
  size_t warmup_requests = 400;
  uint64_t seed = 0xbe9c4;
  std::pair<std::string, std::string> models = ModelCatalog::GemmaPair();  // large, small
  size_t proxy_pretrain_samples = 1500;
  ServiceConfig service_config;
};

inline std::unique_ptr<ServiceBundle> MakeBundle(DatasetId dataset, BundleOptions options = {}) {
  auto bundle = std::make_unique<ServiceBundle>();
  bundle->profile = ScaledProfile(dataset, options.pool_size);
  bundle->embedder = std::make_shared<HashingEmbedder>();
  bundle->sim = std::make_unique<GenerationSimulator>(options.seed ^ 0x51a);
  bundle->gen = std::make_unique<QueryGenerator>(bundle->profile, options.seed);

  ServiceConfig config = options.service_config;
  config.large_model = options.models.first;
  config.small_model = options.models.second;
  config.seed = options.seed ^ 0xc0de;
  bundle->service = std::make_unique<IcCacheService>(config, &bundle->catalog,
                                                     bundle->sim.get(), bundle->embedder);
  for (size_t i = 0; i < options.pool_size; ++i) {
    bundle->service->SeedExample(bundle->gen->Next(), 0.0);
  }
  // Offline proxy training from sampled feedback before serving begins.
  bundle->service->PretrainProxy(options.proxy_pretrain_samples);
  for (size_t i = 0; i < options.warmup_requests; ++i) {
    bundle->service->ServeRequest(bundle->gen->Next(), static_cast<double>(i));
  }
  return bundle;
}

// ---------------------------------------------------------------------------
// Output formatting.

inline void PrintTitle(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintNote(const std::string& note) { std::printf("  %s\n", note.c_str()); }

inline void PrintRule() {
  std::printf("  ------------------------------------------------------------------\n");
}

// "measured X.XX (paper: Y)" convenience.
inline std::string PaperRef(const std::string& value) { return "(paper: " + value + ")"; }

}  // namespace benchutil
}  // namespace iccache

#endif  // BENCH_BENCH_COMMON_H_
