// Figure 20: request completion time under light / medium / heavy load
// (QPS = 1, 2, 4 on Alpaca) for Gemma-2-2B, Gemma-2-2B + IC-Cache, and
// Gemma-2-27B on identical single-replica deployments. Paper: 2B + IC-Cache
// tracks bare 2B (11-35% lower P50, 14-31% higher P99 from decode-length
// shifts) and cuts P50 by 75-83% / P99 by 69-71% vs the 27B model.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/stats.h"
#include "src/serving/cluster.h"
#include "src/workload/trace.h"

namespace iccache {
namespace {

struct LoadResult {
  double p50 = 0.0;
  double p99 = 0.0;
};

enum class Deployment { kSmall, kSmallIc, kLarge };

LoadResult RunDeployment(Deployment deployment, double qps, benchutil::ServiceBundle& bundle,
                         uint64_t seed) {
  GenerationSimulator& sim = *bundle.sim;
  const ModelProfile& small = bundle.Small();
  const ModelProfile& large = bundle.Large();
  const ModelProfile& model = deployment == Deployment::kLarge ? large : small;
  Rng rng(seed);

  TraceConfig trace_config;
  trace_config.kind = TraceKind::kPoisson;
  trace_config.mean_rps = qps;
  trace_config.duration_s = 600.0;
  trace_config.seed = seed ^ 0x20;
  ArrivalTrace trace(trace_config);

  ClusterSim cluster;
  cluster.AddPool(model, 1);
  QueryGenerator request_gen(bundle.profile, seed ^ 0x20f);
  uint64_t rid = 1;
  for (double t : trace.GenerateArrivals()) {
    cluster.AdvanceTo(t);
    const Request req = request_gen.Next();
    GenerationResult generation;
    if (deployment == Deployment::kSmallIc) {
      const auto selected = bundle.service->selector().Select(req, small, t);
      std::vector<ExampleView> views;
      for (const auto& sel : selected) {
        const Example* example = bundle.service->cache().Get(sel.example_id);
        ExampleView view;
        view.relevance = StructuralRelevance(req, example->request, rng);
        view.quality = example->response_quality;
        view.source_capability = example->source_capability;
        view.tokens = example->PromptTokens();
        views.push_back(view);
      }
      generation = sim.Generate(small, req, views);
    } else {
      generation = sim.Generate(model, req, {});
    }
    ServingRequest serving;
    serving.id = rid++;
    serving.arrival_time = t;
    serving.prompt_tokens = generation.prompt_tokens;
    serving.output_tokens = generation.output_tokens;
    cluster.Submit(model.name, serving);
  }
  cluster.RunUntilIdle();

  PercentileTracker latency;
  for (const auto& record : cluster.completions()) {
    latency.Add(record.E2eLatency());
  }
  return LoadResult{latency.Percentile(50), latency.Percentile(99)};
}

}  // namespace
}  // namespace iccache

int main() {
  using namespace iccache;
  benchutil::BundleOptions options;
  options.pool_size = 2000;
  options.warmup_requests = 300;
  options.seed = 0x20a;
  auto bundle = benchutil::MakeBundle(DatasetId::kAlpaca, options);

  benchutil::PrintTitle("Figure 20: completion time vs serving load (Alpaca)");
  std::printf("  %-12s %-22s %-22s %-22s\n", "load (QPS)", "Gemma-2-2b P50/P99",
              "Gemma-2-2b+IC P50/P99", "Gemma-2-27b P50/P99");
  for (double qps : {1.0, 2.0, 4.0}) {
    const LoadResult small = RunDeployment(Deployment::kSmall, qps, *bundle, 0x201);
    const LoadResult small_ic = RunDeployment(Deployment::kSmallIc, qps, *bundle, 0x202);
    const LoadResult large = RunDeployment(Deployment::kLarge, qps, *bundle, 0x203);
    std::printf("  %-12.0f %8.2f / %-11.2f %8.2f / %-11.2f %8.2f / %-11.2f\n", qps, small.p50,
                small.p99, small_ic.p50, small_ic.p99, large.p50, large.p99);
  }
  benchutil::PrintNote(
      "paper: 2B+IC ~= 2B; P50 reduced 75-83% and P99 69-71% vs the 27B deployment");
  return 0;
}
