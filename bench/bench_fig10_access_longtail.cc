// Figure 10: example access counts follow a long-tail distribution — a small
// fraction of cached examples serves most of the retrievals (the reason
// cost-aware replay rations its budget, section 4.3).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace iccache {
namespace {

void Evaluate(DatasetId dataset) {
  benchutil::BundleOptions options;
  options.pool_size = 2500;
  options.warmup_requests = 0;
  options.seed = 0xaa + static_cast<uint64_t>(dataset);
  auto bundle = benchutil::MakeBundle(dataset, options);

  // Drive selections only (no generation needed) to accumulate access stats.
  for (int i = 0; i < 4000; ++i) {
    bundle->service->selector().Select(bundle->gen->Next(), bundle->Small(),
                                       static_cast<double>(i));
  }

  std::vector<double> counts;
  for (uint64_t id : bundle->service->cache().AllIds()) {
    counts.push_back(static_cast<double>(bundle->service->cache().Get(id)->access_count));
  }
  std::sort(counts.rbegin(), counts.rend());
  double total = 0.0;
  for (double c : counts) {
    total += c;
  }
  double top1 = 0.0;
  double top10 = 0.0;
  const size_t n1 = counts.size() / 100;
  const size_t n10 = counts.size() / 10;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i < n1) {
      top1 += counts[i];
    }
    if (i < n10) {
      top10 += counts[i];
    }
  }
  size_t never = 0;
  for (double c : counts) {
    if (c == 0.0) {
      ++never;
    }
  }

  std::printf("  %-20s max=%-6.0f top1%%-share=%-6.2f top10%%-share=%-6.2f never-used=%.2f\n",
              DatasetName(dataset), counts.front(), top1 / total, top10 / total,
              static_cast<double>(never) / counts.size());

  // Condensed CDF of access counts (the paper's x-axis runs to ~500).
  std::vector<double> sorted(counts.rbegin(), counts.rend());
  auto cdf_at = [&sorted](double x) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
    return static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size());
  };
  std::printf("    CDF: <=1:%.2f <=5:%.2f <=20:%.2f <=50:%.2f <=200:%.2f\n", cdf_at(1.0),
              cdf_at(5.0), cdf_at(20.0), cdf_at(50.0), cdf_at(200.0));
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::benchutil::PrintTitle("Figure 10: example access counts are long-tailed");
  iccache::Evaluate(iccache::DatasetId::kLmsysChat);
  iccache::Evaluate(iccache::DatasetId::kMsMarco);
  iccache::benchutil::PrintNote(
      "paper: most examples see few accesses while a small head absorbs hundreds");
  return 0;
}
