// Table 4: preference agreement matrix between LLM judges and human raters on
// MT-Bench-style response pairs. Paper: LLM-LLM agreement 74-81%, LLM-human
// 66-73%, human-human 63% — the LLM judges align with humans at least as well
// as humans align with each other, validating LLM-as-a-judge.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/judge/judge.h"

int main() {
  using namespace iccache;
  const std::vector<RaterProfile> raters = Table4Raters();

  benchutil::PrintTitle("Table 4: preference agreement matrix (%)");
  std::printf("  %-18s", "judge");
  for (const auto& rater : raters) {
    std::printf(" %16s", rater.name.c_str());
  }
  std::printf("\n");
  benchutil::PrintRule();
  for (size_t i = 0; i < raters.size(); ++i) {
    std::printf("  %-18s", raters[i].name.c_str());
    for (size_t j = 0; j < raters.size(); ++j) {
      if (j < i) {
        std::printf(" %16s", "");
        continue;
      }
      const double agreement =
          RaterAgreement(raters[i], raters[j], 20000, 0x24a + i * 31 + j * 7);
      std::printf(" %15.0f%%", 100.0 * agreement);
    }
    std::printf("\n");
  }
  benchutil::PrintNote(
      "paper (upper triangle incl. self): GPT-4 row 74/77/76/66; Flash row 80/76/67; "
      "Pro row 81/68; 2.5-Pro row 73; Human-Human 63");
  return 0;
}
