// Figures 2 and 22: serving-load dynamics of the (synthetic) Azure-style LLM
// trace. Figure 2(a) plots request density over a multi-day horizon;
// Figure 2(b) zooms into minute-level arrivals, where peak loads reach up to
// 25x the off-peak minimum; Figure 22 samples the 30-minute replay window
// used by the end-to-end experiments.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/workload/trace.h"

namespace iccache {
namespace {

void Figure2a() {
  TraceConfig config;
  config.kind = TraceKind::kDiurnalBursty;
  config.mean_rps = 2.0;
  config.duration_s = 42.0 * 3600.0;  // the paper's ~42-hour window
  config.seed = 0x42;
  ArrivalTrace trace(config);
  const auto arrivals = trace.GenerateArrivals();
  const auto rps = BinArrivalRate(arrivals, config.duration_s, 3600.0);  // hourly bins

  double total = 0.0;
  for (double r : rps) {
    total += r;
  }
  benchutil::PrintTitle("Figure 2(a): request density over time (hourly bins)");
  std::printf("  %-8s %-12s %s\n", "hour", "rps", "density");
  benchutil::PrintRule();
  for (size_t h = 0; h < rps.size(); h += 3) {
    std::printf("  %-8zu %-12.3f %.4f\n", h, rps[h], total > 0 ? rps[h] / total : 0.0);
  }
  benchutil::PrintNote("paper: clear diurnal swing between peak and off-peak hours");
}

void Figure2b() {
  TraceConfig config;
  config.kind = TraceKind::kDiurnalBursty;
  config.mean_rps = 2.0;
  config.duration_s = 6.0 * 3600.0;
  config.bursts_per_hour = 7.0;
  config.seed = 0x2b;
  ArrivalTrace trace(config);
  const auto arrivals = trace.GenerateArrivals();
  auto rps = BinArrivalRate(arrivals, config.duration_s, 60.0);  // minute bins

  std::vector<double> nonzero;
  for (double r : rps) {
    if (r > 0.0) {
      nonzero.push_back(r);
    }
  }
  std::sort(nonzero.begin(), nonzero.end());
  const double min_rps = nonzero.front();
  const double median_rps = nonzero[nonzero.size() / 2];
  const double max_rps = nonzero.back();

  benchutil::PrintTitle("Figure 2(b): minute-level request arrivals");
  std::printf("  minimum RPS : %7.2f\n", min_rps);
  std::printf("  median  RPS : %7.2f\n", median_rps);
  std::printf("  maximum RPS : %7.2f\n", max_rps);
  std::printf("  peak / trough ratio : %5.1fx %s\n", max_rps / min_rps,
              benchutil::PaperRef("up to 25x").c_str());
}

void Figure22() {
  TraceConfig config;
  config.kind = TraceKind::kDiurnalBursty;
  config.mean_rps = 2.2;
  config.duration_s = 1800.0;  // the 30-minute replay window
  config.bursts_per_hour = 8.0;
  config.seed = 0x22;
  ArrivalTrace trace(config);
  const auto arrivals = trace.GenerateArrivals();
  const auto per_half_minute = BinArrivalRate(arrivals, config.duration_s, 30.0);

  benchutil::PrintTitle("Figure 22: request arrival pattern (30-minute sample)");
  std::printf("  %-10s %s\n", "minute", "requests in 30s window");
  benchutil::PrintRule();
  for (size_t b = 0; b < per_half_minute.size(); b += 4) {
    std::printf("  %-10.1f %.0f\n", static_cast<double>(b) * 0.5, per_half_minute[b] * 30.0);
  }
  std::printf("  total requests: %zu %s\n", arrivals.size(),
              benchutil::PaperRef("bursty, peaks of ~70 requests/window").c_str());
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::Figure2a();
  iccache::Figure2b();
  iccache::Figure22();
  return 0;
}
