// Figure 3: (a) pervasive request similarity — the CDF of each request's
// top-1 cosine similarity to other requests on MS MARCO, Natural Questions,
// and LMSys-Chat (paper: >70% of requests have a neighbour above 0.8, vs a
// ~0.5 baseline for random pairs); (b) naive semantic caching — returning the
// most-similar cached response — collapses the win rate vs fresh generation
// from ~50% toward ~18% as the hit rate rises.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/baselines/semantic_cache.h"
#include "src/common/mathutil.h"

namespace iccache {
namespace {

void Figure3a(DatasetId dataset) {
  // The similarity census uses the dataset's native topic breadth (halved to
  // offset the reduced sample count) so the singleton tail — requests with no
  // semantic counterpart — survives, as it does at paper scale.
  DatasetProfile profile = GetDatasetProfile(dataset);
  profile.num_topics /= 2;
  QueryGenerator gen(profile, 0x3a);
  HashingEmbedder embedder;
  const std::vector<Request> requests = gen.Generate(1500);
  std::vector<std::vector<float>> embeddings;
  embeddings.reserve(requests.size());
  for (const auto& req : requests) {
    embeddings.push_back(embedder.Embed(req.text));
  }
  std::vector<double> top1;
  for (size_t i = 0; i < requests.size(); ++i) {
    double best = -1.0;
    for (size_t j = 0; j < requests.size(); ++j) {
      if (i != j) {
        best = std::max(best, CosineSimilarity(embeddings[i], embeddings[j]));
      }
    }
    top1.push_back(best);
  }
  std::sort(top1.begin(), top1.end());
  auto cdf_at = [&top1](double x) {
    const auto it = std::upper_bound(top1.begin(), top1.end(), x);
    return static_cast<double>(it - top1.begin()) / static_cast<double>(top1.size());
  };
  std::printf("  %-18s", DatasetName(dataset));
  for (double s : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    std::printf("  CDF(%.1f)=%.2f", s, cdf_at(s));
  }
  std::printf("  frac>0.8=%.2f\n", 1.0 - cdf_at(0.8));
}

void Figure3b(DatasetId dataset) {
  // Pre-populate a semantic cache with large-model responses, then sweep the
  // similarity threshold: each threshold yields a (hit rate, win rate) point.
  // Topic breadth matches the Figure 3(a) census so the paraphrase/topical
  // hit mix is consistent.
  DatasetProfile profile = GetDatasetProfile(dataset);
  profile.num_topics /= 2;
  QueryGenerator gen(profile, 0x3b);
  ModelCatalog catalog;
  const ModelProfile& model = catalog.Get("gemma-2-27b");
  GenerationSimulator sim(0x3b5);
  PairwiseJudge judge;
  auto embedder = std::make_shared<HashingEmbedder>();

  SemanticCache cache(embedder, 1.0);
  std::vector<Request> pool = gen.Generate(3000);
  for (const Request& req : pool) {
    const GenerationResult result = sim.Generate(model, req, {});
    cache.Put(req, result.latent_quality, result.output_tokens);
  }

  const std::vector<Request> queries = gen.Generate(400);
  // Embed each query ONCE for the whole sweep: every threshold probes the
  // same vectors (the old per-threshold Lookup(request) re-embedded all 400
  // queries at every sweep point).
  std::vector<std::vector<float>> query_embeddings;
  query_embeddings.reserve(queries.size());
  for (const Request& query : queries) {
    query_embeddings.push_back(embedder->Embed(query.text));
  }
  std::printf("  %s:\n", DatasetName(dataset));
  std::printf("    %-12s %-12s %s\n", "threshold", "hit rate", "win rate vs fresh generation");
  for (double threshold : {0.99, 0.92, 0.85, 0.75, 0.55, 0.0}) {
    cache.set_similarity_threshold(threshold);
    int hits = 0;
    SideBySideStats wins;  // cached response vs fresh generation, same model
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const Request& query = queries[qi];
      const auto hit = cache.Lookup(query_embeddings[qi]);
      const GenerationResult fresh = sim.Generate(model, query, {});
      if (hit.has_value()) {
        ++hits;
        Rng rel_rng(Mix64(query.id));
        const double relevance = StructuralRelevance(query, hit->entry.request, rel_rng);
        const double reused_quality =
            sim.ReusedResponseQuality(hit->entry.response_quality, relevance);
        wins.Add(judge.Compare(reused_quality, fresh.latent_quality));
      } else {
        wins.Add(0.0);  // miss: generate normally -> tie by definition
      }
    }
    std::printf("    %-12.2f %-12.2f %.1f %%\n", threshold,
                static_cast<double>(hits) / static_cast<double>(queries.size()),
                100.0 * wins.win_rate());
  }
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::benchutil::PrintTitle("Figure 3(a): top-1 request similarity CDF");
  iccache::Figure3a(iccache::DatasetId::kMsMarco);
  iccache::Figure3a(iccache::DatasetId::kNaturalQuestions);
  iccache::Figure3a(iccache::DatasetId::kLmsysChat);
  iccache::benchutil::PrintNote(
      "paper: >70% of requests have a >0.8-similarity counterpart; random pairs ~0.5");

  iccache::benchutil::PrintTitle("Figure 3(b): naive semantic caching hurts quality");
  iccache::Figure3b(iccache::DatasetId::kMsMarco);
  iccache::Figure3b(iccache::DatasetId::kNaturalQuestions);
  iccache::Figure3b(iccache::DatasetId::kLmsysChat);
  iccache::benchutil::PrintNote(
      "paper: win rate falls from 50% toward ~18% as the hit rate approaches 100%");
  return 0;
}
