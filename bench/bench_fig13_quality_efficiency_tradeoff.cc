// Figure 13: the quality-efficiency trade-off. Sweeping the routing
// aggressiveness trades offload ratio (and therefore normalized serving
// throughput) against the small model's win rate vs Gemma-2-27B. IC-Cache's
// curve must dominate RouteLLM's: same quality at higher throughput (paper:
// 2.3x higher throughput at the 50% win-rate target on Natural Questions) and
// higher quality at the same throughput (4-16% at 6x).
//
// Normalized throughput follows the paper's definition: serving capacity of a
// fixed GPU budget relative to serving everything on the large model. With
// per-request GPU-seconds g_small / g_large, a policy offloading fraction f
// achieves  T(f) = 1 / (1 - f + f * g_small / g_large).
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/route_llm.h"

namespace iccache {
namespace {

// GPU-seconds ratio between the pair's zero-load costs (1 GPU * 2.57s vs
// 2 GPUs * 8.94s in the paper's Figure 18 -> ~0.145).
constexpr double kGpuSecondsRatio = 0.145;

double NormalizedThroughput(double offload_fraction) {
  return 1.0 / (1.0 - offload_fraction + offload_fraction * kGpuSecondsRatio);
}

void Sweep(DatasetId dataset) {
  benchutil::BundleOptions options;
  options.pool_size = 2500;
  options.warmup_requests = 500;
  options.seed = 0x13 + static_cast<uint64_t>(dataset);
  auto bundle = benchutil::MakeBundle(dataset, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  PairwiseJudge judge;
  Rng rng(0x135);

  QueryGenerator eval_gen(bundle->profile, 0x13e);
  const std::vector<Request> eval = eval_gen.Generate(500);

  // Per-request materials shared by both routers.
  struct Prepared {
    double small_ic_quality = 0.0;
    double small_plain_quality = 0.0;
    double large_quality = 0.0;
    double router_small_mean = 0.0;  // IC-Cache arm-mean advantage for small
    double routellm_difficulty = 0.0;
  };
  RouteLlmRouter route_llm;
  std::vector<Prepared> prepared;
  prepared.reserve(eval.size());
  for (const Request& req : eval) {
    Prepared p;
    const auto selected = bundle->service->selector().Select(req, small, 9000.0);
    std::vector<ExampleView> views;
    for (const auto& sel : selected) {
      const Example* example = bundle->service->cache().Get(sel.example_id);
      ExampleView view;
      view.relevance = StructuralRelevance(req, example->request, rng);
      view.quality = example->response_quality;
      view.source_capability = example->source_capability;
      view.tokens = example->PromptTokens();
      views.push_back(view);
    }
    p.small_ic_quality = sim.Generate(small, req, views).latent_quality;
    p.small_plain_quality = sim.Generate(small, req, {}).latent_quality;
    p.large_quality = sim.Generate(large, req, {}).latent_quality;
    const RouteDecision decision = bundle->service->router().Route(req, selected);
    p.router_small_mean = decision.arm_means[0] - decision.arm_means[1];
    p.routellm_difficulty = route_llm.EstimateDifficulty(req);
    prepared.push_back(p);
  }

  std::printf("  %s (win rate %% of small over %s at normalized throughput):\n",
              DatasetName(dataset), large.name.c_str());
  std::printf("    %-10s %-12s %-14s %-12s %-14s\n", "offload", "IC thpt", "IC win%", "RL thpt",
              "RouteLLM win%");
  for (double target_offload : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    // IC-Cache: offload the requests its router ranks best for the small arm.
    std::vector<size_t> order(eval.size());
    for (size_t i = 0; i < eval.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return prepared[a].router_small_mean > prepared[b].router_small_mean;
    });
    const size_t cut = static_cast<size_t>(target_offload * eval.size());
    SideBySideStats ic_wins;
    for (size_t rank = 0; rank < eval.size(); ++rank) {
      const Prepared& p = prepared[order[rank]];
      const double quality = rank < cut ? p.small_ic_quality : p.large_quality;
      ic_wins.Add(judge.Compare(quality, p.large_quality));
    }

    // RouteLLM: offload the easiest requests by classifier estimate, serving
    // them WITHOUT examples (no in-context augmentation in the baseline).
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return prepared[a].routellm_difficulty < prepared[b].routellm_difficulty;
    });
    SideBySideStats rl_wins;
    for (size_t rank = 0; rank < eval.size(); ++rank) {
      const Prepared& p = prepared[order[rank]];
      const double quality = rank < cut ? p.small_plain_quality : p.large_quality;
      rl_wins.Add(judge.Compare(quality, p.large_quality));
    }

    std::printf("    %-10.2f %-12.2f %-14.1f %-12.2f %-14.1f\n", target_offload,
                NormalizedThroughput(target_offload), 100.0 * ic_wins.win_rate(),
                NormalizedThroughput(target_offload), 100.0 * rl_wins.win_rate());
  }
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::benchutil::PrintTitle(
      "Figure 13: quality-efficiency tradeoff (IC-Cache vs RouteLLM)");
  iccache::Sweep(iccache::DatasetId::kAlpaca);
  iccache::Sweep(iccache::DatasetId::kOpenOrca);
  iccache::Sweep(iccache::DatasetId::kMsMarco);
  iccache::Sweep(iccache::DatasetId::kNaturalQuestions);
  iccache::benchutil::PrintNote(
      "paper: IC-Cache holds ~50%+ win rates out to ~6x throughput; RouteLLM's quality "
      "decays with offload (e.g., 2.3x throughput gap at 50% win rate on NQ)");
  return 0;
}
