// Table 3: IC-Cache vs supervised fine-tuning under domain shift. Gemma-2-2B
// vs Gemma-2-27B evaluated on Alpaca. The SFT variant was tuned on Natural
// Questions (out-of-domain for this test); "in-domain IC" retrieves from an
// Alpaca example cache; "OOD IC" retrieves from a Natural Questions cache.
// Paper win rates: 45.58 (2B) / 32.33 (+OOD SFT) / 47.25 (+in-domain IC) /
// 46.69 (+OOD IC) — SFT regresses badly off-domain while live augmentation
// degrades gracefully (OOD examples are simply not selected).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/sft.h"

namespace iccache {
namespace {

std::vector<ExampleView> ViewsFor(benchutil::ServiceBundle& bundle, const Request& req,
                                  double now, Rng& rng) {
  const auto selected = bundle.service->selector().Select(req, bundle.Small(), now);
  std::vector<ExampleView> views;
  for (const auto& sel : selected) {
    const Example* example = bundle.service->cache().Get(sel.example_id);
    ExampleView view;
    view.relevance = StructuralRelevance(req, example->request, rng);
    view.quality = example->response_quality;
    view.source_capability = example->source_capability;
    view.tokens = example->PromptTokens();
    views.push_back(view);
  }
  return views;
}

void Run() {
  benchutil::BundleOptions alpaca_options;
  alpaca_options.pool_size = 2000;
  alpaca_options.warmup_requests = 300;
  alpaca_options.seed = 0x23a;
  auto alpaca = benchutil::MakeBundle(DatasetId::kAlpaca, alpaca_options);

  benchutil::BundleOptions nq_options = alpaca_options;
  nq_options.seed = 0x23b;
  auto nq = benchutil::MakeBundle(DatasetId::kNaturalQuestions, nq_options);

  GenerationSimulator& sim = *alpaca->sim;
  const ModelProfile& small = alpaca->Small();
  const ModelProfile& large = alpaca->Large();
  const SftModelAdapter sft(small, DatasetId::kNaturalQuestions);
  const ModelProfile sft_model = sft.ProfileFor(DatasetId::kAlpaca);  // OOD for Alpaca
  PairwiseJudge judge;
  Rng rng(0x23c);

  SideBySideStats plain;
  SideBySideStats ood_sft;
  SideBySideStats in_domain_ic;
  SideBySideStats ood_ic;
  QueryGenerator eval_gen(alpaca->profile, 0x23d);
  for (int i = 0; i < 450; ++i) {
    const Request req = eval_gen.Next();
    const double large_quality = sim.Generate(large, req, {}).latent_quality;
    plain.Add(judge.Compare(sim.Generate(small, req, {}).latent_quality, large_quality));
    ood_sft.Add(judge.Compare(sim.Generate(sft_model, req, {}).latent_quality, large_quality));
    in_domain_ic.Add(judge.Compare(
        sim.Generate(small, req, ViewsFor(*alpaca, req, 9700.0 + i, rng)).latent_quality,
        large_quality));
    // OOD IC: retrieve from the Natural Questions cache for Alpaca queries.
    ood_ic.Add(judge.Compare(
        sim.Generate(small, req, ViewsFor(*nq, req, 9700.0 + i, rng)).latent_quality,
        large_quality));
  }

  benchutil::PrintTitle("Table 3: IC-Cache vs SFT under domain shift (eval on Alpaca)");
  std::printf("  %-20s %12s %12s   %s\n", "config", "avg score", "win rate %", "paper");
  benchutil::PrintRule();
  std::printf("  %-20s %12.4f %12.2f   %s\n", "Gemma-2B", plain.mean_score(),
              100.0 * plain.win_rate(), "-0.1896 / 45.58");
  std::printf("  %-20s %12.4f %12.2f   %s\n", "+OOD SFT", ood_sft.mean_score(),
              100.0 * ood_sft.win_rate(), "-0.5927 / 32.33");
  std::printf("  %-20s %12.4f %12.2f   %s\n", "+in-domain IC", in_domain_ic.mean_score(),
              100.0 * in_domain_ic.win_rate(), "-0.1792 / 47.25");
  std::printf("  %-20s %12.4f %12.2f   %s\n", "+OOD IC", ood_ic.mean_score(),
              100.0 * ood_ic.win_rate(), "-0.2104 / 46.69");
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::Run();
  return 0;
}
