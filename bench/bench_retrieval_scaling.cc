// Stage-1 retrieval scaling: build time, search latency, recall@k, and arena
// memory for flat vs kmeans vs hnsw (float and int8-quantized) at growing
// pool sizes. This is the bench behind two acceptance bars:
//
//   * hnsw vs flat (>= 100k vectors): graph search >= 5x faster than brute
//     force with recall@10 >= 0.9.
//   * int8 vs float hnsw (>= 100k vectors, --acceptance): quantized search
//     >= 1.3x the float graph's throughput, recall@10 >= 0.95, and arena
//     memory <= 160 bytes/vector (vs 512 B at dim=128 float).
//
// At the largest size the int8 graph image is also saved and restored to
// record snapshot size and restore time (the million-example operational
// story: restore is O(bytes), not an O(N * ef_construction) rebuild).
//
// Flags:
//   --sizes=1000,10000,100000   pool sizes to sweep
//   --dim=64                    vector dimensionality
//   --queries=50                query count per measurement
//   --k=10                      neighbors per query (recall@k)
//   --kmeans-cap=10000          skip kmeans above this size (Lloyd rebuilds
//                               are O(N * sqrt(N) * dim) and dominate the
//                               runtime long before 100k)
//   --clusters=N                corpus cluster count; default n/100 (capped
//                               below), 0 = iid unit vectors. Cache pools
//                               index embeddings of real traffic, which is
//                               heavily clustered (paraphrase groups,
//                               templated prompts); iid points on the sphere
//                               are the known ANN worst case and measure the
//                               graph, not the workload.
//   --sigma=0.2                 per-coordinate noise around cluster centers
//   --quantize=both             hnsw arena variants: none | int8 | both
//   --rerank=64                 int8 exact re-rank depth
//   --batch                     also measure the multi-query SearchBatch path
//                               (adds a batch us/q column; with --acceptance,
//                               hnsw float AND int8 at >= 100k must run
//                               >= 1.2x the single-query us/q with
//                               bit-identical results and zero steady-state
//                               scratch growth)
//   --batch-size=32             queries per SearchBatch call
//   --acceptance                exit 1 unless every acceptance bar holds
//   --json-out=<path>           write the sweep as a BENCH json record
//                               (schema "iccache-bench/1"): one
//                               <index>_<size>_* metric row per cell —
//                               recall and bytes/vec are seed-deterministic
//                               and gate everywhere, build/search wall time
//                               is machine-dependent and gates only under
//                               bench_compare --strict
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/core/retrieval_backend.h"
#include "src/index/hnsw.h"
#include "src/obs/bench_json.h"

namespace iccache {
namespace {

struct Flags {
  std::vector<size_t> sizes = {1000, 10000, 100000};
  size_t dim = 64;
  size_t queries = 50;
  size_t k = 10;
  size_t kmeans_cap = 10000;
  // Corpus cluster count; SIZE_MAX = auto (n / 100), 0 = iid unit vectors.
  size_t clusters = SIZE_MAX;
  // Per-coordinate noise scale around each cluster center. 0.2 at dim=128
  // puts within-cluster cosine near 0.3 and cross-cluster near zero: the
  // neighbor structure is real but queries still have to discriminate, so
  // the beam spans memory instead of parking inside one cache-resident blob.
  double sigma = 0.2;
  // HNSW tuning overrides; 0 = library default.
  size_t hnsw_m = 0;
  size_t hnsw_efc = 0;
  size_t hnsw_efs = 0;
  // Which hnsw arena variants to sweep.
  bool hnsw_float = true;
  bool hnsw_int8 = true;
  size_t rerank = 64;
  bool batch = false;
  size_t batch_size = 32;
  bool acceptance = false;
  std::string json_out;
};

bool ParseSizeList(const char* text, std::vector<size_t>* out) {
  std::vector<size_t> sizes;
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || v == 0) {
      return false;
    }
    sizes.push_back(static_cast<size_t>(v));
    p = (*end == ',') ? end + 1 : end;
    if (*end != ',' && *end != '\0') {
      return false;
    }
  }
  if (sizes.empty()) {
    return false;
  }
  *out = sizes;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sizes=", 0) == 0) {
      if (!ParseSizeList(arg.c_str() + 8, &flags.sizes)) {
        std::fprintf(stderr, "bad --sizes list: %s\n", arg.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--dim=", 0) == 0) {
      flags.dim = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--queries=", 0) == 0) {
      flags.queries = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--k=", 0) == 0) {
      flags.k = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--kmeans-cap=", 0) == 0) {
      flags.kmeans_cap = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--clusters=", 0) == 0) {
      flags.clusters = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--sigma=", 0) == 0) {
      flags.sigma = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--M=", 0) == 0) {
      flags.hnsw_m = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--efc=", 0) == 0) {
      flags.hnsw_efc = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--efs=", 0) == 0) {
      flags.hnsw_efs = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--rerank=", 0) == 0) {
      flags.rerank = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg == "--batch") {
      flags.batch = true;
    } else if (arg.rfind("--batch-size=", 0) == 0) {
      flags.batch_size = std::strtoull(arg.c_str() + 13, nullptr, 10);
      flags.batch = flags.batch_size > 0;
    } else if (arg.rfind("--quantize=", 0) == 0) {
      const std::string mode = arg.substr(11);
      if (mode == "none") {
        flags.hnsw_int8 = false;
      } else if (mode == "int8") {
        flags.hnsw_float = false;
      } else if (mode != "both") {
        std::fprintf(stderr, "bad --quantize mode (none|int8|both): %s\n", arg.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--json-out=", 0) == 0) {
      flags.json_out = arg.substr(11);
    } else if (arg == "--acceptance") {
      flags.acceptance = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

std::vector<float> RandomUnitVector(Rng& rng, size_t dim) {
  std::vector<float> v(dim);
  for (auto& x : v) {
    x = static_cast<float>(rng.Normal());
  }
  NormalizeL2(v);
  return v;
}

std::vector<float> ClusterPoint(Rng& rng, const std::vector<float>& center, double sigma) {
  std::vector<float> v(center);
  for (auto& x : v) {
    x += static_cast<float>(sigma * rng.Normal());
  }
  NormalizeL2(v);
  return v;
}

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct Measurement {
  double build_s = 0.0;
  double search_us_per_query = 0.0;
  double recall = 0.0;
  double bytes_per_vec = 0.0;  // vector arena only; 0 when not reported
  // Multi-query SearchBatch pass (--batch): wall time, (id, score)
  // bit-identity against the single-query results, and whether the reusable
  // scratch stopped growing after the warm-up pass (zero steady-state heap
  // allocations per query). The single/batch comparison is PAIRED at slice
  // granularity: each ~128-query slice times the single path and then the
  // batch path back to back, so an interference episode (hypervisor steal,
  // co-tenant burst) inflates both sides of the slice together and cancels
  // out of the slice's ratio; the acceptance speedup is the MEDIAN slice
  // ratio, which a minority of corrupted slices cannot move. The us/q
  // columns report each side's fastest full pass.
  bool batch_measured = false;
  double batch_us_per_query = 0.0;
  double batch_single_us_per_query = 0.0;  // paired single-query timing
  double batch_paired_speedup = 0.0;       // median over paired slices
  bool batch_identical = true;
  bool batch_zero_alloc = true;
};

Measurement Measure(VectorIndex& index, const std::vector<std::vector<float>>& vectors,
                    const std::vector<std::vector<float>>& queries,
                    const std::vector<std::set<uint64_t>>& truth, size_t k,
                    size_t batch_size) {
  Measurement m;
  const auto build_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < vectors.size(); ++i) {
    index.Add(static_cast<uint64_t>(i), vectors[i]);
  }
  m.build_s = SecondsSince(build_start);

  size_t hits = 0;
  const auto search_start = std::chrono::steady_clock::now();
  std::vector<std::vector<SearchResult>> found(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    found[q] = index.Search(queries[q], k);
  }
  const double search_s = SecondsSince(search_start);
  for (size_t q = 0; q < queries.size(); ++q) {
    if (truth.empty()) {
      continue;
    }
    for (const auto& result : found[q]) {
      hits += truth[q].count(result.id);
    }
  }
  m.search_us_per_query = 1e6 * search_s / static_cast<double>(queries.size());
  m.recall = truth.empty()
                 ? 1.0
                 : static_cast<double>(hits) / static_cast<double>(queries.size() * k);

  if (batch_size > 0 && !queries.empty()) {
    m.batch_measured = true;
    const size_t dim = queries[0].size();
    std::vector<float> arena(queries.size() * dim);
    for (size_t q = 0; q < queries.size(); ++q) {
      std::memcpy(arena.data() + q * dim, queries[q].data(), dim * sizeof(float));
    }
    SearchScratch scratch;
    const auto run_batches = [&](bool check) {
      for (size_t qb = 0; qb < queries.size(); qb += batch_size) {
        const size_t count = std::min(batch_size, queries.size() - qb);
        index.SearchBatch(arena.data() + qb * dim, count, dim, k, &scratch);
        if (!check) {
          continue;
        }
        for (size_t i = 0; i < count; ++i) {
          const SearchResult* results = scratch.ResultsOf(i);
          const size_t result_count = scratch.ResultCountOf(i);
          const std::vector<SearchResult>& single = found[qb + i];
          if (result_count != single.size()) {
            m.batch_identical = false;
            continue;
          }
          for (size_t r = 0; r < result_count; ++r) {
            if (results[r].id != single[r].id || results[r].score != single[r].score) {
              m.batch_identical = false;
            }
          }
        }
      }
    };
    // Warm-up pass doubles as the bit-identity check; after it every scratch
    // buffer is at its high-watermark capacity, so the steady-state passes
    // must leave the grow counter untouched.
    run_batches(/*check=*/true);
    const uint64_t grows_after_warm = scratch.grows;
    // Paired-slice timing: each slice (a couple of batches' worth of
    // queries, slice starts aligned to the batch grid so batch composition
    // matches the full pass) times the single path then the batch path over
    // the SAME queries back to back. Noise episodes on this box arrive in
    // multi-second bursts that can swallow a whole pass, but a burst covers
    // both sides of a ~150ms slice roughly equally, so the slice ratio
    // survives; the median across all slices and reps then ignores the
    // slices a burst boundary did land in. Per-side minima over full passes
    // still feed the us/q columns.
    const size_t slice_q = std::max(batch_size, 128 / batch_size * batch_size);
    const size_t num_slices = (queries.size() + slice_q - 1) / slice_q;
    // Per-slice minimum across reps for each side: a burst corrupts a
    // slice's ratio only if it lands on the SAME slice in every rep (and
    // then inflates both sides roughly equally anyway).
    std::vector<double> single_best(num_slices, 1e300);
    std::vector<double> batch_best(num_slices, 1e300);
    double best_single_s = search_s;
    double best_batch_s = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      double single_total_s = 0.0;
      double batch_total_s = 0.0;
      for (size_t slice = 0; slice < num_slices; ++slice) {
        const size_t q0 = slice * slice_q;
        const size_t q1 = std::min(q0 + slice_q, queries.size());
        const auto single_start = std::chrono::steady_clock::now();
        for (size_t q = q0; q < q1; ++q) {
          (void)index.Search(queries[q], k);
        }
        const double single_s = SecondsSince(single_start);
        const auto batch_start = std::chrono::steady_clock::now();
        for (size_t qb = q0; qb < q1; qb += batch_size) {
          const size_t count = std::min(batch_size, q1 - qb);
          index.SearchBatch(arena.data() + qb * dim, count, dim, k, &scratch);
        }
        const double batch_s = SecondsSince(batch_start);
        single_total_s += single_s;
        batch_total_s += batch_s;
        single_best[slice] = std::min(single_best[slice], single_s);
        batch_best[slice] = std::min(batch_best[slice], batch_s);
      }
      best_single_s = std::min(best_single_s, single_total_s);
      best_batch_s = std::min(best_batch_s, batch_total_s);
    }
    std::vector<double> slice_ratios;
    slice_ratios.reserve(num_slices);
    for (size_t slice = 0; slice < num_slices; ++slice) {
      if (single_best[slice] > 0.0 && batch_best[slice] > 0.0 && batch_best[slice] < 1e300) {
        slice_ratios.push_back(single_best[slice] / batch_best[slice]);
      }
    }
    if (!slice_ratios.empty()) {
      const size_t mid = slice_ratios.size() / 2;
      std::nth_element(slice_ratios.begin(), slice_ratios.begin() + mid, slice_ratios.end());
      m.batch_paired_speedup = slice_ratios[mid];
    }
    m.batch_us_per_query = 1e6 * best_batch_s / static_cast<double>(queries.size());
    m.batch_single_us_per_query = 1e6 * best_single_s / static_cast<double>(queries.size());
    m.batch_zero_alloc = scratch.grows == grows_after_warm;
  }
  if (const auto* hnsw = dynamic_cast<const HnswIndex*>(&index)) {
    m.bytes_per_vec = vectors.empty() ? 0.0
                                      : static_cast<double>(hnsw->arena_bytes()) /
                                            static_cast<double>(vectors.size());
  }
  return m;
}

void PrintRow(size_t n, const char* name, const Measurement& m, double speedup) {
  char bytes[32];
  if (m.bytes_per_vec > 0.0) {
    std::snprintf(bytes, sizeof(bytes), "%.0f", m.bytes_per_vec);
  } else {
    std::snprintf(bytes, sizeof(bytes), "-");
  }
  char batch[32];
  if (m.batch_measured) {
    std::snprintf(batch, sizeof(batch), "%.1f", m.batch_us_per_query);
  } else {
    std::snprintf(batch, sizeof(batch), "-");
  }
  std::printf("  %-9zu %-10s %12.3f %16.1f %14s %10.3f %9s %11.2fx\n", n, name, m.build_s,
              m.search_us_per_query, batch, m.recall, bytes, speedup);
}

}  // namespace
}  // namespace iccache

int main(int argc, char** argv) {
  using namespace iccache;
  const Flags flags = ParseFlags(argc, argv);

  benchutil::PrintTitle("Stage-1 retrieval scaling: flat vs kmeans vs hnsw (float | int8)");
  std::printf("  dim=%zu  queries=%zu  k=%zu  rerank=%zu  kernel=%s\n", flags.dim, flags.queries,
              flags.k, flags.rerank, simd::KernelLevelName(simd::ActiveKernelLevel()));
  std::printf("  %-9s %-10s %12s %16s %14s %10s %9s %12s\n", "size", "index", "build (s)",
              "search (us/q)", "batch (us/q)", "recall@k", "B/vec", "vs flat");

  bool acceptance_ok = true;
  const size_t largest = *std::max_element(flags.sizes.begin(), flags.sizes.end());

  // One BENCH json row per (size, index) cell. Recall and bytes/vec are
  // seed-deterministic and gate everywhere; build/search wall time only
  // gates under bench_compare --strict.
  BenchRunRecord bench;
  bench.bench = "retrieval_scaling";
  bench.AddConfig("dim", std::to_string(flags.dim));
  bench.AddConfig("queries", std::to_string(flags.queries));
  bench.AddConfig("k", std::to_string(flags.k));
  bench.AddConfig("rerank", std::to_string(flags.rerank));
  bench.AddConfig("simd_kernel", simd::KernelLevelName(simd::ActiveKernelLevel()));
  const auto add_rows = [&bench](size_t n, const char* name, const Measurement& m,
                                 double speedup, bool measure_recall) {
    const std::string prefix = std::string(name) + "_" + std::to_string(n) + "_";
    bench.AddMetric(prefix + "build_s", m.build_s, 0.25, -1, true);
    bench.AddMetric(prefix + "search_us", m.search_us_per_query, 0.25, -1, true);
    if (measure_recall) {
      bench.AddMetric(prefix + "recall", m.recall, 0.03, +1);
      bench.AddMetric(prefix + "vs_flat", speedup, 0.0, 0, true);
    }
    if (m.bytes_per_vec > 0.0) {
      bench.AddMetric(prefix + "bytes_per_vec", m.bytes_per_vec, 0.05, -1);
    }
    if (m.batch_measured) {
      bench.AddMetric(prefix + "batch_us", m.batch_us_per_query, 0.25, -1, true);
      // Identity and zero-alloc are pass/fail invariants, recorded as exact
      // 0/1 metrics so a regression shows up in bench_compare too.
      bench.AddMetric(prefix + "batch_identical", m.batch_identical ? 1.0 : 0.0, 0.0, +1);
      bench.AddMetric(prefix + "batch_zero_alloc", m.batch_zero_alloc ? 1.0 : 0.0, 0.0, +1);
    }
  };

  Rng rng(0x5ca1e);
  for (size_t n : flags.sizes) {
    // Corpus: perturbations of shared cluster centers (see --clusters above);
    // queries perturb centers the same way, so ground truth lives in the
    // query's cluster. clusters=0 degrades to iid points on the sphere.
    const size_t n_clusters =
        flags.clusters == SIZE_MAX ? std::max<size_t>(n / 100, 1) : flags.clusters;
    std::vector<std::vector<float>> centers;
    centers.reserve(n_clusters);
    for (size_t c = 0; c < n_clusters; ++c) {
      centers.push_back(RandomUnitVector(rng, flags.dim));
    }
    std::vector<std::vector<float>> vectors;
    vectors.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      vectors.push_back(centers.empty()
                            ? RandomUnitVector(rng, flags.dim)
                            : ClusterPoint(rng, centers[i % centers.size()], flags.sigma));
    }
    std::vector<std::vector<float>> queries;
    for (size_t q = 0; q < flags.queries; ++q) {
      queries.push_back(centers.empty()
                            ? RandomUnitVector(rng, flags.dim)
                            : ClusterPoint(rng, centers[rng.UniformInt(centers.size())],
                                           flags.sigma));
    }

    // Flat is both a measured backend and the ground truth for recall.
    FlatIndex flat(flags.dim);
    const Measurement flat_m =
        Measure(flat, vectors, queries, {}, flags.k, flags.batch ? flags.batch_size : 0);
    std::vector<std::set<uint64_t>> truth(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      for (const auto& result : flat.Search(queries[q], flags.k)) {
        truth[q].insert(result.id);
      }
    }
    PrintRow(n, "flat", flat_m, 1.0);
    add_rows(n, "flat", flat_m, 1.0, false);

    if (n <= flags.kmeans_cap) {
      RetrievalBackendConfig config;
      config.kind = RetrievalBackendKind::kKMeans;
      const auto index = MakeRetrievalIndex(config, flags.dim, 0x5eed ^ n);
      const Measurement m =
          Measure(*index, vectors, queries, truth, flags.k, flags.batch ? flags.batch_size : 0);
      const double kmeans_speedup =
          m.search_us_per_query > 0.0 ? flat_m.search_us_per_query / m.search_us_per_query : 0.0;
      PrintRow(n, "kmeans", m, kmeans_speedup);
      add_rows(n, "kmeans", m, kmeans_speedup, true);
    } else {
      std::printf("  %-9zu %-10s %12s %16s %10s %9s %12s\n", n, "kmeans", "-", "-", "-", "-",
                  "(skipped)");
    }

    Measurement float_m;
    bool have_float = false;
    for (const bool int8 : {false, true}) {
      if ((int8 && !flags.hnsw_int8) || (!int8 && !flags.hnsw_float)) {
        continue;
      }
      RetrievalBackendConfig config;
      config.kind = RetrievalBackendKind::kHnsw;
      config.quantize = int8 ? QuantizationKind::kInt8 : QuantizationKind::kNone;
      config.rerank_k = flags.rerank;
      if (flags.hnsw_m != 0) {
        config.hnsw.max_neighbors = flags.hnsw_m;
      }
      if (flags.hnsw_efc != 0) {
        config.hnsw.ef_construction = flags.hnsw_efc;
      }
      if (flags.hnsw_efs != 0) {
        config.hnsw.ef_search = flags.hnsw_efs;
      }
      const auto index = MakeRetrievalIndex(config, flags.dim, 0x5eed ^ n);
      const Measurement m =
          Measure(*index, vectors, queries, truth, flags.k, flags.batch ? flags.batch_size : 0);
      const double speedup =
          m.search_us_per_query > 0.0 ? flat_m.search_us_per_query / m.search_us_per_query : 0.0;
      PrintRow(n, int8 ? "hnsw-int8" : "hnsw", m, speedup);
      add_rows(n, int8 ? "hnsw_int8" : "hnsw", m, speedup, true);
      if (!int8) {
        float_m = m;
        have_float = true;
      }

      if (!int8 && n >= 100000) {
        acceptance_ok = acceptance_ok && speedup >= 5.0 && m.recall >= 0.9;
      }
      // Batched-traversal bars (float AND int8 hnsw at >= 100k): the
      // multi-query path must beat the single-query path by >= 1.2x while
      // returning bit-identical (id, score) lists and growing the reusable
      // scratch zero times after warm-up. The ratio is the median of the
      // PAIRED per-slice timings so interference bursts cannot flip it.
      if (flags.batch && flags.acceptance && n >= 100000 && m.batch_measured) {
        const double batch_speedup = m.batch_paired_speedup;
        const bool batch_speed_ok = batch_speedup >= 1.2;
        std::printf("  %-9zu %-10s batch vs single: %.2fx  identical=%d  zero_alloc=%d\n", n,
                    int8 ? "hnsw-int8" : "hnsw", batch_speedup, m.batch_identical,
                    m.batch_zero_alloc);
        if (!batch_speed_ok || !m.batch_identical || !m.batch_zero_alloc) {
          std::printf(
              "  %-9zu %-10s batch acceptance: speed_ok=%d identical=%d zero_alloc=%d\n", n, "",
              batch_speed_ok, m.batch_identical, m.batch_zero_alloc);
          acceptance_ok = false;
        }
      }
      if (int8 && flags.acceptance && n >= 100000) {
        // Int8 bars: throughput over the float graph, absolute recall, and
        // the arena memory budget.
        const double vs_float = have_float && m.search_us_per_query > 0.0
                                    ? float_m.search_us_per_query / m.search_us_per_query
                                    : 0.0;
        const bool speed_ok = !have_float || vs_float >= 1.3;
        const bool recall_ok = m.recall >= 0.95;
        const bool memory_ok = m.bytes_per_vec <= 160.0;
        if (have_float) {
          std::printf("  %-9zu %-10s int8 vs float hnsw: %.2fx\n", n, "", vs_float);
        }
        if (!speed_ok || !recall_ok || !memory_ok) {
          std::printf("  %-9zu %-10s int8 acceptance: speed_ok=%d recall_ok=%d memory_ok=%d\n",
                      n, "", speed_ok, recall_ok, memory_ok);
          acceptance_ok = false;
        }
      }

      // Snapshot story at the largest size, int8 arena: image size, save and
      // restore wall time, and a search-identity spot check.
      if (int8 && n == largest) {
        auto* hnsw = dynamic_cast<HnswIndex*>(index.get());
        if (hnsw != nullptr) {
          std::string blob;
          const auto save_start = std::chrono::steady_clock::now();
          hnsw->SaveGraph(&blob);
          const double save_s = SecondsSince(save_start);
          HnswIndex restored(hnsw->config());
          const auto load_start = std::chrono::steady_clock::now();
          const bool loaded = restored.LoadGraph(blob);
          const double load_s = SecondsSince(load_start);
          bool identical = loaded;
          if (loaded) {
            for (size_t q = 0; q < std::min<size_t>(queries.size(), 10); ++q) {
              const auto a = hnsw->Search(queries[q], flags.k);
              const auto b = restored.Search(queries[q], flags.k);
              identical = identical && a.size() == b.size();
              for (size_t i = 0; identical && i < a.size(); ++i) {
                identical = a[i].id == b[i].id;
              }
            }
          }
          std::printf(
              "  %-9zu %-10s snapshot: %.1f MB  save %.3f s  restore %.3f s  round-trip %s\n", n,
              "", static_cast<double>(blob.size()) / (1024.0 * 1024.0), save_s, load_s,
              identical ? "ok" : "MISMATCH");
          if (flags.acceptance) {
            acceptance_ok = acceptance_ok && identical;
          }
        }
      }
    }
  }

  benchutil::PrintNote(
      "acceptance bars (>= 100k vectors): hnsw >= 5x flat with recall@10 >= 0.9; with "
      "--acceptance, int8 additionally >= 1.3x float hnsw, recall@10 >= 0.95, arena <= 160 "
      "B/vec, and the graph image round-trips; with --batch, SearchBatch >= 1.2x single-query "
      "us/q on hnsw float AND int8 with bit-identical results and zero steady-state scratch "
      "growth");
  benchutil::PrintNote(
      "kmeans above --kmeans-cap is skipped: incremental Lloyd rebuilds dominate runtime");
  if (!flags.json_out.empty()) {
    const Status written = WriteBenchRun(flags.json_out, bench);
    if (!written.ok()) {
      std::fprintf(stderr, "bench json: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("\nbench json: wrote %s (%zu metrics)\n", flags.json_out.c_str(),
                bench.metrics.size());
  }
  if (!acceptance_ok) {
    benchutil::PrintNote("ACCEPTANCE FAILED");
    return 1;
  }
  return 0;
}
