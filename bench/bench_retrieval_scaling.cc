// Stage-1 retrieval scaling: build time, search latency, recall@k, and arena
// memory for flat vs kmeans vs hnsw (float and int8-quantized) at growing
// pool sizes. This is the bench behind two acceptance bars:
//
//   * hnsw vs flat (>= 100k vectors): graph search >= 5x faster than brute
//     force with recall@10 >= 0.9.
//   * int8 vs float hnsw (>= 100k vectors, --acceptance): quantized search
//     >= 1.3x the float graph's throughput, recall@10 >= 0.95, and arena
//     memory <= 160 bytes/vector (vs 512 B at dim=128 float).
//
// At the largest size the int8 graph image is also saved and restored to
// record snapshot size and restore time (the million-example operational
// story: restore is O(bytes), not an O(N * ef_construction) rebuild).
//
// Flags:
//   --sizes=1000,10000,100000   pool sizes to sweep
//   --dim=64                    vector dimensionality
//   --queries=50                query count per measurement
//   --k=10                      neighbors per query (recall@k)
//   --kmeans-cap=10000          skip kmeans above this size (Lloyd rebuilds
//                               are O(N * sqrt(N) * dim) and dominate the
//                               runtime long before 100k)
//   --clusters=N                corpus cluster count; default n/100 (capped
//                               below), 0 = iid unit vectors. Cache pools
//                               index embeddings of real traffic, which is
//                               heavily clustered (paraphrase groups,
//                               templated prompts); iid points on the sphere
//                               are the known ANN worst case and measure the
//                               graph, not the workload.
//   --sigma=0.2                 per-coordinate noise around cluster centers
//   --quantize=both             hnsw arena variants: none | int8 | both
//   --rerank=64                 int8 exact re-rank depth
//   --acceptance                exit 1 unless every acceptance bar holds
//   --json-out=<path>           write the sweep as a BENCH json record
//                               (schema "iccache-bench/1"): one
//                               <index>_<size>_* metric row per cell —
//                               recall and bytes/vec are seed-deterministic
//                               and gate everywhere, build/search wall time
//                               is machine-dependent and gates only under
//                               bench_compare --strict
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/core/retrieval_backend.h"
#include "src/index/hnsw.h"
#include "src/obs/bench_json.h"

namespace iccache {
namespace {

struct Flags {
  std::vector<size_t> sizes = {1000, 10000, 100000};
  size_t dim = 64;
  size_t queries = 50;
  size_t k = 10;
  size_t kmeans_cap = 10000;
  // Corpus cluster count; SIZE_MAX = auto (n / 100), 0 = iid unit vectors.
  size_t clusters = SIZE_MAX;
  // Per-coordinate noise scale around each cluster center. 0.2 at dim=128
  // puts within-cluster cosine near 0.3 and cross-cluster near zero: the
  // neighbor structure is real but queries still have to discriminate, so
  // the beam spans memory instead of parking inside one cache-resident blob.
  double sigma = 0.2;
  // HNSW tuning overrides; 0 = library default.
  size_t hnsw_m = 0;
  size_t hnsw_efc = 0;
  size_t hnsw_efs = 0;
  // Which hnsw arena variants to sweep.
  bool hnsw_float = true;
  bool hnsw_int8 = true;
  size_t rerank = 64;
  bool acceptance = false;
  std::string json_out;
};

bool ParseSizeList(const char* text, std::vector<size_t>* out) {
  std::vector<size_t> sizes;
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || v == 0) {
      return false;
    }
    sizes.push_back(static_cast<size_t>(v));
    p = (*end == ',') ? end + 1 : end;
    if (*end != ',' && *end != '\0') {
      return false;
    }
  }
  if (sizes.empty()) {
    return false;
  }
  *out = sizes;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sizes=", 0) == 0) {
      if (!ParseSizeList(arg.c_str() + 8, &flags.sizes)) {
        std::fprintf(stderr, "bad --sizes list: %s\n", arg.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--dim=", 0) == 0) {
      flags.dim = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--queries=", 0) == 0) {
      flags.queries = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--k=", 0) == 0) {
      flags.k = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--kmeans-cap=", 0) == 0) {
      flags.kmeans_cap = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--clusters=", 0) == 0) {
      flags.clusters = std::strtoull(arg.c_str() + 11, nullptr, 10);
    } else if (arg.rfind("--sigma=", 0) == 0) {
      flags.sigma = std::strtod(arg.c_str() + 8, nullptr);
    } else if (arg.rfind("--M=", 0) == 0) {
      flags.hnsw_m = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--efc=", 0) == 0) {
      flags.hnsw_efc = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--efs=", 0) == 0) {
      flags.hnsw_efs = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--rerank=", 0) == 0) {
      flags.rerank = std::strtoull(arg.c_str() + 9, nullptr, 10);
    } else if (arg.rfind("--quantize=", 0) == 0) {
      const std::string mode = arg.substr(11);
      if (mode == "none") {
        flags.hnsw_int8 = false;
      } else if (mode == "int8") {
        flags.hnsw_float = false;
      } else if (mode != "both") {
        std::fprintf(stderr, "bad --quantize mode (none|int8|both): %s\n", arg.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--json-out=", 0) == 0) {
      flags.json_out = arg.substr(11);
    } else if (arg == "--acceptance") {
      flags.acceptance = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

std::vector<float> RandomUnitVector(Rng& rng, size_t dim) {
  std::vector<float> v(dim);
  for (auto& x : v) {
    x = static_cast<float>(rng.Normal());
  }
  NormalizeL2(v);
  return v;
}

std::vector<float> ClusterPoint(Rng& rng, const std::vector<float>& center, double sigma) {
  std::vector<float> v(center);
  for (auto& x : v) {
    x += static_cast<float>(sigma * rng.Normal());
  }
  NormalizeL2(v);
  return v;
}

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct Measurement {
  double build_s = 0.0;
  double search_us_per_query = 0.0;
  double recall = 0.0;
  double bytes_per_vec = 0.0;  // vector arena only; 0 when not reported
};

Measurement Measure(VectorIndex& index, const std::vector<std::vector<float>>& vectors,
                    const std::vector<std::vector<float>>& queries,
                    const std::vector<std::set<uint64_t>>& truth, size_t k) {
  Measurement m;
  const auto build_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < vectors.size(); ++i) {
    index.Add(static_cast<uint64_t>(i), vectors[i]);
  }
  m.build_s = SecondsSince(build_start);

  size_t hits = 0;
  const auto search_start = std::chrono::steady_clock::now();
  std::vector<std::vector<SearchResult>> found(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    found[q] = index.Search(queries[q], k);
  }
  const double search_s = SecondsSince(search_start);
  for (size_t q = 0; q < queries.size(); ++q) {
    if (truth.empty()) {
      continue;
    }
    for (const auto& result : found[q]) {
      hits += truth[q].count(result.id);
    }
  }
  m.search_us_per_query = 1e6 * search_s / static_cast<double>(queries.size());
  m.recall = truth.empty()
                 ? 1.0
                 : static_cast<double>(hits) / static_cast<double>(queries.size() * k);
  if (const auto* hnsw = dynamic_cast<const HnswIndex*>(&index)) {
    m.bytes_per_vec = vectors.empty() ? 0.0
                                      : static_cast<double>(hnsw->arena_bytes()) /
                                            static_cast<double>(vectors.size());
  }
  return m;
}

void PrintRow(size_t n, const char* name, const Measurement& m, double speedup) {
  char bytes[32];
  if (m.bytes_per_vec > 0.0) {
    std::snprintf(bytes, sizeof(bytes), "%.0f", m.bytes_per_vec);
  } else {
    std::snprintf(bytes, sizeof(bytes), "-");
  }
  std::printf("  %-9zu %-10s %12.3f %16.1f %10.3f %9s %11.2fx\n", n, name, m.build_s,
              m.search_us_per_query, m.recall, bytes, speedup);
}

}  // namespace
}  // namespace iccache

int main(int argc, char** argv) {
  using namespace iccache;
  const Flags flags = ParseFlags(argc, argv);

  benchutil::PrintTitle("Stage-1 retrieval scaling: flat vs kmeans vs hnsw (float | int8)");
  std::printf("  dim=%zu  queries=%zu  k=%zu  rerank=%zu  kernel=%s\n", flags.dim, flags.queries,
              flags.k, flags.rerank, simd::KernelLevelName(simd::ActiveKernelLevel()));
  std::printf("  %-9s %-10s %12s %16s %10s %9s %12s\n", "size", "index", "build (s)",
              "search (us/q)", "recall@k", "B/vec", "vs flat");

  bool acceptance_ok = true;
  const size_t largest = *std::max_element(flags.sizes.begin(), flags.sizes.end());

  // One BENCH json row per (size, index) cell. Recall and bytes/vec are
  // seed-deterministic and gate everywhere; build/search wall time only
  // gates under bench_compare --strict.
  BenchRunRecord bench;
  bench.bench = "retrieval_scaling";
  bench.AddConfig("dim", std::to_string(flags.dim));
  bench.AddConfig("queries", std::to_string(flags.queries));
  bench.AddConfig("k", std::to_string(flags.k));
  bench.AddConfig("rerank", std::to_string(flags.rerank));
  bench.AddConfig("simd_kernel", simd::KernelLevelName(simd::ActiveKernelLevel()));
  const auto add_rows = [&bench](size_t n, const char* name, const Measurement& m,
                                 double speedup, bool measure_recall) {
    const std::string prefix = std::string(name) + "_" + std::to_string(n) + "_";
    bench.AddMetric(prefix + "build_s", m.build_s, 0.25, -1, true);
    bench.AddMetric(prefix + "search_us", m.search_us_per_query, 0.25, -1, true);
    if (measure_recall) {
      bench.AddMetric(prefix + "recall", m.recall, 0.03, +1);
      bench.AddMetric(prefix + "vs_flat", speedup, 0.0, 0, true);
    }
    if (m.bytes_per_vec > 0.0) {
      bench.AddMetric(prefix + "bytes_per_vec", m.bytes_per_vec, 0.05, -1);
    }
  };

  Rng rng(0x5ca1e);
  for (size_t n : flags.sizes) {
    // Corpus: perturbations of shared cluster centers (see --clusters above);
    // queries perturb centers the same way, so ground truth lives in the
    // query's cluster. clusters=0 degrades to iid points on the sphere.
    const size_t n_clusters =
        flags.clusters == SIZE_MAX ? std::max<size_t>(n / 100, 1) : flags.clusters;
    std::vector<std::vector<float>> centers;
    centers.reserve(n_clusters);
    for (size_t c = 0; c < n_clusters; ++c) {
      centers.push_back(RandomUnitVector(rng, flags.dim));
    }
    std::vector<std::vector<float>> vectors;
    vectors.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      vectors.push_back(centers.empty()
                            ? RandomUnitVector(rng, flags.dim)
                            : ClusterPoint(rng, centers[i % centers.size()], flags.sigma));
    }
    std::vector<std::vector<float>> queries;
    for (size_t q = 0; q < flags.queries; ++q) {
      queries.push_back(centers.empty()
                            ? RandomUnitVector(rng, flags.dim)
                            : ClusterPoint(rng, centers[rng.UniformInt(centers.size())],
                                           flags.sigma));
    }

    // Flat is both a measured backend and the ground truth for recall.
    FlatIndex flat(flags.dim);
    const Measurement flat_m = Measure(flat, vectors, queries, {}, flags.k);
    std::vector<std::set<uint64_t>> truth(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      for (const auto& result : flat.Search(queries[q], flags.k)) {
        truth[q].insert(result.id);
      }
    }
    PrintRow(n, "flat", flat_m, 1.0);
    add_rows(n, "flat", flat_m, 1.0, false);

    if (n <= flags.kmeans_cap) {
      RetrievalBackendConfig config;
      config.kind = RetrievalBackendKind::kKMeans;
      const auto index = MakeRetrievalIndex(config, flags.dim, 0x5eed ^ n);
      const Measurement m = Measure(*index, vectors, queries, truth, flags.k);
      const double kmeans_speedup =
          m.search_us_per_query > 0.0 ? flat_m.search_us_per_query / m.search_us_per_query : 0.0;
      PrintRow(n, "kmeans", m, kmeans_speedup);
      add_rows(n, "kmeans", m, kmeans_speedup, true);
    } else {
      std::printf("  %-9zu %-10s %12s %16s %10s %9s %12s\n", n, "kmeans", "-", "-", "-", "-",
                  "(skipped)");
    }

    Measurement float_m;
    bool have_float = false;
    for (const bool int8 : {false, true}) {
      if ((int8 && !flags.hnsw_int8) || (!int8 && !flags.hnsw_float)) {
        continue;
      }
      RetrievalBackendConfig config;
      config.kind = RetrievalBackendKind::kHnsw;
      config.quantize = int8 ? QuantizationKind::kInt8 : QuantizationKind::kNone;
      config.rerank_k = flags.rerank;
      if (flags.hnsw_m != 0) {
        config.hnsw.max_neighbors = flags.hnsw_m;
      }
      if (flags.hnsw_efc != 0) {
        config.hnsw.ef_construction = flags.hnsw_efc;
      }
      if (flags.hnsw_efs != 0) {
        config.hnsw.ef_search = flags.hnsw_efs;
      }
      const auto index = MakeRetrievalIndex(config, flags.dim, 0x5eed ^ n);
      const Measurement m = Measure(*index, vectors, queries, truth, flags.k);
      const double speedup =
          m.search_us_per_query > 0.0 ? flat_m.search_us_per_query / m.search_us_per_query : 0.0;
      PrintRow(n, int8 ? "hnsw-int8" : "hnsw", m, speedup);
      add_rows(n, int8 ? "hnsw_int8" : "hnsw", m, speedup, true);
      if (!int8) {
        float_m = m;
        have_float = true;
      }

      if (!int8 && n >= 100000) {
        acceptance_ok = acceptance_ok && speedup >= 5.0 && m.recall >= 0.9;
      }
      if (int8 && flags.acceptance && n >= 100000) {
        // Int8 bars: throughput over the float graph, absolute recall, and
        // the arena memory budget.
        const double vs_float = have_float && m.search_us_per_query > 0.0
                                    ? float_m.search_us_per_query / m.search_us_per_query
                                    : 0.0;
        const bool speed_ok = !have_float || vs_float >= 1.3;
        const bool recall_ok = m.recall >= 0.95;
        const bool memory_ok = m.bytes_per_vec <= 160.0;
        if (have_float) {
          std::printf("  %-9zu %-10s int8 vs float hnsw: %.2fx\n", n, "", vs_float);
        }
        if (!speed_ok || !recall_ok || !memory_ok) {
          std::printf("  %-9zu %-10s int8 acceptance: speed_ok=%d recall_ok=%d memory_ok=%d\n",
                      n, "", speed_ok, recall_ok, memory_ok);
          acceptance_ok = false;
        }
      }

      // Snapshot story at the largest size, int8 arena: image size, save and
      // restore wall time, and a search-identity spot check.
      if (int8 && n == largest) {
        auto* hnsw = dynamic_cast<HnswIndex*>(index.get());
        if (hnsw != nullptr) {
          std::string blob;
          const auto save_start = std::chrono::steady_clock::now();
          hnsw->SaveGraph(&blob);
          const double save_s = SecondsSince(save_start);
          HnswIndex restored(hnsw->config());
          const auto load_start = std::chrono::steady_clock::now();
          const bool loaded = restored.LoadGraph(blob);
          const double load_s = SecondsSince(load_start);
          bool identical = loaded;
          if (loaded) {
            for (size_t q = 0; q < std::min<size_t>(queries.size(), 10); ++q) {
              const auto a = hnsw->Search(queries[q], flags.k);
              const auto b = restored.Search(queries[q], flags.k);
              identical = identical && a.size() == b.size();
              for (size_t i = 0; identical && i < a.size(); ++i) {
                identical = a[i].id == b[i].id;
              }
            }
          }
          std::printf(
              "  %-9zu %-10s snapshot: %.1f MB  save %.3f s  restore %.3f s  round-trip %s\n", n,
              "", static_cast<double>(blob.size()) / (1024.0 * 1024.0), save_s, load_s,
              identical ? "ok" : "MISMATCH");
          if (flags.acceptance) {
            acceptance_ok = acceptance_ok && identical;
          }
        }
      }
    }
  }

  benchutil::PrintNote(
      "acceptance bars (>= 100k vectors): hnsw >= 5x flat with recall@10 >= 0.9; with "
      "--acceptance, int8 additionally >= 1.3x float hnsw, recall@10 >= 0.95, arena <= 160 "
      "B/vec, and the graph image round-trips");
  benchutil::PrintNote(
      "kmeans above --kmeans-cap is skipped: incremental Lloyd rebuilds dominate runtime");
  if (!flags.json_out.empty()) {
    const Status written = WriteBenchRun(flags.json_out, bench);
    if (!written.ok()) {
      std::fprintf(stderr, "bench json: %s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("\nbench json: wrote %s (%zu metrics)\n", flags.json_out.c_str(),
                bench.metrics.size());
  }
  if (!acceptance_ok) {
    benchutil::PrintNote("ACCEPTANCE FAILED");
    return 1;
  }
  return 0;
}
