// Stage-1 retrieval scaling: build time, search latency, and recall@k for
// flat vs kmeans vs hnsw at growing pool sizes. This is the bench behind the
// HNSW acceptance bar: at 100k vectors the graph index must search >= 5x
// faster than brute force while holding recall@10 >= 0.9.
//
// Flags:
//   --sizes=1000,10000,100000   pool sizes to sweep
//   --dim=64                    vector dimensionality
//   --queries=50                query count per measurement
//   --k=10                      neighbors per query (recall@k)
//   --kmeans-cap=10000          skip kmeans above this size (Lloyd rebuilds
//                               are O(N * sqrt(N) * dim) and dominate the
//                               runtime long before 100k)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/core/retrieval_backend.h"

namespace iccache {
namespace {

struct Flags {
  std::vector<size_t> sizes = {1000, 10000, 100000};
  size_t dim = 64;
  size_t queries = 50;
  size_t k = 10;
  size_t kmeans_cap = 10000;
  // HNSW tuning overrides; 0 = library default.
  size_t hnsw_m = 0;
  size_t hnsw_efc = 0;
  size_t hnsw_efs = 0;
};

bool ParseSizeList(const char* text, std::vector<size_t>* out) {
  std::vector<size_t> sizes;
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p || v == 0) {
      return false;
    }
    sizes.push_back(static_cast<size_t>(v));
    p = (*end == ',') ? end + 1 : end;
    if (*end != ',' && *end != '\0') {
      return false;
    }
  }
  if (sizes.empty()) {
    return false;
  }
  *out = sizes;
  return true;
}

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--sizes=", 0) == 0) {
      if (!ParseSizeList(arg.c_str() + 8, &flags.sizes)) {
        std::fprintf(stderr, "bad --sizes list: %s\n", arg.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--dim=", 0) == 0) {
      flags.dim = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--queries=", 0) == 0) {
      flags.queries = std::strtoull(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--k=", 0) == 0) {
      flags.k = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--kmeans-cap=", 0) == 0) {
      flags.kmeans_cap = std::strtoull(arg.c_str() + 13, nullptr, 10);
    } else if (arg.rfind("--M=", 0) == 0) {
      flags.hnsw_m = std::strtoull(arg.c_str() + 4, nullptr, 10);
    } else if (arg.rfind("--efc=", 0) == 0) {
      flags.hnsw_efc = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else if (arg.rfind("--efs=", 0) == 0) {
      flags.hnsw_efs = std::strtoull(arg.c_str() + 6, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return flags;
}

std::vector<float> RandomUnitVector(Rng& rng, size_t dim) {
  std::vector<float> v(dim);
  for (auto& x : v) {
    x = static_cast<float>(rng.Normal());
  }
  NormalizeL2(v);
  return v;
}

double SecondsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct Measurement {
  double build_s = 0.0;
  double search_us_per_query = 0.0;
  double recall = 0.0;
};

Measurement Measure(VectorIndex& index, const std::vector<std::vector<float>>& vectors,
                    const std::vector<std::vector<float>>& queries,
                    const std::vector<std::set<uint64_t>>& truth, size_t k) {
  Measurement m;
  const auto build_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < vectors.size(); ++i) {
    index.Add(static_cast<uint64_t>(i), vectors[i]);
  }
  m.build_s = SecondsSince(build_start);

  size_t hits = 0;
  const auto search_start = std::chrono::steady_clock::now();
  std::vector<std::vector<SearchResult>> found(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    found[q] = index.Search(queries[q], k);
  }
  const double search_s = SecondsSince(search_start);
  for (size_t q = 0; q < queries.size(); ++q) {
    if (truth.empty()) {
      continue;
    }
    for (const auto& result : found[q]) {
      hits += truth[q].count(result.id);
    }
  }
  m.search_us_per_query = 1e6 * search_s / static_cast<double>(queries.size());
  m.recall = truth.empty()
                 ? 1.0
                 : static_cast<double>(hits) / static_cast<double>(queries.size() * k);
  return m;
}

}  // namespace
}  // namespace iccache

int main(int argc, char** argv) {
  using namespace iccache;
  const Flags flags = ParseFlags(argc, argv);

  benchutil::PrintTitle("Stage-1 retrieval scaling: flat vs kmeans vs hnsw");
  std::printf("  dim=%zu  queries=%zu  k=%zu\n", flags.dim, flags.queries, flags.k);
  std::printf("  %-9s %-8s %12s %16s %10s %12s\n", "size", "index", "build (s)", "search (us/q)",
              "recall@k", "vs flat");

  bool acceptance_ok = true;
  Rng rng(0x5ca1e);
  for (size_t n : flags.sizes) {
    std::vector<std::vector<float>> vectors;
    vectors.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      vectors.push_back(RandomUnitVector(rng, flags.dim));
    }
    std::vector<std::vector<float>> queries;
    for (size_t q = 0; q < flags.queries; ++q) {
      queries.push_back(RandomUnitVector(rng, flags.dim));
    }

    // Flat is both a measured backend and the ground truth for recall.
    FlatIndex flat(flags.dim);
    const Measurement flat_m = Measure(flat, vectors, queries, {}, flags.k);
    std::vector<std::set<uint64_t>> truth(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      for (const auto& result : flat.Search(queries[q], flags.k)) {
        truth[q].insert(result.id);
      }
    }
    std::printf("  %-9zu %-8s %12.3f %16.1f %10.3f %11.2fx\n", n, "flat", flat_m.build_s,
                flat_m.search_us_per_query, 1.0, 1.0);

    for (const RetrievalBackendKind kind :
         {RetrievalBackendKind::kKMeans, RetrievalBackendKind::kHnsw}) {
      if (kind == RetrievalBackendKind::kKMeans && n > flags.kmeans_cap) {
        std::printf("  %-9zu %-8s %12s %16s %10s %12s\n", n, "kmeans", "-", "-", "-",
                    "(skipped)");
        continue;
      }
      RetrievalBackendConfig config;
      config.kind = kind;
      if (flags.hnsw_m != 0) {
        config.hnsw.max_neighbors = flags.hnsw_m;
      }
      if (flags.hnsw_efc != 0) {
        config.hnsw.ef_construction = flags.hnsw_efc;
      }
      if (flags.hnsw_efs != 0) {
        config.hnsw.ef_search = flags.hnsw_efs;
      }
      const auto index = MakeRetrievalIndex(config, flags.dim, 0x5eed ^ n);
      const Measurement m = Measure(*index, vectors, queries, truth, flags.k);
      const double speedup =
          m.search_us_per_query > 0.0 ? flat_m.search_us_per_query / m.search_us_per_query : 0.0;
      std::printf("  %-9zu %-8s %12.3f %16.1f %10.3f %11.2fx\n", n,
                  RetrievalBackendKindName(kind), m.build_s, m.search_us_per_query, m.recall,
                  speedup);
      if (kind == RetrievalBackendKind::kHnsw && n >= 100000) {
        acceptance_ok = acceptance_ok && speedup >= 5.0 && m.recall >= 0.9;
      }
    }
  }

  benchutil::PrintNote(
      "acceptance bar (100k vectors): hnsw search >= 5x flat with recall@10 >= 0.9");
  benchutil::PrintNote(
      "kmeans above --kmeans-cap is skipped: incremental Lloyd rebuilds dominate runtime");
  if (!acceptance_ok) {
    benchutil::PrintNote("ACCEPTANCE FAILED at 100k vectors");
    return 1;
  }
  return 0;
}
