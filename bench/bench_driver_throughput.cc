// Concurrent serving-driver throughput: host-side pipeline requests/sec and
// simulated completion-latency percentiles (E2E, TTFT, scheduler queue delay)
// at 1 vs N worker threads over the same synthetic LMSys trace, for each
// configured stage-1 retrieval backend. The batched two-phase pipeline
// guarantees identical routing decisions at every thread count, so the
// speedup column isolates the parallel stage-1/stage-2 preparation work
// (embed + sharded retrieval + proxy scoring) that the ThreadPool
// accelerates.
//
// A second section demonstrates the example lifecycle under a byte budget:
// with maintenance ON the decay + knapsack-eviction ticks (plus automatic
// enforcement on insert) hold the sharded pool at <= capacity *
// high_watermark for the whole trace; with maintenance OFF and no budget the
// pool grows without bound. Use --requests=50000 to reproduce the
// long-trace acceptance run.
//
// Flags:
//   --index=flat,hnsw     comma-separated retrieval backends to sweep
//                         (flat | kmeans | hnsw; default "flat,hnsw")
//   --requests=N          approximate trace length (default 4000)
//   --sweep=on|off        run the thread-count sweep (default on; off runs
//                         only the lifecycle demo, e.g. for --requests=50000)
//   --maintenance=on|off  lifecycle demo mode (default on: bounded pool;
//                         off: unbounded growth baseline)
//   --capacity-kb=N       byte budget for the maintenance demo (default 256)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/retrieval_backend.h"
#include "src/serving/driver.h"

namespace iccache {
namespace {

constexpr uint64_t kSeed = 0xd21e5;
constexpr size_t kSeedPool = 2000;

struct Options {
  std::vector<RetrievalBackendKind> backends = {RetrievalBackendKind::kFlat,
                                                RetrievalBackendKind::kHnsw};
  size_t requests = 4000;
  bool sweep = true;
  bool maintenance = true;
  int64_t capacity_kb = 256;
};

DriverConfig MakeConfig(size_t num_threads, RetrievalBackendKind backend) {
  DriverConfig config;
  config.num_threads = num_threads;
  config.batch_window = 64;
  config.cache.num_shards = 8;
  config.cache.cache.retrieval.kind = backend;
  config.seed = kSeed;
  return config;
}

std::unique_ptr<ServingDriver> MakeDriver(const DatasetProfile& profile,
                                          const ModelCatalog& catalog, DriverConfig config) {
  auto driver = std::make_unique<ServingDriver>(config, &catalog);
  QueryGenerator seeder(profile, kSeed ^ 0x5eedb);
  for (size_t i = 0; i < kSeedPool; ++i) {
    driver->SeedExample(seeder.Next(), 0.0);
  }
  return driver;
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--index=", 0) == 0) {
      options.backends.clear();
      const std::string list = arg.substr(8);
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const std::string name =
            list.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        RetrievalBackendKind kind;
        if (!ParseRetrievalBackendKind(name, &kind)) {
          std::fprintf(stderr, "unknown retrieval backend: %s (want flat|kmeans|hnsw)\n",
                       name.c_str());
          std::exit(2);
        }
        options.backends.push_back(kind);
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else if (arg.rfind("--requests=", 0) == 0) {
      options.requests = static_cast<size_t>(std::strtoull(arg.c_str() + 11, nullptr, 10));
    } else if (arg == "--sweep=on") {
      options.sweep = true;
    } else if (arg == "--sweep=off") {
      options.sweep = false;
    } else if (arg == "--maintenance=on") {
      options.maintenance = true;
    } else if (arg == "--maintenance=off") {
      options.maintenance = false;
    } else if (arg.rfind("--capacity-kb=", 0) == 0) {
      options.capacity_kb = std::strtoll(arg.c_str() + 14, nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

bool SameDecisions(const DriverReport& a, const DriverReport& b) {
  if (a.decisions.size() != b.decisions.size()) {
    return false;
  }
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    if (a.decisions[i].request_id != b.decisions[i].request_id ||
        a.decisions[i].model_name != b.decisions[i].model_name ||
        a.decisions[i].offloaded != b.decisions[i].offloaded ||
        a.decisions[i].num_examples != b.decisions[i].num_examples) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace iccache

int main(int argc, char** argv) {
  using namespace iccache;
  const Options options = ParseOptions(argc, argv);

  const DatasetProfile profile = benchutil::ScaledProfile(DatasetId::kLmsysChat, kSeedPool);
  TraceConfig trace;
  trace.kind = TraceKind::kPoisson;
  trace.mean_rps = 8.0;
  trace.duration_s = static_cast<double>(options.requests) / trace.mean_rps;
  trace.seed = kSeed ^ 0x7ace;
  const std::vector<Request> requests = ServingDriver::MakeWorkload(profile, trace, kSeed ^ 0x9e4);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  ModelCatalog catalog;
  benchutil::PrintTitle("Serving-driver throughput: 1 thread vs N threads (LMSys trace)");
  std::printf("  requests=%zu  seed_pool=%zu  shards=8  batch_window=64  hw_cores=%u\n",
              requests.size(), kSeedPool, hw);
  std::printf("  %-7s %-8s %9s %10s %8s %9s %9s %9s %9s %9s %8s\n", "index", "threads",
              "wall (s)", "req/s", "speedup", "e2e p50", "e2e p99", "ttft p50", "ttft p99",
              "qdly p99", "offload%");

  bool decisions_match = true;
  for (RetrievalBackendKind backend : options.backends) {
    if (!options.sweep) {
      std::printf("  (sweep disabled)\n");
      break;
    }
    DriverReport baseline;
    for (size_t threads : thread_counts) {
      const auto driver = MakeDriver(profile, catalog, MakeConfig(threads, backend));
      const DriverReport report = driver->Run(requests);
      if (threads == thread_counts.front()) {
        baseline = report;
      } else {
        decisions_match = decisions_match && SameDecisions(baseline, report);
      }
      const double speedup =
          baseline.wall_seconds > 0.0 ? baseline.wall_seconds / report.wall_seconds : 0.0;
      std::printf(
          "  %-7s %-8zu %9.3f %10.0f %7.2fx %9.4f %9.4f %9.4f %9.4f %9.4f %7.1f%%\n",
          RetrievalBackendKindName(backend), threads, report.wall_seconds,
          report.requests_per_second, speedup, report.p50_latency_s, report.p99_latency_s,
          report.p50_ttft_s, report.p99_ttft_s, report.p99_queue_delay_s,
          100.0 * static_cast<double>(report.offloaded_requests) /
              static_cast<double>(report.total_requests));
    }

    // Amdahl check on the measured phase split: the parallel preparation
    // phase must dominate for the 8-thread speedup target to be reachable.
    const double parallel_fraction =
        baseline.wall_seconds > 0.0 ? baseline.prepare_seconds / baseline.wall_seconds : 0.0;
    const double projected_8t = 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / 8.0);
    std::printf(
        "  [%s] parallel-phase fraction: %.1f%%  (Amdahl-projected 8-thread speedup: %.2fx)\n",
        RetrievalBackendKindName(backend), 100.0 * parallel_fraction, projected_8t);
  }
  if (options.sweep) {
    std::printf("  routing decisions identical across thread counts: %s\n",
                decisions_match ? "yes" : "NO (BUG)");
  } else {
    std::printf("  routing-decision determinism check: skipped (sweep disabled)\n");
  }

  // --- Lifecycle maintenance demo: eviction holds the pool at capacity ----
  benchutil::PrintTitle("Example lifecycle under a byte budget (sharded pool)");
  const int64_t capacity = options.capacity_kb * 1024;
  DriverConfig lifecycle_config = MakeConfig(/*num_threads=*/8, options.backends.front());
  bool capacity_held = true;
  if (options.maintenance) {
    lifecycle_config.cache.cache.capacity_bytes = capacity;
    // Tick cadence scaled to the trace so decay/eviction and off-peak replay
    // are visible within the default 500-second run (production default is
    // hourly). The synthetic trace keeps the cluster saturated (load > 1),
    // so the off-peak gate is relaxed here or replay would never fire.
    lifecycle_config.manager.decay_interval_s = 60.0;
    lifecycle_config.replay_min_interval_s = 120.0;
    lifecycle_config.replay_load_threshold = 1e9;
  } else {
    // Footgun baseline: no budget, no decay/eviction ticks — unbounded growth.
    lifecycle_config.lifecycle_maintenance = false;
    lifecycle_config.offpeak_replay = false;
  }
  const auto driver = MakeDriver(profile, catalog, lifecycle_config);
  const DriverReport report = driver->Run(requests);
  const int64_t used = driver->cache().used_bytes();
  const double watermark_bytes = static_cast<double>(capacity) *
                                 lifecycle_config.cache.cache.high_watermark;
  std::printf("  maintenance=%s  capacity=%lld KB  requests=%zu\n",
              options.maintenance ? "on" : "off",
              static_cast<long long>(options.maintenance ? options.capacity_kb : -1),
              requests.size());
  std::printf(
      "  pool: %zu examples, %.0f KB used  admitted=%zu evicted=%zu  "
      "maintenance_runs=%zu replay_passes=%zu (replayed=%zu improved=%zu)\n",
      driver->cache().size(), static_cast<double>(used) / 1024.0, report.admitted_examples,
      report.evicted_examples, report.maintenance_runs, report.replay_passes,
      report.replayed_examples, report.improved_examples);
  if (options.maintenance) {
    capacity_held = static_cast<double>(used) <= watermark_bytes;
    std::printf("  pool held at <= capacity * high_watermark (%.0f KB): %s\n",
                watermark_bytes / 1024.0, capacity_held ? "yes" : "NO (BUG)");
  } else {
    benchutil::PrintNote("no budget: pool grows with every admission (the pre-lifecycle footgun)");
  }

  if (hw < 2) {
    benchutil::PrintNote(
        "single hardware core visible: measured speedup is bounded at ~1x here; "
        "the projected column shows the multi-core expectation");
  }
  benchutil::PrintNote("host pipeline throughput only; simulated latency is thread-invariant");
  return decisions_match && capacity_held ? 0 : 1;
}
