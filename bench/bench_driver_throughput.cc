// Concurrent serving-driver throughput: host-side pipeline requests/sec and
// simulated completion-latency percentiles (E2E, TTFT, scheduler queue delay)
// at 1 vs N worker threads over the same synthetic LMSys trace, for each
// configured stage-1 retrieval backend. The batched two-phase pipeline
// guarantees identical routing decisions at every thread count, so the
// speedup column isolates the parallel stage-1/stage-2 preparation work
// (embed + sharded retrieval + proxy scoring) that the ThreadPool
// accelerates.
//
// A second section demonstrates the example lifecycle under a byte budget:
// with maintenance ON the decay + knapsack-eviction ticks (plus automatic
// enforcement on insert) hold the sharded pool at <= capacity *
// high_watermark for the whole trace; with maintenance OFF and no budget the
// pool grows without bound. Use --requests=50000 to reproduce the
// long-trace acceptance run.
//
// Flags:
//   --index=flat,hnsw     comma-separated retrieval backends to sweep
//                         (flat | kmeans | hnsw; default "flat,hnsw")
//   --requests=N          approximate trace length (default 4000)
//   --sweep=on|off        run the thread-count sweep (default on; off runs
//                         only the lifecycle demo, e.g. for --requests=50000)
//   --maintenance=on|off  lifecycle demo mode (default on: bounded pool;
//                         off: unbounded growth baseline)
//   --capacity-kb=N       byte budget for the maintenance demo (default 256)
//   --snapshot=<path>     lifecycle demo: take periodic checkpoints to <path>
//                         (trace-time cadence, off-peak gated) and report
//                         checkpoint count + snapshot write p50/p99 ms, then
//                         leave a final snapshot behind for --restore /
//                         snapshot_dump
//   --restore=<path>      lifecycle demo: warm-start the driver from <path>
//                         instead of re-seeding, reporting restore ms
//   --snapshot-bench=N    standalone persistence acceptance: build an
//                         N-example sharded HNSW pool, snapshot it, restore
//                         it natively (no graph rebuild), report write/read
//                         ms; exits non-zero when the restore needs a
//                         rebuild or a 100k-scale pool takes >= 2 s
//   --stage0=on|off       enable the stage-0 response tier in the thread
//                         sweep (default off); adds hit-rate and
//                         tokens-saved columns to the table
//   --acceptance          sharded-commit-pipeline smoke (ci.sh): full
//                         lifecycle + background maintenance on hnsw at 1
//                         and 8 threads from the same restored seed
//                         snapshot; exits non-zero unless decisions match,
//                         the parallel-phase fraction is >= 0.94, and no
//                         window stalled waiting on the maintenance planner.
//                         A second section replays a duplicate-heavy trace
//                         with the stage-0 tier on and enforces its gate:
//                         hit rate above a floor, fewer generated tokens
//                         than the stage0-off run, identical decisions at
//                         1 vs 8 threads and 1 vs 4 commit lanes.
//                         A third section enforces the observability gate:
//                         decisions AND tail exemplars byte-identical with
//                         tracing + the SLO watchdog on vs off at {1,8}
//                         threads x {1,4} lanes, tracing+watchdog overhead
//                         <= 3% (best of 4 paired cpu-time runs), the
//                         exported Chrome trace + Prometheus metrics parse
//                         cleanly (histogram families validated end to end)
//                         and contain spans for every pipeline stage, the
//                         assembled per-request timelines attribute >= 90%
//                         of the tail cohort's wall time to named stages,
//                         the armed watchdog stays silent on the clean run,
//                         and a fourth section injects a stage-0 hit-rate
//                         collapse (all-unique tail) that the watchdog MUST
//                         flag
//   --trace-out=<path>    write a Chrome trace-event JSON (Perfetto-loadable)
//                         of the run: acceptance mode writes the
//                         observability-section export run; otherwise the
//                         lifecycle demo runs with tracing enabled and is
//                         exported
//   --metrics-out=<path>  write the Prometheus-style metrics snapshot of the
//                         same run the trace export covers
//   --json-out=<path>     write the run's BENCH json record (schema
//                         "iccache-bench/1", see src/obs/bench_json.h):
//                         acceptance mode records the observability export
//                         run, otherwise the lifecycle demo —
//                         tools/bench_compare gates CI against the committed
//                         baseline with these records
//
// Every thread-sweep cell starts from an IDENTICAL restored snapshot: the
// seed pool is built once per backend, snapshotted, and each (backend,
// threads) run warm-starts from that file — so rows differ only in
// num_threads, never in pool construction history.
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"
#include "src/core/retrieval_backend.h"
#include "src/core/sharded_cache.h"
#include "src/obs/bench_json.h"
#include "src/obs/export.h"
#include "src/obs/timeline.h"
#include "src/obs/trace.h"
#include "src/persist/pool_codec.h"
#include "src/persist/snapshot.h"
#include "src/serving/driver.h"

namespace iccache {
namespace {

constexpr uint64_t kSeed = 0xd21e5;
constexpr size_t kSeedPool = 2000;

// Total process CPU seconds (user + system, all threads). The observability
// overhead gate compares CPU time rather than wall clock: on a loaded or
// single-core CI box, wall time of a multi-threaded run swings far more than
// 2% run to run, while the CPU cost of identical deterministic work is
// stable — and tracing's cost is CPU, not idle time.
double ProcessCpuSeconds() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_utime.tv_sec) + 1e-6 * usage.ru_utime.tv_usec +
         static_cast<double>(usage.ru_stime.tv_sec) + 1e-6 * usage.ru_stime.tv_usec;
}

struct Options {
  std::vector<RetrievalBackendKind> backends = {RetrievalBackendKind::kFlat,
                                                RetrievalBackendKind::kHnsw};
  size_t requests = 4000;
  bool sweep = true;
  bool maintenance = true;
  bool acceptance = false;
  bool stage0 = false;
  int64_t capacity_kb = 256;
  std::string snapshot_path;
  std::string restore_path;
  std::string trace_out;
  std::string metrics_out;
  std::string json_out;
  size_t snapshot_bench = 0;
};

DriverConfig MakeConfig(size_t num_threads, RetrievalBackendKind backend,
                        bool stage0 = false) {
  DriverConfig config;
  config.num_threads = num_threads;
  config.batch_window = 64;
  config.cache.num_shards = 8;
  config.cache.cache.retrieval.kind = backend;
  config.stage0.enabled = stage0;
  config.seed = kSeed;
  return config;
}

// Deterministically rewrites a slice of the tail requests into verbatim
// repeats of earlier ones (fresh ids, arrival times untouched) — the
// duplicate-heavy trace the stage-0 acceptance gate measures hit rate on.
std::vector<Request> MakeDuplicateHeavy(std::vector<Request> requests,
                                        double repeat_fraction) {
  Rng rng(kSeed ^ 0xd0b1eull);
  const size_t warmup = requests.size() / 8;
  for (size_t i = warmup; i < requests.size(); ++i) {
    if (!rng.Bernoulli(repeat_fraction)) {
      continue;
    }
    const Request& source = requests[rng.UniformInt(static_cast<uint64_t>(i))];
    Request& repeat = requests[i];
    repeat.text = source.text;
    repeat.dataset = source.dataset;
    repeat.task = source.task;
    repeat.topic_id = source.topic_id;
    repeat.intent_id = source.intent_id;
    repeat.difficulty = source.difficulty;
    repeat.input_tokens = source.input_tokens;
    repeat.target_output_tokens = source.target_output_tokens;
    // id and arrival_time stay the repeat's own.
  }
  return requests;
}

// Duplicate-heavy head, then an all-unique tail: the stage-0 hit rate climbs
// as the cache warms, then collapses when the last 40% of requests stop
// repeating — the injected fault the watchdog's hit-rate-drop rule must
// catch.
std::vector<Request> MakeCollapseTrace(std::vector<Request> requests) {
  Rng rng(kSeed ^ 0xc011a5eull);
  const size_t warmup = requests.size() / 8;
  const size_t cliff = (requests.size() * 3) / 5;
  for (size_t i = warmup; i < requests.size(); ++i) {
    if (i >= cliff) {
      requests[i].text += " #unique-" + std::to_string(i);
      continue;
    }
    if (!rng.Bernoulli(0.6)) {
      continue;
    }
    const Request& source = requests[rng.UniformInt(static_cast<uint64_t>(i))];
    Request& repeat = requests[i];
    repeat.text = source.text;
    repeat.dataset = source.dataset;
    repeat.task = source.task;
    repeat.topic_id = source.topic_id;
    repeat.intent_id = source.intent_id;
    repeat.difficulty = source.difficulty;
    repeat.input_tokens = source.input_tokens;
    repeat.target_output_tokens = source.target_output_tokens;
  }
  return requests;
}

// The SLO-watchdog rule set the acceptance runs arm: the rules whose inputs
// are deterministic in simulation (stage-0 hit-rate collapse, maintenance
// stalls), so a clean run is provably silent at any thread count. The
// wall-clock rules (e2e SLO, queue growth) stay off here — simulated
// latencies don't breach and arming them adds nothing to the gate.
WatchdogConfig ArmedWatchdog() {
  WatchdogConfig watchdog;
  watchdog.stage0_drop_fraction = 0.5;
  watchdog.maintenance_stall_rule = true;
  return watchdog;
}

bool SameTailExemplars(const DriverReport& a, const DriverReport& b) {
  if (a.tail_exemplars.size() != b.tail_exemplars.size()) {
    return false;
  }
  for (size_t i = 0; i < a.tail_exemplars.size(); ++i) {
    if (a.tail_exemplars[i].request_id != b.tail_exemplars[i].request_id ||
        a.tail_exemplars[i].window != b.tail_exemplars[i].window ||
        a.tail_exemplars[i].e2e_latency_s != b.tail_exemplars[i].e2e_latency_s ||
        a.tail_exemplars[i].slowest != b.tail_exemplars[i].slowest) {
      return false;
    }
  }
  return true;
}

std::unique_ptr<ServingDriver> MakeDriver(const DatasetProfile& profile,
                                          const ModelCatalog& catalog, DriverConfig config) {
  auto driver = std::make_unique<ServingDriver>(config, &catalog);
  QueryGenerator seeder(profile, kSeed ^ 0x5eedb);
  for (size_t i = 0; i < kSeedPool; ++i) {
    driver->SeedExample(seeder.Next(), 0.0);
  }
  return driver;
}

// Builds the seed pool ONCE and snapshots it, so every sweep cell (and the
// acceptance mode) warm-starts from byte-identical learned state — rows of
// the thread sweep differ only in num_threads, never in pool history.
std::string WriteSeedSnapshot(const DatasetProfile& profile, const ModelCatalog& catalog,
                              DriverConfig config, const char* tag) {
  const std::string path =
      "/tmp/iccache_seed_" + std::to_string(::getpid()) + "_" + tag + ".snap";
  const auto driver = MakeDriver(profile, catalog, std::move(config));
  const Status saved = driver->SaveSnapshot(path);
  if (!saved.ok()) {
    std::fprintf(stderr, "seed snapshot failed: %s\n", saved.ToString().c_str());
    std::exit(1);
  }
  return path;
}

std::unique_ptr<ServingDriver> RestoredDriver(const ModelCatalog& catalog, DriverConfig config,
                                              const std::string& seed_snapshot) {
  config.snapshot_path = seed_snapshot;
  config.restore_on_start = true;  // checkpoint_interval_s stays 0: read-only
  auto driver = std::make_unique<ServingDriver>(config, &catalog);
  if (!driver->restore_status().ok() || !driver->restored_from_snapshot()) {
    std::fprintf(stderr, "seed restore failed: %s\n",
                 driver->restore_status().ToString().c_str());
    std::exit(1);
  }
  return driver;
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--index=", 0) == 0) {
      options.backends.clear();
      const std::string list = arg.substr(8);
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const std::string name =
            list.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        RetrievalBackendKind kind;
        if (!ParseRetrievalBackendKind(name, &kind)) {
          std::fprintf(stderr, "unknown retrieval backend: %s (want flat|kmeans|hnsw)\n",
                       name.c_str());
          std::exit(2);
        }
        options.backends.push_back(kind);
        if (comma == std::string::npos) {
          break;
        }
        start = comma + 1;
      }
    } else if (arg.rfind("--requests=", 0) == 0) {
      options.requests = static_cast<size_t>(std::strtoull(arg.c_str() + 11, nullptr, 10));
    } else if (arg == "--sweep=on") {
      options.sweep = true;
    } else if (arg == "--sweep=off") {
      options.sweep = false;
    } else if (arg == "--maintenance=on") {
      options.maintenance = true;
    } else if (arg == "--maintenance=off") {
      options.maintenance = false;
    } else if (arg == "--stage0=on") {
      options.stage0 = true;
    } else if (arg == "--stage0=off") {
      options.stage0 = false;
    } else if (arg.rfind("--capacity-kb=", 0) == 0) {
      options.capacity_kb = std::strtoll(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--snapshot=", 0) == 0) {
      options.snapshot_path = arg.substr(11);
    } else if (arg.rfind("--restore=", 0) == 0) {
      options.restore_path = arg.substr(10);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      options.trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      options.metrics_out = arg.substr(14);
    } else if (arg.rfind("--json-out=", 0) == 0) {
      options.json_out = arg.substr(11);
    } else if (arg.rfind("--snapshot-bench=", 0) == 0) {
      options.snapshot_bench = static_cast<size_t>(std::strtoull(arg.c_str() + 17, nullptr, 10));
    } else if (arg == "--acceptance") {
      options.acceptance = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  return options;
}

// Standalone persistence acceptance: an N-example sharded HNSW pool must
// snapshot and restore through the native graph image (no rebuild), and at
// 100k-example scale the restore must come in under 2 seconds.
int RunSnapshotBench(size_t n) {
  benchutil::PrintTitle("Persistence: snapshot/restore of the example pool (8 shards, hnsw)");
  const std::string path =
      "/tmp/iccache_snapshot_bench_" + std::to_string(::getpid()) + ".snap";
  auto embedder = std::make_shared<HashingEmbedder>();
  ShardedCacheConfig config;
  config.num_shards = 8;
  config.cache.retrieval.kind = RetrievalBackendKind::kHnsw;
  ShardedExampleCache pool(embedder, config);

  const DatasetProfile profile = benchutil::ScaledProfile(DatasetId::kLmsysChat, n);
  QueryGenerator generator(profile, kSeed ^ 0x5a9);
  const auto build_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < n; ++i) {
    pool.Put(generator.Next(), "[cached-response]", 0.8, 0.9, 48, 0.0);
  }
  const auto build_end = std::chrono::steady_clock::now();
  std::printf("  build:    %zu examples, %.1f MB pool in %.2f s (incremental hnsw inserts)\n",
              pool.size(), static_cast<double>(pool.used_bytes()) / (1024.0 * 1024.0),
              std::chrono::duration<double>(build_end - build_start).count());

  SnapshotWriter writer;
  const auto write_start = std::chrono::steady_clock::now();
  EncodePoolSections(pool, {}, /*sim_time=*/0.0, &writer);
  const Status write_status = writer.WriteToFile(path);
  const auto write_end = std::chrono::steady_clock::now();
  if (!write_status.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n", write_status.ToString().c_str());
    return 1;
  }
  const double write_s = std::chrono::duration<double>(write_end - write_start).count();

  ShardedExampleCache restored(embedder, config);
  SnapshotReader reader;
  PoolRestoreReport report;
  const auto restore_start = std::chrono::steady_clock::now();
  Status restore_status = reader.Open(path);
  if (restore_status.ok()) {
    restore_status = DecodePoolSections(reader, &restored, {}, &report);
  }
  const auto restore_end = std::chrono::steady_clock::now();
  std::remove(path.c_str());
  if (!restore_status.ok()) {
    std::fprintf(stderr, "restore failed: %s\n", restore_status.ToString().c_str());
    return 1;
  }
  const double restore_s = std::chrono::duration<double>(restore_end - restore_start).count();

  std::printf("  snapshot: %.1f MB written in %.0f ms (atomic: tmp + fsync + rename)\n",
              static_cast<double>(reader.file_size()) / (1024.0 * 1024.0), 1000.0 * write_s);
  std::printf("  restore:  %zu examples in %.0f ms  (native hnsw graph load: %s)\n",
              restored.size(), 1000.0 * restore_s, report.native_index_load ? "yes" : "NO (BUG)");

  // Spot-check: the restored pool answers identically.
  bool searches_match = true;
  QueryGenerator probes(profile, kSeed ^ 0x9a0b);
  for (int q = 0; q < 16; ++q) {
    const Request query = probes.Next();
    const auto a = pool.FindSimilar(query, 10);
    const auto b = restored.FindSimilar(query, 10);
    searches_match = searches_match && a.size() == b.size();
    for (size_t i = 0; searches_match && i < a.size(); ++i) {
      searches_match = a[i].id == b[i].id && a[i].score == b[i].score;
    }
  }
  std::printf("  restored searches identical to original: %s\n",
              searches_match ? "yes" : "NO (BUG)");

  const bool fast_enough = n < 100000 || restore_s < 2.0;
  if (n >= 100000) {
    std::printf("  acceptance (>=100k pool): restore < 2 s: %s\n",
                fast_enough ? "yes" : "NO (BUG)");
  }
  return report.native_index_load && searches_match && fast_enough &&
                 restored.size() == pool.size() && restored.used_bytes() == pool.used_bytes()
             ? 0
             : 1;
}

// ci.sh smoke for the sharded commit pipeline: full lifecycle + background
// maintenance on hnsw, 1 vs 8 threads from the same restored seed snapshot.
// Exit-enforces the refactor's acceptance criteria: identical decisions
// (across thread counts AND across prepare_chunk {1,16,32}, with identical
// tail exemplars and byte-identical pool contents), a parallel-phase
// fraction >= 0.94, and ZERO windows stalled waiting on the background
// maintenance planner.
int RunAcceptance(const Options& options, const DatasetProfile& profile,
                  const ModelCatalog& catalog, const std::vector<Request>& requests);

bool SameDecisions(const DriverReport& a, const DriverReport& b) {
  if (a.decisions.size() != b.decisions.size()) {
    return false;
  }
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    if (a.decisions[i].request_id != b.decisions[i].request_id ||
        a.decisions[i].model_name != b.decisions[i].model_name ||
        a.decisions[i].offloaded != b.decisions[i].offloaded ||
        a.decisions[i].num_examples != b.decisions[i].num_examples) {
      return false;
    }
  }
  return true;
}

// BENCH json record for a driver run (schema "iccache-bench/1"). Simulated
// metrics (latency percentiles, hit rates, token counts, anomaly count) are
// seed-deterministic and gate against the committed baseline on any machine;
// wall-clock-derived metrics are marked machine_dependent and gate only
// under bench_compare --strict. Pass tail_attribution < 0 when no trace was
// recorded for the run.
BenchRunRecord MakeBenchRecord(const std::string& bench, const DriverConfig& config,
                               const DriverReport& report, size_t trace_size,
                               double tail_attribution) {
  BenchRunRecord record;
  record.bench = bench;
  record.AddConfig("requests", std::to_string(trace_size));
  record.AddConfig("threads", std::to_string(config.num_threads));
  record.AddConfig("lanes", std::to_string(config.commit_lanes));
  record.AddConfig("batch_window", std::to_string(config.batch_window));
  record.AddConfig("prepare_chunk", std::to_string(config.prepare_chunk));
  record.AddConfig("backend", RetrievalBackendKindName(config.cache.cache.retrieval.kind));
  record.AddConfig("stage0", config.stage0.enabled ? "on" : "off");
  record.AddConfig("seed", std::to_string(config.seed));
  record.AddConfig("simd_kernel", report.simd_kernel);
  record.AddMetric("requests_per_second", report.requests_per_second, 0.15, +1, true);
  record.AddMetric("wall_seconds", report.wall_seconds, 0.15, -1, true);
  // Throughput of the batched prepare path alone (embed + stage-0 probe +
  // stage-1 retrieval + stage-2 scoring), i.e. requests divided by wall time
  // the driver spent blocked on prepare task groups.
  record.AddMetric("prepare_requests_per_second",
                   report.prepare_seconds > 0.0
                       ? static_cast<double>(trace_size) / report.prepare_seconds
                       : 0.0,
                   0.15, +1, true);
  const double request_path = report.prepare_seconds + report.serial_seconds;
  record.AddMetric("parallel_fraction",
                   request_path > 0.0 ? report.prepare_seconds / request_path : 0.0, 0.05,
                   +1, true);
  if (tail_attribution >= 0.0) {
    record.AddMetric("tail_attribution_fraction", tail_attribution, 0.08, +1, true);
  }
  record.AddMetric("maintenance_stalled_windows",
                   static_cast<double>(report.maintenance_stalled_windows), 0.0, -1, true);
  record.AddMetric("p50_latency_s", report.p50_latency_s, 0.10, -1);
  record.AddMetric("p99_latency_s", report.p99_latency_s, 0.10, -1);
  record.AddMetric("p50_ttft_s", report.p50_ttft_s, 0.10, -1);
  record.AddMetric("p99_ttft_s", report.p99_ttft_s, 0.10, -1);
  record.AddMetric("p50_queue_delay_s", report.p50_queue_delay_s, 0.10, -1);
  record.AddMetric("p99_queue_delay_s", report.p99_queue_delay_s, 0.10, -1);
  record.AddMetric("mean_quality", report.mean_quality, 0.05, +1);
  record.AddMetric("stage0_hit_rate",
                   trace_size > 0 ? static_cast<double>(report.stage0_hits) /
                                        static_cast<double>(trace_size)
                                  : 0.0,
                   0.10, +1);
  record.AddMetric("stage0_tokens_saved", static_cast<double>(report.stage0_tokens_saved),
                   0.10, +1);
  record.AddMetric("generated_tokens", static_cast<double>(report.generated_tokens), 0.10, -1);
  record.AddMetric("anomaly_count", static_cast<double>(report.anomalies.size()), 0.0, -1);
  record.AddMetric("offloaded_requests", static_cast<double>(report.offloaded_requests), 0.0, 0);
  record.AddMetric("admitted_examples", static_cast<double>(report.admitted_examples), 0.0, 0);
  record.AddMetric("tail_exemplars", static_cast<double>(report.tail_exemplars.size()), 0.0, 0);
  return record;
}

// Writes the flight-recorder trace (Chrome trace-event JSON) and the driver's
// metrics hub (Prometheus text) for a finished run, then validates both
// artifacts end to end: the JSON must survive the strict in-repo parser, and
// the metrics text must carry the core metric families. With
// expect_all_stages the trace must also contain a span for every pipeline
// stage — stage-0 probe through merge/publish, maintenance, checkpoint
// (kServiceRequest is the IcCacheService wrapper and never runs under the
// driver bench). Empty paths skip that artifact.
bool ExportObservability(const ServingDriver& driver, const std::string& trace_path,
                         const std::string& metrics_path, bool expect_all_stages) {
  bool ok = true;
  if (!trace_path.empty()) {
    const TraceRecorder::Snapshot snapshot = TraceRecorder::Global().TakeSnapshot();
    const Status written =
        WriteChromeTraceFile(trace_path, snapshot, driver.metrics_hub().series());
    if (!written.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n", written.ToString().c_str());
      return false;
    }
    const StatusOr<std::string> json = ReadTextFile(trace_path);
    ChromeTraceSummary summary;
    std::string error;
    const bool parsed = json.ok() && ParseChromeTrace(json.value(), &summary, &error);
    std::printf("  trace export: %s  (%zu events, emitted=%llu dropped=%llu)  parses: %s\n",
                trace_path.c_str(), summary.total_events,
                static_cast<unsigned long long>(summary.emitted),
                static_cast<unsigned long long>(summary.dropped), parsed ? "yes" : "NO (BUG)");
    if (!parsed) {
      std::fprintf(stderr, "trace parse failed: %s\n",
                   json.ok() ? error.c_str() : json.status().ToString().c_str());
      return false;
    }
    if (expect_all_stages) {
      static constexpr TraceCategory kRequired[] = {
          TraceCategory::kWindow,          TraceCategory::kPrepare,
          TraceCategory::kEmbed,           TraceCategory::kStage0Probe,
          TraceCategory::kStage1Retrieval, TraceCategory::kStage1Batch,
          TraceCategory::kStage2Scoring,   TraceCategory::kHnswSearch,
          TraceCategory::kCommitLane,
          TraceCategory::kLaneCommit,      TraceCategory::kRoute,
          TraceCategory::kGenerate,        TraceCategory::kMerge,
          TraceCategory::kMergeStep,       TraceCategory::kPublish,
          TraceCategory::kMaintenancePlan, TraceCategory::kMaintenanceApply,
          TraceCategory::kCheckpointWrite,
      };
      bool all_stages = true;
      for (const TraceCategory category : kRequired) {
        const char* name = TraceCategoryName(category);
        if (summary.span_counts.find(name) == summary.span_counts.end()) {
          std::printf("  MISSING span category: %s\n", name);
          all_stages = false;
        }
      }
      std::printf("  all pipeline-stage spans present (%zu categories): %s\n",
                  sizeof(kRequired) / sizeof(kRequired[0]), all_stages ? "yes" : "NO (BUG)");
      ok = ok && all_stages;
    }
  }
  if (!metrics_path.empty()) {
    const Status written = WritePrometheusFile(metrics_path, driver.metrics_hub());
    if (!written.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n", written.ToString().c_str());
      return false;
    }
    const StatusOr<std::string> prom = ReadTextFile(metrics_path);
    bool metrics_ok = prom.ok();
    for (const char* family : {"iccache_requests_total", "iccache_e2e_latency_seconds_bucket",
                               "iccache_pool_bytes", "iccache_prepare_batch_fill"}) {
      metrics_ok = metrics_ok && prom.value().find(family) != std::string::npos;
    }
    // Round-trip: the exposition must parse back, and every histogram family
    // must be internally coherent (cumulative buckets, +Inf == _count).
    PrometheusSummary parsed_prom;
    std::string prom_error;
    const bool prom_valid =
        prom.ok() && ParsePrometheusText(prom.value(), &parsed_prom, &prom_error) &&
        ValidatePrometheusHistograms(parsed_prom, &prom_error);
    if (!prom_valid && prom.ok()) {
      std::fprintf(stderr, "prometheus validation failed: %s\n", prom_error.c_str());
    }
    std::printf("  metrics export: %s  core families present: %s  round-trip valid: %s\n",
                metrics_path.c_str(), metrics_ok ? "yes" : "NO (BUG)",
                prom_valid ? "yes" : "NO (BUG)");
    ok = ok && metrics_ok && prom_valid;
  }
  return ok;
}

int RunAcceptance(const Options& options, const DatasetProfile& profile,
                  const ModelCatalog& catalog, const std::vector<Request>& requests) {
  benchutil::PrintTitle(
      "Acceptance: sharded commit pipeline + epoch-based background maintenance");
  DriverConfig config = MakeConfig(/*num_threads=*/8, RetrievalBackendKind::kHnsw);
  // Full lifecycle with cadences scaled to the trace (as in the demo below),
  // so decay/eviction/replay ticks genuinely flow through the scheduler.
  config.cache.cache.capacity_bytes = options.capacity_kb * 1024;
  config.manager.decay_interval_s = 60.0;
  config.replay_min_interval_s = 120.0;
  config.replay_load_threshold = 1e9;
  const std::string seed_snapshot =
      WriteSeedSnapshot(profile, catalog, config, "acceptance");

  config.num_threads = 1;
  const DriverReport single = RestoredDriver(catalog, config, seed_snapshot)->Run(requests);
  config.num_threads = 8;
  auto eight_driver = RestoredDriver(catalog, config, seed_snapshot);
  const DriverReport eight = eight_driver->Run(requests);

  // Chunked-prepare invariance: the batched prepare path must be byte-stable
  // in the chunk size — decisions, tail exemplars, AND the resulting pool.
  // chunk=1 degenerates to per-request batches; chunk=32 spans half a
  // window. Pool contents are compared by size/bytes plus 16 probe searches
  // against the chunk=1 pool (id AND score must match).
  config.prepare_chunk = 1;
  auto chunk1_driver = RestoredDriver(catalog, config, seed_snapshot);
  const DriverReport chunk1 = chunk1_driver->Run(requests);
  config.prepare_chunk = 32;
  auto chunk32_driver = RestoredDriver(catalog, config, seed_snapshot);
  const DriverReport chunk32 = chunk32_driver->Run(requests);
  config.prepare_chunk = DriverConfig().prepare_chunk;
  std::remove(seed_snapshot.c_str());

  bool chunk_identical = SameDecisions(eight, chunk1) && SameDecisions(eight, chunk32) &&
                         SameTailExemplars(eight, chunk1) &&
                         SameTailExemplars(eight, chunk32);
  bool pools_identical =
      chunk1_driver->cache().size() == chunk32_driver->cache().size() &&
      chunk1_driver->cache().used_bytes() == chunk32_driver->cache().used_bytes() &&
      eight_driver->cache().size() == chunk1_driver->cache().size() &&
      eight_driver->cache().used_bytes() == chunk1_driver->cache().used_bytes();
  {
    QueryGenerator pool_probes(profile, kSeed ^ 0x9a0b);
    for (int q = 0; pools_identical && q < 16; ++q) {
      const Request query = pool_probes.Next();
      const auto a = chunk1_driver->cache().FindSimilar(query, 10);
      const auto b = chunk32_driver->cache().FindSimilar(query, 10);
      pools_identical = a.size() == b.size();
      for (size_t i = 0; pools_identical && i < a.size(); ++i) {
        pools_identical = a[i].id == b[i].id && a[i].score == b[i].score;
      }
    }
  }

  const bool identical = SameDecisions(single, eight);
  // Request-path parallel fraction: of the time spent serving requests
  // (prepare + serial), how much runs on the pool. Maintenance is its own
  // bucket — measured, overlappable, and policed by the stall counter below
  // instead of being allowed to masquerade as serial time.
  const double request_path = eight.prepare_seconds + eight.serial_seconds;
  const double fraction = request_path > 0.0 ? eight.prepare_seconds / request_path : 0.0;
  std::printf("  requests=%zu  hnsw  lanes=%zu  maintenance ticks=%zu replay passes=%zu\n",
              requests.size(), config.commit_lanes, eight.maintenance_runs,
              eight.replay_passes);
  std::printf("  wall split (8t): prepare %.3fs | serial %.3fs | maintenance %.3fs\n",
              eight.prepare_seconds, eight.serial_seconds, eight.maintenance_seconds);
  std::printf("  1-thread vs 8-thread decisions identical: %s\n",
              identical ? "yes" : "NO (BUG)");
  std::printf("  prepare_chunk {1,16,32} decisions + tail exemplars identical: %s\n",
              chunk_identical ? "yes" : "NO (BUG)");
  std::printf("  prepare_chunk {1,16,32} pool contents identical "
              "(%zu examples, %zu bytes, 16 probes): %s\n",
              chunk1_driver->cache().size(), chunk1_driver->cache().used_bytes(),
              pools_identical ? "yes" : "NO (BUG)");
  std::printf("  embed memo (8t): hits=%zu misses=%zu  (report-only: per-worker memos "
              "make the split scheduling-dependent)\n",
              eight.embed_memo_hits, eight.embed_memo_misses);
  std::printf("  request-path parallel fraction: %.1f%%  (required >= 94%%): %s\n",
              100.0 * fraction, fraction >= 0.94 ? "ok" : "FAIL");
  std::printf("  maintenance-stalled windows: %zu  (required 0): %s\n",
              eight.maintenance_stalled_windows,
              eight.maintenance_stalled_windows == 0 ? "ok" : "FAIL");
  const bool pipeline_ok = identical && chunk_identical && pools_identical &&
                           fraction >= 0.94 &&
                           eight.maintenance_stalled_windows == 0 &&
                           eight.maintenance_runs > 0;

  // --- Stage-0 response tier gate: duplicate-heavy trace -------------------
  // Half the tail requests are verbatim repeats, so a working response cache
  // must (a) clear a hit-rate floor, (b) generate measurably fewer tokens
  // than the stage0-off run, and (c) stay byte-identical across thread and
  // lane counts — the hit decision runs in the commit lane against the
  // window-frozen threshold, never in the parallel prepare phase.
  benchutil::PrintTitle("Acceptance: stage-0 response tier on a duplicate-heavy trace");
  const std::vector<Request> dup_trace = MakeDuplicateHeavy(requests, 0.5);
  DriverConfig s0 = MakeConfig(/*num_threads=*/8, RetrievalBackendKind::kHnsw,
                               /*stage0=*/true);
  const std::string s0_snapshot = WriteSeedSnapshot(profile, catalog, s0, "stage0");

  s0.num_threads = 1;
  const DriverReport s0_single = RestoredDriver(catalog, s0, s0_snapshot)->Run(dup_trace);
  s0.num_threads = 8;
  const DriverReport s0_eight = RestoredDriver(catalog, s0, s0_snapshot)->Run(dup_trace);
  s0.commit_lanes = 1;
  const DriverReport s0_one_lane = RestoredDriver(catalog, s0, s0_snapshot)->Run(dup_trace);
  s0.commit_lanes = 4;
  DriverConfig s0_off = s0;
  s0_off.stage0.enabled = false;
  const DriverReport off = RestoredDriver(catalog, s0_off, s0_snapshot)->Run(dup_trace);
  std::remove(s0_snapshot.c_str());

  const double hit_rate = dup_trace.empty()
                              ? 0.0
                              : static_cast<double>(s0_eight.stage0_hits) /
                                    static_cast<double>(dup_trace.size());
  constexpr double kHitRateFloor = 0.25;  // half the tail repeats verbatim
  const bool s0_identical =
      SameDecisions(s0_single, s0_eight) && SameDecisions(s0_single, s0_one_lane);
  const bool tokens_reduced = s0_eight.generated_tokens < off.generated_tokens;
  const double s0_request_path = s0_eight.prepare_seconds + s0_eight.serial_seconds;
  const double s0_fraction =
      s0_request_path > 0.0 ? s0_eight.prepare_seconds / s0_request_path : 0.0;
  std::printf("  duplicate-heavy trace: %zu requests (50%% of tail repeats earlier text)\n",
              dup_trace.size());
  std::printf("  stage-0 hits: %zu (%.1f%% of trace, floor %.0f%%)  admitted=%zu "
              "probes=%zu invalidated=%zu expired=%zu\n",
              s0_eight.stage0_hits, 100.0 * hit_rate, 100.0 * kHitRateFloor,
              s0_eight.stage0_admitted, s0_eight.stage0_probes,
              s0_eight.stage0_invalidations, s0_eight.stage0_expired);
  std::printf("  generated tokens: %lld (stage0 on) vs %lld (off)  saved=%lld: %s\n",
              static_cast<long long>(s0_eight.generated_tokens),
              static_cast<long long>(off.generated_tokens),
              static_cast<long long>(s0_eight.stage0_tokens_saved),
              tokens_reduced ? "ok" : "FAIL");
  std::printf("  decisions identical (1t vs 8t, 4 lanes vs 1 lane): %s\n",
              s0_identical ? "yes" : "NO (BUG)");
  std::printf("  hit rate >= floor: %s\n", hit_rate >= kHitRateFloor ? "ok" : "FAIL");
  std::printf("  request-path parallel fraction (stage0 on): %.1f%%  "
              "(required >= 94%%): %s\n",
              100.0 * s0_fraction, s0_fraction >= 0.94 ? "ok" : "FAIL");
  const bool stage0_ok =
      s0_identical && tokens_reduced && hit_rate >= kHitRateFloor && s0_fraction >= 0.94;

  // --- Observability gate: the flight recorder must be passive -------------
  // Tracing and the SLO watchdog may never change a decision: runs with both
  // on must be byte-identical — decisions AND the deterministic tail-exemplar
  // set — to runs with both off at every thread and lane count, and their
  // combined CPU cost must stay under 3% (best of 4 paired runs). A final
  // export run — 8 threads, 4 lanes, stage-0 on, watchdog armed,
  // checkpointing enabled so checkpoint_write spans exist — feeds the
  // Chrome-trace and Prometheus writers; both artifacts must parse, cover
  // every pipeline stage, the assembled per-request timelines must attribute
  // >= 90% of the tail cohort's wall time, and the armed watchdog must stay
  // silent on this clean trace.
  benchutil::PrintTitle(
      "Acceptance: flight-recorder observability (tracing + watchdog on vs off)");
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.set_ring_capacity(8192);  // bounds resident ring memory across the grid
  DriverConfig obs = MakeConfig(/*num_threads=*/8, RetrievalBackendKind::kHnsw,
                                /*stage0=*/true);
  obs.cache.cache.capacity_bytes = options.capacity_kb * 1024;
  obs.manager.decay_interval_s = 60.0;
  obs.replay_min_interval_s = 120.0;
  obs.replay_load_threshold = 1e9;
  obs.tail_sample_every = 97;  // fixed-rate exemplars on top of slowest-2/window
  // The "on" side of every comparison: same run with the watchdog armed.
  DriverConfig obs_on = obs;
  obs_on.watchdog = ArmedWatchdog();
  const std::string obs_snapshot = WriteSeedSnapshot(profile, catalog, obs, "obs");

  bool obs_identical = true;
  bool tails_identical = true;
  bool have_tail_reference = false;
  DriverReport tail_reference;
  for (const size_t threads : {size_t{1}, size_t{8}}) {
    for (const size_t lanes : {size_t{1}, size_t{4}}) {
      for (const size_t chunk : {size_t{1}, size_t{32}}) {
        obs.num_threads = obs_on.num_threads = threads;
        obs.commit_lanes = obs_on.commit_lanes = lanes;
        obs.prepare_chunk = obs_on.prepare_chunk = chunk;
        recorder.set_enabled(false);
        const DriverReport off_run =
            RestoredDriver(catalog, obs, obs_snapshot)->Run(dup_trace);
        recorder.Reset();
        recorder.set_enabled(true);
        DriverReport on_run = RestoredDriver(catalog, obs_on, obs_snapshot)->Run(dup_trace);
        recorder.set_enabled(false);
        obs_identical = obs_identical && SameDecisions(off_run, on_run) &&
                        on_run.anomalies.empty();
        // The tail-exemplar set keys on simulated latency and request ids
        // only, so it must match between on/off and across the whole grid —
        // including the prepare_chunk axis: re-blocking the batched prepare
        // path may never move a decision or a tail exemplar.
        tails_identical = tails_identical && SameTailExemplars(off_run, on_run);
        if (!have_tail_reference) {
          tail_reference = std::move(on_run);
          have_tail_reference = true;
        } else {
          tails_identical = tails_identical && SameTailExemplars(tail_reference, on_run);
        }
      }
    }
  }
  obs.prepare_chunk = obs_on.prepare_chunk = DriverConfig().prepare_chunk;
  std::printf("  decisions identical, obs on vs off ({1,8} threads x {1,4} lanes x "
              "{1,32} prepare_chunk): %s\n",
              obs_identical ? "yes" : "NO (BUG)");
  std::printf("  tail exemplars identical across the grid (%zu exemplars): %s\n",
              tail_reference.tail_exemplars.size(), tails_identical ? "yes" : "NO (BUG)");

  obs.num_threads = obs_on.num_threads = 8;
  obs.commit_lanes = obs_on.commit_lanes = 4;
  // Overhead is estimated per back-to-back (off, on) pair and the gate takes
  // the MINIMUM over pairs: co-tenant noise on a shared CI box can only
  // inflate a measurement (tracing never makes identical work faster), so
  // the smallest pairwise estimate is the tightest available upper bound on
  // the true tracing cost. Pairing keeps both sides in the same machine
  // conditions; a lone quiet window anywhere in the loop is enough to
  // demonstrate the bound.
  double overhead = 1e300;
  double best_off = 0.0;
  double best_on = 0.0;
  for (int rep = 0; rep < 4; ++rep) {
    double pair_cpu[2] = {0.0, 0.0};
    for (int traced = 0; traced < 2; ++traced) {
      recorder.Reset();
      recorder.set_enabled(traced == 1);
      // Construct the driver outside the timed region: restore cost is not
      // observability overhead. The "on" side arms the watchdog too, so the
      // bound covers tracing + watchdog together.
      const auto driver = RestoredDriver(catalog, traced == 1 ? obs_on : obs, obs_snapshot);
      const double cpu_start = ProcessCpuSeconds();
      driver->Run(dup_trace);
      pair_cpu[traced] = ProcessCpuSeconds() - cpu_start;
      recorder.set_enabled(false);
    }
    const double pair_overhead =
        pair_cpu[0] > 0.0 ? std::max(0.0, (pair_cpu[1] - pair_cpu[0]) / pair_cpu[0]) : 0.0;
    if (pair_overhead < overhead) {
      overhead = pair_overhead;
      best_off = pair_cpu[0];
      best_on = pair_cpu[1];
    }
  }
  const bool overhead_ok = overhead <= 0.03;
  std::printf("  tracing+watchdog overhead (8t/4l, best of 4 paired runs, cpu-s): %.3f off vs "
              "%.3f on = %.2f%%  (required <= 3%%): %s\n",
              best_off, best_on, 100.0 * overhead, overhead_ok ? "ok" : "FAIL");
  std::remove(obs_snapshot.c_str());

  // The export run checkpoints into (and restores from) its own private seed
  // file — checkpoint writes overwrite the snapshot they restored, so it
  // cannot share the grid's seed. Its rings get more headroom (the
  // per-request route/generate/merge_step spans roughly double the event
  // volume) so the tail-attribution gate below isn't degraded by drops.
  DriverConfig export_config = obs_on;
  export_config.checkpoint_interval_s = 60.0;  // trace seconds; off-peak gate relaxed above
  const std::string export_snapshot = WriteSeedSnapshot(profile, catalog, obs, "obsexport");
  recorder.Reset();
  recorder.set_ring_capacity(1 << 15);
  recorder.set_enabled(true);
  const auto export_driver = RestoredDriver(catalog, export_config, export_snapshot);
  const DriverReport export_report = export_driver->Run(dup_trace);
  recorder.set_enabled(false);
  std::remove(export_snapshot.c_str());

  // Tail attribution over the recorded spans: stitch every request's
  // prepare/lane/merge spans into a timeline and demand that >= 90% of the
  // tail (p99) cohort's wall time lands in named stages — the "can the trace
  // explain the p99" contract ci.sh re-checks offline via tail_report.
  const TraceRecorder::Snapshot obs_snapshot_events = recorder.TakeSnapshot();
  const std::vector<RequestTimeline> timelines =
      AssembleTimelines(FlattenSnapshot(obs_snapshot_events));
  const TailAttribution attribution = AttributeTails(timelines);
  const bool attribution_ok = attribution.tail_attribution_fraction >= 0.90;
  std::printf("  per-request timelines assembled: %zu  (of %zu requests)\n",
              timelines.size(), dup_trace.size());
  std::printf("  tail attribution (p99 cohort, %zu requests): %.1f%% of wall time in named "
              "stages  (required >= 90%%): %s\n",
              attribution.tail_count, 100.0 * attribution.tail_attribution_fraction,
              attribution_ok ? "ok" : "FAIL");
  const bool silent_ok = export_report.anomalies.empty();
  std::printf("  armed watchdog silent on the clean run: %s  (tail exemplars: %zu)\n",
              silent_ok ? "yes" : "NO (BUG)", export_report.tail_exemplars.size());

  const std::string trace_path =
      options.trace_out.empty()
          ? "/tmp/iccache_trace_" + std::to_string(::getpid()) + ".json"
          : options.trace_out;
  const std::string metrics_path =
      options.metrics_out.empty()
          ? "/tmp/iccache_metrics_" + std::to_string(::getpid()) + ".prom"
          : options.metrics_out;
  const bool export_ok = ExportObservability(*export_driver, trace_path, metrics_path,
                                             /*expect_all_stages=*/true);
  std::printf("  export run checkpoints taken: %zu  (required > 0): %s\n",
              export_report.checkpoints_taken,
              export_report.checkpoints_taken > 0 ? "ok" : "FAIL");

  if (!options.json_out.empty()) {
    const BenchRunRecord record =
        MakeBenchRecord("driver_throughput_acceptance", export_config, export_report,
                        dup_trace.size(), attribution.tail_attribution_fraction);
    const Status written = WriteBenchRun(options.json_out, record);
    std::printf("  bench json: %s  (%zu metrics): %s\n", options.json_out.c_str(),
                record.metrics.size(), written.ok() ? "ok" : written.ToString().c_str());
    if (!written.ok()) {
      return 1;
    }
  }

  const bool obs_ok = obs_identical && tails_identical && overhead_ok && export_ok &&
                      attribution_ok && silent_ok && export_report.checkpoints_taken > 0;

  // --- Watchdog gate: injected stage-0 hit-rate collapse -------------------
  // The same armed rule set that stayed silent above must fire when the
  // trace's tail goes all-unique and the hit rate falls off a cliff.
  benchutil::PrintTitle("Acceptance: SLO watchdog flags an injected stage-0 collapse");
  const std::vector<Request> collapse_trace = MakeCollapseTrace(requests);
  DriverConfig collapse_config = obs_on;
  collapse_config.num_threads = 8;
  collapse_config.commit_lanes = 4;
  const std::string collapse_snapshot =
      WriteSeedSnapshot(profile, catalog, obs, "collapse");
  const DriverReport collapse_report =
      RestoredDriver(catalog, collapse_config, collapse_snapshot)->Run(collapse_trace);
  std::remove(collapse_snapshot.c_str());
  size_t collapse_anomalies = 0;
  for (const WatchdogEvent& event : collapse_report.anomalies) {
    if (event.rule == WatchdogRule::kStage0HitRateDrop) {
      ++collapse_anomalies;
      std::printf("  anomaly @ window %llu: %s\n",
                  static_cast<unsigned long long>(event.window), event.detail.c_str());
    }
  }
  const bool collapse_ok = collapse_anomalies > 0;
  std::printf("  injected collapse (all-unique tail from request %zu): hit-rate-drop "
              "anomalies=%zu  (required > 0): %s\n",
              (collapse_trace.size() * 3) / 5, collapse_anomalies,
              collapse_ok ? "ok" : "FAIL");

  return pipeline_ok && stage0_ok && obs_ok && collapse_ok ? 0 : 1;
}

}  // namespace
}  // namespace iccache

int main(int argc, char** argv) {
  using namespace iccache;
  const Options options = ParseOptions(argc, argv);

  if (options.snapshot_bench > 0) {
    return RunSnapshotBench(options.snapshot_bench);
  }

  const DatasetProfile profile = benchutil::ScaledProfile(DatasetId::kLmsysChat, kSeedPool);
  TraceConfig trace;
  trace.kind = TraceKind::kPoisson;
  trace.mean_rps = 8.0;
  trace.duration_s = static_cast<double>(options.requests) / trace.mean_rps;
  trace.seed = kSeed ^ 0x7ace;
  const std::vector<Request> requests = ServingDriver::MakeWorkload(profile, trace, kSeed ^ 0x9e4);

  ModelCatalog catalog;
  if (options.acceptance) {
    return RunAcceptance(options, profile, catalog, requests);
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  benchutil::PrintTitle("Serving-driver throughput: 1 thread vs N threads (LMSys trace)");
  std::printf("  requests=%zu  seed_pool=%zu  shards=8  batch_window=64  hw_cores=%u  "
              "stage0=%s\n",
              requests.size(), kSeedPool, hw, options.stage0 ? "on" : "off");
  std::printf("  %-7s %-8s %9s %10s %8s %8s %6s %9s %9s %9s %9s %8s %7s %8s\n", "index",
              "threads", "wall (s)", "req/s", "speedup", "maint(s)", "stallW", "e2e p50",
              "e2e p99", "ttft p50", "ttft p99", "offload%", "s0hit%", "tokSaved");

  bool decisions_match = true;
  for (RetrievalBackendKind backend : options.backends) {
    if (!options.sweep) {
      std::printf("  (sweep disabled)\n");
      break;
    }
    // One seed pool per backend, snapshotted once: every thread-count cell
    // below restores the SAME file, so rows are comparable by construction.
    const std::string seed_snapshot =
        WriteSeedSnapshot(profile, catalog, MakeConfig(1, backend, options.stage0),
                          RetrievalBackendKindName(backend));
    DriverReport baseline;
    for (size_t threads : thread_counts) {
      const auto driver =
          RestoredDriver(catalog, MakeConfig(threads, backend, options.stage0), seed_snapshot);
      const DriverReport report = driver->Run(requests);
      if (threads == thread_counts.front()) {
        baseline = report;
      } else {
        decisions_match = decisions_match && SameDecisions(baseline, report);
      }
      const double speedup =
          baseline.wall_seconds > 0.0 ? baseline.wall_seconds / report.wall_seconds : 0.0;
      std::printf(
          "  %-7s %-8zu %9.3f %10.0f %7.2fx %8.3f %6zu %9.4f %9.4f %9.4f %9.4f %7.1f%% "
          "%6.1f%% %8lld\n",
          RetrievalBackendKindName(backend), threads, report.wall_seconds,
          report.requests_per_second, speedup, report.maintenance_seconds,
          report.maintenance_stalled_windows, report.p50_latency_s, report.p99_latency_s,
          report.p50_ttft_s, report.p99_ttft_s,
          100.0 * static_cast<double>(report.offloaded_requests) /
              static_cast<double>(report.total_requests),
          100.0 * static_cast<double>(report.stage0_hits) /
              static_cast<double>(report.total_requests),
          static_cast<long long>(report.stage0_tokens_saved));
    }
    std::remove(seed_snapshot.c_str());

    // Amdahl check on the measured three-bucket split: the pool-parallel
    // work must dominate for the 8-thread speedup target to be reachable.
    const double parallel_fraction =
        baseline.wall_seconds > 0.0 ? baseline.prepare_seconds / baseline.wall_seconds : 0.0;
    const double projected_8t = 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / 8.0);
    std::printf(
        "  [%s] parallel %.1f%% | serial %.1f%% | maintenance %.1f%%  "
        "(Amdahl-projected 8-thread speedup: %.2fx)\n",
        RetrievalBackendKindName(backend), 100.0 * parallel_fraction,
        baseline.wall_seconds > 0.0 ? 100.0 * baseline.serial_seconds / baseline.wall_seconds
                                    : 0.0,
        baseline.wall_seconds > 0.0
            ? 100.0 * baseline.maintenance_seconds / baseline.wall_seconds
            : 0.0,
        projected_8t);
  }
  if (options.sweep) {
    std::printf("  routing decisions identical across thread counts: %s\n",
                decisions_match ? "yes" : "NO (BUG)");
  } else {
    std::printf("  routing-decision determinism check: skipped (sweep disabled)\n");
  }

  // --- Lifecycle maintenance demo: eviction holds the pool at capacity ----
  benchutil::PrintTitle("Example lifecycle under a byte budget (sharded pool)");
  const int64_t capacity = options.capacity_kb * 1024;
  DriverConfig lifecycle_config =
      MakeConfig(/*num_threads=*/8, options.backends.front(), options.stage0);
  bool capacity_held = true;
  if (options.maintenance) {
    lifecycle_config.cache.cache.capacity_bytes = capacity;
    // Tick cadence scaled to the trace so decay/eviction and off-peak replay
    // are visible within the default 500-second run (production default is
    // hourly). The synthetic trace keeps the cluster saturated (load > 1),
    // so the off-peak gate is relaxed here or replay would never fire.
    lifecycle_config.manager.decay_interval_s = 60.0;
    lifecycle_config.replay_min_interval_s = 120.0;
    lifecycle_config.replay_load_threshold = 1e9;
  } else {
    // Footgun baseline: no budget, no decay/eviction ticks — unbounded growth.
    lifecycle_config.lifecycle_maintenance = false;
    lifecycle_config.offpeak_replay = false;
  }
  if (!options.snapshot_path.empty()) {
    // Periodic crash-recovery checkpoints between batch windows; the write
    // cost surfaces in the p50/p99 columns below.
    lifecycle_config.snapshot_path = options.snapshot_path;
    lifecycle_config.checkpoint_interval_s = 60.0;  // trace seconds
  }
  std::unique_ptr<ServingDriver> driver;
  bool persist_ok = true;
  if (!options.restore_path.empty()) {
    // Warm start: restore the learned pool instead of re-seeding it.
    driver = std::make_unique<ServingDriver>(lifecycle_config, &catalog);
    const auto restore_start = std::chrono::steady_clock::now();
    const Status restored = driver->RestoreSnapshot(options.restore_path);
    const auto restore_end = std::chrono::steady_clock::now();
    if (!restored.ok()) {
      std::fprintf(stderr, "restore failed: %s\n", restored.ToString().c_str());
      return 1;
    }
    std::printf("  warm start: restored %zu examples (%.0f KB) in %.0f ms from %s "
                "(native hnsw load: %s)\n",
                driver->cache().size(), static_cast<double>(driver->cache().used_bytes()) / 1024.0,
                1000.0 * std::chrono::duration<double>(restore_end - restore_start).count(),
                options.restore_path.c_str(),
                driver->restore_report().native_index_load ? "yes" : "no (rebuilt)");
  } else {
    driver = MakeDriver(profile, catalog, lifecycle_config);
  }
  // --trace-out / --metrics-out: record the lifecycle demo run and export it.
  const bool export_obs = !options.trace_out.empty() || !options.metrics_out.empty();
  if (export_obs) {
    TraceRecorder::Global().Reset();
    TraceRecorder::Global().set_enabled(true);
  }
  const DriverReport report = driver->Run(requests);
  if (export_obs) {
    TraceRecorder::Global().set_enabled(false);
  }
  const int64_t used = driver->cache().used_bytes();
  const double watermark_bytes = static_cast<double>(capacity) *
                                 lifecycle_config.cache.cache.high_watermark;
  std::printf("  maintenance=%s  capacity=%lld KB  requests=%zu\n",
              options.maintenance ? "on" : "off",
              static_cast<long long>(options.maintenance ? options.capacity_kb : -1),
              requests.size());
  std::printf(
      "  pool: %zu examples, %.0f KB used  admitted=%zu evicted=%zu  "
      "maintenance_runs=%zu replay_passes=%zu (replayed=%zu improved=%zu)\n",
      driver->cache().size(), static_cast<double>(used) / 1024.0, report.admitted_examples,
      report.evicted_examples, report.maintenance_runs, report.replay_passes,
      report.replayed_examples, report.improved_examples);
  std::printf("  maintenance booked off the serial path: %.3f s  stalled windows=%zu\n",
              report.maintenance_seconds, report.maintenance_stalled_windows);
  if (options.maintenance) {
    capacity_held = static_cast<double>(used) <= watermark_bytes;
    std::printf("  pool held at <= capacity * high_watermark (%.0f KB): %s\n",
                watermark_bytes / 1024.0, capacity_held ? "yes" : "NO (BUG)");
  } else {
    benchutil::PrintNote("no budget: pool grows with every admission (the pre-lifecycle footgun)");
  }
  if (!options.snapshot_path.empty()) {
    const Status saved = driver->SaveSnapshot(options.snapshot_path);
    persist_ok = saved.ok();
    std::printf("  checkpoints=%zu  snapshot write p50=%.1f ms p99=%.1f ms  final snapshot: %s\n",
                report.checkpoints_taken, report.checkpoint_p50_ms, report.checkpoint_p99_ms,
                saved.ok() ? options.snapshot_path.c_str() : saved.ToString().c_str());
  }

  bool obs_export_ok = true;
  if (export_obs) {
    // The demo run's stage mix depends on the flags (stage-0, checkpointing
    // may be off), so only the acceptance mode demands every span category.
    obs_export_ok = ExportObservability(*driver, options.trace_out, options.metrics_out,
                                        /*expect_all_stages=*/false);
  }
  if (!options.json_out.empty()) {
    const BenchRunRecord record =
        MakeBenchRecord("driver_throughput_lifecycle", lifecycle_config, report,
                        requests.size(), /*tail_attribution=*/-1.0);
    const Status written = WriteBenchRun(options.json_out, record);
    std::printf("  bench json: %s  (%zu metrics): %s\n", options.json_out.c_str(),
                record.metrics.size(), written.ok() ? "ok" : written.ToString().c_str());
    obs_export_ok = obs_export_ok && written.ok();
  }

  if (hw < 2) {
    benchutil::PrintNote(
        "single hardware core visible: measured speedup is bounded at ~1x here; "
        "the projected column shows the multi-core expectation");
  }
  benchutil::PrintNote("host pipeline throughput only; simulated latency is thread-invariant");
  return decisions_match && capacity_held && persist_ok && obs_export_ok ? 0 : 1;
}
