// Concurrent serving-driver throughput: host-side pipeline requests/sec and
// simulated p50/p99 completion latency at 1 vs N worker threads over the same
// synthetic LMSys trace. The batched two-phase pipeline guarantees identical
// routing decisions at every thread count, so the speedup column isolates the
// parallel stage-1/stage-2 preparation work (embed + sharded retrieval +
// proxy scoring) that the ThreadPool accelerates.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/serving/driver.h"

namespace iccache {
namespace {

constexpr uint64_t kSeed = 0xd21e5;
constexpr size_t kSeedPool = 2000;

DriverConfig MakeConfig(size_t num_threads) {
  DriverConfig config;
  config.num_threads = num_threads;
  config.batch_window = 64;
  config.cache.num_shards = 8;
  config.seed = kSeed;
  return config;
}

std::unique_ptr<ServingDriver> MakeDriver(const DatasetProfile& profile,
                                          const ModelCatalog& catalog, size_t num_threads) {
  auto driver = std::make_unique<ServingDriver>(MakeConfig(num_threads), &catalog);
  QueryGenerator seeder(profile, kSeed ^ 0x5eedb);
  for (size_t i = 0; i < kSeedPool; ++i) {
    driver->SeedExample(seeder.Next(), 0.0);
  }
  return driver;
}

bool SameDecisions(const DriverReport& a, const DriverReport& b) {
  if (a.decisions.size() != b.decisions.size()) {
    return false;
  }
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    if (a.decisions[i].request_id != b.decisions[i].request_id ||
        a.decisions[i].model_name != b.decisions[i].model_name ||
        a.decisions[i].offloaded != b.decisions[i].offloaded ||
        a.decisions[i].num_examples != b.decisions[i].num_examples) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace iccache

int main() {
  using namespace iccache;

  const DatasetProfile profile = benchutil::ScaledProfile(DatasetId::kLmsysChat, kSeedPool);
  TraceConfig trace;
  trace.kind = TraceKind::kPoisson;
  trace.mean_rps = 8.0;
  trace.duration_s = 500.0;  // ~4000 requests
  trace.seed = kSeed ^ 0x7ace;
  const std::vector<Request> requests = ServingDriver::MakeWorkload(profile, trace, kSeed ^ 0x9e4);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  ModelCatalog catalog;
  benchutil::PrintTitle("Serving-driver throughput: 1 thread vs N threads (LMSys trace)");
  std::printf("  requests=%zu  seed_pool=%zu  shards=8  batch_window=64  hw_cores=%u\n",
              requests.size(), kSeedPool, hw);
  std::printf("  %-8s %10s %12s %9s %10s %10s %9s\n", "threads", "wall (s)", "req/s", "speedup",
              "p50 (s)", "p99 (s)", "offload%");

  DriverReport baseline;
  bool decisions_match = true;
  for (size_t threads : thread_counts) {
    const auto driver = MakeDriver(profile, catalog, threads);
    const DriverReport report = driver->Run(requests);
    if (threads == 1) {
      baseline = report;
    } else {
      decisions_match = decisions_match && SameDecisions(baseline, report);
    }
    const double speedup =
        baseline.wall_seconds > 0.0 ? baseline.wall_seconds / report.wall_seconds : 0.0;
    std::printf("  %-8zu %10.3f %12.0f %8.2fx %10.4f %10.4f %8.1f%%\n", threads,
                report.wall_seconds, report.requests_per_second, speedup, report.p50_latency_s,
                report.p99_latency_s,
                100.0 * static_cast<double>(report.offloaded_requests) /
                    static_cast<double>(report.total_requests));
  }

  // Amdahl check on the measured phase split: the parallel preparation phase
  // must dominate for the 8-thread speedup target to be reachable at all.
  const double parallel_fraction =
      baseline.wall_seconds > 0.0 ? baseline.prepare_seconds / baseline.wall_seconds : 0.0;
  const double projected_8t = 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / 8.0);
  std::printf("  parallel-phase fraction: %.1f%%  (Amdahl-projected 8-thread speedup: %.2fx)\n",
              100.0 * parallel_fraction, projected_8t);
  std::printf("  routing decisions identical across thread counts: %s\n",
              decisions_match ? "yes" : "NO (BUG)");
  if (hw < 2) {
    benchutil::PrintNote(
        "single hardware core visible: measured speedup is bounded at ~1x here; "
        "the projected column shows the multi-core expectation");
  }
  benchutil::PrintNote("host pipeline throughput only; simulated latency is thread-invariant");
  return decisions_match ? 0 : 1;
}
