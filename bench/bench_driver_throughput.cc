// Concurrent serving-driver throughput: host-side pipeline requests/sec and
// simulated p50/p99 completion latency at 1 vs N worker threads over the same
// synthetic LMSys trace, for each configured stage-1 retrieval backend. The
// batched two-phase pipeline guarantees identical routing decisions at every
// thread count, so the speedup column isolates the parallel stage-1/stage-2
// preparation work (embed + sharded retrieval + proxy scoring) that the
// ThreadPool accelerates.
//
// Flags:
//   --index=flat,hnsw   comma-separated retrieval backends to sweep
//                       (flat | kmeans | hnsw; default "flat,hnsw")
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/retrieval_backend.h"
#include "src/serving/driver.h"

namespace iccache {
namespace {

constexpr uint64_t kSeed = 0xd21e5;
constexpr size_t kSeedPool = 2000;

DriverConfig MakeConfig(size_t num_threads, RetrievalBackendKind backend) {
  DriverConfig config;
  config.num_threads = num_threads;
  config.batch_window = 64;
  config.cache.num_shards = 8;
  config.cache.cache.retrieval.kind = backend;
  config.seed = kSeed;
  return config;
}

std::unique_ptr<ServingDriver> MakeDriver(const DatasetProfile& profile,
                                          const ModelCatalog& catalog, size_t num_threads,
                                          RetrievalBackendKind backend) {
  auto driver = std::make_unique<ServingDriver>(MakeConfig(num_threads, backend), &catalog);
  QueryGenerator seeder(profile, kSeed ^ 0x5eedb);
  for (size_t i = 0; i < kSeedPool; ++i) {
    driver->SeedExample(seeder.Next(), 0.0);
  }
  return driver;
}

std::vector<RetrievalBackendKind> ParseBackends(int argc, char** argv) {
  std::string list = "flat,hnsw";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--index=", 0) == 0) {
      list = arg.substr(8);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(2);
    }
  }
  std::vector<RetrievalBackendKind> backends;
  size_t start = 0;
  while (start <= list.size()) {
    const size_t comma = list.find(',', start);
    const std::string name =
        list.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    RetrievalBackendKind kind;
    if (!ParseRetrievalBackendKind(name, &kind)) {
      std::fprintf(stderr, "unknown retrieval backend: %s (want flat|kmeans|hnsw)\n",
                   name.c_str());
      std::exit(2);
    }
    backends.push_back(kind);
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return backends;
}

bool SameDecisions(const DriverReport& a, const DriverReport& b) {
  if (a.decisions.size() != b.decisions.size()) {
    return false;
  }
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    if (a.decisions[i].request_id != b.decisions[i].request_id ||
        a.decisions[i].model_name != b.decisions[i].model_name ||
        a.decisions[i].offloaded != b.decisions[i].offloaded ||
        a.decisions[i].num_examples != b.decisions[i].num_examples) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace iccache

int main(int argc, char** argv) {
  using namespace iccache;
  const std::vector<RetrievalBackendKind> backends = ParseBackends(argc, argv);

  const DatasetProfile profile = benchutil::ScaledProfile(DatasetId::kLmsysChat, kSeedPool);
  TraceConfig trace;
  trace.kind = TraceKind::kPoisson;
  trace.mean_rps = 8.0;
  trace.duration_s = 500.0;  // ~4000 requests
  trace.seed = kSeed ^ 0x7ace;
  const std::vector<Request> requests = ServingDriver::MakeWorkload(profile, trace, kSeed ^ 0x9e4);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<size_t> thread_counts = {1, 2, 4, 8};

  ModelCatalog catalog;
  benchutil::PrintTitle("Serving-driver throughput: 1 thread vs N threads (LMSys trace)");
  std::printf("  requests=%zu  seed_pool=%zu  shards=8  batch_window=64  hw_cores=%u\n",
              requests.size(), kSeedPool, hw);
  std::printf("  %-7s %-8s %10s %12s %9s %10s %10s %9s\n", "index", "threads", "wall (s)",
              "req/s", "speedup", "p50 (s)", "p99 (s)", "offload%");

  bool decisions_match = true;
  for (RetrievalBackendKind backend : backends) {
    DriverReport baseline;
    for (size_t threads : thread_counts) {
      const auto driver = MakeDriver(profile, catalog, threads, backend);
      const DriverReport report = driver->Run(requests);
      if (threads == thread_counts.front()) {
        baseline = report;
      } else {
        decisions_match = decisions_match && SameDecisions(baseline, report);
      }
      const double speedup =
          baseline.wall_seconds > 0.0 ? baseline.wall_seconds / report.wall_seconds : 0.0;
      std::printf("  %-7s %-8zu %10.3f %12.0f %8.2fx %10.4f %10.4f %8.1f%%\n",
                  RetrievalBackendKindName(backend), threads, report.wall_seconds,
                  report.requests_per_second, speedup, report.p50_latency_s,
                  report.p99_latency_s,
                  100.0 * static_cast<double>(report.offloaded_requests) /
                      static_cast<double>(report.total_requests));
    }

    // Amdahl check on the measured phase split: the parallel preparation
    // phase must dominate for the 8-thread speedup target to be reachable.
    const double parallel_fraction =
        baseline.wall_seconds > 0.0 ? baseline.prepare_seconds / baseline.wall_seconds : 0.0;
    const double projected_8t = 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / 8.0);
    std::printf(
        "  [%s] parallel-phase fraction: %.1f%%  (Amdahl-projected 8-thread speedup: %.2fx)\n",
        RetrievalBackendKindName(backend), 100.0 * parallel_fraction, projected_8t);
  }
  std::printf("  routing decisions identical across thread counts: %s\n",
              decisions_match ? "yes" : "NO (BUG)");
  if (hw < 2) {
    benchutil::PrintNote(
        "single hardware core visible: measured speedup is bounded at ~1x here; "
        "the projected column shows the multi-core expectation");
  }
  benchutil::PrintNote("host pipeline throughput only; simulated latency is thread-invariant");
  return decisions_match ? 0 : 1;
}
