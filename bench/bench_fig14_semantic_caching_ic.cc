// Figure 14: IC-Cache augments semantic caching deployments. At a given cache
// hit rate, "Semantic w/o IC" returns the cached response verbatim while
// "Semantic w/ IC" repurposes the retrieved entries as in-context examples
// for the small model. Paper: up to 28% quality improvement, i.e., ~4.1x
// higher usable hit rate at the same quality target.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "src/baselines/semantic_cache.h"

namespace iccache {
namespace {

void Evaluate(DatasetId dataset) {
  DatasetProfile profile = GetDatasetProfile(dataset);
  profile.num_topics /= 2;
  QueryGenerator gen(profile, 0x14a);
  ModelCatalog catalog;
  const ModelProfile& small = catalog.Get("gemma-2-2b");
  const ModelProfile& large = catalog.Get("gemma-2-27b");
  GenerationSimulator sim(0x14b);
  PairwiseJudge judge;
  Rng rng(0x14c);
  auto embedder = std::make_shared<HashingEmbedder>();

  SemanticCache cache(embedder, 1.0);
  for (const Request& req : gen.Generate(3000)) {
    const GenerationResult result = sim.Generate(large, req, {});
    cache.Put(req, result.latent_quality, result.output_tokens);
  }
  const std::vector<Request> queries = gen.Generate(350);
  // One embed per query for the whole sweep — the Lookup and LookupK probes
  // at every threshold reuse the same vector instead of re-embedding.
  std::vector<std::vector<float>> query_embeddings;
  query_embeddings.reserve(queries.size());
  for (const Request& query : queries) {
    query_embeddings.push_back(embedder->Embed(query.text));
  }

  std::printf("  %s:\n", DatasetName(dataset));
  std::printf("    %-10s %-10s %-18s %-18s\n", "threshold", "hit rate", "w/o IC win%",
              "w/ IC win%");
  for (double threshold : {0.97, 0.9, 0.8, 0.65, 0.0}) {
    cache.set_similarity_threshold(threshold);
    int hits = 0;
    SideBySideStats without_ic;  // cached response vs large-model generation
    SideBySideStats with_ic;     // small model + retrieved example vs large
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const Request& query = queries[qi];
      const double large_quality = sim.Generate(large, query, {}).latent_quality;
      const auto hit = cache.Lookup(query_embeddings[qi]);
      if (!hit.has_value()) {
        // Miss: both deployments fall back to normal (large) generation.
        without_ic.Add(0.0);
        with_ic.Add(0.0);
        continue;
      }
      ++hits;
      const double relevance = StructuralRelevance(query, hit->entry.request, rng);
      const double reused =
          sim.ReusedResponseQuality(hit->entry.response_quality, relevance);
      without_ic.Add(judge.Compare(reused, large_quality));

      // IC deployment: the retrieved entries become in-context examples.
      std::vector<ExampleView> views;
      for (const SemanticCacheHit& top : cache.LookupK(query_embeddings[qi], 4)) {
        ExampleView view;
        view.relevance = StructuralRelevance(query, top.entry.request, rng);
        view.quality = top.entry.response_quality;
        view.source_capability = large.capability;
        view.tokens = top.entry.request.input_tokens + top.entry.response_tokens;
        views.push_back(view);
      }
      const double augmented = sim.Generate(small, query, views).latent_quality;
      with_ic.Add(judge.Compare(augmented, large_quality));
    }
    std::printf("    %-10.2f %-10.2f %-18.1f %-18.1f\n", threshold,
                static_cast<double>(hits) / queries.size(), 100.0 * without_ic.win_rate(),
                100.0 * with_ic.win_rate());
  }
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::benchutil::PrintTitle("Figure 14: IC-Cache augments semantic caching");
  iccache::Evaluate(iccache::DatasetId::kNaturalQuestions);
  iccache::Evaluate(iccache::DatasetId::kLmsysChat);
  iccache::benchutil::PrintNote(
      "paper: w/ IC holds quality as the hit rate rises, up to +28% win rate over "
      "response reuse at loose thresholds");
  return 0;
}
