// Figure 7: Pearson correlation between an example's embedding similarity and
// its actual helpfulness is weak (paper: 0.044 LMSys, 0.064 Alpaca, 0.153
// Orca, 0.164 Natural Questions, 0.224 MS MARCO) — the motivation for the
// stage-2 proxy utility model. Helpfulness of an example here is measured the
// way the paper defines it end-to-end: the quality delta of the small model's
// response with vs without that single example prepended.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/common/mathutil.h"

namespace iccache {
namespace {

double CorrelationFor(DatasetId dataset) {
  const DatasetProfile profile = benchutil::ScaledProfile(dataset, 2000);
  QueryGenerator gen(profile, 0x7a + static_cast<uint64_t>(dataset));
  HashingEmbedder embedder;
  ModelCatalog catalog;
  const ModelProfile& small = catalog.Get("gemma-2-2b");
  const ModelProfile& large = catalog.Get("gemma-2-27b");
  GenerationSimulator sim(0x7b);
  Rng rng(0x7c);

  // Candidate pool of cached examples with large-model responses.
  std::vector<Request> pool = gen.Generate(1200);
  std::vector<double> pool_quality(pool.size());
  std::vector<std::vector<float>> pool_embeddings(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    pool_quality[i] = sim.Generate(large, pool[i], {}).latent_quality;
    pool_embeddings[i] = embedder.Embed(pool[i].text);
  }

  std::vector<double> similarities;
  std::vector<double> helpfulness;
  for (int q = 0; q < 400; ++q) {
    const Request query = gen.Next();
    const std::vector<float> query_embedding = embedder.Embed(query.text);
    const size_t pick = rng.UniformInt(pool.size());

    ExampleView view;
    view.relevance = StructuralRelevance(query, pool[pick], rng);
    view.quality = pool_quality[pick];
    view.source_capability = large.capability;
    view.tokens = pool[pick].input_tokens + 150;

    const double with_example = sim.Generate(small, query, {view}).latent_quality;
    const double without = sim.Generate(small, query, {}).latent_quality;
    similarities.push_back(CosineSimilarity(query_embedding, pool_embeddings[pick]));
    helpfulness.push_back(with_example - without);
  }
  return PearsonCorrelation(similarities, helpfulness);
}

}  // namespace
}  // namespace iccache

int main() {
  using iccache::DatasetId;
  iccache::benchutil::PrintTitle(
      "Figure 7: Pearson correlation between example similarity and helpfulness");
  const std::pair<DatasetId, const char*> rows[] = {
      {DatasetId::kLmsysChat, "0.044"},      {DatasetId::kAlpaca, "0.064"},
      {DatasetId::kOpenOrca, "0.153"},       {DatasetId::kNaturalQuestions, "0.164"},
      {DatasetId::kMsMarco, "0.224"},
  };
  std::printf("  %-20s %-12s %s\n", "dataset", "measured r", "paper");
  iccache::benchutil::PrintRule();
  for (const auto& [dataset, paper] : rows) {
    std::printf("  %-20s %-12.3f %s\n", iccache::DatasetName(dataset),
                iccache::CorrelationFor(dataset), paper);
  }
  iccache::benchutil::PrintNote(
      "takeaway: similarity alone is a weak utility proxy (r well below 0.3 everywhere)");
  return 0;
}
