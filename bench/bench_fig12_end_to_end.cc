// Figure 12: end-to-end online serving over a 30-minute bursty trace.
//
// Four policies replay the identical request stream on an identical GPU
// cluster (two Gemma-27B replicas + four Gemma-2B replicas):
//   * IC-Cache      — bandit router + two-stage selection + load bias;
//   * RouteLLM+     — difficulty-classifier routing (load-oblivious) with the
//                     same example augmentation on the small model;
//   * Always-small  — every request on Gemma-2B, no examples;
//   * Always-large  — every request on Gemma-27B.
//
// Reported per 5-minute window, as in the paper: offload ratio (a-b), average
// E2E latency (c-d), and win rate vs the always-large reference (e-f) for
// MS MARCO and Natural Questions; win-rate-only panels (g-h) use the Gemini
// pair on LMSys-Chat and OpenOrca.
//
// Paper headline: IC-Cache sustains high offload ratios under burst, keeps
// latency at small-model levels (vs >100x blowups for always-large during
// bursts), and holds ~50% win rate vs the large model; throughput improves
// 1.4-5.9x and latency drops 28-71% overall (section 6.2).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/route_llm.h"
#include "src/common/stats.h"
#include "src/serving/cluster.h"
#include "src/workload/trace.h"

namespace iccache {
namespace {

enum class Policy { kIcCache, kRouteLlmPlus, kAlwaysSmall, kAlwaysLarge };

const char* PolicyName(Policy policy) {
  switch (policy) {
    case Policy::kIcCache:
      return "IC-Cache";
    case Policy::kRouteLlmPlus:
      return "RouteLLM+";
    case Policy::kAlwaysSmall:
      return "Always-small";
    case Policy::kAlwaysLarge:
      return "Always-large";
  }
  return "?";
}

struct RequestRecord {
  bool offloaded = false;
  double quality = 0.0;
  double latency = 0.0;
  double arrival = 0.0;
};

struct PolicyRun {
  std::vector<RequestRecord> records;
};

// Replays the request stream under one policy, with its own service state and
// its own cluster instance (identical hardware).
PolicyRun RunPolicy(Policy policy, DatasetId dataset,
                    const std::pair<std::string, std::string>& models,
                    const std::vector<double>& arrivals, bool simulate_cluster, uint64_t seed) {
  benchutil::BundleOptions options;
  options.pool_size = 2500;
  options.warmup_requests = 500;
  options.models = models;
  options.seed = seed;
  auto bundle = benchutil::MakeBundle(dataset, options);
  QueryGenerator request_gen(bundle->profile, seed ^ 0xf00d);  // shared stream across policies
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  RouteLlmRouter route_llm;  // load-oblivious classifier baseline
  Rng rng(seed ^ 0x515);

  ClusterSim cluster;
  ServerConfig server_config;
  cluster.AddPool(large, 2, server_config);
  cluster.AddPool(small, 4, server_config);

  PolicyRun run;
  run.records.reserve(arrivals.size());
  uint64_t serving_id = 1;
  for (double t : arrivals) {
    if (simulate_cluster) {
      cluster.AdvanceTo(t);
    }
    Request req = request_gen.Next();
    req.arrival_time = t;

    RequestRecord record;
    record.arrival = t;
    GenerationResult generation;
    std::string serving_model;

    switch (policy) {
      case Policy::kIcCache: {
        bundle->service->ObserveLoad(cluster.PoolLoad(large.name));
        const ServeOutcome outcome = bundle->service->ServeRequest(req, t);
        record.offloaded = outcome.offloaded;
        generation = outcome.generation;
        serving_model = outcome.generation.model_name;
        break;
      }
      case Policy::kRouteLlmPlus: {
        const bool to_large = route_llm.RouteToLarge(req);
        record.offloaded = !to_large;
        if (to_large) {
          generation = sim.Generate(large, req, {});
          serving_model = large.name;
        } else {
          const auto selected = bundle->service->selector().Select(req, small, t);
          std::vector<ExampleView> views;
          for (const auto& sel : selected) {
            const Example* example = bundle->service->cache().Get(sel.example_id);
            ExampleView view;
            view.relevance = StructuralRelevance(req, example->request, rng);
            view.quality = example->response_quality;
            view.source_capability = example->source_capability;
            view.tokens = example->PromptTokens();
            views.push_back(view);
          }
          generation = sim.Generate(small, req, views);
          serving_model = small.name;
        }
        break;
      }
      case Policy::kAlwaysSmall:
        record.offloaded = true;
        generation = sim.Generate(small, req, {});
        serving_model = small.name;
        break;
      case Policy::kAlwaysLarge:
        record.offloaded = false;
        generation = sim.Generate(large, req, {});
        serving_model = large.name;
        break;
    }

    record.quality = generation.latent_quality;
    if (simulate_cluster) {
      ServingRequest serving;
      serving.id = serving_id++;
      serving.arrival_time = t;
      serving.prompt_tokens = generation.prompt_tokens;
      serving.output_tokens = generation.output_tokens;
      cluster.Submit(serving_model, serving);
    }
    run.records.push_back(record);
  }

  if (simulate_cluster) {
    cluster.RunUntilIdle();
    // Completions arrive out of order; map back via id (1-based submit order).
    std::vector<double> latency(run.records.size(), 0.0);
    for (const CompletionRecord& completion : cluster.completions()) {
      latency[completion.id - 1] = completion.E2eLatency();
    }
    for (size_t i = 0; i < run.records.size(); ++i) {
      run.records[i].latency = latency[i];
    }
  }
  return run;
}

void WindowedReport(DatasetId dataset, const std::pair<std::string, std::string>& models,
                    bool simulate_cluster, double mean_rps, uint64_t seed) {
  TraceConfig trace_config;
  trace_config.kind = TraceKind::kDiurnalBursty;
  trace_config.mean_rps = mean_rps;
  trace_config.duration_s = 1800.0;
  trace_config.bursts_per_hour = 8.0;
  trace_config.burst_max_multiplier = 10.0;
  trace_config.seed = seed;
  ArrivalTrace trace(trace_config);
  const std::vector<double> arrivals = trace.GenerateArrivals();

  const Policy policies[] = {Policy::kIcCache, Policy::kRouteLlmPlus, Policy::kAlwaysSmall,
                             Policy::kAlwaysLarge};
  std::vector<PolicyRun> runs;
  for (Policy policy : policies) {
    runs.push_back(RunPolicy(policy, dataset, models, arrivals, simulate_cluster, seed));
  }
  const PolicyRun& reference = runs[3];  // always-large

  benchutil::PrintTitle(std::string("Figure 12 [") + DatasetName(dataset) + "] (" +
                        models.second + " vs " + models.first + ", " +
                        std::to_string(arrivals.size()) + " requests)");

  PairwiseJudge judge;
  const double window_s = 300.0;
  const size_t windows = 6;
  for (size_t p = 0; p < runs.size(); ++p) {
    std::printf("  %-13s", PolicyName(policies[p]));
    // Offload ratio per window.
    std::printf(" offload[");
    for (size_t w = 0; w < windows; ++w) {
      int offloaded = 0;
      int total = 0;
      for (const RequestRecord& record : runs[p].records) {
        if (record.arrival >= w * window_s && record.arrival < (w + 1) * window_s) {
          ++total;
          offloaded += record.offloaded ? 1 : 0;
        }
      }
      std::printf("%s%.2f", w ? " " : "", total > 0 ? static_cast<double>(offloaded) / total : 0);
    }
    std::printf("]");
    if (simulate_cluster) {
      std::printf(" lat_s[");
      for (size_t w = 0; w < windows; ++w) {
        RunningStat latency;
        for (const RequestRecord& record : runs[p].records) {
          if (record.arrival >= w * window_s && record.arrival < (w + 1) * window_s) {
            latency.Add(record.latency);
          }
        }
        std::printf("%s%.1f", w ? " " : "", latency.mean());
      }
      std::printf("]");
    }
    // Win rate vs always-large, judged on a 1-in-3 sample.
    std::printf(" win%%[");
    for (size_t w = 0; w < windows; ++w) {
      SideBySideStats wins;
      for (size_t i = 0; i < runs[p].records.size(); i += 3) {
        const RequestRecord& record = runs[p].records[i];
        if (record.arrival >= w * window_s && record.arrival < (w + 1) * window_s) {
          wins.Add(judge.Compare(record.quality, reference.records[i].quality));
        }
      }
      std::printf("%s%.0f", w ? " " : "", 100.0 * wins.win_rate());
    }
    std::printf("]\n");
  }

  // Aggregates for the section 6.2 headline claims.
  RunningStat ic_latency;
  RunningStat large_latency;
  SideBySideStats ic_wins;
  int ic_offloads = 0;
  for (size_t i = 0; i < runs[0].records.size(); ++i) {
    ic_latency.Add(runs[0].records[i].latency);
    large_latency.Add(reference.records[i].latency);
    ic_offloads += runs[0].records[i].offloaded ? 1 : 0;
    if (i % 3 == 0) {
      ic_wins.Add(judge.Compare(runs[0].records[i].quality, reference.records[i].quality));
    }
  }
  if (simulate_cluster) {
    std::printf("  => IC-Cache: offload %.0f%%, mean latency %.2fs vs always-large %.2fs "
                "%s, win rate vs large %.1f%%\n",
                100.0 * ic_offloads / runs[0].records.size(), ic_latency.mean(),
                large_latency.mean(),
                benchutil::PaperRef("Fig 12c-d: ~1s vs 100+s under burst").c_str(),
                100.0 * ic_wins.win_rate());
  } else {
    std::printf("  => IC-Cache: offload %.0f%%, win rate vs large %.1f%% %s\n",
                100.0 * ic_offloads / runs[0].records.size(), 100.0 * ic_wins.win_rate(),
                benchutil::PaperRef("~50% at high offload").c_str());
  }
}

}  // namespace
}  // namespace iccache

int main() {
  using iccache::DatasetId;
  using iccache::ModelCatalog;
  // Panels (a)-(f): Gemma pair with full cluster simulation.
  iccache::WindowedReport(DatasetId::kMsMarco, ModelCatalog::GemmaPair(),
                          /*simulate_cluster=*/true, /*mean_rps=*/3.2, 0x12a);
  iccache::WindowedReport(DatasetId::kNaturalQuestions, ModelCatalog::GemmaPair(),
                          /*simulate_cluster=*/true, /*mean_rps=*/3.2, 0x12b);
  // Panels (g)-(h): Gemini pair, quality only.
  iccache::WindowedReport(DatasetId::kLmsysChat, ModelCatalog::GeminiPair(),
                          /*simulate_cluster=*/false, /*mean_rps=*/3.0, 0x12c);
  iccache::WindowedReport(DatasetId::kOpenOrca, ModelCatalog::GeminiPair(),
                          /*simulate_cluster=*/false, /*mean_rps=*/3.0, 0x12d);
  return 0;
}
