// Figure 16: component ablation on the quality-efficiency tradeoff.
//   * IC-Cache               — full system (router + two-stage retriever);
//   * IC-Cache w/o Router    — offload decided by a fixed random fraction
//                              (no quality/load awareness), examples kept;
//   * IC-Cache w/o (Router & Retriever) — random offload, stage-1-only
//                              similarity retrieval.
// Paper: the full system attains up to 60% win rate at 2x throughput on
// MS MARCO and 2.8x throughput at parity on Alpaca; removing the router costs
// quality at every throughput point, removing the retriever costs more.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

namespace iccache {
namespace {

constexpr double kGpuSecondsRatio = 0.145;

double NormalizedThroughput(double offload_fraction) {
  return 1.0 / (1.0 - offload_fraction + offload_fraction * kGpuSecondsRatio);
}

void Sweep(DatasetId dataset) {
  benchutil::BundleOptions options;
  options.pool_size = 2500;
  options.warmup_requests = 500;
  options.seed = 0x16 + static_cast<uint64_t>(dataset);
  auto bundle = benchutil::MakeBundle(dataset, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  PairwiseJudge judge;
  Rng rng(0x165);

  QueryGenerator eval_gen(bundle->profile, 0x16e);
  const std::vector<Request> eval = eval_gen.Generate(400);

  struct Prepared {
    double q_two_stage = 0.0;    // small + two-stage examples
    double q_stage1 = 0.0;       // small + similarity-only examples
    double q_large = 0.0;
    double router_preference = 0.0;
  };
  std::vector<Prepared> prepared;
  for (const Request& req : eval) {
    Prepared p;
    auto views_for = [&](const std::vector<SelectedExample>& selected) {
      std::vector<ExampleView> views;
      for (const auto& sel : selected) {
        const Example* example = bundle->service->cache().Get(sel.example_id);
        ExampleView view;
        view.relevance = StructuralRelevance(req, example->request, rng);
        view.quality = example->response_quality;
        view.source_capability = example->source_capability;
        view.tokens = example->PromptTokens();
        views.push_back(view);
      }
      return views;
    };
    const auto two_stage = bundle->service->selector().Select(req, small, 9100.0);
    const auto stage1 = bundle->service->selector().SelectStage1Only(req, small, 9100.0);
    p.q_two_stage = sim.Generate(small, req, views_for(two_stage)).latent_quality;
    p.q_stage1 = sim.Generate(small, req, views_for(stage1)).latent_quality;
    p.q_large = sim.Generate(large, req, {}).latent_quality;
    const RouteDecision decision = bundle->service->router().Route(req, two_stage);
    p.router_preference = decision.arm_means[0] - decision.arm_means[1];
    prepared.push_back(p);
  }

  std::printf("  %s (win rate %% vs %s):\n", DatasetName(dataset), large.name.c_str());
  std::printf("    %-10s %-8s %-12s %-14s %-22s\n", "offload", "thpt", "IC-Cache",
              "w/o Router", "w/o Router&Retriever");
  for (double offload : {0.3, 0.5, 0.7, 0.9}) {
    const size_t cut = static_cast<size_t>(offload * eval.size());

    // Full system: router picks the best requests to offload.
    std::vector<size_t> order(eval.size());
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return prepared[a].router_preference > prepared[b].router_preference;
    });
    SideBySideStats full;
    for (size_t rank = 0; rank < order.size(); ++rank) {
      const Prepared& p = prepared[order[rank]];
      full.Add(judge.Compare(rank < cut ? p.q_two_stage : p.q_large, p.q_large));
    }

    // w/o router: offload a random fixed fraction.
    const std::vector<size_t> shuffled = rng.Permutation(eval.size());
    SideBySideStats no_router;
    SideBySideStats no_router_no_retriever;
    for (size_t rank = 0; rank < shuffled.size(); ++rank) {
      const Prepared& p = prepared[shuffled[rank]];
      no_router.Add(judge.Compare(rank < cut ? p.q_two_stage : p.q_large, p.q_large));
      no_router_no_retriever.Add(
          judge.Compare(rank < cut ? p.q_stage1 : p.q_large, p.q_large));
    }

    std::printf("    %-10.1f %-8.2f %-12.1f %-14.1f %-22.1f\n", offload,
                NormalizedThroughput(offload), 100.0 * full.win_rate(),
                100.0 * no_router.win_rate(), 100.0 * no_router_no_retriever.win_rate());
  }
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::benchutil::PrintTitle("Figure 16: component ablation on the tradeoff curve");
  iccache::Sweep(iccache::DatasetId::kMsMarco);
  iccache::Sweep(iccache::DatasetId::kAlpaca);
  iccache::benchutil::PrintNote(
      "paper: full IC-Cache dominates; dropping the router loses quality at fixed "
      "throughput, dropping the retriever loses more");
  return 0;
}
