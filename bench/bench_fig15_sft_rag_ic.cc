// Figure 15: IC-Cache composes with supervised fine-tuning and RAG.
// Natural Questions: Gemma-2B 27.1% -> +SFT 29.5% -> +SFT+IC 47.3% win rate
// vs Gemma-27B. MS MARCO: 41.1% -> +RAG 51.6% -> +RAG+IC 63.3%.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/baselines/rag.h"
#include "src/baselines/sft.h"

namespace iccache {
namespace {

std::vector<ExampleView> ViewsFor(const benchutil::ServiceBundle& bundle, const Request& req,
                                  const std::vector<SelectedExample>& selected, Rng& rng) {
  std::vector<ExampleView> views;
  for (const auto& sel : selected) {
    const Example* example = bundle.service->cache().Get(sel.example_id);
    ExampleView view;
    view.relevance = StructuralRelevance(req, example->request, rng);
    view.quality = example->response_quality;
    view.source_capability = example->source_capability;
    view.tokens = example->PromptTokens();
    views.push_back(view);
  }
  return views;
}

void SftPanel() {
  benchutil::BundleOptions options;
  options.pool_size = 2500;
  options.warmup_requests = 400;
  options.seed = 0x15a;
  auto bundle = benchutil::MakeBundle(DatasetId::kNaturalQuestions, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  const SftModelAdapter sft(small, DatasetId::kNaturalQuestions);
  const ModelProfile tuned = sft.ProfileFor(DatasetId::kNaturalQuestions);
  PairwiseJudge judge;
  Rng rng(0x15b);

  SideBySideStats plain;
  SideBySideStats with_sft;
  SideBySideStats with_sft_ic;
  QueryGenerator eval_gen(bundle->profile, 0x15c);
  for (int i = 0; i < 400; ++i) {
    const Request req = eval_gen.Next();
    const double large_quality = sim.Generate(large, req, {}).latent_quality;
    plain.Add(judge.Compare(sim.Generate(small, req, {}).latent_quality, large_quality));
    with_sft.Add(judge.Compare(sim.Generate(tuned, req, {}).latent_quality, large_quality));
    const auto selected = bundle->service->selector().Select(req, tuned, 9000.0 + i);
    with_sft_ic.Add(judge.Compare(
        sim.Generate(tuned, req, ViewsFor(*bundle, req, selected, rng)).latent_quality,
        large_quality));
  }
  std::printf("  Natural Questions (win rate %% vs %s):\n", large.name.c_str());
  std::printf("    %-18s %6.1f  %s\n", "Gemma2-2B", 100.0 * plain.win_rate(), "(paper: 27.1)");
  std::printf("    %-18s %6.1f  %s\n", "+SFT", 100.0 * with_sft.win_rate(), "(paper: 29.5)");
  std::printf("    %-18s %6.1f  %s\n", "+SFT+IC", 100.0 * with_sft_ic.win_rate(),
              "(paper: 47.3)");
}

void RagPanel() {
  benchutil::BundleOptions options;
  options.pool_size = 2500;
  options.warmup_requests = 400;
  options.seed = 0x15d;
  auto bundle = benchutil::MakeBundle(DatasetId::kMsMarco, options);
  GenerationSimulator& sim = *bundle->sim;
  const ModelProfile& small = bundle->Small();
  const ModelProfile& large = bundle->Large();
  RagPipeline rag(bundle->profile);
  PairwiseJudge judge;
  Rng rng(0x15e);

  SideBySideStats plain;
  SideBySideStats with_rag;
  SideBySideStats with_rag_ic;
  QueryGenerator eval_gen(bundle->profile, 0x15f);
  for (int i = 0; i < 400; ++i) {
    const Request req = eval_gen.Next();
    const double large_quality = sim.Generate(large, req, {}).latent_quality;
    plain.Add(judge.Compare(sim.Generate(small, req, {}).latent_quality, large_quality));
    const RagContext context = rag.Retrieve(req);
    with_rag.Add(judge.Compare(
        sim.Generate(small, req, {}, context.capability_boost).latent_quality, large_quality));
    const auto selected = bundle->service->selector().Select(req, small, 9000.0 + i);
    with_rag_ic.Add(judge.Compare(
        sim.Generate(small, req, ViewsFor(*bundle, req, selected, rng), context.capability_boost)
            .latent_quality,
        large_quality));
  }
  std::printf("  MS MARCO (win rate %% vs %s):\n", large.name.c_str());
  std::printf("    %-18s %6.1f  %s\n", "Gemma2-2B", 100.0 * plain.win_rate(), "(paper: 41.1)");
  std::printf("    %-18s %6.1f  %s\n", "+RAG", 100.0 * with_rag.win_rate(), "(paper: 51.6)");
  std::printf("    %-18s %6.1f  %s\n", "+RAG+IC", 100.0 * with_rag_ic.win_rate(),
              "(paper: 63.3)");
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::benchutil::PrintTitle("Figure 15: IC-Cache augments SFT and RAG deployments");
  iccache::SftPanel();
  iccache::RagPanel();
  return 0;
}
