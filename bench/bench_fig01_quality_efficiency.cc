// Figure 1: the quality-efficiency trade-off of large vs small models.
//
// (a) Gemini-1.5-Pro vs Gemini-1.5-Flash on LMSys-Chat conversation: TTFT,
//     TBT, and the small model's average pairwise score vs the large model.
// (b) DeepSeek-R1 vs Qwen2.5-7B on the same requests (log-scale latencies in
//     the paper; absolute values printed here).
//
// Paper reference points: Flash TTFT 0.497s / Pro 0.755s; Flash TBT 5ms /
// Pro 15ms; Flash avg score -0.389 (65% Pro win rate). Qwen TTFT 18ms /
// R1 3140ms; TBT 6.62ms / 121.4ms; Qwen avg score -1.80.
#include "bench/bench_common.h"

#include "src/common/stats.h"

namespace iccache {
namespace {

void EvaluatePair(const char* label, const std::string& large_name,
                  const std::string& small_name, DatasetId dataset, const char* paper_row) {
  ModelCatalog catalog;
  const ModelProfile& large = catalog.Get(large_name);
  const ModelProfile& small = catalog.Get(small_name);
  GenerationSimulator sim(101);
  QueryGenerator gen(GetDatasetProfile(dataset), 102);
  PairwiseJudge judge;

  RunningStat ttft_small;
  RunningStat ttft_large;
  RunningStat tbt_small;
  RunningStat tbt_large;
  SideBySideStats scores;  // positive favours the small model

  const int n = 600;
  for (int i = 0; i < n; ++i) {
    const Request req = gen.Next();
    const GenerationResult rs = sim.Generate(small, req, {});
    const GenerationResult rl = sim.Generate(large, req, {});
    ttft_small.Add(rs.ttft_s);
    ttft_large.Add(rl.ttft_s);
    tbt_small.Add(rs.tbt_s);
    tbt_large.Add(rl.tbt_s);
    scores.Add(judge.Compare(rs.latent_quality, rl.latent_quality));
  }

  benchutil::PrintTitle(std::string("Figure 1") + label);
  std::printf("  %-18s %12s %12s\n", "metric", small_name.c_str(), large_name.c_str());
  benchutil::PrintRule();
  std::printf("  %-18s %9.3f s  %9.3f s\n", "TTFT", ttft_small.mean(), ttft_large.mean());
  std::printf("  %-18s %9.4f s  %9.4f s\n", "TBT", tbt_small.mean(), tbt_large.mean());
  std::printf("  %-18s %9.3f    %12s\n", "avg score (small)", scores.mean_score(), "0 (self)");
  std::printf("  %-18s %8.1f %%\n", "large win rate",
              100.0 * (1.0 - scores.win_rate()));
  benchutil::PrintNote(paper_row);
}

}  // namespace
}  // namespace iccache

int main() {
  iccache::EvaluatePair("(a) Gemini on conversation", "gemini-1.5-pro", "gemini-1.5-flash",
                        iccache::DatasetId::kLmsysChat,
                        "paper: TTFT 0.497/0.755 s, TBT 0.005/0.015 s, avg score -0.389 "
                        "(65% Pro win rate)");
  iccache::EvaluatePair("(b) Qwen and DeepSeek", "deepseek-r1", "qwen2.5-7b",
                        iccache::DatasetId::kNaturalQuestions,
                        "paper: TTFT 0.018/3.140 s, TBT 0.00662/0.1214 s, avg score -1.80");
  return 0;
}
