#include "src/llm/model_profile.h"

#include <cassert>

namespace iccache {

namespace {

ModelProfile Make(std::string name, double params_b, double capability, double icl_aptitude,
                  double robustness, double ttft_base_s, double prefill_tps, double decode_tps,
                  double cost_per_1k, int gpus) {
  ModelProfile m;
  m.name = std::move(name);
  m.params_b = params_b;
  m.capability = capability;
  m.icl_aptitude = icl_aptitude;
  m.robustness = robustness;
  m.ttft_base_s = ttft_base_s;
  m.prefill_tps = prefill_tps;
  m.decode_tps = decode_tps;
  m.cost_per_1k_tokens = cost_per_1k;
  m.gpus_required = gpus;
  return m;
}

}  // namespace

ModelCatalog::ModelCatalog() {
  // Latency constants reproduce Figure 1 at the datasets' typical prompt
  // sizes; capabilities reproduce the observed win-rate gaps (section 6.3).
  //
  // Proprietary analogues (API-served; latency includes network overhead).
  models_.push_back(
      Make("gemini-1.5-pro", 200.0, 0.875, 0.90, 0.92, 0.70, 4000.0, 1.0 / 0.015, 10.0, 8));
  models_.push_back(
      Make("gemini-1.5-flash", 30.0, 0.795, 0.88, 0.88, 0.45, 6000.0, 1.0 / 0.005, 1.0, 2));
  // Open-source analogues (locally served).
  models_.push_back(
      Make("deepseek-r1", 671.0, 0.93, 0.92, 0.95, 2.60, 1200.0, 1.0 / 0.1214, 16.0, 16));
  models_.push_back(
      Make("qwen2.5-32b", 32.0, 0.82, 0.88, 0.90, 0.22, 9000.0, 1.0 / 0.030, 2.5, 2));
  models_.push_back(
      Make("qwen2.5-7b", 7.0, 0.645, 0.85, 0.85, 0.012, 18000.0, 1.0 / 0.00662, 0.6, 1));
  models_.push_back(
      Make("qwen2.5-3b", 3.0, 0.615, 0.84, 0.80, 0.009, 26000.0, 1.0 / 0.0045, 0.3, 1));
  models_.push_back(
      Make("gemma-2-27b", 27.0, 0.785, 0.87, 0.90, 0.30, 8000.0, 1.0 / 0.034, 2.2, 2));
  models_.push_back(
      Make("gemma-2-2b", 2.0, 0.60, 0.86, 0.82, 0.012, 30000.0, 1.0 / 0.0095, 0.25, 1));
  models_.push_back(
      Make("phi-3-medium", 14.0, 0.74, 0.85, 0.86, 0.10, 14000.0, 1.0 / 0.018, 1.2, 1));
  models_.push_back(
      Make("phi-3-mini", 3.8, 0.60, 0.82, 0.78, 0.010, 24000.0, 1.0 / 0.006, 0.3, 1));
}

const ModelProfile& ModelCatalog::Get(const std::string& name) const {
  for (const auto& m : models_) {
    if (m.name == name) {
      return m;
    }
  }
  assert(false && "unknown model name");
  return models_.front();
}

bool ModelCatalog::Contains(const std::string& name) const {
  for (const auto& m : models_) {
    if (m.name == name) {
      return true;
    }
  }
  return false;
}

std::pair<std::string, std::string> ModelCatalog::GeminiPair() {
  return {"gemini-1.5-pro", "gemini-1.5-flash"};
}
std::pair<std::string, std::string> ModelCatalog::GemmaPair() {
  return {"gemma-2-27b", "gemma-2-2b"};
}
std::pair<std::string, std::string> ModelCatalog::DeepSeekPair() {
  return {"deepseek-r1", "qwen2.5-7b"};
}
std::pair<std::string, std::string> ModelCatalog::QwenPair() {
  return {"qwen2.5-32b", "qwen2.5-3b"};
}
std::pair<std::string, std::string> ModelCatalog::PhiPair() { return {"phi-3-medium", "phi-3-mini"}; }

}  // namespace iccache
