#include "src/llm/generation.h"

#include <algorithm>
#include <cmath>

#include "src/common/mathutil.h"

namespace iccache {

GenerationSimulator::GenerationSimulator(uint64_t seed, GenerationConfig config)
    : config_(config), rng_(seed) {}

double GenerationSimulator::EffectiveCapability(const ModelProfile& model,
                                                const std::vector<ExampleView>& examples,
                                                Rng& rng) const {
  double capability = model.capability + rng.Normal(0.0, config_.capability_noise);
  if (examples.empty()) {
    return capability;
  }

  // Relevant examples transfer capability from their source model; the
  // benefit saturates with total utility (diminishing returns).
  double utility_sum = 0.0;
  double source_cap_weighted = 0.0;
  double source_weight = 0.0;
  double irrelevant_mass = 0.0;
  double misleading_mass = 0.0;
  for (const ExampleView& ex : examples) {
    const double rel = Clamp(ex.relevance, 0.0, 1.0);
    if (rel > config_.relevance_floor) {
      const double rel_scaled =
          (rel - config_.relevance_floor) / (1.0 - config_.relevance_floor);
      const double quality_signal =
          Clamp(ex.quality, 0.0, 1.0) - config_.bad_example_pivot;
      if (quality_signal >= 0.0) {
        const double u = rel_scaled * quality_signal / (1.0 - config_.bad_example_pivot);
        utility_sum += u;
        source_cap_weighted += u * ex.source_capability;
        source_weight += u;
      } else {
        // Relevant but wrong: the model imitates the bad trajectory.
        misleading_mass += rel_scaled * (-quality_signal) / config_.bad_example_pivot;
      }
    } else {
      irrelevant_mass += 1.0 - rel / std::max(config_.relevance_floor, 1e-9);
    }
  }

  if (source_weight > 0.0) {
    const double source_capability = source_cap_weighted / source_weight;
    const double coverage = 1.0 - std::exp(-utility_sum / config_.coverage_scale);
    const double target = source_capability + config_.exceed_margin;
    const double headroom = std::max(0.0, target - model.capability);
    capability += model.icl_aptitude * headroom * coverage;
  }

  capability -= config_.distraction_rate * irrelevant_mass * (1.0 - model.robustness);
  capability -= config_.misleading_rate * misleading_mass * (1.0 - 0.5 * model.robustness);
  return capability;
}

GenerationResult GenerationSimulator::Generate(const ModelProfile& model, const Request& request,
                                               const std::vector<ExampleView>& examples,
                                               double extra_capability) {
  return Generate(model, request, examples, rng_, extra_capability);
}

GenerationResult GenerationSimulator::Generate(const ModelProfile& model, const Request& request,
                                               const std::vector<ExampleView>& examples, Rng& rng,
                                               double extra_capability) const {
  GenerationResult result;
  result.request_id = request.id;
  result.model_name = model.name;

  const double capability = EffectiveCapability(model, examples, rng) + extra_capability;
  const double margin = capability - request.difficulty;
  result.latent_quality = Clamp(
      Sigmoid(config_.quality_slope * margin) + rng.Normal(0.0, config_.quality_noise), 0.0, 1.0);

  // Accuracy verdict: tasks with an objective notion of correctness (code,
  // math) apply a strictness offset, so raw pass rates sit well below the
  // latent-quality scale (Figure 4a's 25-55% accuracy band).
  double offset = config_.accuracy_offset_other;
  if (request.task == TaskType::kCodeGeneration) {
    offset = config_.accuracy_offset_code;
  } else if (request.task == TaskType::kMathReasoning) {
    offset = config_.accuracy_offset_math;
  }
  const double p_correct = Sigmoid(config_.quality_slope * margin - offset);
  result.correct = rng.Bernoulli(p_correct);

  // Token accounting and zero-load latency.
  int prompt_tokens = request.input_tokens;
  for (const ExampleView& ex : examples) {
    prompt_tokens += std::max(0, ex.tokens);
  }
  result.prompt_tokens = prompt_tokens;

  double decode_len = static_cast<double>(request.target_output_tokens);
  if (!examples.empty()) {
    // Examples from the large model anchor the answer format, trimming
    // meandering decodes (the paper's 3% zero-load speedup, Figure 18).
    decode_len *= config_.decode_shrink_with_ic;
  }
  decode_len *= std::exp(rng.Normal(0.0, 0.10));
  result.output_tokens = std::max(4, static_cast<int>(decode_len));

  result.ttft_s =
      model.ttft_base_s + static_cast<double>(prompt_tokens) / std::max(model.prefill_tps, 1.0);
  result.tbt_s = model.Tbt() * std::exp(rng.Normal(0.0, 0.03));
  result.e2e_latency_s = result.ttft_s + result.tbt_s * result.output_tokens;
  return result;
}

double GenerationSimulator::ReusedResponseQuality(double cached_quality, double relevance) {
  return ReusedResponseQuality(cached_quality, relevance, rng_);
}

double GenerationSimulator::ReusedResponseQuality(double cached_quality, double relevance,
                                                  Rng& rng) const {
  double rel = Clamp(relevance, 0.0, 1.0);
  // Semantic equivalence is inherently subjective (section 2.3): a fraction
  // of apparent paraphrases actually ask something subtly different, and the
  // reused answer misses the mark.
  if (rel >= 0.9 && rng.Bernoulli(0.15)) {
    rel = 0.65;
  }
  double fidelity = 0.0;
  if (rel >= 0.9) {
    fidelity = 0.97;  // true paraphrase: the answer carries over
  } else if (rel >= 0.5) {
    // Topically similar but a different question: largely off-target — the
    // reader asked something else, so even a well-written cached answer loses
    // the side-by-side comparison.
    fidelity = 0.30 * (rel - 0.5) / 0.4 + 0.08;
  } else {
    fidelity = 0.04;
  }
  const double q = cached_quality * fidelity + rng.Normal(0.0, 0.02);
  return Clamp(q, 0.0, 1.0);
}

double StructuralRelevance(const Request& a, const Request& b, Rng& rng) {
  double base = 0.02;
  if (a.dataset == b.dataset) {
    base = 0.08;
    if (a.topic_id == b.topic_id) {
      base = (a.intent_id == b.intent_id) ? 0.95 : 0.62;
    }
  }
  return Clamp(base + rng.Normal(0.0, 0.03), 0.0, 1.0);
}

}  // namespace iccache
