// Generation simulator: the offline stand-in for querying a real LLM.
//
// A generation produces a *latent quality* in [0, 1] — the ground-truth signal
// the pairwise judge later scores — plus token counts and zero-load latency.
// The quality model implements the in-context-learning behaviour the paper
// builds on (sections 2.3 and 4.1):
//
//   effective_capability = capability
//                        + icl_aptitude * headroom * coverage     (imitation)
//                        - distraction * (1 - robustness)         (bad examples)
//   quality = sigmoid(slope * (effective_capability - difficulty)) + noise
//
// where `coverage` saturates with the summed utility of relevant examples
// (diminishing returns, section 4.1 "Selecting Example Combinations"),
// `headroom` lets a small model approach — and with high-quality same-intent
// examples slightly exceed — the example source's capability, and irrelevant
// examples actively hurt (Figure 4a's random-example regression).
//
// Sampling noise is re-drawn per call, so replaying a request several times
// and keeping the best response yields a genuinely better example
// (best-of-n variance harvesting, section 4.3 / Figure 11).
#ifndef SRC_LLM_GENERATION_H_
#define SRC_LLM_GENERATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/llm/model_profile.h"
#include "src/workload/request.h"

namespace iccache {

// What the generator is allowed to see about a prepended example.
struct ExampleView {
  double relevance = 0.0;          // structural relevance to the request, [0, 1]
  double quality = 0.0;            // stored response quality, [0, 1]
  double source_capability = 0.0;  // capability of the model that produced it
  int tokens = 0;                  // prompt-length contribution
};

struct GenerationResult {
  uint64_t request_id = 0;
  std::string model_name;
  double latent_quality = 0.0;  // [0, 1]
  bool correct = false;         // accuracy-style verdict for code/math tasks
  int prompt_tokens = 0;        // request + examples
  int output_tokens = 0;
  double ttft_s = 0.0;          // zero-load time-to-first-token
  double tbt_s = 0.0;           // zero-load time-between-tokens
  double e2e_latency_s = 0.0;   // zero-load end-to-end latency
};

struct GenerationConfig {
  double quality_slope = 5.0;        // sigmoid steepness vs (capability - difficulty)
  double capability_noise = 0.05;    // per-call capability jitter (sampling variance)
  double quality_noise = 0.04;       // additive output-quality jitter
  double relevance_floor = 0.35;     // examples below this relevance contribute no utility
  double coverage_scale = 0.9;       // utility saturation constant
  double exceed_margin = 0.10;       // how far IC can push past the source capability
  double distraction_rate = 0.15;    // capability lost per fully irrelevant example
  // A *relevant* example whose stored response is poor actively misleads: the
  // model imitates a bad trajectory. Responses below the pivot contribute
  // negative utility scaled by misleading_rate.
  double bad_example_pivot = 0.45;
  double misleading_rate = 0.06;
  double decode_shrink_with_ic = 0.92;  // examples guide shorter decodes (Figure 18)
  // Task-specific strictness offsets applied to the accuracy verdict.
  double accuracy_offset_code = 0.55;
  double accuracy_offset_math = 0.65;
  double accuracy_offset_other = 0.10;
};

class GenerationSimulator {
 public:
  explicit GenerationSimulator(uint64_t seed, GenerationConfig config = {});

  // Generates a response for the request on the given model with the given
  // in-context examples ([] == plain generation). `extra_capability` is an
  // additive capability adjustment used by the RAG baseline (factual boost
  // from retrieved documents) and never by IC-Cache itself.
  GenerationResult Generate(const ModelProfile& model, const Request& request,
                            const std::vector<ExampleView>& examples,
                            double extra_capability = 0.0);

  // Same generation model driven by an EXTERNAL sampling stream, mutating
  // nothing. Concurrent callers (the serving driver's commit lanes, the
  // background maintenance planner) each bring a deterministically derived
  // per-request/per-tick Rng, so results are independent of thread and lane
  // scheduling.
  GenerationResult Generate(const ModelProfile& model, const Request& request,
                            const std::vector<ExampleView>& examples, Rng& rng,
                            double extra_capability = 0.0) const;

  // Latent quality a *reused* cached response achieves on a new request
  // (naive semantic caching, Figure 3b): full quality on an exact intent
  // match, severely degraded on topical-but-different matches.
  double ReusedResponseQuality(double cached_quality, double relevance);

  // Same reuse model driven by an EXTERNAL sampling stream (stage-0 hits
  // inside the driver's commit lanes), mutating nothing.
  double ReusedResponseQuality(double cached_quality, double relevance, Rng& rng) const;

  const GenerationConfig& config() const { return config_; }

  // Snapshot persistence: the sampling stream must resume exactly for a
  // restored driver to reproduce the uninterrupted run's generations.
  RngState rng_state() const { return rng_.SaveState(); }
  void restore_rng_state(const RngState& state) { rng_.RestoreState(state); }

 private:
  double EffectiveCapability(const ModelProfile& model, const std::vector<ExampleView>& examples,
                             Rng& rng) const;

  GenerationConfig config_;
  Rng rng_;
};

// Structural relevance between two requests using latent ground truth:
// same intent ~0.95, same topic ~0.62, same dataset ~0.08, else ~0.02
// (plus small jitter). This is what a perfect relevance oracle would say;
// embedding cosine approximates it.
double StructuralRelevance(const Request& a, const Request& b, Rng& rng);

}  // namespace iccache

#endif  // SRC_LLM_GENERATION_H_
