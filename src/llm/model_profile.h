// Model profiles: the static description of every LLM the experiments use.
//
// Real model weights are unavailable offline, so a model is represented by the
// quantities the serving system actually observes or depends on — latency
// rates, GPU footprint, dollar cost — plus two latent parameters consumed by
// the generation simulator: `capability` (task competence) and `icl_aptitude`
// (how effectively the model exploits in-context examples). Latency constants
// are calibrated to the paper's measurements (Figure 1: Gemini-Pro TTFT 0.755s
// / TBT 15ms vs Flash 0.497s / 5ms; DeepSeek-R1 TTFT 3.14s / TBT 121ms vs
// Qwen-7B 18ms / 6.6ms; Figure 18: Gemma-27B 8.94s zero-load vs 2B 2.66s).
#ifndef SRC_LLM_MODEL_PROFILE_H_
#define SRC_LLM_MODEL_PROFILE_H_

#include <string>
#include <vector>

namespace iccache {

struct ModelProfile {
  std::string name;
  double params_b = 1.0;  // billions of parameters

  // Latent quality parameters (generation simulator only).
  double capability = 0.5;    // [0, 1]; competence versus request difficulty
  double icl_aptitude = 0.8;  // [0, 1]; benefit extracted from IC examples
  double robustness = 0.8;    // [0, 1]; resistance to irrelevant-example distraction

  // Zero-load latency model: TTFT = ttft_base_s + prompt_tokens / prefill_tps;
  // each decoded token takes 1 / decode_tps seconds.
  double ttft_base_s = 0.05;
  double prefill_tps = 20000.0;
  double decode_tps = 100.0;

  int context_window = 32768;
  double cost_per_1k_tokens = 1.0;  // relative API cost
  int gpus_required = 1;            // footprint in the cluster simulator

  // Zero-load time-between-tokens.
  double Tbt() const { return 1.0 / decode_tps; }
};

// Named catalog of the model analogues used across the evaluation.
class ModelCatalog {
 public:
  ModelCatalog();

  // Dies (assert) on unknown names; use Contains() to probe.
  const ModelProfile& Get(const std::string& name) const;
  bool Contains(const std::string& name) const;
  const std::vector<ModelProfile>& all() const { return models_; }

  // The paper's large/small pairs, by family.
  static std::pair<std::string, std::string> GeminiPair();    // Pro / Flash
  static std::pair<std::string, std::string> GemmaPair();     // 27B / 2B
  static std::pair<std::string, std::string> DeepSeekPair();  // R1 / Qwen-7B
  static std::pair<std::string, std::string> QwenPair();      // 32B / 3B
  static std::pair<std::string, std::string> PhiPair();       // medium / mini

 private:
  std::vector<ModelProfile> models_;
};

}  // namespace iccache

#endif  // SRC_LLM_MODEL_PROFILE_H_
