// Section encodings for the learned example-pool state (the policy half of
// the persistence subsystem; snapshot.h is the container half).
//
// A pool snapshot carries the WHOLE learned state, not just the example
// records: restore-then-serve is only byte-identical to the uninterrupted
// run if every adaptive component resumes exactly where it stopped —
//
//   kExamples  per-example lifecycle records (text, embedding, gain EMA,
//              use counts, quality, privacy domain, byte weights) plus the
//              store's per-shard insertion counters,
//   kIndex     the native HNSW graph image per shard (flat/kmeans rebuild
//              from the embeddings instead),
//   kSelector  dynamic utility threshold + adaptation-grid accounting,
//   kManager   the maintenance (decay) cursor,
//   kProxy     stage-2 proxy weights,
//   kRouter    bandit posteriors, Thompson/exploration RNG streams, load EMA.
//
// Owners with extra private state (ServingDriver, IcCacheService) append
// their own kDriver/kService sections using the EncodeRngState/DecodeRngState
// helpers; DecodePoolSections ignores sections it has no consumer for.
#ifndef SRC_PERSIST_POOL_CODEC_H_
#define SRC_PERSIST_POOL_CODEC_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/binio.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/manager.h"
#include "src/core/proxy_model.h"
#include "src/core/retrieval_backend.h"
#include "src/core/router.h"
#include "src/core/selector.h"
#include "src/core/stage0_cache.h"
#include "src/persist/snapshot.h"

namespace iccache {

// Adaptive components snapshotted alongside the store. All optional: null
// members are skipped on save and left untouched on load.
struct PoolComponents {
  ExampleSelector* selector = nullptr;
  ExampleManager* manager = nullptr;
  ProxyUtilityModel* proxy = nullptr;
  RequestRouter* router = nullptr;
  Stage0ResponseCache* stage0 = nullptr;
};

// kMeta payload: the summary a dump tool or a restore precheck needs without
// decoding the (much larger) examples section.
struct PoolMeta {
  uint64_t example_count = 0;
  int64_t used_bytes = 0;
  uint64_t shard_count = 0;
  uint32_t embed_dim = 0;
  uint8_t has_native_index = 0;
  double sim_time = 0.0;
};

struct PoolRestoreReport {
  size_t examples = 0;
  int64_t used_bytes = 0;
  // True when the retrieval index was restored from its native graph image
  // (HNSW happy path: no rebuild); false means rebuild-from-embeddings.
  bool native_index_load = false;
  // False when the snapshot's shard count differs from the restoring store's
  // (ids are preserved; insertion counters fall back to max(id)+1).
  bool next_ids_restored = false;
  double sim_time = 0.0;
};

// --- RNG stream helpers (shared with the kDriver/kService sections) --------
void EncodeRngState(const RngState& state, ByteWriter* writer);
RngState DecodeRngState(ByteReader* reader);

// --- Single-example record (shared with tools/snapshot_dump) ---------------
void EncodeExample(const Example& example, const std::vector<float>& embedding,
                   ByteWriter* writer);
bool DecodeExample(ByteReader* reader, Example* example, std::vector<float>* embedding);

// --- Whole-pool encode/decode ----------------------------------------------

// Adds kMeta + kExamples (+ kIndex when the backend has a native image) and
// one section per non-null component to `writer`. `sim_time` stamps the
// snapshot with the trace clock it was taken at.
void EncodePoolSections(const ExampleStore& store, const PoolComponents& components,
                        double sim_time, SnapshotWriter* writer);

// Restores into an EMPTY store (FailedPrecondition otherwise): native index
// load first when possible, examples re-imported (re-sharded by id) with the
// byte accounting replayed, insertion counters restored, then each present
// component section applied. Absent sections leave their component at its
// configured defaults.
Status DecodePoolSections(const SnapshotReader& reader, ExampleStore* store,
                          const PoolComponents& components, PoolRestoreReport* report);

// kMeta alone (dump tool, prechecks).
Status DecodePoolMeta(const SnapshotReader& reader, PoolMeta* meta);

// kStage0 summary for the dump tool: the header fields without decoding (or
// needing an embedder for) the entry records.
struct Stage0Summary {
  double hit_threshold = 0.0;
  uint64_t requests_seen = 0;
  uint64_t entry_count = 0;
  int64_t used_bytes = 0;
  uint8_t has_native_index = 0;
};

// InvalidArgument when the section is absent or malformed.
Status DecodeStage0Summary(const SnapshotReader& reader, Stage0Summary* summary);

// Iterates the kExamples section without a store (dump tool, format checks).
Status ForEachSnapshotExample(
    const SnapshotReader& reader,
    const std::function<void(const Example&, const std::vector<float>&)>& fn);

}  // namespace iccache

#endif  // SRC_PERSIST_POOL_CODEC_H_
