// Periodic checkpoint scheduler: decides WHEN to snapshot (trace-time
// cadence, gated on cluster load so checkpoint writes ride off-peak windows
// like replay does) and meters HOW LONG each write stalls the caller, so
// checkpoint cost shows up in benchmark percentile columns instead of
// hiding.
//
// The load gate is soft: a checkpoint overdue by `force_factor` intervals is
// taken regardless of load, bounding crash-recovery staleness on a saturated
// cluster at force_factor * interval_s of trace time.
#ifndef SRC_PERSIST_CHECKPOINTER_H_
#define SRC_PERSIST_CHECKPOINTER_H_

#include <cstddef>
#include <functional>
#include <string>

#include "src/common/stats.h"
#include "src/common/status.h"

namespace iccache {

struct CheckpointerConfig {
  std::string path;
  // Simulated seconds between checkpoints; <= 0 (or an empty path) disables.
  double interval_s = 0.0;
  // Off-peak gate: take due checkpoints only while utilization is below this.
  double load_threshold = 1e9;
  // Take an overdue checkpoint regardless of load after this many intervals.
  double force_factor = 2.0;
};

class Checkpointer {
 public:
  explicit Checkpointer(CheckpointerConfig config = {}) : config_(config) {}

  bool enabled() const { return config_.interval_s > 0.0 && !config_.path.empty(); }

  // True when a checkpoint should be taken at trace time `now` under `load`.
  bool Due(double now, double load) const {
    if (!enabled()) {
      return false;
    }
    const double elapsed = now - last_time_;
    if (elapsed < config_.interval_s) {
      return false;
    }
    return load < config_.load_threshold || elapsed >= config_.force_factor * config_.interval_s;
  }

  // Runs `write` (which persists to path()) and records its wall-clock cost.
  // Advances the cadence even on failure so a sick disk is retried next
  // interval instead of every window.
  Status Take(double now, const std::function<Status()>& write);

  // Aligns the cadence after a restore (the snapshot's trace time).
  void NoteRestored(double snapshot_time) { last_time_ = snapshot_time; }

  const std::string& path() const { return config_.path; }
  size_t taken() const { return taken_; }
  size_t failed() const { return failed_; }
  const Status& last_status() const { return last_status_; }
  // Wall-clock write latencies in milliseconds: bounded lifetime histogram
  // (constant memory however long the run) plus the most recent successful
  // write (callers keeping per-segment stats sample this after each Take).
  const LatencyHistogram& write_ms() const { return write_ms_; }
  double last_write_ms() const { return last_write_ms_; }

 private:
  CheckpointerConfig config_;
  double last_time_ = 0.0;
  size_t taken_ = 0;
  size_t failed_ = 0;
  Status last_status_;
  LatencyHistogram write_ms_;
  double last_write_ms_ = 0.0;
  uint64_t take_sequence_ = 0;
};

}  // namespace iccache

#endif  // SRC_PERSIST_CHECKPOINTER_H_
