// On-disk snapshot container format (versioned, checksummed, sectioned).
//
// Layout (all integers little-endian):
//
//   [0]  header:  magic u64 ("ICCSNAP1"), format_version u32,
//                 section_count u32, toc_crc32 u32 (CRC-32 of the TOC bytes)
//   [24] TOC:     section_count x { id u32, offset u64, size u64, crc32 u32 }
//   [..] payload: section bytes at the TOC offsets (offsets are absolute)
//
// Every section carries its own CRC-32, so truncation or bit corruption
// anywhere in the file is detected before a single byte is interpreted; the
// TOC itself is covered by toc_crc32. A reader rejects unknown
// format_versions outright (the version covers the section encodings, not
// just the container); unknown *section ids* inside a known version are
// skipped, which is how older readers tolerate newer writers within a
// version's lifetime.
//
// Crash safety is the writer's job: SnapshotWriter::WriteToFile stages the
// whole image at `path + ".tmp"`, fsyncs it, and renames it over `path`
// (then fsyncs the directory), so `path` always holds either the previous
// complete snapshot or the new one — never a torn write.
#ifndef SRC_PERSIST_SNAPSHOT_FORMAT_H_
#define SRC_PERSIST_SNAPSHOT_FORMAT_H_

#include <cstdint>

namespace iccache {

// "ICCSNAP1" as a little-endian u64.
inline constexpr uint64_t kSnapshotMagic = 0x3150414e53434349ull;

// Bump when any section encoding changes incompatibly.
// v2: kDriver section gained the maintenance scheduler's epoch counter.
inline constexpr uint32_t kSnapshotFormatVersion = 2;

// Section ids. A snapshot holds any subset; readers restore what they
// recognize and have a consumer for.
enum class SnapshotSection : uint32_t {
  kMeta = 1,      // pool summary: counts, bytes, store geometry, sim time
  kExamples = 2,  // every example's full lifecycle record + embedding
  kIndex = 3,     // native retrieval-index image (HNSW graph per shard)
  kSelector = 4,  // dynamic threshold + adaptation grid accounting
  kManager = 5,   // maintenance cursor (last decay time)
  kProxy = 6,     // stage-2 proxy model weights
  kRouter = 7,    // bandit posteriors, load EMA, exploration RNG
  kDriver = 8,    // ServingDriver cursors: replay/checkpoint time, generator RNG
  kService = 9,   // IcCacheService: feedback RNG, baseline-quality EMA
  // Added within v2 — readers that predate it skip unknown section ids.
  kStage0 = 10,   // stage-0 response cache: entries, learned threshold, index
};

const char* SnapshotSectionName(SnapshotSection section);

}  // namespace iccache

#endif  // SRC_PERSIST_SNAPSHOT_FORMAT_H_
