#include "src/persist/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "src/common/binio.h"

namespace iccache {

namespace {

constexpr size_t kHeaderSize = 8 + 4 + 4 + 4;  // magic, version, count, toc crc
constexpr size_t kTocEntrySize = 4 + 8 + 8 + 4;

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) {
    return ".";
  }
  return slash == 0 ? "/" : path.substr(0, slash);
}

Status SyncFd(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    return Status::Internal("fsync failed for " + what + ": " + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

const char* SnapshotSectionName(SnapshotSection section) {
  switch (section) {
    case SnapshotSection::kMeta:
      return "meta";
    case SnapshotSection::kExamples:
      return "examples";
    case SnapshotSection::kIndex:
      return "index";
    case SnapshotSection::kSelector:
      return "selector";
    case SnapshotSection::kManager:
      return "manager";
    case SnapshotSection::kProxy:
      return "proxy";
    case SnapshotSection::kRouter:
      return "router";
    case SnapshotSection::kDriver:
      return "driver";
    case SnapshotSection::kService:
      return "service";
    case SnapshotSection::kStage0:
      return "stage0";
  }
  return "unknown";
}

void SnapshotWriter::AddSection(SnapshotSection id, std::string bytes) {
  sections_[static_cast<uint32_t>(id)] = std::move(bytes);
}

std::string SnapshotWriter::Encode() const {
  // TOC first (offsets are absolute, so they depend only on section count).
  uint64_t offset = kHeaderSize + kTocEntrySize * sections_.size();
  ByteWriter toc;
  for (const auto& [id, bytes] : sections_) {
    toc.PutU32(id);
    toc.PutU64(offset);
    toc.PutU64(bytes.size());
    toc.PutU32(Crc32(bytes.data(), bytes.size()));
    offset += bytes.size();
  }

  ByteWriter image;
  image.PutU64(kSnapshotMagic);
  image.PutU32(kSnapshotFormatVersion);
  image.PutU32(static_cast<uint32_t>(sections_.size()));
  image.PutU32(Crc32(toc.bytes().data(), toc.bytes().size()));
  image.PutBytes(toc.bytes().data(), toc.bytes().size());
  for (const auto& [id, bytes] : sections_) {
    image.PutBytes(bytes.data(), bytes.size());
  }
  return image.TakeBytes();
}

Status SnapshotWriter::WriteToFile(const std::string& path) const {
  const std::string image = Encode();
  const std::string tmp = path + ".tmp";

  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + ": " + std::strerror(errno));
  }
  const size_t written = std::fwrite(image.data(), 1, image.size(), f);
  if (written != image.size() || std::fflush(f) != 0) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  // The data must be durable BEFORE the rename publishes it: rename-then-sync
  // could expose a complete-looking file with unwritten pages after a crash.
  const Status file_sync = SyncFd(fileno(f), tmp);
  std::fclose(f);
  if (!file_sync.ok()) {
    std::remove(tmp.c_str());
    return file_sync;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + path + ": " + std::strerror(errno));
  }
  // Make the rename itself durable (directory entry update).
  const int dir_fd = ::open(ParentDir(path).c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    const Status dir_sync = SyncFd(dir_fd, "directory of " + path);
    ::close(dir_fd);
    if (!dir_sync.ok()) {
      return dir_sync;
    }
  }
  return Status::Ok();
}

Status SnapshotReader::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + ": " + std::strerror(errno));
  }
  std::string image;
  // Reserve from the file size: snapshots reach hundreds of MB (the HNSW
  // arena dominates) and growing the buffer 64 KB at a time would realloc
  // the warm-start path dozens of times.
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long size = std::ftell(f);
    if (size > 0) {
      image.reserve(static_cast<size_t>(size));
    }
    std::rewind(f);
  }
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    image.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("read error on " + path);
  }
  Status status = Parse(std::move(image));
  if (!status.ok()) {
    return Status(status.code(), path + ": " + status.message());
  }
  return Status::Ok();
}

Status SnapshotReader::Parse(std::string image) {
  format_version_ = 0;
  image_size_ = image.size();
  toc_.clear();
  sections_.clear();

  ByteReader header(image);
  const uint64_t magic = header.GetU64();
  const uint32_t version = header.GetU32();
  const uint32_t count = header.GetU32();
  const uint32_t toc_crc = header.GetU32();
  if (!header.ok() || magic != kSnapshotMagic) {
    return Status::InvalidArgument("not a snapshot (bad magic)");
  }
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot format version " +
                                   std::to_string(version) + " (reader supports " +
                                   std::to_string(kSnapshotFormatVersion) + ")");
  }
  const size_t toc_bytes = kTocEntrySize * static_cast<size_t>(count);
  if (image.size() < kHeaderSize + toc_bytes) {
    return Status::InvalidArgument("truncated snapshot (TOC)");
  }
  if (Crc32(image.data() + kHeaderSize, toc_bytes) != toc_crc) {
    return Status::InvalidArgument("snapshot TOC checksum mismatch");
  }

  ByteReader toc(image.data() + kHeaderSize, toc_bytes);
  for (uint32_t i = 0; i < count; ++i) {
    SnapshotSectionInfo info;
    info.id = static_cast<SnapshotSection>(toc.GetU32());
    info.offset = toc.GetU64();
    info.size = toc.GetU64();
    info.crc32 = toc.GetU32();
    if (!toc.ok() || info.offset > image.size() || info.size > image.size() - info.offset) {
      return Status::InvalidArgument("truncated snapshot (section " +
                                     std::string(SnapshotSectionName(info.id)) +
                                     " out of bounds)");
    }
    if (Crc32(image.data() + info.offset, static_cast<size_t>(info.size)) != info.crc32) {
      return Status::InvalidArgument(std::string("snapshot section '") +
                                     SnapshotSectionName(info.id) + "' checksum mismatch");
    }
    toc_.push_back(info);
    sections_[static_cast<uint32_t>(info.id)] =
        image.substr(static_cast<size_t>(info.offset), static_cast<size_t>(info.size));
  }
  format_version_ = version;
  return Status::Ok();
}

const std::string* SnapshotReader::Section(SnapshotSection id) const {
  const auto it = sections_.find(static_cast<uint32_t>(id));
  return it == sections_.end() ? nullptr : &it->second;
}

}  // namespace iccache
