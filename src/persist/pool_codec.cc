#include "src/persist/pool_codec.h"

#include <utility>

namespace iccache {

namespace {

// Bump kSnapshotFormatVersion (snapshot_format.h) when any encoding below
// changes; the container version covers these section layouts.

std::string EncodeSelectorSection(const ExampleSelector& selector) {
  const SelectorAdaptiveState state = selector.SaveAdaptiveState();
  ByteWriter w;
  w.PutDouble(state.utility_threshold);
  w.PutU64(state.requests_seen);
  w.PutU64(state.grid_benefit.size());
  for (double benefit : state.grid_benefit) {
    w.PutDouble(benefit);
  }
  for (uint64_t count : state.grid_count) {
    w.PutU64(count);
  }
  return w.TakeBytes();
}

bool DecodeSelectorSection(const std::string& bytes, ExampleSelector* selector) {
  ByteReader r(bytes);
  SelectorAdaptiveState state;
  state.utility_threshold = r.GetDouble();
  state.requests_seen = r.GetU64();
  const uint64_t grid = r.GetU64();
  if (!r.ok() || grid > bytes.size()) {
    return false;
  }
  state.grid_benefit.resize(grid);
  for (auto& benefit : state.grid_benefit) {
    benefit = r.GetDouble();
  }
  state.grid_count.resize(grid);
  for (auto& count : state.grid_count) {
    count = r.GetU64();
  }
  if (!r.ok() || !r.AtEnd()) {
    return false;
  }
  // A grid-size mismatch (restoring under a different threshold_grid config)
  // is not a format error: the selector keeps its configured defaults.
  selector->RestoreAdaptiveState(state);
  return true;
}

std::string EncodeProxySection(const ProxyUtilityModel& proxy) {
  ByteWriter w;
  w.PutU64(ProxyFeatures::kDim);
  for (double weight : proxy.weights()) {
    w.PutDouble(weight);
  }
  w.PutU64(proxy.updates());
  return w.TakeBytes();
}

bool DecodeProxySection(const std::string& bytes, ProxyUtilityModel* proxy) {
  ByteReader r(bytes);
  if (r.GetU64() != ProxyFeatures::kDim) {
    return false;
  }
  std::array<double, ProxyFeatures::kDim> weights{};
  for (auto& weight : weights) {
    weight = r.GetDouble();
  }
  const uint64_t updates = r.GetU64();
  if (!r.ok() || !r.AtEnd()) {
    return false;
  }
  proxy->RestoreState(weights, static_cast<size_t>(updates));
  return true;
}

std::string EncodeRouterSection(const RequestRouter& router) {
  ByteWriter w;
  w.PutDouble(router.load_ema());
  w.PutU8(router.load_ema_initialized() ? 1 : 0);
  EncodeRngState(router.explore_rng_state(), &w);
  const ContextualBandit& bandit = router.bandit();
  EncodeRngState(bandit.rng_state(), &w);
  w.PutU64(bandit.num_arms());
  for (size_t i = 0; i < bandit.num_arms(); ++i) {
    const LinearThompsonArm& arm = bandit.arm(i);
    w.PutU64(arm.dim());
    for (double v : arm.precision()) {
      w.PutDouble(v);
    }
    for (double v : arm.b()) {
      w.PutDouble(v);
    }
    w.PutU64(arm.updates());
  }
  return w.TakeBytes();
}

bool DecodeRouterSection(const std::string& bytes, RequestRouter* router) {
  ByteReader r(bytes);
  const double load_ema = r.GetDouble();
  const bool load_initialized = r.GetU8() != 0;
  const RngState explore_rng = DecodeRngState(&r);
  const RngState bandit_rng = DecodeRngState(&r);
  const uint64_t num_arms = r.GetU64();
  ContextualBandit& bandit = router->mutable_bandit();
  if (!r.ok() || num_arms != bandit.num_arms()) {
    return false;
  }
  // Stage every arm before committing any: a half-restored bandit would be
  // worse than a fresh one.
  std::vector<std::vector<double>> precisions(num_arms);
  std::vector<std::vector<double>> bs(num_arms);
  std::vector<uint64_t> updates(num_arms);
  for (size_t i = 0; i < num_arms; ++i) {
    const uint64_t dim = r.GetU64();
    if (!r.ok() || dim != bandit.arm(i).dim()) {
      return false;
    }
    precisions[i].resize(dim * dim);
    for (auto& v : precisions[i]) {
      v = r.GetDouble();
    }
    bs[i].resize(dim);
    for (auto& v : bs[i]) {
      v = r.GetDouble();
    }
    updates[i] = r.GetU64();
  }
  if (!r.ok() || !r.AtEnd()) {
    return false;
  }
  for (size_t i = 0; i < num_arms; ++i) {
    if (!bandit.mutable_arm(i).RestoreState(precisions[i], bs[i],
                                            static_cast<size_t>(updates[i]))) {
      return false;
    }
  }
  router->RestoreLoadEma(load_ema, load_initialized);
  router->restore_explore_rng_state(explore_rng);
  bandit.restore_rng_state(bandit_rng);
  return true;
}

// kStage0 layout: a summary-friendly header (threshold, cadence counter,
// entry count, byte accounting, native-index flag) the dump tool can read
// without an embedder, then the adaptation grid, the id counter, the entry
// records with their index embeddings, and finally the native index image
// (HNSW graph) when the backend has one — restoring the image rather than
// rebuilding keeps post-restore probes byte-identical to the writer's.
std::string EncodeStage0Section(const Stage0ResponseCache& cache) {
  const Stage0AdaptiveState state = cache.SaveAdaptiveState();
  ByteWriter w;
  w.PutDouble(state.hit_threshold);
  w.PutU64(state.requests_seen);
  w.PutU64(cache.size());
  w.PutI64(cache.used_bytes());
  std::string index_blob;
  const bool native = cache.SaveIndexBlob(&index_blob);
  w.PutU8(native ? 1 : 0);

  w.PutU64(state.grid_benefit.size());
  for (double benefit : state.grid_benefit) {
    w.PutDouble(benefit);
  }
  for (uint64_t count : state.grid_count) {
    w.PutU64(count);
  }
  w.PutU64(cache.next_id());

  cache.ExportEntries([&w](const Stage0Entry& entry, const std::vector<float>& embedding) {
    w.PutU64(entry.id);
    const Request& request = entry.request;
    w.PutU64(request.id);
    w.PutU8(static_cast<uint8_t>(request.dataset));
    w.PutU8(static_cast<uint8_t>(request.task));
    w.PutString(request.text);
    w.PutU32(request.topic_id);
    w.PutU32(request.intent_id);
    w.PutDouble(request.difficulty);
    w.PutI32(request.input_tokens);
    w.PutI32(request.target_output_tokens);
    w.PutDouble(request.arrival_time);
    w.PutU32(request.privacy_domain);
    w.PutString(entry.response_text);
    w.PutDouble(entry.response_quality);
    w.PutI32(entry.response_tokens);
    w.PutDouble(entry.admitted_time);
    w.PutDouble(entry.last_hit_time);
    w.PutU64(entry.hit_count);
    w.PutFloats(embedding);
  });

  if (native) {
    w.PutString(index_blob);
  }
  return w.TakeBytes();
}

bool DecodeStage0Section(const std::string& bytes, Stage0ResponseCache* cache) {
  if (cache->size() != 0) {
    return false;  // restore requires an empty stage-0 cache
  }
  ByteReader r(bytes);
  Stage0AdaptiveState state;
  state.hit_threshold = r.GetDouble();
  state.requests_seen = r.GetU64();
  const uint64_t entry_count = r.GetU64();
  const int64_t used_bytes = r.GetI64();
  const bool native = r.GetU8() != 0;
  const uint64_t grid = r.GetU64();
  if (!r.ok() || grid > bytes.size() || entry_count > bytes.size()) {
    return false;
  }
  state.grid_benefit.resize(grid);
  for (auto& benefit : state.grid_benefit) {
    benefit = r.GetDouble();
  }
  state.grid_count.resize(grid);
  for (auto& count : state.grid_count) {
    count = r.GetU64();
  }
  const uint64_t next_id = r.GetU64();

  std::vector<Stage0Entry> entries(static_cast<size_t>(entry_count));
  std::vector<std::vector<float>> embeddings(static_cast<size_t>(entry_count));
  for (uint64_t i = 0; i < entry_count; ++i) {
    Stage0Entry& entry = entries[i];
    entry.id = r.GetU64();
    Request& request = entry.request;
    request.id = r.GetU64();
    request.dataset = static_cast<DatasetId>(r.GetU8());
    request.task = static_cast<TaskType>(r.GetU8());
    request.text = r.GetString();
    request.topic_id = r.GetU32();
    request.intent_id = r.GetU32();
    request.difficulty = r.GetDouble();
    request.input_tokens = r.GetI32();
    request.target_output_tokens = r.GetI32();
    request.arrival_time = r.GetDouble();
    request.privacy_domain = r.GetU32();
    entry.response_text = r.GetString();
    entry.response_quality = r.GetDouble();
    entry.response_tokens = r.GetI32();
    entry.admitted_time = r.GetDouble();
    entry.last_hit_time = r.GetDouble();
    entry.hit_count = r.GetU64();
    embeddings[i] = r.GetFloats();
    if (!r.ok()) {
      return false;
    }
  }
  const bool native_loaded = native && cache->LoadIndexBlob(r.GetString());
  if (!r.ok() || !r.AtEnd()) {
    return false;
  }

  for (uint64_t i = 0; i < entry_count; ++i) {
    if (!cache->ImportEntry(entries[i], std::move(embeddings[i]),
                            /*add_to_index=*/!native_loaded)) {
      return false;
    }
  }
  if (cache->used_bytes() != used_bytes) {
    return false;  // replayed byte accounting disagrees with the writer's
  }
  cache->restore_next_id(next_id);
  // A grid-size mismatch (restoring under a different threshold_grid config)
  // keeps the configured defaults, exactly like the selector.
  cache->RestoreAdaptiveState(state);
  return true;
}

}  // namespace

void EncodeRngState(const RngState& state, ByteWriter* writer) {
  for (uint64_t s : state.s) {
    writer->PutU64(s);
  }
  writer->PutDouble(state.cached_normal);
  writer->PutU8(state.has_cached_normal ? 1 : 0);
}

RngState DecodeRngState(ByteReader* reader) {
  RngState state;
  for (auto& s : state.s) {
    s = reader->GetU64();
  }
  state.cached_normal = reader->GetDouble();
  state.has_cached_normal = reader->GetU8() != 0;
  return state;
}

void EncodeExample(const Example& example, const std::vector<float>& embedding,
                   ByteWriter* writer) {
  writer->PutU64(example.id);
  const Request& request = example.request;
  writer->PutU64(request.id);
  writer->PutU8(static_cast<uint8_t>(request.dataset));
  writer->PutU8(static_cast<uint8_t>(request.task));
  writer->PutString(request.text);
  writer->PutU32(request.topic_id);
  writer->PutU32(request.intent_id);
  writer->PutDouble(request.difficulty);
  writer->PutI32(request.input_tokens);
  writer->PutI32(request.target_output_tokens);
  writer->PutDouble(request.arrival_time);
  writer->PutU32(request.privacy_domain);
  writer->PutString(example.response_text);
  writer->PutDouble(example.response_quality);
  writer->PutDouble(example.source_capability);
  writer->PutI32(example.response_tokens);
  writer->PutU64(example.access_count);
  writer->PutDouble(example.last_access_time);
  writer->PutDouble(example.admitted_time);
  writer->PutDouble(example.replay_gain_ema);
  writer->PutI32(example.replay_count);
  writer->PutDouble(example.offload_value);
  writer->PutFloats(embedding);
}

bool DecodeExample(ByteReader* reader, Example* example, std::vector<float>* embedding) {
  example->id = reader->GetU64();
  Request& request = example->request;
  request.id = reader->GetU64();
  request.dataset = static_cast<DatasetId>(reader->GetU8());
  request.task = static_cast<TaskType>(reader->GetU8());
  request.text = reader->GetString();
  request.topic_id = reader->GetU32();
  request.intent_id = reader->GetU32();
  request.difficulty = reader->GetDouble();
  request.input_tokens = reader->GetI32();
  request.target_output_tokens = reader->GetI32();
  request.arrival_time = reader->GetDouble();
  request.privacy_domain = reader->GetU32();
  example->response_text = reader->GetString();
  example->response_quality = reader->GetDouble();
  example->source_capability = reader->GetDouble();
  example->response_tokens = reader->GetI32();
  example->access_count = reader->GetU64();
  example->last_access_time = reader->GetDouble();
  example->admitted_time = reader->GetDouble();
  example->replay_gain_ema = reader->GetDouble();
  example->replay_count = reader->GetI32();
  example->offload_value = reader->GetDouble();
  *embedding = reader->GetFloats();
  return reader->ok();
}

void EncodePoolSections(const ExampleStore& store, const PoolComponents& components,
                        double sim_time, SnapshotWriter* writer) {
  // One consistent cut for everything the store contributes (records, native
  // index image, insertion counters, byte accounting): a checkpoint taken
  // while other threads serve must never save an example its graph image
  // lacks, or a meta byte count its records don't sum to. The component
  // sections below are NOT covered by the cut — drivers snapshot them from
  // the serial phase, where they are quiescent.
  StoreSnapshotCut cut = store.ExportSnapshotCut();
  if (cut.native_index) {
    writer->AddSection(SnapshotSection::kIndex, std::move(cut.index_blob));
  }

  ByteWriter examples;
  examples.PutU64(cut.next_ids.size());
  for (uint64_t next_id : cut.next_ids) {
    examples.PutU64(next_id);
  }
  examples.PutU64(cut.examples.size());
  for (const ExportedExample& entry : cut.examples) {
    EncodeExample(entry.example, entry.embedding, &examples);
  }
  writer->AddSection(SnapshotSection::kExamples, examples.TakeBytes());

  ByteWriter meta;
  meta.PutU64(cut.examples.size());
  meta.PutI64(cut.used_bytes);
  meta.PutU64(cut.next_ids.size());
  meta.PutU32(static_cast<uint32_t>(store.embedder()->dim()));
  meta.PutU8(cut.native_index ? 1 : 0);
  meta.PutDouble(sim_time);
  writer->AddSection(SnapshotSection::kMeta, meta.TakeBytes());

  if (components.selector != nullptr) {
    writer->AddSection(SnapshotSection::kSelector, EncodeSelectorSection(*components.selector));
  }
  if (components.manager != nullptr) {
    ByteWriter manager;
    manager.PutDouble(components.manager->last_decay_time());
    writer->AddSection(SnapshotSection::kManager, manager.TakeBytes());
  }
  if (components.proxy != nullptr) {
    writer->AddSection(SnapshotSection::kProxy, EncodeProxySection(*components.proxy));
  }
  if (components.router != nullptr) {
    writer->AddSection(SnapshotSection::kRouter, EncodeRouterSection(*components.router));
  }
  if (components.stage0 != nullptr) {
    writer->AddSection(SnapshotSection::kStage0, EncodeStage0Section(*components.stage0));
  }
}

Status DecodePoolMeta(const SnapshotReader& reader, PoolMeta* meta) {
  const std::string* bytes = reader.Section(SnapshotSection::kMeta);
  if (bytes == nullptr) {
    return Status::InvalidArgument("snapshot has no meta section");
  }
  ByteReader r(*bytes);
  meta->example_count = r.GetU64();
  meta->used_bytes = r.GetI64();
  meta->shard_count = r.GetU64();
  meta->embed_dim = r.GetU32();
  meta->has_native_index = r.GetU8();
  meta->sim_time = r.GetDouble();
  if (!r.ok() || !r.AtEnd()) {
    return Status::InvalidArgument("malformed meta section");
  }
  return Status::Ok();
}

Status DecodeStage0Summary(const SnapshotReader& reader, Stage0Summary* summary) {
  const std::string* bytes = reader.Section(SnapshotSection::kStage0);
  if (bytes == nullptr) {
    return Status::InvalidArgument("snapshot has no stage0 section");
  }
  ByteReader r(*bytes);
  summary->hit_threshold = r.GetDouble();
  summary->requests_seen = r.GetU64();
  summary->entry_count = r.GetU64();
  summary->used_bytes = r.GetI64();
  summary->has_native_index = r.GetU8();
  if (!r.ok()) {
    return Status::InvalidArgument("malformed stage0 section");
  }
  return Status::Ok();
}

Status ForEachSnapshotExample(
    const SnapshotReader& reader,
    const std::function<void(const Example&, const std::vector<float>&)>& fn) {
  const std::string* bytes = reader.Section(SnapshotSection::kExamples);
  if (bytes == nullptr) {
    return Status::InvalidArgument("snapshot has no examples section");
  }
  ByteReader r(*bytes);
  const uint64_t shard_count = r.GetU64();
  if (!r.ok() || shard_count > bytes->size()) {
    return Status::InvalidArgument("malformed examples section (shard counters)");
  }
  for (uint64_t i = 0; i < shard_count; ++i) {
    r.GetU64();
  }
  const uint64_t count = r.GetU64();
  Example example;
  std::vector<float> embedding;
  for (uint64_t i = 0; i < count; ++i) {
    if (!DecodeExample(&r, &example, &embedding)) {
      return Status::InvalidArgument("malformed example record " + std::to_string(i));
    }
    fn(example, embedding);
  }
  if (!r.ok() || !r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in examples section");
  }
  return Status::Ok();
}

Status DecodePoolSections(const SnapshotReader& reader, ExampleStore* store,
                          const PoolComponents& components, PoolRestoreReport* report) {
  PoolRestoreReport local;
  if (store->size() != 0) {
    return Status::FailedPrecondition("restore requires an empty example store");
  }
  PoolMeta meta;
  Status status = DecodePoolMeta(reader, &meta);
  if (!status.ok()) {
    return status;
  }
  local.sim_time = meta.sim_time;
  if (meta.embed_dim != store->embedder()->dim()) {
    return Status::FailedPrecondition(
        "snapshot embedding dimension " + std::to_string(meta.embed_dim) +
        " != store dimension " + std::to_string(store->embedder()->dim()));
  }

  // Native index image first (HNSW graph load, no rebuild); on any mismatch
  // fall back to per-example Add during import below.
  const std::string* index_blob = reader.Section(SnapshotSection::kIndex);
  local.native_index_load = index_blob != nullptr && store->LoadIndexBlob(*index_blob);

  const std::string* examples = reader.Section(SnapshotSection::kExamples);
  if (examples == nullptr) {
    return Status::InvalidArgument("snapshot has no examples section");
  }
  ByteReader r(*examples);
  const uint64_t shard_count = r.GetU64();
  if (!r.ok() || shard_count > examples->size()) {
    return Status::InvalidArgument("malformed examples section (shard counters)");
  }
  std::vector<uint64_t> next_ids(static_cast<size_t>(shard_count));
  for (auto& next_id : next_ids) {
    next_id = r.GetU64();
  }
  const uint64_t count = r.GetU64();
  if (!r.ok()) {
    return Status::InvalidArgument("malformed examples section (count)");
  }
  Example example;
  std::vector<float> embedding;
  for (uint64_t i = 0; i < count; ++i) {
    if (!DecodeExample(&r, &example, &embedding)) {
      return Status::InvalidArgument("malformed example record " + std::to_string(i));
    }
    if (!store->ImportExample(example, std::move(embedding),
                              /*add_to_index=*/!local.native_index_load)) {
      return Status::FailedPrecondition(
          "import rejected for example id " + std::to_string(example.id) +
          " (duplicate id, or restoring into MORE shards than the snapshot was "
          "taken with — the smallest ids cannot be re-sharded; equal or fewer "
          "shards always work)");
    }
    ++local.examples;
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in examples section");
  }
  local.next_ids_restored = store->ImportNextIds(next_ids);
  local.used_bytes = store->used_bytes();

  const std::string* selector = reader.Section(SnapshotSection::kSelector);
  if (selector != nullptr && components.selector != nullptr &&
      !DecodeSelectorSection(*selector, components.selector)) {
    return Status::InvalidArgument("malformed selector section");
  }
  const std::string* manager = reader.Section(SnapshotSection::kManager);
  if (manager != nullptr && components.manager != nullptr) {
    ByteReader mr(*manager);
    const double last_decay = mr.GetDouble();
    if (!mr.ok() || !mr.AtEnd()) {
      return Status::InvalidArgument("malformed manager section");
    }
    components.manager->set_last_decay_time(last_decay);
  }
  const std::string* proxy = reader.Section(SnapshotSection::kProxy);
  if (proxy != nullptr && components.proxy != nullptr &&
      !DecodeProxySection(*proxy, components.proxy)) {
    return Status::InvalidArgument("malformed proxy section");
  }
  const std::string* router = reader.Section(SnapshotSection::kRouter);
  if (router != nullptr && components.router != nullptr &&
      !DecodeRouterSection(*router, components.router)) {
    return Status::InvalidArgument("malformed router section");
  }
  const std::string* stage0 = reader.Section(SnapshotSection::kStage0);
  if (stage0 != nullptr && components.stage0 != nullptr &&
      !DecodeStage0Section(*stage0, components.stage0)) {
    return Status::InvalidArgument("malformed stage0 section");
  }

  if (report != nullptr) {
    *report = local;
  }
  return Status::Ok();
}

}  // namespace iccache
