// SnapshotWriter / SnapshotReader: the container half of the persistence
// subsystem (see snapshot_format.h for the byte layout and pool_codec.h for
// the section encodings).
//
//   SnapshotWriter writer;
//   writer.AddSection(SnapshotSection::kExamples, bytes);
//   Status s = writer.WriteToFile("/var/lib/iccache/pool.snap");  // atomic
//
//   SnapshotReader reader;
//   Status s = reader.Open("/var/lib/iccache/pool.snap");  // validates CRCs
//   const std::string* examples = reader.Section(SnapshotSection::kExamples);
//
// WriteToFile is crash-safe: the image is staged at `path + ".tmp"`,
// fsync'ed, renamed over `path`, and the parent directory is fsync'ed, so a
// kill at any instant leaves `path` holding either the previous complete
// snapshot or the new one. Open re-verifies the magic, format version, TOC
// checksum, and every section checksum before returning a single byte.
#ifndef SRC_PERSIST_SNAPSHOT_H_
#define SRC_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/persist/snapshot_format.h"

namespace iccache {

struct SnapshotSectionInfo {
  SnapshotSection id;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint32_t crc32 = 0;
};

class SnapshotWriter {
 public:
  // Adds (or replaces) a section payload.
  void AddSection(SnapshotSection id, std::string bytes);

  // Serializes header + TOC + sections into one contiguous image.
  std::string Encode() const;

  // Encodes and writes atomically (temp file + fsync + rename + dir fsync).
  Status WriteToFile(const std::string& path) const;

 private:
  std::map<uint32_t, std::string> sections_;  // ordered => deterministic image
};

class SnapshotReader {
 public:
  // Reads and validates the whole file; any integrity failure (truncation,
  // flipped bit, bad magic, unknown format version) is an error and no
  // section is exposed.
  Status Open(const std::string& path);

  // Validates an in-memory image (testing, network transport).
  Status Parse(std::string image);

  // Section payload, or nullptr when the snapshot does not carry it.
  const std::string* Section(SnapshotSection id) const;

  uint32_t format_version() const { return format_version_; }
  uint64_t file_size() const { return image_size_; }
  const std::vector<SnapshotSectionInfo>& sections() const { return toc_; }

 private:
  uint32_t format_version_ = 0;
  uint64_t image_size_ = 0;
  std::vector<SnapshotSectionInfo> toc_;
  std::map<uint32_t, std::string> sections_;
};

}  // namespace iccache

#endif  // SRC_PERSIST_SNAPSHOT_H_
