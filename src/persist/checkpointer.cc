#include "src/persist/checkpointer.h"

#include <chrono>

#include "src/obs/trace.h"

namespace iccache {

Status Checkpointer::Take(double now, const std::function<Status()>& write) {
  last_time_ = now;
  TraceSpan span(TraceCategory::kCheckpointWrite);
  const auto start = std::chrono::steady_clock::now();
  last_status_ = write();
  const auto end = std::chrono::steady_clock::now();
  span.SetArgs(++take_sequence_, last_status_.ok() ? 1 : 0);
  if (last_status_.ok()) {
    ++taken_;
    last_write_ms_ = std::chrono::duration<double, std::milli>(end - start).count();
    write_ms_.Add(last_write_ms_);
  } else {
    ++failed_;
  }
  return last_status_;
}

}  // namespace iccache
