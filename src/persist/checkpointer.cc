#include "src/persist/checkpointer.h"

#include <chrono>

namespace iccache {

Status Checkpointer::Take(double now, const std::function<Status()>& write) {
  last_time_ = now;
  const auto start = std::chrono::steady_clock::now();
  last_status_ = write();
  const auto end = std::chrono::steady_clock::now();
  if (last_status_.ok()) {
    ++taken_;
    last_write_ms_ = std::chrono::duration<double, std::milli>(end - start).count();
    write_ms_.Add(last_write_ms_);
  } else {
    ++failed_;
  }
  return last_status_;
}

}  // namespace iccache
