// LLM-as-a-judge substrate (section 6.1 metrics).
//
// A judge observes the two responses' latent qualities through rater noise and
// position bias and emits the paper's seven-point Likert score (-3..3,
// positive favours response A). The full protocol averages 16 comparisons —
// eight per presentation order — exactly as the paper does to cancel order
// bias. Win rate is (#wins + 0.5 * #ties) / #total with the paper's +-0.3
// tie band on the averaged score.
//
// Rater profiles with differing noise levels reproduce the Table 4
// judge-vs-judge and judge-vs-human agreement matrix.
#ifndef SRC_JUDGE_JUDGE_H_
#define SRC_JUDGE_JUDGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace iccache {

struct JudgeConfig {
  double score_gain = 9.0;    // latent-quality difference -> Likert scale
  double rater_noise = 0.9;   // stddev of per-comparison scoring noise
  double order_bias = 0.25;   // additive bias toward the first position
  double tie_band = 0.3;      // |avg score| <= tie_band counts as a tie
  int comparisons = 16;       // total comparisons (half per order)
  uint64_t seed = 0x10d6e;
};

class PairwiseJudge {
 public:
  explicit PairwiseJudge(JudgeConfig config = {});

  // One raw comparison with A presented first iff a_first; integer in [-3, 3].
  int CompareOnce(double quality_a, double quality_b, bool a_first);

  // Full order-debiased protocol; returns the average score in [-3, 3].
  double Compare(double quality_a, double quality_b);

  const JudgeConfig& config() const { return config_; }

 private:
  JudgeConfig config_;
  Rng rng_;
};

// Aggregates per-request average scores into the paper's two quality metrics.
class SideBySideStats {
 public:
  explicit SideBySideStats(double tie_band = 0.3);

  void Add(double avg_score);

  size_t count() const { return scores_.size(); }
  double mean_score() const;
  // (#wins + 0.5 * #ties) / total, as a fraction in [0, 1]. "Win" means the
  // score favours side A (positive).
  double win_rate() const;
  double win_fraction() const;
  double tie_fraction() const;
  double loss_fraction() const;
  const std::vector<double>& scores() const { return scores_; }

 private:
  double tie_band_;
  std::vector<double> scores_;
  size_t wins_ = 0;
  size_t ties_ = 0;
  size_t losses_ = 0;
};

// A named rater for the agreement study: verdicts are noisy thresholded reads
// of the latent quality difference.
struct RaterProfile {
  std::string name;
  double noise = 0.9;      // perception noise (humans are noisier raters)
  double skill = 9.0;      // gain applied to the latent difference
  double tie_band = 0.3;
};

// Preference agreement between two raters over synthetic response pairs:
// the fraction of pairs on which both raters' verdicts (A/B/tie) coincide.
// Reproduces Table 4.
double RaterAgreement(const RaterProfile& a, const RaterProfile& b, size_t num_pairs,
                      uint64_t seed);

// The rater set used in Table 4 (four LLM judges plus a human panel).
std::vector<RaterProfile> Table4Raters();

}  // namespace iccache

#endif  // SRC_JUDGE_JUDGE_H_
