#include "src/judge/judge.h"

#include <algorithm>
#include <cmath>

#include "src/common/mathutil.h"

namespace iccache {

PairwiseJudge::PairwiseJudge(JudgeConfig config) : config_(config), rng_(config.seed) {}

int PairwiseJudge::CompareOnce(double quality_a, double quality_b, bool a_first) {
  const double diff = quality_a - quality_b;
  const double bias = a_first ? config_.order_bias : -config_.order_bias;
  const double raw = config_.score_gain * diff + bias + rng_.Normal(0.0, config_.rater_noise);
  const double clamped = Clamp(raw, -3.0, 3.0);
  return static_cast<int>(std::lround(clamped));
}

double PairwiseJudge::Compare(double quality_a, double quality_b) {
  const int total = std::max(2, config_.comparisons);
  const int per_order = total / 2;
  double sum = 0.0;
  for (int i = 0; i < per_order; ++i) {
    sum += CompareOnce(quality_a, quality_b, /*a_first=*/true);
    sum += CompareOnce(quality_a, quality_b, /*a_first=*/false);
  }
  return sum / static_cast<double>(per_order * 2);
}

SideBySideStats::SideBySideStats(double tie_band) : tie_band_(tie_band) {}

void SideBySideStats::Add(double avg_score) {
  scores_.push_back(avg_score);
  if (avg_score > tie_band_) {
    ++wins_;
  } else if (avg_score < -tie_band_) {
    ++losses_;
  } else {
    ++ties_;
  }
}

double SideBySideStats::mean_score() const {
  if (scores_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : scores_) {
    sum += s;
  }
  return sum / static_cast<double>(scores_.size());
}

double SideBySideStats::win_rate() const {
  if (scores_.empty()) {
    return 0.5;
  }
  return (static_cast<double>(wins_) + 0.5 * static_cast<double>(ties_)) /
         static_cast<double>(scores_.size());
}

double SideBySideStats::win_fraction() const {
  return scores_.empty() ? 0.0 : static_cast<double>(wins_) / static_cast<double>(scores_.size());
}

double SideBySideStats::tie_fraction() const {
  return scores_.empty() ? 0.0 : static_cast<double>(ties_) / static_cast<double>(scores_.size());
}

double SideBySideStats::loss_fraction() const {
  return scores_.empty() ? 0.0
                         : static_cast<double>(losses_) / static_cast<double>(scores_.size());
}

double RaterAgreement(const RaterProfile& a, const RaterProfile& b, size_t num_pairs,
                      uint64_t seed) {
  Rng rng(seed);
  auto verdict = [&rng](const RaterProfile& rater, double diff) {
    const double read = rater.skill * diff + rng.Normal(0.0, rater.noise);
    if (read > rater.tie_band * rater.skill * 0.12) {
      return 1;
    }
    if (read < -rater.tie_band * rater.skill * 0.12) {
      return -1;
    }
    return 0;
  };
  size_t agree = 0;
  for (size_t i = 0; i < num_pairs; ++i) {
    // Latent quality differences concentrate near zero with occasional clear
    // winners, matching the MT-Bench-style pair population.
    const double diff = rng.Normal(0.0, 0.16);
    const int va = verdict(a, diff);
    int vb = 0;
    if (a.name == b.name) {
      // Self-agreement across independent re-reads of the same pair.
      vb = verdict(a, diff);
    } else {
      vb = verdict(b, diff);
    }
    if (va == vb) {
      ++agree;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(std::max<size_t>(1, num_pairs));
}

std::vector<RaterProfile> Table4Raters() {
  return {
      {"GPT-4", /*noise=*/0.58, /*skill=*/9.0, /*tie_band=*/0.3},
      {"Gemini-1.5-Flash", /*noise=*/0.62, /*skill=*/9.0, /*tie_band=*/0.3},
      {"Gemini-1.5-Pro", /*noise=*/0.52, /*skill=*/9.0, /*tie_band=*/0.3},
      {"Gemini-2.5-Pro", /*noise=*/0.50, /*skill=*/9.0, /*tie_band=*/0.3},
      {"Human", /*noise=*/1.10, /*skill=*/9.0, /*tie_band=*/0.3},
  };
}

}  // namespace iccache
