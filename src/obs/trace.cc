#include "src/obs/trace.h"

#include <algorithm>

namespace iccache {

const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kWindow:
      return "window";
    case TraceCategory::kPrepare:
      return "prepare";
    case TraceCategory::kEmbed:
      return "embed";
    case TraceCategory::kStage0Probe:
      return "stage0_probe";
    case TraceCategory::kStage1Retrieval:
      return "stage1_retrieval";
    case TraceCategory::kStage2Scoring:
      return "stage2_scoring";
    case TraceCategory::kHnswSearch:
      return "hnsw_search";
    case TraceCategory::kCommitLane:
      return "commit_lane";
    case TraceCategory::kLaneCommit:
      return "lane_commit";
    case TraceCategory::kMerge:
      return "merge";
    case TraceCategory::kPublish:
      return "publish";
    case TraceCategory::kMaintenancePlan:
      return "maintenance_plan";
    case TraceCategory::kMaintenanceApply:
      return "maintenance_apply";
    case TraceCategory::kCheckpointWrite:
      return "checkpoint_write";
    case TraceCategory::kServiceRequest:
      return "service_request";
    case TraceCategory::kRoute:
      return "route";
    case TraceCategory::kGenerate:
      return "generate";
    case TraceCategory::kMergeStep:
      return "merge_step";
    case TraceCategory::kAnomaly:
      return "anomaly";
    case TraceCategory::kStage1Batch:
      return "stage1_batch";
    case TraceCategory::kNumCategories:
      break;
  }
  return "unknown";
}

// Single-producer ring: only the owning thread writes slots and bumps the
// head, so emission needs no CAS. Readers (snapshot) run at quiescence.
class TraceRecorder::Ring {
 public:
  Ring(uint32_t tid, size_t capacity)
      : tid_(tid), slots_(std::max<size_t>(1, capacity)) {}

  void Emit(const TraceEvent& event) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    slots_[head % slots_.size()] = event;
    head_.store(head + 1, std::memory_order_release);
  }

  TraceRecorder::ThreadEvents Snapshot() const {
    TraceRecorder::ThreadEvents out;
    out.tid = tid_;
    const uint64_t head = head_.load(std::memory_order_acquire);
    out.emitted = head;
    const uint64_t capacity = slots_.size();
    out.dropped = head > capacity ? head - capacity : 0;
    const uint64_t kept = std::min(head, capacity);
    out.events.reserve(kept);
    for (uint64_t i = head - kept; i < head; ++i) {
      out.events.push_back(slots_[i % capacity]);
    }
    return out;
  }

  void Reset() { head_.store(0, std::memory_order_release); }

  uint64_t emitted() const { return head_.load(std::memory_order_acquire); }
  uint64_t dropped() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    return head > slots_.size() ? head - slots_.size() : 0;
  }

 private:
  uint32_t tid_;
  std::vector<TraceEvent> slots_;
  std::atomic<uint64_t> head_{0};
};

TraceRecorder::TraceRecorder(size_t ring_capacity)
    : epoch_(std::chrono::steady_clock::now()),
      ring_capacity_(std::max<size_t>(1, ring_capacity)) {
  static std::atomic<uint64_t> next_id{1};
  id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::set_ring_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_capacity_ = std::max<size_t>(1, capacity);
}

size_t TraceRecorder::ring_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_capacity_;
}

TraceRecorder::Ring* TraceRecorder::RingForThisThread() {
  // Cache the ring per (thread, recorder); ring objects are never freed, so
  // the cached pointer stays valid for the recorder's lifetime even across
  // Reset(). The cache is keyed by the recorder's never-reused id, not its
  // address, so a fresh recorder at a recycled address (stack-allocated test
  // instances) can never resurrect a destroyed recorder's ring.
  thread_local Ring* cached_ring = nullptr;
  thread_local uint64_t cached_owner_id = 0;
  if (cached_ring == nullptr || cached_owner_id != id_) {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::make_unique<Ring>(static_cast<uint32_t>(rings_.size()),
                                            ring_capacity_));
    cached_ring = rings_.back().get();
    cached_owner_id = id_;
  }
  return cached_ring;
}

void TraceRecorder::Emit(const TraceEvent& event) {
  RingForThisThread()->Emit(event);
}

uint64_t TraceRecorder::NowNs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch_)
                                   .count());
}

TraceRecorder::Snapshot TraceRecorder::TakeSnapshot() const {
  Snapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.threads.reserve(rings_.size());
  for (const auto& ring : rings_) {
    snapshot.threads.push_back(ring->Snapshot());
    snapshot.emitted += snapshot.threads.back().emitted;
    snapshot.dropped += snapshot.threads.back().dropped;
  }
  return snapshot;
}

void TraceRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    ring->Reset();
  }
}

uint64_t TraceRecorder::total_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->emitted();
  }
  return total;
}

uint64_t TraceRecorder::total_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    total += ring->dropped();
  }
  return total;
}

}  // namespace iccache
