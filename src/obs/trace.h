// Flight-recorder tracing for the serving pipeline. Each thread that emits
// spans owns a fixed-capacity ring buffer inside the process-wide
// TraceRecorder; emission is a single unsynchronized slot write plus a
// release store of the ring head, so instrumented hot paths pay one relaxed
// atomic load when tracing is disabled and a few dozen nanoseconds when it is
// enabled. Rings overwrite their oldest entries when full and account every
// overwritten span as dropped, which keeps memory bounded on arbitrarily long
// runs (a flight recorder, not a log).
//
// Tracing is strictly passive: spans record wall-clock ticks and pre-existing
// values, never consume randomness, and never change control flow, so driver
// decisions are byte-identical with tracing on or off by construction.
// TakeSnapshot()/Reset() are quiescent-only operations — call them when no
// thread is emitting (e.g. between driver runs).
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace iccache {

// One enumerator per instrumented pipeline stage. Keep TraceCategoryName()
// and the README span taxonomy table in sync when adding stages.
enum class TraceCategory : uint8_t {
  kWindow = 0,         // one driver batch window, end to end
  kPrepare,            // per-request prepare (embed + retrieval + scoring)
  kEmbed,              // embedding lookup inside prepare
  kStage0Probe,        // stage-0 semantic response-cache probe
  kStage1Retrieval,    // selector stage-1 ANN retrieval
  kStage2Scoring,      // selector stage-2 proxy scoring
  kHnswSearch,         // HNSW graph search (args: visited nodes, hops)
  kCommitLane,         // one commit lane's batch for a window (arg0: slots)
  kLaneCommit,         // one request's decision inside a commit lane
  kMerge,              // deterministic arrival-order merge on driver thread
  kPublish,            // per-shard publish fan-out
  kMaintenancePlan,    // maintenance planning (background or inline)
  kMaintenanceApply,   // applying a collected maintenance plan
  kCheckpointWrite,    // checkpointer snapshot write
  kServiceRequest,     // IcCacheService::ServeRequest end to end
  kRoute,              // bandit routing inside a commit lane
  kGenerate,           // generation (incl. shadow probes) inside a commit lane
  kMergeStep,          // one request's slice of the serial merge
  kAnomaly,            // SLO-watchdog anomaly (instant; arg0: rule, arg1: window)
  kStage1Batch,        // one chunk's batched stage-1 sweep (arg0: batch size)
  kNumCategories,
};

const char* TraceCategoryName(TraceCategory category);

struct TraceEvent {
  uint64_t begin_ns = 0;  // monotonic, relative to the recorder epoch
  uint64_t end_ns = 0;
  uint64_t request_id = 0;  // 0 when the span is not per-request
  uint64_t arg0 = 0;        // category-specific payload (see taxonomy)
  uint64_t arg1 = 0;
  uint32_t lane = 0;
  TraceCategory category = TraceCategory::kWindow;
};

class TraceRecorder {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 14;  // per thread

  explicit TraceRecorder(size_t ring_capacity = kDefaultRingCapacity);
  ~TraceRecorder();  // out of line: Ring is incomplete here

  // Process-wide recorder used by TraceSpan; separate instances are only for
  // unit-testing ring semantics.
  static TraceRecorder& Global();

  // The only cost instrumentation pays when tracing is off.
  static bool tracing_enabled() {
    return Global().enabled_.load(std::memory_order_relaxed);
  }

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Applies to rings created after the call; existing rings keep their size.
  void set_ring_capacity(size_t capacity);
  size_t ring_capacity() const;

  // Appends to the calling thread's ring (registered on first use; ring
  // storage is never freed, so cached per-thread pointers stay valid across
  // Reset()). Safe to call concurrently from any number of threads.
  void Emit(const TraceEvent& event);

  // Monotonic nanoseconds since this recorder was constructed.
  uint64_t NowNs() const;

  struct ThreadEvents {
    uint32_t tid = 0;               // registration order, stable per ring
    uint64_t emitted = 0;           // total spans emitted on this ring
    uint64_t dropped = 0;           // overwritten before being snapshotted
    std::vector<TraceEvent> events;  // surviving spans, oldest first
  };
  struct Snapshot {
    std::vector<ThreadEvents> threads;
    uint64_t emitted = 0;
    uint64_t dropped = 0;
  };

  // Copies out every ring. Quiescent-only: no concurrent Emit().
  Snapshot TakeSnapshot() const;

  // Clears ring contents and counters but keeps ring registrations (and thus
  // any thread-cached ring pointers) intact. Quiescent-only.
  void Reset();

  uint64_t total_emitted() const;
  uint64_t total_dropped() const;

 private:
  class Ring;

  Ring* RingForThisThread();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  uint64_t id_;  // process-unique, never reused: keys the thread-local ring cache
  mutable std::mutex mu_;  // guards rings_ registration and capacity
  size_t ring_capacity_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

// RAII span: samples the clock at construction and emits one TraceEvent at
// destruction. When tracing is disabled the constructor is a single relaxed
// atomic load and the destructor a branch.
class TraceSpan {
 public:
  explicit TraceSpan(TraceCategory category, uint64_t request_id = 0,
                     uint32_t lane = 0) {
    if (!TraceRecorder::tracing_enabled()) {
      return;
    }
    active_ = true;
    event_.category = category;
    event_.request_id = request_id;
    event_.lane = lane;
    event_.begin_ns = TraceRecorder::Global().NowNs();
  }

  ~TraceSpan() {
    if (!active_) {
      return;
    }
    TraceRecorder& recorder = TraceRecorder::Global();
    event_.end_ns = recorder.NowNs();
    recorder.Emit(event_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Category-specific payload, e.g. visited-node/hop counts for HNSW spans.
  void SetArgs(uint64_t arg0, uint64_t arg1 = 0) {
    event_.arg0 = arg0;
    event_.arg1 = arg1;
  }

  // Lets callers skip computing args when the span will never be emitted.
  bool active() const { return active_; }

 private:
  TraceEvent event_;
  bool active_ = false;
};

// Scoped enable/disable of the global recorder; restores the previous state
// on destruction (tests and benches).
class ScopedTracing {
 public:
  explicit ScopedTracing(bool enabled)
      : previous_(TraceRecorder::Global().enabled()) {
    TraceRecorder::Global().set_enabled(enabled);
  }
  ~ScopedTracing() { TraceRecorder::Global().set_enabled(previous_); }

  ScopedTracing(const ScopedTracing&) = delete;
  ScopedTracing& operator=(const ScopedTracing&) = delete;

 private:
  bool previous_;
};

}  // namespace iccache

#endif  // SRC_OBS_TRACE_H_
