// Export of trace snapshots and metrics: Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing), Prometheus-style text files, and a small
// dependency-free JSON validator used by tools/trace_dump, the acceptance
// gates, and tests to prove the emitted files parse cleanly.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace iccache {

// Renders a snapshot as Chrome trace-event JSON: spans become complete ("X")
// events (ts/dur in microseconds, args carrying request id / lane / span
// payload), the per-window metric series becomes counter ("C") events, and
// per-ring thread-name metadata ("M") events label the tracks. Top-level
// "otherData" records emitted/dropped totals.
std::string ChromeTraceJson(const TraceRecorder::Snapshot& snapshot,
                            const std::vector<MetricsWindowSample>& series);

Status WriteChromeTraceFile(const std::string& path,
                            const TraceRecorder::Snapshot& snapshot,
                            const std::vector<MetricsWindowSample>& series);

Status WritePrometheusFile(const std::string& path, const MetricsHub& hub,
                           const std::string& prefix = "iccache_");

Status WriteTextFile(const std::string& path, const std::string& contents);
StatusOr<std::string> ReadTextFile(const std::string& path);

// Per-name tallies extracted from a parsed Chrome trace.
struct ChromeTraceSummary {
  size_t total_events = 0;
  uint64_t emitted = 0;  // from otherData, 0 when absent
  uint64_t dropped = 0;
  std::map<std::string, uint64_t> span_counts;    // "X" events by name
  std::map<std::string, double> span_duration_us;  // summed dur by name
  std::map<std::string, uint64_t> counter_counts;  // "C" events by name
};

// Strict parse + validation of a Chrome trace-event JSON document. Returns
// false with a diagnostic when the JSON is malformed or the traceEvents
// shape is wrong.
bool ParseChromeTrace(const std::string& json, ChromeTraceSummary* summary,
                      std::string* error);

}  // namespace iccache

#endif  // SRC_OBS_EXPORT_H_
