// Export of trace snapshots and metrics: Chrome trace-event JSON (loadable
// in Perfetto / chrome://tracing), Prometheus-style text files, and strict
// validators for both formats used by tools/trace_dump, the acceptance
// gates, and tests to prove the emitted files parse cleanly and round-trip.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace iccache {

// Renders a snapshot as Chrome trace-event JSON: spans become complete ("X")
// events (ts/dur in microseconds with fixed 3-decimal precision, so the
// recorder's nanosecond ticks survive the round-trip exactly; args carrying
// request id / lane / span payload), the per-window metric series becomes
// counter ("C") events, and per-ring thread-name metadata ("M") events label
// the tracks. Top-level "otherData" records emitted/dropped totals.
std::string ChromeTraceJson(const TraceRecorder::Snapshot& snapshot,
                            const std::vector<MetricsWindowSample>& series);

Status WriteChromeTraceFile(const std::string& path,
                            const TraceRecorder::Snapshot& snapshot,
                            const std::vector<MetricsWindowSample>& series);

Status WritePrometheusFile(const std::string& path, const MetricsHub& hub,
                           const std::string& prefix = "iccache_");

Status WriteTextFile(const std::string& path, const std::string& contents);
StatusOr<std::string> ReadTextFile(const std::string& path);

// Per-name tallies extracted from a parsed Chrome trace.
struct ChromeTraceSummary {
  size_t total_events = 0;
  uint64_t emitted = 0;  // from otherData, 0 when absent
  uint64_t dropped = 0;
  std::map<std::string, uint64_t> span_counts;    // "X" events by name
  std::map<std::string, double> span_duration_us;  // summed dur by name
  std::map<std::string, uint64_t> counter_counts;  // "C" events by name
};

// Strict parse + validation of a Chrome trace-event JSON document. Returns
// false with a diagnostic when the JSON is malformed or the traceEvents
// shape is wrong.
bool ParseChromeTrace(const std::string& json, ChromeTraceSummary* summary,
                      std::string* error);

// One metric family reconstructed from Prometheus text exposition.
struct PrometheusFamily {
  std::string name;            // full exposition name, prefix included
  std::string type = "untyped";  // from "# TYPE": counter|gauge|histogram
  double value = 0.0;          // scalar sample (counters/gauges)
  bool has_value = false;
  // Histogram series in exposition order: (le upper edge, cumulative count);
  // the +Inf bucket parses as infinity.
  std::vector<std::pair<double, double>> buckets;
  double sum = 0.0;
  double count = 0.0;
  bool has_sum = false;
  bool has_count = false;
};

struct PrometheusSummary {
  std::map<std::string, PrometheusFamily> families;
  size_t samples = 0;  // total sample lines parsed
};

// Parses Prometheus text exposition (the subset MetricsHub emits: "# TYPE"
// comments, bare scalar samples, and histogram `_bucket{le=...}`/`_sum`/
// `_count` series). Returns false with a diagnostic on malformed lines or
// samples whose family was never declared.
bool ParsePrometheusText(const std::string& text, PrometheusSummary* summary,
                         std::string* error);

// Validates every histogram family in a parsed exposition: `_sum`/`_count`
// present, `le` edges strictly increasing and ending at +Inf, cumulative
// counts non-decreasing, and the +Inf bucket equal to `_count`. This is the
// scrapeability contract a Prometheus server expects.
bool ValidatePrometheusHistograms(const PrometheusSummary& summary,
                                  std::string* error);

}  // namespace iccache

#endif  // SRC_OBS_EXPORT_H_
