// Thread-safe metrics for the serving pipeline: named counters and gauges
// with lock-free hot paths (callers hold stable handles; updates are atomic
// double CAS/stores), bounded log-bucketed latency histograms, a per-window
// time series of snapshots, and Prometheus-style text exposition.
//
// Registration (name -> handle) takes a mutex; steady-state updates through
// the returned handles touch only the entry's own atomics. Handles stay
// valid for the hub's lifetime — entries are heap-allocated and never freed.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stats.h"

namespace iccache {

namespace obs_internal {

inline uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  __builtin_memcpy(&bits, &value, sizeof(bits));
  return bits;
}

inline double BitsDouble(uint64_t bits) {
  double value = 0.0;
  __builtin_memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace obs_internal

// Monotonically increasing value; Add() is a CAS loop on the double's bits.
class MetricCounter {
 public:
  void Add(double delta) {
    uint64_t observed = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        observed, obs_internal::DoubleBits(obs_internal::BitsDouble(observed) + delta),
        std::memory_order_relaxed)) {
    }
  }
  void Increment() { Add(1.0); }
  double value() const {
    return obs_internal::BitsDouble(bits_.load(std::memory_order_relaxed));
  }
  void Reset() { bits_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> bits_{0};
};

// Last-write-wins instantaneous value.
class MetricGauge {
 public:
  void Set(double value) {
    bits_.store(obs_internal::DoubleBits(value), std::memory_order_relaxed);
  }
  double value() const {
    return obs_internal::BitsDouble(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> bits_{0};
};

// Mutex-wrapped LatencyHistogram; Observe() is off the per-request fast path
// (window boundaries, completion accounting), so a lock is fine here.
class MetricHistogram {
 public:
  explicit MetricHistogram(LatencyHistogram shape) : histogram_(std::move(shape)) {}

  void Observe(double value) { Observe(value, 0); }
  // With a nonzero id, additionally records `exemplar_id` as the most recent
  // exemplar landing in the value's bucket (-1 = underflow, num_buckets() =
  // overflow) — the request id a tail investigation should pull from the
  // trace for that latency range.
  void Observe(double value, uint64_t exemplar_id) {
    std::lock_guard<std::mutex> lock(mu_);
    if (exemplar_id != 0) {
      exemplars_[histogram_.BucketIndex(value)] = exemplar_id;
    }
    histogram_.Add(value);
  }
  LatencyHistogram snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return histogram_;
  }
  // Bucket index -> last exemplar id observed into that bucket.
  std::map<int, uint64_t> exemplars() const {
    std::lock_guard<std::mutex> lock(mu_);
    return exemplars_;
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    histogram_.Reset();
    exemplars_.clear();
  }

 private:
  mutable std::mutex mu_;
  LatencyHistogram histogram_;
  std::map<int, uint64_t> exemplars_;
};

// One row of the per-window time series: every counter and gauge value at a
// window boundary, name-sorted.
struct MetricsWindowSample {
  uint64_t window = 0;
  double sim_time_s = 0.0;
  uint64_t mono_ns = 0;
  std::vector<std::pair<std::string, double>> values;
};

class MetricsHub {
 public:
  static constexpr size_t kDefaultSeriesCapacity = 4096;

  // Registration: returns a stable handle, creating the entry on first use.
  // A Histogram()'s bucket geometry is fixed by the first registration.
  MetricCounter* Counter(const std::string& name);
  MetricGauge* Gauge(const std::string& name);
  MetricHistogram* Histogram(const std::string& name, double lo = 1e-6,
                             double growth = 1.10, size_t num_buckets = 256);

  // Name-based conveniences for cold paths.
  void Add(const std::string& name, double delta = 1.0) { Counter(name)->Add(delta); }
  void Set(const std::string& name, double value) { Gauge(name)->Set(value); }
  void Observe(const std::string& name, double value) { Histogram(name)->Observe(value); }

  // Current value of a counter or gauge by name; 0 when unregistered.
  double Value(const std::string& name) const;
  // Copy of a histogram's state; empty default-shaped histogram when absent.
  LatencyHistogram HistogramSnapshot(const std::string& name) const;
  // Bucket -> exemplar id map of a histogram; empty when absent.
  std::map<int, uint64_t> HistogramExemplars(const std::string& name) const;

  // Every counter and gauge value right now, name-sorted (the same rows a
  // window snapshot records).
  std::vector<std::pair<std::string, double>> CountersAndGauges() const;

  // Records every counter/gauge into the bounded per-window series
  // (drop-oldest past capacity, with an exposed dropped count) and returns
  // the recorded sample so callers (e.g. the SLO watchdog) can evaluate it
  // without re-reading the series.
  MetricsWindowSample SnapshotWindow(uint64_t window, double sim_time_s,
                                     uint64_t mono_ns);
  std::vector<MetricsWindowSample> series() const;
  uint64_t series_dropped() const;
  void set_series_capacity(size_t capacity);

  // Prometheus text exposition: counters/gauges as single samples,
  // histograms as cumulative `le` buckets plus `_sum`/`_count`.
  std::string PrometheusText(const std::string& prefix = "iccache_") const;

  // Zeroes counters/histograms and clears the series; handles stay valid.
  void Reset();

 private:
  std::vector<std::pair<std::string, double>> CountersAndGaugesLocked() const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_;
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
  std::deque<MetricsWindowSample> series_;
  size_t series_capacity_ = kDefaultSeriesCapacity;
  uint64_t series_dropped_ = 0;
};

}  // namespace iccache

#endif  // SRC_OBS_METRICS_H_
