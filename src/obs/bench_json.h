// Machine-readable benchmark trajectory: a versioned BENCH_*.json schema the
// benches emit via --json-out, and the comparison engine tools/bench_compare
// uses to gate CI against a committed baseline with per-metric tolerance
// bands.
//
// Schema "iccache-bench/1":
//   {
//     "schema": "iccache-bench/1",
//     "bench": "<bench name>",
//     "config": {"<key>": "<string value>", ...},
//     "metrics": {
//       "<name>": {"value": <number>, "tolerance": <relative band>,
//                   "direction": "higher"|"lower"|"none",
//                   "machine_dependent": true|false},
//       ...
//     }
//   }
//
// "direction" states which way is better; "none" marks informational metrics
// that never gate. "machine_dependent" marks wall-clock-derived metrics
// (req/s, wall seconds): they are reported but only gate under --strict,
// since a committed baseline crosses machines while the simulated metrics
// (percentiles of simulated latency, hit rates, token counts) are
// deterministic for a given seed and gate everywhere.
#ifndef SRC_OBS_BENCH_JSON_H_
#define SRC_OBS_BENCH_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace iccache {

struct BenchMetric {
  double value = 0.0;
  double tolerance = 0.10;  // relative band vs baseline (absolute when baseline is 0)
  int direction = 0;        // +1 higher-is-better, -1 lower-is-better, 0 informational
  bool machine_dependent = false;
};

struct BenchRunRecord {
  std::string schema = "iccache-bench/1";
  std::string bench;
  std::vector<std::pair<std::string, std::string>> config;
  std::vector<std::pair<std::string, BenchMetric>> metrics;

  void AddConfig(const std::string& key, const std::string& value) {
    config.emplace_back(key, value);
  }
  void AddMetric(const std::string& name, double value, double tolerance,
                 int direction, bool machine_dependent = false) {
    BenchMetric metric;
    metric.value = value;
    metric.tolerance = tolerance;
    metric.direction = direction;
    metric.machine_dependent = machine_dependent;
    metrics.emplace_back(name, metric);
  }
  const BenchMetric* Find(const std::string& name) const {
    for (const auto& [metric_name, metric] : metrics) {
      if (metric_name == name) {
        return &metric;
      }
    }
    return nullptr;
  }
  BenchMetric* Find(const std::string& name) {
    return const_cast<BenchMetric*>(
        static_cast<const BenchRunRecord*>(this)->Find(name));
  }
};

std::string BenchRunJson(const BenchRunRecord& record);
Status WriteBenchRun(const std::string& path, const BenchRunRecord& record);
StatusOr<BenchRunRecord> ReadBenchRun(const std::string& path);
StatusOr<BenchRunRecord> ParseBenchRun(const std::string& json);

struct BenchCompareRow {
  std::string name;
  double baseline = 0.0;
  double run = 0.0;
  double delta = 0.0;  // relative change vs baseline (0 when baseline is 0)
  double tolerance = 0.0;
  int direction = 0;
  bool machine_dependent = false;
  bool checked = false;     // participated in gating
  bool regression = false;  // outside the band in the bad direction
};

struct BenchCompareResult {
  std::vector<BenchCompareRow> rows;
  std::vector<std::string> missing_metrics;  // in baseline, absent from run
  std::vector<std::string> new_metrics;      // in run only (informational)
  bool schema_mismatch = false;
  bool bench_mismatch = false;

  size_t regressions() const {
    size_t count = 0;
    for (const BenchCompareRow& row : rows) {
      count += row.regression ? 1 : 0;
    }
    return count;
  }
  bool ok() const {
    return !schema_mismatch && !bench_mismatch && missing_metrics.empty() &&
           regressions() == 0;
  }
};

// Diffs `run` against `baseline` using the BASELINE's tolerance/direction
// metadata (the committed file owns the contract). Gated metrics must stay
// within baseline*(1 +/- tolerance) on the bad side; informational
// (direction "none") never gate; machine-dependent metrics gate only when
// `strict`. A gated baseline metric missing from the run is a failure; extra
// run metrics are reported but never fail.
BenchCompareResult CompareBenchRuns(const BenchRunRecord& baseline,
                                    const BenchRunRecord& run, bool strict);

// Human-readable comparison table with a PASS/FAIL verdict line.
std::string RenderBenchCompare(const BenchCompareResult& result);

}  // namespace iccache

#endif  // SRC_OBS_BENCH_JSON_H_
