#include "src/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace iccache {

namespace {

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

MetricCounter* MetricsHub::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<MetricCounter>();
  }
  return slot.get();
}

MetricGauge* MetricsHub::Gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<MetricGauge>();
  }
  return slot.get();
}

MetricHistogram* MetricsHub::Histogram(const std::string& name, double lo,
                                       double growth, size_t num_buckets) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<MetricHistogram>(LatencyHistogram(lo, growth, num_buckets));
  }
  return slot.get();
}

double MetricsHub::Value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto counter = counters_.find(name);
  if (counter != counters_.end()) {
    return counter->second->value();
  }
  auto gauge = gauges_.find(name);
  if (gauge != gauges_.end()) {
    return gauge->second->value();
  }
  return 0.0;
}

LatencyHistogram MetricsHub::HistogramSnapshot(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    return LatencyHistogram();
  }
  return it->second->snapshot();
}

std::map<int, uint64_t> MetricsHub::HistogramExemplars(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    return {};
  }
  return it->second->exemplars();
}

std::vector<std::pair<std::string, double>> MetricsHub::CountersAndGauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CountersAndGaugesLocked();
}

std::vector<std::pair<std::string, double>> MetricsHub::CountersAndGaugesLocked() const {
  std::vector<std::pair<std::string, double>> values;
  values.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, counter] : counters_) {
    values.emplace_back(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    values.emplace_back(name, gauge->value());
  }
  std::sort(values.begin(), values.end());
  return values;
}

MetricsWindowSample MetricsHub::SnapshotWindow(uint64_t window, double sim_time_s,
                                               uint64_t mono_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsWindowSample sample;
  sample.window = window;
  sample.sim_time_s = sim_time_s;
  sample.mono_ns = mono_ns;
  sample.values = CountersAndGaugesLocked();
  series_.push_back(sample);
  while (series_.size() > series_capacity_) {
    series_.pop_front();
    ++series_dropped_;
  }
  return sample;
}

std::vector<MetricsWindowSample> MetricsHub::series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<MetricsWindowSample>(series_.begin(), series_.end());
}

uint64_t MetricsHub::series_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_dropped_;
}

void MetricsHub::set_series_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  series_capacity_ = std::max<size_t>(1, capacity);
  while (series_.size() > series_capacity_) {
    series_.pop_front();
    ++series_dropped_;
  }
}

std::string MetricsHub::PrometheusText(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    const std::string full = prefix + name;
    out << "# TYPE " << full << " counter\n";
    out << full << " " << FormatDouble(counter->value()) << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string full = prefix + name;
    out << "# TYPE " << full << " gauge\n";
    out << full << " " << FormatDouble(gauge->value()) << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string full = prefix + name;
    const LatencyHistogram snap = histogram->snapshot();
    out << "# TYPE " << full << " histogram\n";
    uint64_t cumulative = snap.underflow_count();
    // Emit buckets up to the last occupied one; the +Inf bucket carries the
    // remainder, keeping the exposition compact for 256-bucket histograms.
    size_t last_occupied = 0;
    for (size_t i = 0; i < snap.num_buckets(); ++i) {
      if (snap.bucket_count(i) > 0) {
        last_occupied = i + 1;
      }
    }
    for (size_t i = 0; i < last_occupied; ++i) {
      cumulative += snap.bucket_count(i);
      out << full << "_bucket{le=\"" << FormatDouble(snap.BucketUpperEdge(i))
          << "\"} " << cumulative << "\n";
    }
    out << full << "_bucket{le=\"+Inf\"} " << snap.count() << "\n";
    out << full << "_sum " << FormatDouble(snap.sum()) << "\n";
    out << full << "_count " << snap.count() << "\n";
  }
  return out.str();
}

void MetricsHub::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    (void)name;
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    (void)name;
    gauge->Set(0.0);
  }
  for (auto& [name, histogram] : histograms_) {
    (void)name;
    histogram->Reset();
  }
  series_.clear();
  series_dropped_ = 0;
}

}  // namespace iccache
