// Per-request timeline assembly and tail attribution over flight-recorder
// spans. Spans carry request ids, so a request's life across the pipelined
// window machinery (prepare on a pool thread, commit on a lane thread, merge
// on the driver thread) can be stitched back into one causal breakdown:
// where did the wall time of THIS request go, and how does the p99 cohort's
// breakdown differ from the typical request's.
//
// Everything here is offline analysis over a snapshot or an exported Chrome
// trace — nothing touches the serving hot path.
#ifndef SRC_OBS_TIMELINE_H_
#define SRC_OBS_TIMELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace iccache {

// One span in analysis form, decoupled from TraceEvent so timelines assemble
// identically from an in-process snapshot or a parsed Chrome trace file.
struct TimelineSpan {
  std::string name;
  uint64_t request_id = 0;
  uint64_t begin_ns = 0;
  uint64_t end_ns = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint32_t lane = 0;
  uint32_t tid = 0;

  uint64_t duration_ns() const {
    return end_ns > begin_ns ? end_ns - begin_ns : 0;
  }
};

// Flattens every ring of a recorder snapshot into analysis spans.
std::vector<TimelineSpan> FlattenSnapshot(const TraceRecorder::Snapshot& snapshot);

// Extracts the "X" spans of a Chrome trace-event JSON document (as written
// by ChromeTraceJson). Returns false with a diagnostic on malformed JSON.
bool ParseChromeTraceSpans(const std::string& json,
                           std::vector<TimelineSpan>* spans, std::string* error);

// The causal stages a request's wall time decomposes into, in pipeline
// order. "*_wait" stages are gaps between consecutive phases (queueing on
// the lane / merge boundaries); "*_other" is a phase's self time not covered
// by its instrumented children.
enum class TimelineStage : uint8_t {
  kEmbed = 0,       // embedding lookup inside prepare
  kStage0Probe,     // stage-0 semantic cache probe
  kStage1,          // stage-1 ANN retrieval
  kStage2,          // stage-2 proxy scoring
  kPrepareOther,    // prepare self time (candidate assembly, lifecycle)
  kLaneWait,        // gap between prepare end and commit-lane start
  kRoute,           // bandit routing in the lane
  kGenerate,        // generation (incl. stage-0 shadow probes) in the lane
  kLaneOther,       // lane self time (stage-0 hit path, bookkeeping)
  kMergeWait,       // gap between lane end and this request's merge step
  kMerge,           // this request's slice of the serial merge
  kNumStages,
};

const char* TimelineStageName(TimelineStage stage);

// One request's assembled timeline. Degrades gracefully when spans were
// dropped by the rings: a missing phase leaves its stages at zero and clears
// the corresponding has_* flag, and the total span shrinks to the phases
// that survived.
struct RequestTimeline {
  uint64_t request_id = 0;
  uint64_t begin_ns = 0;  // first surviving phase's begin
  uint64_t end_ns = 0;    // last surviving phase's end
  uint32_t lane = 0;
  bool has_prepare = false;
  bool has_lane = false;
  bool has_merge = false;
  uint64_t stage_ns[static_cast<size_t>(TimelineStage::kNumStages)] = {0};

  uint64_t total_ns() const { return end_ns > begin_ns ? end_ns - begin_ns : 0; }
  uint64_t attributed_ns() const;
  // Fraction of total wall time attributed to named stages; 1.0 for an empty
  // timeline (nothing to attribute).
  double attribution_fraction() const;
};

// Groups spans by request id and assembles one timeline per request (only
// requests with at least one per-request span appear). Handles out-of-order
// spans across rings; result is sorted by request id.
std::vector<RequestTimeline> AssembleTimelines(const std::vector<TimelineSpan>& spans);

// "Where does p99 time go vs p50": per-stage mean wall time over the tail
// cohort (requests with total >= the p99 total) vs the typical cohort
// (total <= median).
struct TailAttribution {
  size_t requests = 0;
  size_t tail_count = 0;
  size_t typical_count = 0;
  double p50_total_ms = 0.0;
  double p99_total_ms = 0.0;
  // Attributed share of total wall time, summed over the tail cohort.
  double tail_attribution_fraction = 0.0;
  double tail_stage_ms[static_cast<size_t>(TimelineStage::kNumStages)] = {0};
  double typical_stage_ms[static_cast<size_t>(TimelineStage::kNumStages)] = {0};
};

TailAttribution AttributeTails(const std::vector<RequestTimeline>& timelines);

// Human-readable table of a tail attribution (tools/tail_report, bench).
std::string RenderTailAttribution(const TailAttribution& attribution);

// Human-readable dump of one request's timeline (trace_dump --request).
std::string RenderRequestTimeline(const RequestTimeline& timeline);

// Cheap trace-integrity lint: every span of a category that can only occur
// inside a driver window (commit_lane, lane_commit, merge, merge_step,
// publish) must time-overlap some "window" span. Returns false with a
// diagnostic naming the orphaned category. Traces with no window spans at
// all pass vacuously only when they also contain no window-scoped spans.
bool CheckTraceIntegrity(const std::vector<TimelineSpan>& spans,
                         std::string* error);

}  // namespace iccache

#endif  // SRC_OBS_TIMELINE_H_
