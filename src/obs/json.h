// Minimal dependency-free JSON support shared by the observability exporters
// and tools: a recursive-descent parser (objects, arrays, strings, numbers,
// booleans, null) plus the escaping/number-formatting helpers the writers
// use. Strict enough to reject malformed documents; tolerant of whitespace.
// Used only for validation, tooling, and bench artifacts — never on a hot
// path.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace iccache {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [name, value] : object) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole document; trailing non-whitespace is an error.
  bool Parse(JsonValue* out);

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& message);
  void SkipWhitespace();
  bool Consume(char expected);
  bool ParseValue(JsonValue* out);
  bool ParseObject(JsonValue* out);
  bool ParseArray(JsonValue* out);
  bool ParseString(std::string* out);
  bool ParseBool(JsonValue* out);
  bool ParseNull(JsonValue* out);
  bool ParseNumber(JsonValue* out);

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

// Appends `text` with JSON string escaping ("\n", "\t", \u00XX for other
// control characters).
void JsonAppendEscaped(std::ostringstream& out, const std::string& text);

// Shortest round-trippable-ish text for a double ("%.9g"): compact for file
// size, exact for the integer-valued counters the exporters mostly emit.
std::string JsonNumberText(double value);

}  // namespace iccache

#endif  // SRC_OBS_JSON_H_
