#include "src/obs/timeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <unordered_map>

#include "src/obs/json.h"

namespace iccache {

namespace {

constexpr size_t kNumStages = static_cast<size_t>(TimelineStage::kNumStages);

uint64_t ClampedGap(uint64_t from_end, uint64_t to_begin) {
  return to_begin > from_end ? to_begin - from_end : 0;
}

uint64_t ClampedRemainder(uint64_t whole, uint64_t parts) {
  return whole > parts ? whole - parts : 0;
}

// Per-request accumulator while scanning the (unordered) span stream.
struct RequestAccumulator {
  bool has_prepare = false;
  bool has_lane = false;
  bool has_merge = false;
  uint64_t prepare_begin = 0, prepare_end = 0;
  uint64_t lane_begin = 0, lane_end = 0;
  uint64_t merge_begin = 0, merge_end = 0;
  uint32_t lane_id = 0;
  uint64_t embed_ns = 0;
  uint64_t stage0_ns = 0;
  uint64_t stage1_ns = 0;
  uint64_t stage2_ns = 0;
  uint64_t route_ns = 0;
  uint64_t generate_ns = 0;
};

std::string MillisText(double ms) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

}  // namespace

const char* TimelineStageName(TimelineStage stage) {
  switch (stage) {
    case TimelineStage::kEmbed:
      return "embed";
    case TimelineStage::kStage0Probe:
      return "stage0_probe";
    case TimelineStage::kStage1:
      return "stage1_retrieval";
    case TimelineStage::kStage2:
      return "stage2_scoring";
    case TimelineStage::kPrepareOther:
      return "prepare_other";
    case TimelineStage::kLaneWait:
      return "lane_wait";
    case TimelineStage::kRoute:
      return "route";
    case TimelineStage::kGenerate:
      return "generate";
    case TimelineStage::kLaneOther:
      return "lane_other";
    case TimelineStage::kMergeWait:
      return "merge_wait";
    case TimelineStage::kMerge:
      return "merge";
    case TimelineStage::kNumStages:
      break;
  }
  return "unknown";
}

uint64_t RequestTimeline::attributed_ns() const {
  uint64_t total = 0;
  for (uint64_t ns : stage_ns) {
    total += ns;
  }
  return total;
}

double RequestTimeline::attribution_fraction() const {
  const uint64_t total = total_ns();
  if (total == 0) {
    return 1.0;
  }
  const double fraction =
      static_cast<double>(attributed_ns()) / static_cast<double>(total);
  return std::min(1.0, fraction);
}

std::vector<TimelineSpan> FlattenSnapshot(const TraceRecorder::Snapshot& snapshot) {
  std::vector<TimelineSpan> spans;
  for (const TraceRecorder::ThreadEvents& thread : snapshot.threads) {
    for (const TraceEvent& event : thread.events) {
      TimelineSpan span;
      span.name = TraceCategoryName(event.category);
      span.request_id = event.request_id;
      span.begin_ns = event.begin_ns;
      span.end_ns = event.end_ns;
      span.arg0 = event.arg0;
      span.arg1 = event.arg1;
      span.lane = event.lane;
      span.tid = thread.tid;
      spans.push_back(std::move(span));
    }
  }
  return spans;
}

bool ParseChromeTraceSpans(const std::string& json,
                           std::vector<TimelineSpan>* spans, std::string* error) {
  JsonValue root;
  JsonParser parser(json);
  if (!parser.Parse(&root)) {
    if (error != nullptr) {
      *error = parser.error();
    }
    return false;
  }
  const JsonValue* events =
      root.kind == JsonValue::Kind::kObject ? root.Find("traceEvents") : nullptr;
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) {
      *error = "missing traceEvents array";
    }
    return false;
  }
  std::vector<TimelineSpan> result;
  for (const JsonValue& event : events->array) {
    if (event.kind != JsonValue::Kind::kObject) {
      continue;
    }
    const JsonValue* ph = event.Find("ph");
    const JsonValue* name = event.Find("name");
    const JsonValue* ts = event.Find("ts");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || ph->str != "X" ||
        name == nullptr || name->kind != JsonValue::Kind::kString ||
        ts == nullptr || ts->kind != JsonValue::Kind::kNumber) {
      continue;
    }
    TimelineSpan span;
    span.name = name->str;
    span.begin_ns = static_cast<uint64_t>(std::llround(ts->number * 1000.0));
    const JsonValue* dur = event.Find("dur");
    const uint64_t dur_ns =
        dur != nullptr && dur->kind == JsonValue::Kind::kNumber
            ? static_cast<uint64_t>(std::llround(dur->number * 1000.0))
            : 0;
    span.end_ns = span.begin_ns + dur_ns;
    const JsonValue* tid = event.Find("tid");
    if (tid != nullptr && tid->kind == JsonValue::Kind::kNumber) {
      span.tid = static_cast<uint32_t>(tid->number);
    }
    const JsonValue* args = event.Find("args");
    if (args != nullptr && args->kind == JsonValue::Kind::kObject) {
      const JsonValue* request_id = args->Find("request_id");
      if (request_id != nullptr && request_id->kind == JsonValue::Kind::kNumber) {
        span.request_id = static_cast<uint64_t>(request_id->number);
      }
      const JsonValue* lane = args->Find("lane");
      if (lane != nullptr && lane->kind == JsonValue::Kind::kNumber) {
        span.lane = static_cast<uint32_t>(lane->number);
      }
      const JsonValue* arg0 = args->Find("arg0");
      if (arg0 != nullptr && arg0->kind == JsonValue::Kind::kNumber) {
        span.arg0 = static_cast<uint64_t>(arg0->number);
      }
      const JsonValue* arg1 = args->Find("arg1");
      if (arg1 != nullptr && arg1->kind == JsonValue::Kind::kNumber) {
        span.arg1 = static_cast<uint64_t>(arg1->number);
      }
    }
    result.push_back(std::move(span));
  }
  if (spans != nullptr) {
    *spans = std::move(result);
  }
  return true;
}

std::vector<RequestTimeline> AssembleTimelines(const std::vector<TimelineSpan>& spans) {
  std::unordered_map<uint64_t, RequestAccumulator> accumulators;
  for (const TimelineSpan& span : spans) {
    if (span.request_id == 0) {
      continue;
    }
    RequestAccumulator& acc = accumulators[span.request_id];
    if (span.name == "prepare") {
      // Keep the earliest prepare if rings somehow hold duplicates.
      if (!acc.has_prepare || span.begin_ns < acc.prepare_begin) {
        acc.prepare_begin = span.begin_ns;
        acc.prepare_end = span.end_ns;
      }
      acc.has_prepare = true;
    } else if (span.name == "lane_commit") {
      if (!acc.has_lane || span.begin_ns < acc.lane_begin) {
        acc.lane_begin = span.begin_ns;
        acc.lane_end = span.end_ns;
        acc.lane_id = span.lane;
      }
      acc.has_lane = true;
    } else if (span.name == "merge_step") {
      if (!acc.has_merge || span.begin_ns < acc.merge_begin) {
        acc.merge_begin = span.begin_ns;
        acc.merge_end = span.end_ns;
      }
      acc.has_merge = true;
    } else if (span.name == "embed") {
      acc.embed_ns += span.duration_ns();
    } else if (span.name == "stage0_probe") {
      acc.stage0_ns += span.duration_ns();
    } else if (span.name == "stage1_retrieval") {
      acc.stage1_ns += span.duration_ns();
    } else if (span.name == "stage2_scoring") {
      acc.stage2_ns += span.duration_ns();
    } else if (span.name == "route") {
      acc.route_ns += span.duration_ns();
    } else if (span.name == "generate") {
      acc.generate_ns += span.duration_ns();
    }
    // hnsw_search spans nest inside stage1_retrieval and service_request
    // wraps everything in the synchronous stack: both are intentionally
    // excluded so stages never double-count.
  }

  std::vector<RequestTimeline> timelines;
  timelines.reserve(accumulators.size());
  for (const auto& [request_id, acc] : accumulators) {
    RequestTimeline timeline;
    timeline.request_id = request_id;
    timeline.lane = acc.lane_id;
    timeline.has_prepare = acc.has_prepare;
    timeline.has_lane = acc.has_lane;
    timeline.has_merge = acc.has_merge;

    auto stage = [&timeline](TimelineStage s) -> uint64_t& {
      return timeline.stage_ns[static_cast<size_t>(s)];
    };
    if (acc.has_prepare) {
      stage(TimelineStage::kEmbed) = acc.embed_ns;
      stage(TimelineStage::kStage0Probe) = acc.stage0_ns;
      stage(TimelineStage::kStage1) = acc.stage1_ns;
      stage(TimelineStage::kStage2) = acc.stage2_ns;
      stage(TimelineStage::kPrepareOther) =
          ClampedRemainder(ClampedGap(acc.prepare_begin, acc.prepare_end),
                           acc.embed_ns + acc.stage0_ns + acc.stage1_ns + acc.stage2_ns);
    }
    if (acc.has_lane) {
      if (acc.has_prepare) {
        stage(TimelineStage::kLaneWait) = ClampedGap(acc.prepare_end, acc.lane_begin);
      }
      stage(TimelineStage::kRoute) = acc.route_ns;
      stage(TimelineStage::kGenerate) = acc.generate_ns;
      stage(TimelineStage::kLaneOther) =
          ClampedRemainder(ClampedGap(acc.lane_begin, acc.lane_end),
                           acc.route_ns + acc.generate_ns);
    }
    if (acc.has_merge) {
      if (acc.has_lane) {
        stage(TimelineStage::kMergeWait) = ClampedGap(acc.lane_end, acc.merge_begin);
      }
      stage(TimelineStage::kMerge) = ClampedGap(acc.merge_begin, acc.merge_end);
    }

    // The timeline covers the surviving phases only; dropped phases shrink
    // the span rather than fabricating time.
    bool have_bounds = false;
    auto extend = [&](bool has, uint64_t begin, uint64_t end) {
      if (!has) {
        return;
      }
      if (!have_bounds) {
        timeline.begin_ns = begin;
        timeline.end_ns = end;
        have_bounds = true;
      } else {
        timeline.begin_ns = std::min(timeline.begin_ns, begin);
        timeline.end_ns = std::max(timeline.end_ns, end);
      }
    };
    extend(acc.has_prepare, acc.prepare_begin, acc.prepare_end);
    extend(acc.has_lane, acc.lane_begin, acc.lane_end);
    extend(acc.has_merge, acc.merge_begin, acc.merge_end);
    if (!have_bounds) {
      continue;  // only child spans survived; no phase to anchor a timeline
    }
    timelines.push_back(timeline);
  }
  std::sort(timelines.begin(), timelines.end(),
            [](const RequestTimeline& a, const RequestTimeline& b) {
              return a.request_id < b.request_id;
            });
  return timelines;
}

TailAttribution AttributeTails(const std::vector<RequestTimeline>& timelines) {
  TailAttribution attribution;
  attribution.requests = timelines.size();
  if (timelines.empty()) {
    return attribution;
  }
  std::vector<size_t> order(timelines.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return timelines[a].total_ns() < timelines[b].total_ns();
  });
  const size_t n = order.size();
  auto nearest_rank = [&](double p) -> uint64_t {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(p / 100.0 * static_cast<double>(n))));
    return timelines[order[rank - 1]].total_ns();
  };
  const uint64_t p50_ns = nearest_rank(50.0);
  const uint64_t p99_ns = nearest_rank(99.0);
  attribution.p50_total_ms = static_cast<double>(p50_ns) / 1e6;
  attribution.p99_total_ms = static_cast<double>(p99_ns) / 1e6;

  uint64_t tail_total = 0;
  uint64_t tail_attributed = 0;
  for (const RequestTimeline& timeline : timelines) {
    const uint64_t total = timeline.total_ns();
    if (total >= p99_ns) {
      ++attribution.tail_count;
      tail_total += total;
      tail_attributed += std::min(timeline.attributed_ns(), total);
      for (size_t s = 0; s < kNumStages; ++s) {
        attribution.tail_stage_ms[s] += static_cast<double>(timeline.stage_ns[s]) / 1e6;
      }
    }
    if (total <= p50_ns) {
      ++attribution.typical_count;
      for (size_t s = 0; s < kNumStages; ++s) {
        attribution.typical_stage_ms[s] +=
            static_cast<double>(timeline.stage_ns[s]) / 1e6;
      }
    }
  }
  for (size_t s = 0; s < kNumStages; ++s) {
    if (attribution.tail_count > 0) {
      attribution.tail_stage_ms[s] /= static_cast<double>(attribution.tail_count);
    }
    if (attribution.typical_count > 0) {
      attribution.typical_stage_ms[s] /=
          static_cast<double>(attribution.typical_count);
    }
  }
  attribution.tail_attribution_fraction =
      tail_total == 0 ? 1.0
                      : static_cast<double>(tail_attributed) /
                            static_cast<double>(tail_total);
  return attribution;
}

std::string RenderTailAttribution(const TailAttribution& attribution) {
  std::ostringstream out;
  out << "requests: " << attribution.requests
      << "  tail(p99): " << attribution.tail_count
      << "  typical(<=p50): " << attribution.typical_count << "\n";
  out << "total wall: p50 " << MillisText(attribution.p50_total_ms)
      << " ms, p99 " << MillisText(attribution.p99_total_ms) << " ms\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-18s %12s %12s %12s %8s\n", "stage",
                "tail_ms", "typical_ms", "delta_ms", "tail%");
  out << line;
  double tail_sum = 0.0;
  for (size_t s = 0; s < kNumStages; ++s) {
    tail_sum += attribution.tail_stage_ms[s];
  }
  for (size_t s = 0; s < kNumStages; ++s) {
    const double tail_ms = attribution.tail_stage_ms[s];
    const double typical_ms = attribution.typical_stage_ms[s];
    const double share = tail_sum > 0.0 ? 100.0 * tail_ms / tail_sum : 0.0;
    std::snprintf(line, sizeof(line), "%-18s %12.3f %12.3f %12.3f %7.1f%%\n",
                  TimelineStageName(static_cast<TimelineStage>(s)), tail_ms,
                  typical_ms, tail_ms - typical_ms, share);
    out << line;
  }
  std::snprintf(line, sizeof(line), "tail attribution: %.1f%% of p99 wall time\n",
                100.0 * attribution.tail_attribution_fraction);
  out << line;
  return out.str();
}

std::string RenderRequestTimeline(const RequestTimeline& timeline) {
  std::ostringstream out;
  out << "request " << timeline.request_id << " lane " << timeline.lane
      << " total " << MillisText(static_cast<double>(timeline.total_ns()) / 1e6)
      << " ms (attributed "
      << MillisText(static_cast<double>(timeline.attributed_ns()) / 1e6)
      << " ms, " << MillisText(100.0 * timeline.attribution_fraction())
      << "%)\n";
  out << "phases:";
  out << (timeline.has_prepare ? " prepare" : " [prepare dropped]");
  out << (timeline.has_lane ? " lane" : " [lane dropped]");
  out << (timeline.has_merge ? " merge" : " [merge dropped]");
  out << "\n";
  char line[128];
  for (size_t s = 0; s < kNumStages; ++s) {
    const uint64_t ns = timeline.stage_ns[s];
    if (ns == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line), "  %-18s %12.3f ms\n",
                  TimelineStageName(static_cast<TimelineStage>(s)),
                  static_cast<double>(ns) / 1e6);
    out << line;
  }
  return out.str();
}

bool CheckTraceIntegrity(const std::vector<TimelineSpan>& spans,
                         std::string* error) {
  std::vector<std::pair<uint64_t, uint64_t>> windows;
  for (const TimelineSpan& span : spans) {
    if (span.name == "window") {
      windows.emplace_back(span.begin_ns, span.end_ns);
    }
  }
  std::sort(windows.begin(), windows.end());
  auto overlaps_some_window = [&windows](const TimelineSpan& span) {
    for (const auto& [begin, end] : windows) {
      if (begin > span.end_ns) {
        break;  // sorted: no later window can reach back
      }
      if (end >= span.begin_ns) {
        return true;
      }
    }
    return false;
  };
  for (const TimelineSpan& span : spans) {
    if (span.name != "commit_lane" && span.name != "lane_commit" &&
        span.name != "merge" && span.name != "merge_step" &&
        span.name != "publish") {
      continue;
    }
    if (!overlaps_some_window(span)) {
      if (error != nullptr) {
        std::ostringstream out;
        out << "span '" << span.name << "' (request " << span.request_id
            << ", begin " << span.begin_ns
            << " ns) has no enclosing window span";
        *error = out.str();
      }
      return false;
    }
  }
  return true;
}

}  // namespace iccache
