#include "src/obs/export.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace iccache {

namespace {

void AppendEscaped(std::ostringstream& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
}

std::string NumberText(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser (objects, arrays, strings, numbers,
// booleans, null). Strict enough to reject malformed documents; tolerant of
// whitespace. Used only for validation/summarization, never on a hot path.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [name, value] : object) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out)) {
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseBool(out);
      case 'n':
        return ParseNull(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) {
      return true;
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
        return Fail("expected object key");
      }
      SkipWhitespace();
      if (!Consume(':')) {
        return Fail("expected ':' after object key");
      }
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) {
      return true;
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Fail("unterminated escape");
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return Fail("truncated \\u escape");
            }
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
                return Fail("invalid \\u escape");
              }
            }
            // Validation-only parser: keep the raw escape rather than
            // decoding UTF-16; none of the summarized fields use \u.
            out->append("\\u");
            out->append(text_, pos_, 4);
            pos_ += 4;
            break;
          }
          default:
            return Fail("invalid escape character");
        }
      } else {
        out->push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseBool(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return Fail("invalid literal");
  }

  bool ParseNull(JsonValue* out) {
    out->kind = JsonValue::Kind::kNull;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return Fail("invalid literal");
  }

  bool ParseNumber(JsonValue* out) {
    out->kind = JsonValue::Kind::kNumber;
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected a value");
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number '" + token + "'");
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string ChromeTraceJson(const TraceRecorder::Snapshot& snapshot,
                            const std::vector<MetricsWindowSample>& series) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto separator = [&]() {
    if (!first) {
      out << ",";
    }
    first = false;
  };
  for (const TraceRecorder::ThreadEvents& thread : snapshot.threads) {
    separator();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << thread.tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"ring-" << thread.tid
        << "\"}}";
    for (const TraceEvent& event : thread.events) {
      separator();
      const double ts_us = static_cast<double>(event.begin_ns) / 1000.0;
      const uint64_t duration_ns =
          event.end_ns > event.begin_ns ? event.end_ns - event.begin_ns : 0;
      const double dur_us = static_cast<double>(duration_ns) / 1000.0;
      out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << thread.tid << ",\"name\":\"";
      AppendEscaped(out, TraceCategoryName(event.category));
      out << "\",\"cat\":\"iccache\",\"ts\":" << NumberText(ts_us)
          << ",\"dur\":" << NumberText(dur_us) << ",\"args\":{";
      out << "\"request_id\":" << event.request_id << ",\"lane\":" << event.lane;
      if (event.arg0 != 0 || event.arg1 != 0) {
        out << ",\"arg0\":" << event.arg0 << ",\"arg1\":" << event.arg1;
      }
      out << "}}";
    }
  }
  for (const MetricsWindowSample& sample : series) {
    const double ts_us = static_cast<double>(sample.mono_ns) / 1000.0;
    for (const auto& [name, value] : sample.values) {
      separator();
      out << "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"";
      AppendEscaped(out, name);
      out << "\",\"ts\":" << NumberText(ts_us) << ",\"args\":{\"value\":"
          << NumberText(value) << "}}";
    }
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"emitted\":" << snapshot.emitted
      << ",\"dropped\":" << snapshot.dropped << "}}";
  return out.str();
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteChromeTraceFile(const std::string& path,
                            const TraceRecorder::Snapshot& snapshot,
                            const std::vector<MetricsWindowSample>& series) {
  return WriteTextFile(path, ChromeTraceJson(snapshot, series));
}

Status WritePrometheusFile(const std::string& path, const MetricsHub& hub,
                           const std::string& prefix) {
  return WriteTextFile(path, hub.PrometheusText(prefix));
}

bool ParseChromeTrace(const std::string& json, ChromeTraceSummary* summary,
                      std::string* error) {
  JsonValue root;
  JsonParser parser(json);
  if (!parser.Parse(&root)) {
    if (error != nullptr) {
      *error = parser.error();
    }
    return false;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    if (error != nullptr) {
      *error = "root is not an object";
    }
    return false;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) {
      *error = "missing traceEvents array";
    }
    return false;
  }
  ChromeTraceSummary result;
  for (const JsonValue& event : events->array) {
    if (event.kind != JsonValue::Kind::kObject) {
      if (error != nullptr) {
        *error = "traceEvents entry is not an object";
      }
      return false;
    }
    const JsonValue* ph = event.Find("ph");
    const JsonValue* name = event.Find("name");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || name == nullptr ||
        name->kind != JsonValue::Kind::kString) {
      if (error != nullptr) {
        *error = "traceEvents entry missing ph/name";
      }
      return false;
    }
    ++result.total_events;
    if (ph->str == "X") {
      ++result.span_counts[name->str];
      const JsonValue* dur = event.Find("dur");
      if (dur != nullptr && dur->kind == JsonValue::Kind::kNumber) {
        result.span_duration_us[name->str] += dur->number;
      }
    } else if (ph->str == "C") {
      ++result.counter_counts[name->str];
    }
  }
  const JsonValue* other = root.Find("otherData");
  if (other != nullptr && other->kind == JsonValue::Kind::kObject) {
    const JsonValue* emitted = other->Find("emitted");
    if (emitted != nullptr && emitted->kind == JsonValue::Kind::kNumber) {
      result.emitted = static_cast<uint64_t>(emitted->number);
    }
    const JsonValue* dropped = other->Find("dropped");
    if (dropped != nullptr && dropped->kind == JsonValue::Kind::kNumber) {
      result.dropped = static_cast<uint64_t>(dropped->number);
    }
  }
  if (summary != nullptr) {
    *summary = std::move(result);
  }
  return true;
}

}  // namespace iccache
