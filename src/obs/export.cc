#include "src/obs/export.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/obs/json.h"

namespace iccache {

namespace {

// Microseconds with fixed 3-decimal precision: the recorder ticks in integer
// nanoseconds, so this is exact no matter how far from the epoch the span
// sits ("%.9g" would quantize long-run timestamps to whole microseconds).
std::string MicrosText(uint64_t ns) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buffer;
}

}  // namespace

std::string ChromeTraceJson(const TraceRecorder::Snapshot& snapshot,
                            const std::vector<MetricsWindowSample>& series) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  auto separator = [&]() {
    if (!first) {
      out << ",";
    }
    first = false;
  };
  for (const TraceRecorder::ThreadEvents& thread : snapshot.threads) {
    separator();
    out << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << thread.tid
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"ring-" << thread.tid
        << "\"}}";
    for (const TraceEvent& event : thread.events) {
      separator();
      const uint64_t duration_ns =
          event.end_ns > event.begin_ns ? event.end_ns - event.begin_ns : 0;
      out << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << thread.tid << ",\"name\":\"";
      JsonAppendEscaped(out, TraceCategoryName(event.category));
      out << "\",\"cat\":\"iccache\",\"ts\":" << MicrosText(event.begin_ns)
          << ",\"dur\":" << MicrosText(duration_ns) << ",\"args\":{";
      out << "\"request_id\":" << event.request_id << ",\"lane\":" << event.lane;
      if (event.arg0 != 0 || event.arg1 != 0) {
        out << ",\"arg0\":" << event.arg0 << ",\"arg1\":" << event.arg1;
      }
      out << "}}";
    }
  }
  for (const MetricsWindowSample& sample : series) {
    for (const auto& [name, value] : sample.values) {
      separator();
      out << "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"";
      JsonAppendEscaped(out, name);
      out << "\",\"ts\":" << MicrosText(sample.mono_ns) << ",\"args\":{\"value\":"
          << JsonNumberText(value) << "}}";
    }
  }
  out << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"emitted\":" << snapshot.emitted
      << ",\"dropped\":" << snapshot.dropped << "}}";
  return out.str();
}

Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

StatusOr<std::string> ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteChromeTraceFile(const std::string& path,
                            const TraceRecorder::Snapshot& snapshot,
                            const std::vector<MetricsWindowSample>& series) {
  return WriteTextFile(path, ChromeTraceJson(snapshot, series));
}

Status WritePrometheusFile(const std::string& path, const MetricsHub& hub,
                           const std::string& prefix) {
  return WriteTextFile(path, hub.PrometheusText(prefix));
}

bool ParseChromeTrace(const std::string& json, ChromeTraceSummary* summary,
                      std::string* error) {
  JsonValue root;
  JsonParser parser(json);
  if (!parser.Parse(&root)) {
    if (error != nullptr) {
      *error = parser.error();
    }
    return false;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    if (error != nullptr) {
      *error = "root is not an object";
    }
    return false;
  }
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) {
    if (error != nullptr) {
      *error = "missing traceEvents array";
    }
    return false;
  }
  ChromeTraceSummary result;
  for (const JsonValue& event : events->array) {
    if (event.kind != JsonValue::Kind::kObject) {
      if (error != nullptr) {
        *error = "traceEvents entry is not an object";
      }
      return false;
    }
    const JsonValue* ph = event.Find("ph");
    const JsonValue* name = event.Find("name");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString || name == nullptr ||
        name->kind != JsonValue::Kind::kString) {
      if (error != nullptr) {
        *error = "traceEvents entry missing ph/name";
      }
      return false;
    }
    ++result.total_events;
    if (ph->str == "X") {
      ++result.span_counts[name->str];
      const JsonValue* dur = event.Find("dur");
      if (dur != nullptr && dur->kind == JsonValue::Kind::kNumber) {
        result.span_duration_us[name->str] += dur->number;
      }
    } else if (ph->str == "C") {
      ++result.counter_counts[name->str];
    }
  }
  const JsonValue* other = root.Find("otherData");
  if (other != nullptr && other->kind == JsonValue::Kind::kObject) {
    const JsonValue* emitted = other->Find("emitted");
    if (emitted != nullptr && emitted->kind == JsonValue::Kind::kNumber) {
      result.emitted = static_cast<uint64_t>(emitted->number);
    }
    const JsonValue* dropped = other->Find("dropped");
    if (dropped != nullptr && dropped->kind == JsonValue::Kind::kNumber) {
      result.dropped = static_cast<uint64_t>(dropped->number);
    }
  }
  if (summary != nullptr) {
    *summary = std::move(result);
  }
  return true;
}

namespace {

bool PrometheusFail(std::string* error, size_t line_no, const std::string& message) {
  if (error != nullptr) {
    *error = "line " + std::to_string(line_no) + ": " + message;
  }
  return false;
}

bool ParsePrometheusNumber(const std::string& token, double* out) {
  if (token == "+Inf" || token == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(token.c_str(), &end);
  return end != nullptr && *end == '\0' && !token.empty();
}

// Strips a known histogram-series suffix so the sample maps back onto its
// declared family. Returns the family name, or `name` itself when no suffix
// matches.
std::string FamilyNameFor(const std::string& name,
                          const std::map<std::string, PrometheusFamily>& families) {
  if (families.count(name) > 0) {
    return name;
  }
  static const char* kSuffixes[] = {"_bucket", "_sum", "_count"};
  for (const char* suffix : kSuffixes) {
    const size_t len = std::char_traits<char>::length(suffix);
    if (name.size() > len && name.compare(name.size() - len, len, suffix) == 0) {
      const std::string base = name.substr(0, name.size() - len);
      auto it = families.find(base);
      if (it != families.end() && it->second.type == "histogram") {
        return base;
      }
    }
  }
  return name;
}

}  // namespace

bool ParsePrometheusText(const std::string& text, PrometheusSummary* summary,
                         std::string* error) {
  PrometheusSummary result;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      std::istringstream comment(line);
      std::string hash, keyword, name, type;
      comment >> hash >> keyword;
      if (keyword == "TYPE") {
        if (!(comment >> name >> type)) {
          return PrometheusFail(error, line_no, "malformed # TYPE line");
        }
        PrometheusFamily& family = result.families[name];
        family.name = name;
        family.type = type;
      }
      continue;  // HELP and free-form comments are ignored
    }
    // Sample line: name[{labels}] value
    const size_t brace = line.find('{');
    const size_t space = line.find(' ');
    if (space == std::string::npos) {
      return PrometheusFail(error, line_no, "sample line without a value");
    }
    std::string name;
    std::string le_label;
    size_t value_start = 0;
    if (brace != std::string::npos && brace < space) {
      name = line.substr(0, brace);
      const size_t close = line.find('}', brace);
      if (close == std::string::npos) {
        return PrometheusFail(error, line_no, "unterminated label set");
      }
      const std::string labels = line.substr(brace + 1, close - brace - 1);
      const std::string kLe = "le=\"";
      const size_t le_pos = labels.find(kLe);
      if (le_pos != std::string::npos) {
        const size_t le_end = labels.find('"', le_pos + kLe.size());
        if (le_end == std::string::npos) {
          return PrometheusFail(error, line_no, "unterminated le label");
        }
        le_label = labels.substr(le_pos + kLe.size(), le_end - le_pos - kLe.size());
      }
      value_start = close + 1;
    } else {
      name = line.substr(0, space);
      value_start = space;
    }
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    double value = 0.0;
    if (!ParsePrometheusNumber(line.substr(value_start), &value)) {
      return PrometheusFail(error, line_no, "malformed sample value");
    }
    ++result.samples;
    const std::string family_name = FamilyNameFor(name, result.families);
    auto family_it = result.families.find(family_name);
    if (family_it == result.families.end()) {
      return PrometheusFail(error, line_no,
                            "sample '" + name + "' has no # TYPE declaration");
    }
    PrometheusFamily& family = family_it->second;
    if (family.type == "histogram") {
      if (name == family.name + "_bucket") {
        double le = 0.0;
        if (le_label.empty() || !ParsePrometheusNumber(le_label, &le)) {
          return PrometheusFail(error, line_no, "histogram bucket without le label");
        }
        family.buckets.emplace_back(le, value);
      } else if (name == family.name + "_sum") {
        family.sum = value;
        family.has_sum = true;
      } else if (name == family.name + "_count") {
        family.count = value;
        family.has_count = true;
      } else {
        return PrometheusFail(error, line_no,
                              "unexpected sample '" + name + "' in histogram family");
      }
    } else {
      family.value = value;
      family.has_value = true;
    }
  }
  if (summary != nullptr) {
    *summary = std::move(result);
  }
  return true;
}

bool ValidatePrometheusHistograms(const PrometheusSummary& summary,
                                  std::string* error) {
  for (const auto& [name, family] : summary.families) {
    if (family.type != "histogram") {
      continue;
    }
    if (!family.has_sum || !family.has_count) {
      if (error != nullptr) {
        *error = name + ": histogram missing _sum/_count";
      }
      return false;
    }
    if (family.buckets.empty() ||
        !std::isinf(family.buckets.back().first)) {
      if (error != nullptr) {
        *error = name + ": histogram must end with a +Inf bucket";
      }
      return false;
    }
    double prev_le = -std::numeric_limits<double>::infinity();
    double prev_cumulative = -1.0;
    for (const auto& [le, cumulative] : family.buckets) {
      if (le <= prev_le) {
        if (error != nullptr) {
          *error = name + ": bucket le edges must be strictly increasing";
        }
        return false;
      }
      if (cumulative < prev_cumulative) {
        if (error != nullptr) {
          *error = name + ": cumulative bucket counts decreased";
        }
        return false;
      }
      prev_le = le;
      prev_cumulative = cumulative;
    }
    if (family.buckets.back().second != family.count) {
      if (error != nullptr) {
        *error = name + ": +Inf bucket does not equal _count";
      }
      return false;
    }
  }
  return true;
}

}  // namespace iccache
