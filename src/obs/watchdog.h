// Online SLO watchdog over the per-window MetricsHub snapshot series.
// Evaluated once per window boundary (driver) or per N requests (service)
// against declarative rules: e2e p99 over SLO, stage-0 hit-rate collapse vs
// a trailing EMA, queue-delay growth, eviction storms, maintenance stalls.
// Rules fire with hysteresis (consecutive breaches to trigger, consecutive
// clean windows to re-arm) and emit structured WatchdogEvents the caller
// records into the trace and the run report.
//
// Strictly passive: the watchdog reads deltas of already-maintained metrics,
// consumes no randomness, and never feeds back into serving decisions, so
// decisions stay byte-identical with it enabled or disabled.
#ifndef SRC_OBS_WATCHDOG_H_
#define SRC_OBS_WATCHDOG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/obs/metrics.h"

namespace iccache {

enum class WatchdogRule : uint8_t {
  kSloE2eP99 = 0,       // per-window e2e p99 above the SLO bound
  kStage0HitRateDrop,   // window hit rate collapsed vs trailing EMA
  kQueueDelayGrowth,    // window mean queue delay grew vs trailing EMA
  kEvictionStorm,       // more evictions in one window than the bound
  kMaintenanceStall,    // the maintenance pipeline stalled a window
  kNumRules,
};

const char* WatchdogRuleName(WatchdogRule rule);

// Every rule defaults to disabled (threshold 0 / false), so a
// default-constructed watchdog is a no-op until configured.
struct WatchdogConfig {
  // Fire when the delta-window e2e p99 exceeds this bound (seconds).
  double slo_e2e_p99_s = 0.0;
  // Fire when the window's stage-0 hit rate falls below
  // `stage0_drop_fraction` x trailing EMA. Armed only once the EMA has
  // reached `stage0_min_ema` (suppresses cold-start noise).
  double stage0_drop_fraction = 0.0;
  double stage0_min_ema = 0.05;
  // Fire when the window's mean queue delay exceeds `queue_growth_factor` x
  // trailing EMA, once the EMA has reached `queue_min_ema_s` seconds.
  double queue_growth_factor = 0.0;
  double queue_min_ema_s = 0.001;
  // Fire when a single window evicts more than this many examples.
  double eviction_storm_threshold = 0.0;
  // Fire whenever the maintenance stalled-window counter advances.
  bool maintenance_stall_rule = false;

  // EMA smoothing for the trailing baselines.
  double ema_alpha = 0.2;
  // Hysteresis: breach this many consecutive windows to fire ...
  size_t trigger_windows = 3;
  // ... then stay latched until this many consecutive clean windows.
  size_t clear_windows = 3;

  // Counter names in the window samples (the service exposes its stage-0
  // counters without the `_total` suffix; the driver uses these defaults).
  std::string requests_counter = "requests_total";
  std::string stage0_hits_counter = "stage0_hits_total";
  std::string evictions_counter = "examples_evicted_total";
  std::string stalled_counter = "maintenance_stalled_windows_total";
};

struct WatchdogEvent {
  WatchdogRule rule = WatchdogRule::kSloE2eP99;
  uint64_t window = 0;
  double value = 0.0;      // observed value that breached
  double threshold = 0.0;  // bound it breached
  std::string detail;      // human-readable one-liner
};

class SloWatchdog {
 public:
  SloWatchdog() : SloWatchdog(WatchdogConfig{}) {}
  explicit SloWatchdog(WatchdogConfig config);

  // True when at least one rule is enabled; callers skip the per-window
  // bookkeeping entirely otherwise.
  bool armed() const { return armed_; }

  // Evaluates one window boundary. `sample` is the hub snapshot just
  // recorded; `e2e` / `queue` are cumulative histogram snapshots (the
  // watchdog keeps the previous ones and evaluates per-window deltas).
  // Returns the events that fired AT this window (already appended to
  // events()).
  std::vector<WatchdogEvent> OnWindow(const MetricsWindowSample& sample,
                                      const LatencyHistogram& e2e,
                                      const LatencyHistogram& queue = LatencyHistogram());

  // Every event fired since construction/Reset, in firing order.
  const std::vector<WatchdogEvent>& events() const { return events_; }
  bool latched(WatchdogRule rule) const {
    return states_[static_cast<size_t>(rule)].latched;
  }

  void Reset();

 private:
  struct RuleState {
    size_t breaches = 0;  // consecutive breached windows while unlatched
    size_t clean = 0;     // consecutive clean windows while latched
    bool latched = false;
  };

  // Advances one rule's hysteresis; appends to `fired` when it latches.
  void Step(WatchdogRule rule, bool breached, double value, double threshold,
            const std::string& detail, uint64_t window,
            std::vector<WatchdogEvent>* fired);

  WatchdogConfig config_;
  bool armed_ = false;
  RuleState states_[static_cast<size_t>(WatchdogRule::kNumRules)];
  bool have_prev_ = false;
  MetricsWindowSample prev_;
  LatencyHistogram prev_e2e_;
  LatencyHistogram prev_queue_;
  Ema hit_rate_ema_;
  Ema queue_ema_;
  std::vector<WatchdogEvent> events_;
};

}  // namespace iccache

#endif  // SRC_OBS_WATCHDOG_H_
