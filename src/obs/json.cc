#include "src/obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace iccache {

bool JsonParser::Parse(JsonValue* out) {
  SkipWhitespace();
  if (!ParseValue(out)) {
    return false;
  }
  SkipWhitespace();
  if (pos_ != text_.size()) {
    return Fail("trailing characters after document");
  }
  return true;
}

bool JsonParser::Fail(const std::string& message) {
  if (error_.empty()) {
    error_ = message + " at offset " + std::to_string(pos_);
  }
  return false;
}

void JsonParser::SkipWhitespace() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_]))) {
    ++pos_;
  }
}

bool JsonParser::Consume(char expected) {
  if (pos_ < text_.size() && text_[pos_] == expected) {
    ++pos_;
    return true;
  }
  return false;
}

bool JsonParser::ParseValue(JsonValue* out) {
  if (pos_ >= text_.size()) {
    return Fail("unexpected end of input");
  }
  switch (text_[pos_]) {
    case '{':
      return ParseObject(out);
    case '[':
      return ParseArray(out);
    case '"':
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->str);
    case 't':
    case 'f':
      return ParseBool(out);
    case 'n':
      return ParseNull(out);
    default:
      return ParseNumber(out);
  }
}

bool JsonParser::ParseObject(JsonValue* out) {
  out->kind = JsonValue::Kind::kObject;
  ++pos_;  // '{'
  SkipWhitespace();
  if (Consume('}')) {
    return true;
  }
  while (true) {
    SkipWhitespace();
    std::string key;
    if (pos_ >= text_.size() || text_[pos_] != '"' || !ParseString(&key)) {
      return Fail("expected object key");
    }
    SkipWhitespace();
    if (!Consume(':')) {
      return Fail("expected ':' after object key");
    }
    SkipWhitespace();
    JsonValue value;
    if (!ParseValue(&value)) {
      return false;
    }
    out->object.emplace_back(std::move(key), std::move(value));
    SkipWhitespace();
    if (Consume(',')) {
      continue;
    }
    if (Consume('}')) {
      return true;
    }
    return Fail("expected ',' or '}' in object");
  }
}

bool JsonParser::ParseArray(JsonValue* out) {
  out->kind = JsonValue::Kind::kArray;
  ++pos_;  // '['
  SkipWhitespace();
  if (Consume(']')) {
    return true;
  }
  while (true) {
    SkipWhitespace();
    JsonValue value;
    if (!ParseValue(&value)) {
      return false;
    }
    out->array.push_back(std::move(value));
    SkipWhitespace();
    if (Consume(',')) {
      continue;
    }
    if (Consume(']')) {
      return true;
    }
    return Fail("expected ',' or ']' in array");
  }
}

bool JsonParser::ParseString(std::string* out) {
  ++pos_;  // opening quote
  out->clear();
  while (pos_ < text_.size()) {
    const char c = text_[pos_++];
    if (c == '"') {
      return true;
    }
    if (c == '\\') {
      if (pos_ >= text_.size()) {
        return Fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_ + i]))) {
              return Fail("invalid \\u escape");
            }
          }
          // Validation-only parser: keep the raw escape rather than decoding
          // UTF-16; none of the consumed fields use \u.
          out->append("\\u");
          out->append(text_, pos_, 4);
          pos_ += 4;
          break;
        }
        default:
          return Fail("invalid escape character");
      }
    } else {
      out->push_back(c);
    }
  }
  return Fail("unterminated string");
}

bool JsonParser::ParseBool(JsonValue* out) {
  out->kind = JsonValue::Kind::kBool;
  if (text_.compare(pos_, 4, "true") == 0) {
    out->boolean = true;
    pos_ += 4;
    return true;
  }
  if (text_.compare(pos_, 5, "false") == 0) {
    out->boolean = false;
    pos_ += 5;
    return true;
  }
  return Fail("invalid literal");
}

bool JsonParser::ParseNull(JsonValue* out) {
  out->kind = JsonValue::Kind::kNull;
  if (text_.compare(pos_, 4, "null") == 0) {
    pos_ += 4;
    return true;
  }
  return Fail("invalid literal");
}

bool JsonParser::ParseNumber(JsonValue* out) {
  out->kind = JsonValue::Kind::kNumber;
  const size_t start = pos_;
  if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
    ++pos_;
  }
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
          text_[pos_] == '-' || text_[pos_] == '+')) {
    ++pos_;
  }
  if (pos_ == start) {
    return Fail("expected a value");
  }
  const std::string token = text_.substr(start, pos_ - start);
  char* end = nullptr;
  out->number = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return Fail("malformed number '" + token + "'");
  }
  return true;
}

void JsonAppendEscaped(std::ostringstream& out, const std::string& text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out << buffer;
        } else {
          out << c;
        }
    }
  }
}

std::string JsonNumberText(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace iccache
