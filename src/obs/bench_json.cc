#include "src/obs/bench_json.h"

#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "src/obs/export.h"
#include "src/obs/json.h"

namespace iccache {

namespace {

const char* DirectionText(int direction) {
  if (direction > 0) {
    return "higher";
  }
  if (direction < 0) {
    return "lower";
  }
  return "none";
}

}  // namespace

std::string BenchRunJson(const BenchRunRecord& record) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"";
  JsonAppendEscaped(out, record.schema);
  out << "\",\n  \"bench\": \"";
  JsonAppendEscaped(out, record.bench);
  out << "\",\n  \"config\": {";
  bool first = true;
  for (const auto& [key, value] : record.config) {
    out << (first ? "\n" : ",\n") << "    \"";
    JsonAppendEscaped(out, key);
    out << "\": \"";
    JsonAppendEscaped(out, value);
    out << "\"";
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"metrics\": {";
  first = true;
  for (const auto& [name, metric] : record.metrics) {
    out << (first ? "\n" : ",\n") << "    \"";
    JsonAppendEscaped(out, name);
    out << "\": {\"value\": " << JsonNumberText(metric.value)
        << ", \"tolerance\": " << JsonNumberText(metric.tolerance)
        << ", \"direction\": \"" << DirectionText(metric.direction)
        << "\", \"machine_dependent\": "
        << (metric.machine_dependent ? "true" : "false") << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

Status WriteBenchRun(const std::string& path, const BenchRunRecord& record) {
  return WriteTextFile(path, BenchRunJson(record));
}

StatusOr<BenchRunRecord> ParseBenchRun(const std::string& json) {
  JsonValue root;
  JsonParser parser(json);
  if (!parser.Parse(&root)) {
    return Status::InvalidArgument("bench json: " + parser.error());
  }
  if (root.kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("bench json: root is not an object");
  }
  BenchRunRecord record;
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::Kind::kString) {
    return Status::InvalidArgument("bench json: missing schema string");
  }
  record.schema = schema->str;
  const JsonValue* bench = root.Find("bench");
  if (bench != nullptr && bench->kind == JsonValue::Kind::kString) {
    record.bench = bench->str;
  }
  const JsonValue* config = root.Find("config");
  if (config != nullptr && config->kind == JsonValue::Kind::kObject) {
    for (const auto& [key, value] : config->object) {
      if (value.kind == JsonValue::Kind::kString) {
        record.AddConfig(key, value.str);
      } else if (value.kind == JsonValue::Kind::kNumber) {
        record.AddConfig(key, JsonNumberText(value.number));
      }
    }
  }
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("bench json: missing metrics object");
  }
  for (const auto& [name, entry] : metrics->object) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return Status::InvalidArgument("bench json: metric '" + name +
                                     "' is not an object");
    }
    const JsonValue* value = entry.Find("value");
    if (value == nullptr || value->kind != JsonValue::Kind::kNumber) {
      return Status::InvalidArgument("bench json: metric '" + name +
                                     "' missing numeric value");
    }
    BenchMetric metric;
    metric.value = value->number;
    const JsonValue* tolerance = entry.Find("tolerance");
    if (tolerance != nullptr && tolerance->kind == JsonValue::Kind::kNumber) {
      metric.tolerance = tolerance->number;
    }
    const JsonValue* direction = entry.Find("direction");
    if (direction != nullptr && direction->kind == JsonValue::Kind::kString) {
      if (direction->str == "higher") {
        metric.direction = 1;
      } else if (direction->str == "lower") {
        metric.direction = -1;
      } else if (direction->str == "none") {
        metric.direction = 0;
      } else {
        return Status::InvalidArgument("bench json: metric '" + name +
                                       "' has unknown direction '" +
                                       direction->str + "'");
      }
    }
    const JsonValue* machine = entry.Find("machine_dependent");
    if (machine != nullptr && machine->kind == JsonValue::Kind::kBool) {
      metric.machine_dependent = machine->boolean;
    }
    record.metrics.emplace_back(name, metric);
  }
  return record;
}

StatusOr<BenchRunRecord> ReadBenchRun(const std::string& path) {
  StatusOr<std::string> text = ReadTextFile(path);
  if (!text.ok()) {
    return text.status();
  }
  return ParseBenchRun(text.value());
}

BenchCompareResult CompareBenchRuns(const BenchRunRecord& baseline,
                                    const BenchRunRecord& run, bool strict) {
  BenchCompareResult result;
  result.schema_mismatch = baseline.schema != run.schema;
  result.bench_mismatch =
      !baseline.bench.empty() && !run.bench.empty() && baseline.bench != run.bench;

  std::set<std::string> baseline_names;
  for (const auto& [name, metric] : baseline.metrics) {
    baseline_names.insert(name);
    BenchCompareRow row;
    row.name = name;
    row.baseline = metric.value;
    row.tolerance = metric.tolerance;
    row.direction = metric.direction;
    row.machine_dependent = metric.machine_dependent;
    row.checked =
        metric.direction != 0 && (!metric.machine_dependent || strict);
    const BenchMetric* observed = run.Find(name);
    if (observed == nullptr) {
      if (row.checked) {
        result.missing_metrics.push_back(name);
      }
      continue;
    }
    row.run = observed->value;
    if (metric.value != 0.0) {
      row.delta = (observed->value - metric.value) / std::fabs(metric.value);
    }
    if (row.checked) {
      if (metric.value != 0.0) {
        // Relative band on the bad side only: improvements never fail.
        if (metric.direction > 0) {
          row.regression = observed->value < metric.value * (1.0 - metric.tolerance);
        } else {
          row.regression = observed->value > metric.value * (1.0 + metric.tolerance);
        }
      } else {
        // Zero baseline: the tolerance acts as an absolute allowance.
        if (metric.direction > 0) {
          row.regression = observed->value < -metric.tolerance;
        } else {
          row.regression = observed->value > metric.tolerance;
        }
      }
    }
    result.rows.push_back(std::move(row));
  }
  for (const auto& [name, metric] : run.metrics) {
    (void)metric;
    if (baseline_names.count(name) == 0) {
      result.new_metrics.push_back(name);
    }
  }
  return result;
}

std::string RenderBenchCompare(const BenchCompareResult& result) {
  std::ostringstream out;
  char line[200];
  std::snprintf(line, sizeof(line), "%-28s %14s %14s %9s %7s  %s\n", "metric",
                "baseline", "run", "delta", "band", "status");
  out << line;
  for (const BenchCompareRow& row : result.rows) {
    const char* status = !row.checked
                             ? (row.direction == 0 ? "info" : "machine")
                             : (row.regression ? "FAIL" : "ok");
    std::snprintf(line, sizeof(line), "%-28s %14.6g %14.6g %+8.1f%% %6.0f%%  %s\n",
                  row.name.c_str(), row.baseline, row.run, 100.0 * row.delta,
                  100.0 * row.tolerance, status);
    out << line;
  }
  for (const std::string& name : result.missing_metrics) {
    out << "MISSING gated metric in run: " << name << "\n";
  }
  for (const std::string& name : result.new_metrics) {
    out << "new metric (not in baseline): " << name << "\n";
  }
  if (result.schema_mismatch) {
    out << "SCHEMA MISMATCH between baseline and run\n";
  }
  if (result.bench_mismatch) {
    out << "BENCH NAME MISMATCH between baseline and run\n";
  }
  out << (result.ok() ? "PASS" : "FAIL") << ": " << result.regressions()
      << " regression(s), " << result.missing_metrics.size()
      << " missing gated metric(s)\n";
  return out.str();
}

}  // namespace iccache
