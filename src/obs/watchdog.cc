#include "src/obs/watchdog.h"

#include <algorithm>
#include <cstdio>

namespace iccache {

namespace {

double SampleValue(const MetricsWindowSample& sample, const std::string& name) {
  // values are name-sorted; binary search keeps OnWindow O(rules * log n).
  auto it = std::lower_bound(
      sample.values.begin(), sample.values.end(), name,
      [](const std::pair<std::string, double>& entry, const std::string& key) {
        return entry.first < key;
      });
  if (it != sample.values.end() && it->first == name) {
    return it->second;
  }
  return 0.0;
}

std::string Describe(const char* format, double value, double threshold) {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer), format, value, threshold);
  return buffer;
}

}  // namespace

const char* WatchdogRuleName(WatchdogRule rule) {
  switch (rule) {
    case WatchdogRule::kSloE2eP99:
      return "slo_e2e_p99";
    case WatchdogRule::kStage0HitRateDrop:
      return "stage0_hit_rate_drop";
    case WatchdogRule::kQueueDelayGrowth:
      return "queue_delay_growth";
    case WatchdogRule::kEvictionStorm:
      return "eviction_storm";
    case WatchdogRule::kMaintenanceStall:
      return "maintenance_stall";
    case WatchdogRule::kNumRules:
      break;
  }
  return "unknown";
}

SloWatchdog::SloWatchdog(WatchdogConfig config)
    : config_(std::move(config)),
      hit_rate_ema_(config_.ema_alpha),
      queue_ema_(config_.ema_alpha) {
  armed_ = config_.slo_e2e_p99_s > 0.0 || config_.stage0_drop_fraction > 0.0 ||
           config_.queue_growth_factor > 0.0 ||
           config_.eviction_storm_threshold > 0.0 ||
           config_.maintenance_stall_rule;
  config_.trigger_windows = std::max<size_t>(1, config_.trigger_windows);
  config_.clear_windows = std::max<size_t>(1, config_.clear_windows);
}

void SloWatchdog::Step(WatchdogRule rule, bool breached, double value,
                       double threshold, const std::string& detail,
                       uint64_t window, std::vector<WatchdogEvent>* fired) {
  RuleState& state = states_[static_cast<size_t>(rule)];
  if (state.latched) {
    if (breached) {
      state.clean = 0;
    } else if (++state.clean >= config_.clear_windows) {
      state.latched = false;
      state.clean = 0;
      state.breaches = 0;
    }
    return;
  }
  if (!breached) {
    state.breaches = 0;
    return;
  }
  if (++state.breaches < config_.trigger_windows) {
    return;
  }
  state.latched = true;
  state.breaches = 0;
  state.clean = 0;
  WatchdogEvent event;
  event.rule = rule;
  event.window = window;
  event.value = value;
  event.threshold = threshold;
  event.detail = detail;
  events_.push_back(event);
  if (fired != nullptr) {
    fired->push_back(std::move(event));
  }
}

std::vector<WatchdogEvent> SloWatchdog::OnWindow(const MetricsWindowSample& sample,
                                                 const LatencyHistogram& e2e,
                                                 const LatencyHistogram& queue) {
  std::vector<WatchdogEvent> fired;
  if (!armed_) {
    return fired;
  }
  if (!have_prev_) {
    // First window: record baselines, evaluate nothing (no deltas yet).
    prev_ = sample;
    prev_e2e_ = e2e;
    prev_queue_ = queue;
    have_prev_ = true;
    return fired;
  }

  const LatencyHistogram e2e_delta = LatencyHistogram::Delta(e2e, prev_e2e_);
  const LatencyHistogram queue_delta = LatencyHistogram::Delta(queue, prev_queue_);
  const double requests_delta =
      SampleValue(sample, config_.requests_counter) -
      SampleValue(prev_, config_.requests_counter);

  if (config_.slo_e2e_p99_s > 0.0 && e2e_delta.count() > 0) {
    const double p99 = e2e_delta.Percentile(99.0);
    Step(WatchdogRule::kSloE2eP99, p99 > config_.slo_e2e_p99_s, p99,
         config_.slo_e2e_p99_s,
         Describe("window e2e p99 %.3fs over SLO %.3fs", p99, config_.slo_e2e_p99_s),
         sample.window, &fired);
  }

  if (config_.stage0_drop_fraction > 0.0 && requests_delta > 0.0) {
    const double hits_delta =
        SampleValue(sample, config_.stage0_hits_counter) -
        SampleValue(prev_, config_.stage0_hits_counter);
    const double rate = std::max(0.0, hits_delta) / requests_delta;
    const double floor =
        hit_rate_ema_.value() * config_.stage0_drop_fraction;
    const bool ema_armed =
        hit_rate_ema_.initialized() && hit_rate_ema_.value() >= config_.stage0_min_ema;
    Step(WatchdogRule::kStage0HitRateDrop, ema_armed && rate < floor, rate, floor,
         Describe("stage-0 hit rate %.3f below %.3f (drop vs trailing EMA)", rate,
                  floor),
         sample.window, &fired);
    hit_rate_ema_.Add(rate);
  }

  if (config_.queue_growth_factor > 0.0 && queue_delta.count() > 0) {
    const double mean = queue_delta.mean();
    const double bound = queue_ema_.value() * config_.queue_growth_factor;
    const bool ema_armed =
        queue_ema_.initialized() && queue_ema_.value() >= config_.queue_min_ema_s;
    Step(WatchdogRule::kQueueDelayGrowth, ema_armed && mean > bound, mean, bound,
         Describe("mean queue delay %.4fs above %.4fs (growth vs trailing EMA)",
                  mean, bound),
         sample.window, &fired);
    queue_ema_.Add(mean);
  }

  if (config_.eviction_storm_threshold > 0.0) {
    const double evictions_delta =
        SampleValue(sample, config_.evictions_counter) -
        SampleValue(prev_, config_.evictions_counter);
    Step(WatchdogRule::kEvictionStorm,
         evictions_delta > config_.eviction_storm_threshold, evictions_delta,
         config_.eviction_storm_threshold,
         Describe("%.0f evictions in one window (bound %.0f)", evictions_delta,
                  config_.eviction_storm_threshold),
         sample.window, &fired);
  }

  if (config_.maintenance_stall_rule) {
    const double stalled_delta =
        SampleValue(sample, config_.stalled_counter) -
        SampleValue(prev_, config_.stalled_counter);
    Step(WatchdogRule::kMaintenanceStall, stalled_delta > 0.0, stalled_delta, 0.0,
         Describe("maintenance stalled %.0f window(s) (bound %.0f)", stalled_delta,
                  0.0),
         sample.window, &fired);
  }

  prev_ = sample;
  prev_e2e_ = e2e;
  prev_queue_ = queue;
  return fired;
}

void SloWatchdog::Reset() {
  for (RuleState& state : states_) {
    state = RuleState{};
  }
  have_prev_ = false;
  prev_ = MetricsWindowSample{};
  prev_e2e_ = LatencyHistogram();
  prev_queue_ = LatencyHistogram();
  hit_rate_ema_.Reset();
  queue_ema_.Reset();
  events_.clear();
}

}  // namespace iccache
