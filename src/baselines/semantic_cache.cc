#include "src/baselines/semantic_cache.h"

namespace iccache {

SemanticCache::SemanticCache(std::shared_ptr<const Embedder> embedder,
                             double similarity_threshold)
    : embedder_(std::move(embedder)),
      similarity_threshold_(similarity_threshold),
      index_(embedder_->dim()) {}

void SemanticCache::Put(const Request& request, double response_quality, int response_tokens) {
  const uint64_t key = next_key_++;
  SemanticCacheEntry entry;
  entry.request = request;
  entry.response_quality = response_quality;
  entry.response_tokens = response_tokens;
  entries_[key] = std::move(entry);
  index_.Add(key, embedder_->Embed(request.text));
}

std::optional<SemanticCacheHit> SemanticCache::Lookup(const Request& request) const {
  const auto results = index_.Search(embedder_->Embed(request.text), 1);
  if (results.empty() || results[0].score < similarity_threshold_) {
    return std::nullopt;
  }
  const auto it = entries_.find(results[0].id);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  SemanticCacheHit hit;
  hit.entry = it->second;
  hit.similarity = results[0].score;
  return hit;
}

std::vector<SemanticCacheHit> SemanticCache::LookupK(const Request& request, size_t k) const {
  std::vector<SemanticCacheHit> hits;
  for (const SearchResult& result : index_.Search(embedder_->Embed(request.text), k)) {
    if (result.score < similarity_threshold_) {
      continue;
    }
    const auto it = entries_.find(result.id);
    if (it == entries_.end()) {
      continue;
    }
    SemanticCacheHit hit;
    hit.entry = it->second;
    hit.similarity = result.score;
    hits.push_back(hit);
  }
  return hits;
}

double SemanticCache::NearestSimilarity(const Request& request) const {
  const auto results = index_.Search(embedder_->Embed(request.text), 1);
  if (results.empty()) {
    return -1.0;
  }
  return results[0].score;
}

}  // namespace iccache
