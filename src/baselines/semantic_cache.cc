#include "src/baselines/semantic_cache.h"

#include <utility>

namespace iccache {
namespace {

Stage0Config BaselineConfig(double similarity_threshold, size_t max_entries) {
  Stage0Config config;
  config.enabled = true;
  config.initial_hit_threshold = similarity_threshold;
  config.learn_threshold = false;  // the baseline's threshold is a fixed knob
  config.ttl_s = 0.0;
  config.min_admit_quality = -1e300;  // the baseline caches every response
  config.max_entries = max_entries;
  config.capacity_bytes = -1;
  config.retrieval.kind = RetrievalBackendKind::kFlat;  // exact reference
  return config;
}

SemanticCacheHit ToHit(const Stage0Probe& probe) {
  SemanticCacheHit hit;
  hit.entry.request = probe.entry.request;
  hit.entry.response_quality = probe.entry.response_quality;
  hit.entry.response_tokens = probe.entry.response_tokens;
  hit.similarity = probe.similarity;
  return hit;
}

}  // namespace

SemanticCache::SemanticCache(std::shared_ptr<const Embedder> embedder,
                             double similarity_threshold, size_t max_entries)
    : cache_(std::move(embedder), BaselineConfig(similarity_threshold, max_entries)) {}

void SemanticCache::Put(const Request& request, double response_quality,
                        int response_tokens) {
  cache_.Put(request, response_quality, response_tokens);
}

std::optional<SemanticCacheHit> SemanticCache::Lookup(const Request& request) const {
  return Lookup(cache_.embedder()->Embed(request.text));
}

std::optional<SemanticCacheHit> SemanticCache::Lookup(
    const std::vector<float>& embedding) const {
  const std::optional<Stage0Probe> probe = cache_.Probe(embedding, /*now=*/0.0);
  if (!probe.has_value() || !cache_.Confident(*probe)) return std::nullopt;
  return ToHit(*probe);
}

std::vector<SemanticCacheHit> SemanticCache::LookupK(const Request& request, size_t k) const {
  return LookupK(cache_.embedder()->Embed(request.text), k);
}

std::vector<SemanticCacheHit> SemanticCache::LookupK(const std::vector<float>& embedding,
                                                     size_t k) const {
  std::vector<SemanticCacheHit> hits;
  for (const Stage0Probe& probe : cache_.ProbeK(embedding, k, /*now=*/0.0)) {
    if (probe.similarity < cache_.hit_threshold()) continue;
    hits.push_back(ToHit(probe));
  }
  return hits;
}

std::optional<double> SemanticCache::NearestSimilarity(const Request& request) const {
  return cache_.NearestSimilarity(request);
}

std::optional<double> SemanticCache::NearestSimilarity(
    const std::vector<float>& embedding) const {
  return cache_.NearestSimilarity(embedding);
}

}  // namespace iccache
