// GPTCache/Databricks-style semantic cache baseline (sections 2.3 and 6.1):
// stores past request-response pairs and, when a new request's nearest cached
// neighbour exceeds a similarity threshold, returns the cached response
// verbatim instead of generating. Raising the hit rate (by lowering the
// threshold) returns increasingly off-target responses — the quality collapse
// of Figure 3(b) that motivates in-context reuse instead.
//
// The implementation lives in src/core/stage0_cache.h — the same response
// cache that serves as the serving pipeline's stage-0 tier — configured here
// as the baseline: fixed (unlearned) threshold, no TTL, no quality gate on
// insert, exact flat index. The promotion fixed this baseline's original
// bugs in place: duplicate inserts now dedupe (keeping the better-quality
// response), an entry bound is enforced, every lookup has an
// embedding-taking overload, and NearestSimilarity returns
// std::optional<double> instead of a -1.0 sentinel that collided with
// legitimately negative cosines.
#ifndef SRC_BASELINES_SEMANTIC_CACHE_H_
#define SRC_BASELINES_SEMANTIC_CACHE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "src/core/stage0_cache.h"
#include "src/embedding/embedder.h"
#include "src/workload/request.h"

namespace iccache {

struct SemanticCacheEntry {
  Request request;
  double response_quality = 0.0;  // latent quality of the stored response
  int response_tokens = 0;
};

struct SemanticCacheHit {
  SemanticCacheEntry entry;
  double similarity = 0.0;
};

class SemanticCache {
 public:
  // `max_entries` bounds the cache even in this standalone baseline; the
  // worst-ranked entries (least recently refreshed, then lowest quality) are
  // evicted when an insert crosses it.
  SemanticCache(std::shared_ptr<const Embedder> embedder, double similarity_threshold,
                size_t max_entries = 4096);

  // Inserts a request-response pair. Exact/near-exact duplicates merge into
  // the existing entry, keeping the better-quality response.
  void Put(const Request& request, double response_quality, int response_tokens);

  // Returns the best cached entry when its similarity clears the threshold.
  // The embedding overload skips the redundant embed when the caller already
  // computed one for this request.
  std::optional<SemanticCacheHit> Lookup(const Request& request) const;
  std::optional<SemanticCacheHit> Lookup(const std::vector<float>& embedding) const;

  // Top-k entries above the threshold, best first (used when cached entries
  // are repurposed as in-context examples rather than returned verbatim).
  std::vector<SemanticCacheHit> LookupK(const Request& request, size_t k) const;
  std::vector<SemanticCacheHit> LookupK(const std::vector<float>& embedding, size_t k) const;

  // Nearest-neighbour similarity regardless of the threshold (for hit-rate
  // sweeps); nullopt when the cache is empty.
  std::optional<double> NearestSimilarity(const Request& request) const;
  std::optional<double> NearestSimilarity(const std::vector<float>& embedding) const;

  void set_similarity_threshold(double threshold) { cache_.set_hit_threshold(threshold); }
  double similarity_threshold() const { return cache_.hit_threshold(); }
  size_t size() const { return cache_.size(); }

  const Embedder& embedder() const { return *cache_.embedder(); }

 private:
  Stage0ResponseCache cache_;
};

}  // namespace iccache

#endif  // SRC_BASELINES_SEMANTIC_CACHE_H_
