// GPTCache/Databricks-style semantic cache baseline (sections 2.3 and 6.1):
// stores past request-response pairs and, when a new request's nearest cached
// neighbour exceeds a similarity threshold, returns the cached response
// verbatim instead of generating. Raising the hit rate (by lowering the
// threshold) returns increasingly off-target responses — the quality collapse
// of Figure 3(b) that motivates in-context reuse instead.
#ifndef SRC_BASELINES_SEMANTIC_CACHE_H_
#define SRC_BASELINES_SEMANTIC_CACHE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/embedding/embedder.h"
#include "src/index/vector_index.h"
#include "src/workload/request.h"

namespace iccache {

struct SemanticCacheEntry {
  Request request;
  double response_quality = 0.0;  // latent quality of the stored response
  int response_tokens = 0;
};

struct SemanticCacheHit {
  SemanticCacheEntry entry;
  double similarity = 0.0;
};

class SemanticCache {
 public:
  SemanticCache(std::shared_ptr<const Embedder> embedder, double similarity_threshold);

  // Inserts a request-response pair.
  void Put(const Request& request, double response_quality, int response_tokens);

  // Returns the best cached entry when its similarity clears the threshold.
  std::optional<SemanticCacheHit> Lookup(const Request& request) const;

  // Top-k entries above the threshold, best first (used when cached entries
  // are repurposed as in-context examples rather than returned verbatim).
  std::vector<SemanticCacheHit> LookupK(const Request& request, size_t k) const;

  // Nearest-neighbour similarity regardless of the threshold (for hit-rate
  // sweeps); negative when the cache is empty.
  double NearestSimilarity(const Request& request) const;

  void set_similarity_threshold(double threshold) { similarity_threshold_ = threshold; }
  double similarity_threshold() const { return similarity_threshold_; }
  size_t size() const { return entries_.size(); }

 private:
  std::shared_ptr<const Embedder> embedder_;
  double similarity_threshold_;
  FlatIndex index_;
  std::unordered_map<uint64_t, SemanticCacheEntry> entries_;
  uint64_t next_key_ = 1;
};

}  // namespace iccache

#endif  // SRC_BASELINES_SEMANTIC_CACHE_H_
