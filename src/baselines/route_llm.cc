#include "src/baselines/route_llm.h"

#include "src/common/mathutil.h"

namespace iccache {

RouteLlmRouter::RouteLlmRouter(RouteLlmConfig config) : config_(config) {}

double RouteLlmRouter::EstimateDifficulty(const Request& request) const {
  // Deterministic noise keyed by request id: the same request always gets the
  // same estimate, as a frozen classifier would produce.
  Rng rng(Mix64(request.id ^ config_.seed));
  return Clamp(request.difficulty + rng.Normal(0.0, config_.estimator_noise), 0.0, 1.0);
}

bool RouteLlmRouter::RouteToLarge(const Request& request) const {
  return EstimateDifficulty(request) > config_.difficulty_threshold;
}

}  // namespace iccache
