#include "src/baselines/rag.h"

#include "src/common/mathutil.h"

namespace iccache {

RagPipeline::RagPipeline(const DatasetProfile& profile, RagConfig config) : config_(config) {
  Rng rng(config_.seed ^ Mix64(static_cast<uint64_t>(profile.id)));
  topic_covered_.resize(profile.num_topics);
  for (size_t t = 0; t < profile.num_topics; ++t) {
    topic_covered_[t] = rng.Bernoulli(config_.corpus_topic_coverage);
  }
}

RagContext RagPipeline::Retrieve(const Request& request) const {
  RagContext context;
  context.prompt_tokens_added =
      static_cast<int>(config_.docs_per_query) * config_.tokens_per_doc;
  context.covered =
      request.topic_id < topic_covered_.size() && topic_covered_[request.topic_id];

  // Deterministic per-request retrieval quality.
  Rng rng(Mix64(request.id ^ config_.seed));
  if (context.covered) {
    // On-topic documents: factual boost scaled by retrieval quality. QA-style
    // tasks benefit most; reasoning-heavy tasks benefit less (facts alone do
    // not supply the reasoning trajectory).
    double task_factor = 1.0;
    if (request.task == TaskType::kMathReasoning || request.task == TaskType::kCodeGeneration) {
      task_factor = 0.35;
    } else if (request.task == TaskType::kConversation) {
      task_factor = 0.7;
    }
    const double retrieval_quality = Clamp(0.75 + rng.Normal(0.0, 0.15), 0.0, 1.0);
    context.capability_boost = config_.max_capability_boost * task_factor * retrieval_quality;
  } else {
    context.capability_boost = -config_.distraction_penalty * rng.Uniform();
  }
  return context;
}

}  // namespace iccache
