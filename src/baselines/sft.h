// Supervised fine-tuning baseline (Table 3, Figure 15): fine-tuning a small
// model on large-model outputs for one dataset lifts its in-domain capability
// but regresses out-of-domain behaviour (catastrophic-forgetting tax) — the
// contrast with IC-Cache's live augmentation, which "adapts to new domains
// while preserving original knowledge".
#ifndef SRC_BASELINES_SFT_H_
#define SRC_BASELINES_SFT_H_

#include "src/llm/model_profile.h"
#include "src/workload/request.h"

namespace iccache {

struct SftConfig {
  double in_domain_boost = 0.045;
  double out_of_domain_penalty = 0.10;
};

class SftModelAdapter {
 public:
  SftModelAdapter(ModelProfile base, DatasetId tuned_on, SftConfig config = {});

  // Profile to use when serving a request from `dataset`: capability is
  // boosted in-domain and penalized out-of-domain.
  ModelProfile ProfileFor(DatasetId dataset) const;

  DatasetId tuned_on() const { return tuned_on_; }
  const ModelProfile& base() const { return base_; }

 private:
  ModelProfile base_;
  DatasetId tuned_on_;
  SftConfig config_;
};

}  // namespace iccache

#endif  // SRC_BASELINES_SFT_H_
