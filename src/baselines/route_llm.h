// RouteLLM-style baseline router (Ong et al., compared in section 6):
// a static binary classifier that predicts per-request difficulty from
// preference data and routes hard requests to the large model. Crucially it
// is *load-oblivious* and example-oblivious — the two properties the paper's
// Figure 12 comparison isolates ("RouteLLM offloads requests based on request
// difficulty, it is oblivious to the current system load").
//
// The classifier is modelled as a noisy difficulty estimator: a trained
// BERT-scale router sees the request text only, so its estimate correlates
// with — but does not equal — the latent difficulty.
#ifndef SRC_BASELINES_ROUTE_LLM_H_
#define SRC_BASELINES_ROUTE_LLM_H_

#include <cstdint>
#include <string>

#include "src/common/rng.h"
#include "src/workload/request.h"

namespace iccache {

struct RouteLlmConfig {
  // Estimated difficulty above this routes to the large model.
  double difficulty_threshold = 0.5;
  // Stddev of the classifier's difficulty estimate around ground truth.
  double estimator_noise = 0.12;
  uint64_t seed = 0xbadd1e;
};

class RouteLlmRouter {
 public:
  explicit RouteLlmRouter(RouteLlmConfig config = {});

  // The classifier's difficulty estimate for the request (deterministic per
  // request id so repeated calls agree).
  double EstimateDifficulty(const Request& request) const;

  // True when the request should go to the large model.
  bool RouteToLarge(const Request& request) const;

  void set_threshold(double threshold) { config_.difficulty_threshold = threshold; }
  double threshold() const { return config_.difficulty_threshold; }

 private:
  RouteLlmConfig config_;
};

}  // namespace iccache

#endif  // SRC_BASELINES_ROUTE_LLM_H_
