#include "src/baselines/sft.h"

#include <algorithm>

namespace iccache {

SftModelAdapter::SftModelAdapter(ModelProfile base, DatasetId tuned_on, SftConfig config)
    : base_(std::move(base)), tuned_on_(tuned_on), config_(config) {}

ModelProfile SftModelAdapter::ProfileFor(DatasetId dataset) const {
  ModelProfile adapted = base_;
  adapted.name = base_.name + "+sft";
  if (dataset == tuned_on_) {
    adapted.capability = std::min(1.0, base_.capability + config_.in_domain_boost);
  } else {
    adapted.capability = std::max(0.0, base_.capability - config_.out_of_domain_penalty);
  }
  return adapted;
}

}  // namespace iccache
