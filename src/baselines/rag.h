// LongRAG-style retrieval-augmented generation baseline (section 6.1): a
// synthetic document corpus indexed per topic; retrieval returns the top-5
// documents, which contribute a *factual* capability boost (piecemeal
// knowledge lookup) but none of the compositional imitation in-context
// examples provide — the structural difference behind Table 2 (RAG helps,
// IC helps more, IC + RAG stack).
//
// Retrieved documents also inflate the prompt substantially (five documents
// of a few hundred tokens), which the latency experiments account for.
#ifndef SRC_BASELINES_RAG_H_
#define SRC_BASELINES_RAG_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/dataset.h"
#include "src/workload/request.h"

namespace iccache {

struct RagConfig {
  size_t docs_per_query = 5;  // LongRAG retrieves the top-5 documents
  // Fraction of topics the corpus covers; uncovered topics retrieve
  // near-misses that mildly distract.
  double corpus_topic_coverage = 0.75;
  double max_capability_boost = 0.085;
  double distraction_penalty = 0.015;
  int tokens_per_doc = 220;
  uint64_t seed = 0x4a6;
};

struct RagContext {
  double capability_boost = 0.0;  // additive; passed to GenerationSimulator
  int prompt_tokens_added = 0;
  bool covered = false;  // whether the corpus had on-topic documents
};

class RagPipeline {
 public:
  RagPipeline(const DatasetProfile& profile, RagConfig config = {});

  // Retrieves documents for the request and summarizes their effect.
  RagContext Retrieve(const Request& request) const;

  const RagConfig& config() const { return config_; }

 private:
  RagConfig config_;
  std::vector<bool> topic_covered_;  // corpus coverage per topic
};

}  // namespace iccache

#endif  // SRC_BASELINES_RAG_H_
