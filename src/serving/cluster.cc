#include "src/serving/cluster.h"

#include <algorithm>
#include <limits>

namespace iccache {

void ClusterSim::AddPool(const ModelProfile& model, int num_replicas, ServerConfig config) {
  Pool pool;
  pool.model = model;
  pool.config = config;
  for (int i = 0; i < std::max(1, num_replicas); ++i) {
    pool.servers.push_back(std::make_unique<GpuServer>(model, config));
  }
  pools_[model.name] = std::move(pool);
}

bool ClusterSim::HasPool(const std::string& model_name) const {
  return pools_.count(model_name) > 0;
}

Status ClusterSim::Submit(const std::string& model_name, const ServingRequest& request) {
  const auto it = pools_.find(model_name);
  if (it == pools_.end()) {
    return Status::NotFound("no pool for model " + model_name);
  }
  // Bring the cluster up to the arrival instant first so servers never admit
  // a request "from the future" into an earlier batch.
  AdvanceTo(request.arrival_time);

  // Least-loaded dispatch within the pool.
  GpuServer* best = nullptr;
  size_t best_load = std::numeric_limits<size_t>::max();
  for (const auto& server : it->second.servers) {
    if (server->InFlight() < best_load) {
      best_load = server->InFlight();
      best = server.get();
    }
  }
  best->Enqueue(request, now_);
  ScheduleServer(best);
  return Status::Ok();
}

void ClusterSim::ScheduleServer(GpuServer* server) {
  if (server->IterationInProgress()) {
    return;  // its completion event is already queued
  }
  const double end = server->StartIteration(now_);
  if (end >= 0.0) {
    events_.push(Event{end, server});
  }
}

void ClusterSim::ProcessEventsUntil(double t) {
  while (!events_.empty() && events_.top().time <= t) {
    const Event event = events_.top();
    events_.pop();
    now_ = std::max(now_, event.time);
    event.server->FinishIteration(event.time, &completions_);
    ScheduleServer(event.server);
  }
}

void ClusterSim::AdvanceTo(double t) {
  ProcessEventsUntil(t);
  now_ = std::max(now_, t);
}

void ClusterSim::RunUntilIdle() {
  ProcessEventsUntil(std::numeric_limits<double>::infinity());
}

double ClusterSim::PoolLoad(const std::string& model_name) const {
  const auto it = pools_.find(model_name);
  if (it == pools_.end()) {
    return 0.0;
  }
  size_t in_flight = 0;
  size_t capacity = 0;
  for (const auto& server : it->second.servers) {
    in_flight += server->InFlight();
    capacity += static_cast<size_t>(it->second.config.max_batch_size);
  }
  if (capacity == 0) {
    return 0.0;
  }
  return static_cast<double>(in_flight) / static_cast<double>(capacity);
}

size_t ClusterSim::PoolInFlight(const std::string& model_name) const {
  const auto it = pools_.find(model_name);
  if (it == pools_.end()) {
    return 0;
  }
  size_t in_flight = 0;
  for (const auto& server : it->second.servers) {
    in_flight += server->InFlight();
  }
  return in_flight;
}

int ClusterSim::TotalGpus() const {
  int total = 0;
  for (const auto& [name, pool] : pools_) {
    total += static_cast<int>(pool.servers.size()) * pool.model.gpus_required;
  }
  return total;
}

std::vector<CompletionRecord> ClusterSim::TakeCompletions() {
  std::vector<CompletionRecord> out = std::move(completions_);
  completions_.clear();
  return out;
}

}  // namespace iccache
