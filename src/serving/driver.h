// Concurrent end-to-end serving driver.
//
// Runs the IC-Cache pipeline — embed, stage-1 retrieval, stage-2 proxy
// scoring, bandit routing, generation, ClusterSim submission, feedback and
// admission — over a stream of arrival-stamped requests, using a ThreadPool
// to exploit parallel hardware.
//
// Selection runs through the real ExampleSelector pipeline (dynamic threshold
// adaptation, diversity guard, worst-to-best ordering) against the sharded
// cache via the unified ExampleStore/RetrievalBackend abstraction; the
// stage-1 index (flat | kmeans | hnsw) and the shard count are both chosen
// through DriverConfig. The full example lifecycle (section 4.3 + section 5)
// runs through the shared ExampleManager over the same store.
//
// Concurrency model (three-lane pipelined windows, determinism-preserving):
// the stream is processed in fixed `batch_window` batches, each flowing
// through three kinds of work:
//
//   PREPARE (parallel)  — pure per-request work: embed, stage-0 probe,
//       stage-1 sharded retrieval, stage-2 proxy scoring, admission
//       scrub/embed + dedupe probe. The window is fanned out in
//       `prepare_chunk`-sized batches: each chunk embeds into a reused
//       per-thread arena (through a per-worker embedding memo) and drives
//       stage-0 and stage-1 through the multi-query index path, taking each
//       shard lock once per chunk. Window N+1's prepare overlaps window N's
//       commit lanes.
//   SHARDED COMMIT (parallel lanes + serial merge) — the per-request half of
//       the old serial phase runs on `commit_lanes` actor-style lanes
//       (requests partitioned by request-key shard, each lane internally
//       arrival-ordered): frozen-threshold selector combination, bandit
//       routing against window-start posteriors, generation, and probe
//       shadow generation, each driven by a per-request RNG stream. Lanes
//       mutate NOTHING; every globally stateful step — cluster clock +
//       submit, load observation, bandit reward updates, selector access
//       accounting + feedback, gain EMAs — is applied afterwards by a
//       deterministic cross-shard MERGE that walks the window in arrival
//       order on the driver thread. Admission inserts are then PUBLISHED by
//       per-shard tasks (per-shard arrival order keeps id assignment exact)
//       with watermark eviction deferred to one enforcement after the join.
//   BACKGROUND MAINTENANCE (dedicated thread) — decay, knapsack eviction,
//       and replay are planned by a MaintenanceScheduler against an
//       epoch-consistent all-shard cut and applied as a mutation batch at a
//       later window boundary, so a due tick no longer stalls the window
//       that triggered it (src/serving/maintenance.h).
//
// Determinism contract: every lane-stage computation depends only on the
// prepared slot, state frozen at the window start, and RNG streams derived
// from (seed, request id); every mutation is applied at a schedule fixed by
// the window structure. A fixed seed therefore produces identical routing
// decisions and completions at ANY thread count AND any lane count —
// `num_threads` and `commit_lanes` only change wall-clock time. Within a
// window all requests see the cache/bandit/threshold as of the window start;
// admissions from window N become retrievable in window N+2, because window
// N+1's prepare is fanned out (and joined) BEFORE window N's admissions
// publish — prepare overlaps only the mutation-free lane stage, never a
// store write.
#ifndef SRC_SERVING_DRIVER_H_
#define SRC_SERVING_DRIVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/core/manager.h"
#include "src/core/proxy_model.h"
#include "src/core/router.h"
#include "src/core/selector.h"
#include "src/core/sharded_cache.h"
#include "src/core/stage0_cache.h"
#include "src/llm/generation.h"
#include "src/llm/model_profile.h"
#include "src/obs/metrics.h"
#include "src/obs/watchdog.h"
#include "src/persist/checkpointer.h"
#include "src/persist/pool_codec.h"
#include "src/serving/cluster.h"
#include "src/serving/maintenance.h"
#include "src/workload/dataset.h"
#include "src/workload/query_generator.h"
#include "src/workload/trace.h"

namespace iccache {

struct DriverConfig {
  std::string small_model = "gemma-2-2b";
  std::string large_model = "gemma-2-27b";
  int small_replicas = 2;
  int large_replicas = 2;
  ServerConfig server;

  // Parallelism. `batch_window` is the lookahead batch fanned out per window;
  // it is part of the pipeline semantics (all lookups in a window see the
  // cache as of the window start), so results depend on it but NOT on
  // `num_threads` or `commit_lanes`.
  size_t num_threads = 1;
  size_t batch_window = 64;
  // Commit lanes: how many actor-style lanes the window's commit stage is
  // partitioned into (by request-key shard). Results are lane-count
  // invariant; more lanes expose more parallelism to the pool.
  size_t commit_lanes = 4;
  // Batched prepare: each prepare task handles up to `prepare_chunk`
  // consecutive requests of the window — batch-embedding into a reused
  // per-thread arena, probing stage-0 and sweeping stage-1 through the
  // multi-query index path (one shard lock per chunk instead of one per
  // request). Purely a throughput knob: decisions are byte-identical at any
  // chunk size (each query's batched search result equals its single-query
  // result, and the memo replays stored embedder output verbatim).
  size_t prepare_chunk = 16;
  // Per-worker embedding memo capacity (rounded up to a power of two; 0
  // disables memoization). Hits replay the stored embedder output
  // byte-for-byte, so the memo can never change a decision.
  size_t embed_memo_slots = 1024;

  // Stage-0 response tier: before stage-1 example retrieval, probe a bounded
  // semantic response cache; a confident hit (learned embedding-similarity
  // threshold) serves the cached response at ZERO generation cost — no
  // routing, no generation, no cluster submission. Probes run in the
  // parallel prepare phase against the window-start cache; the hit decision
  // (frozen threshold), insert, invalidation, and threshold adaptation all
  // run on the serial path, so stage-0 preserves the thread- and
  // lane-invariance contract. Off by default.
  Stage0Config stage0;

  // Full two-stage selection pipeline (stage-1 pool size, dynamic threshold
  // grid, diversity, context budget, ...).
  SelectorConfig selector;

  // Fraction of offloaded requests that shadow-generate the plain small-model
  // response so the selector gets a genuine counterfactual quality-gain label
  // (probe sampling, section 4.1). Sampled per request id, deterministically.
  double selector_probe_rate = 0.08;

  RouterConfig router;
  // Sharded cache: `cache.num_shards` picks the shard count and
  // `cache.cache.retrieval` the stage-1 backend (flat | kmeans | hnsw).
  ShardedCacheConfig cache;

  // Example lifecycle (section 4.3), shared with IcCacheService: admission
  // quality gate + dedupe, gain EMAs, replay rationing, decay cadence.
  ManagerConfig manager;
  // Master switch for lifecycle admission: responses are admitted as future
  // examples through ExampleManager (large-model responses always, offloaded
  // small-model responses above the manager's quality gate).
  bool lifecycle_admission = true;
  // Maintenance (decay + knapsack eviction) ticks off trace time, planned by
  // the background scheduler and published at window boundaries.
  bool lifecycle_maintenance = true;
  // Off-peak replay: when cluster utilization at a window boundary is below
  // `replay_load_threshold` and at least `replay_min_interval_s` of simulated
  // time has passed since the last pass, the next maintenance tick includes
  // one cost-aware replay pass.
  bool offpeak_replay = true;
  double replay_load_threshold = 0.35;
  double replay_min_interval_s = 900.0;

  // Background maintenance threading. `background_maintenance = false` plans
  // ticks inline on the driver thread instead of the dedicated one —
  // byte-identical results (the publish boundary is the same), useful for
  // debugging. `maintenance_publish_lag` is how many window boundaries a
  // requested tick ages before its mutation batch is applied: the planner's
  // deterministic compute budget. Checkpoints and end-of-run flush pending
  // ticks early (at equally deterministic points).
  bool background_maintenance = true;
  size_t maintenance_publish_lag = 2;

  // Fault injection (section 5): bypass the selector (serve without
  // examples) or the router (direct route to the large backend).
  bool selector_fault_bypass = false;
  bool router_fault_bypass = false;

  // Persistence (src/persist). With `snapshot_path` set, `restore_on_start`
  // warm-starts the driver from that file at construction (a missing file is
  // a cold start; any other failure is surfaced by restore_status()), and
  // `checkpoint_interval_s` > 0 takes periodic crash-recovery checkpoints
  // between batch windows — off the serial phase, reusing the off-peak gate
  // (`replay_load_threshold`), with a forced write once a checkpoint is two
  // intervals overdue so a saturated cluster still bounds staleness.
  std::string snapshot_path;
  bool restore_on_start = false;
  double checkpoint_interval_s = 0.0;

  // Observability (strictly passive — none of it can change a decision).
  // SLO watchdog rules evaluated on each per-window hub snapshot; all rules
  // default to disabled. Watchdog state is per Run (trailing EMAs restart
  // with each segment).
  WatchdogConfig watchdog;
  // Tail-exemplar sampling over the run's completions: keep the K slowest
  // (by simulated e2e latency) per window, plus every request whose id is a
  // multiple of `tail_sample_every` (0 disables the fixed-rate sample).
  // Selection keys on simulated latency and request ids only, so the
  // exemplar set is identical at any thread/lane count.
  size_t tail_slowest_per_window = 2;
  uint64_t tail_sample_every = 0;

  uint64_t seed = 0xd21e5;
};

// One completion picked by the deterministic tail sampler: the request to
// pull from the trace (`trace_dump --request=<id>`) when investigating that
// window's latency.
struct TailExemplar {
  uint64_t request_id = 0;
  uint64_t window = 0;          // batch window the request was served in
  double e2e_latency_s = 0.0;   // simulated end-to-end latency
  bool slowest = false;         // slowest-K pick (vs fixed-rate sample)
};

// Per-request routing outcome, recorded in arrival order.
struct DriverDecision {
  uint64_t request_id = 0;
  std::string model_name;
  bool offloaded = false;  // served by the small model with examples
  size_t num_examples = 0;
  double latent_quality = 0.0;
};

struct DriverReport {
  std::vector<DriverDecision> decisions;       // arrival order
  std::vector<CompletionRecord> completions;   // simulated completion order
  size_t total_requests = 0;
  size_t offloaded_requests = 0;
  size_t admitted_examples = 0;

  // Stage-0 response tier activity (zeros when the tier is disabled).
  size_t stage0_hits = 0;           // requests served from the response cache
  size_t stage0_probes = 0;         // hits that also shadow-generated fresh
  size_t stage0_invalidations = 0;  // entries removed by quality feedback
  size_t stage0_expired = 0;        // entries removed by TTL
  size_t stage0_admitted = 0;       // responses inserted (after dedupe/gate)
  int64_t stage0_tokens_saved = 0;  // output tokens avoided by hits
  int64_t generated_tokens = 0;     // output tokens actually generated

  // Lifecycle activity (maintenance ticks, eviction, off-peak replay).
  size_t maintenance_runs = 0;
  size_t evicted_examples = 0;   // knapsack evictions during this run
  size_t replay_passes = 0;
  size_t replayed_examples = 0;
  size_t improved_examples = 0;
  // Boundaries where the driver had to WAIT for the background planner (the
  // tick reached its publish boundary unfinished). Zero on a healthy
  // pipeline; the bench --acceptance mode exit-enforces it.
  size_t maintenance_stalled_windows = 0;

  // Checkpoint activity during this run (snapshot writes between windows).
  size_t checkpoints_taken = 0;
  double checkpoint_p50_ms = 0.0;
  double checkpoint_p99_ms = 0.0;

  // Host-side pipeline throughput (what the ThreadPool accelerates).
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
  // Wall-clock split, three buckets summing to wall_seconds:
  //   prepare_seconds     — driver time blocked on pool task groups (the
  //                         parallel work: prepare, commit lanes, publish
  //                         fan-outs); scales with num_threads.
  //   maintenance_seconds — cut exports, plan collection (including stall
  //                         waits), and mutation-batch application. Booked
  //                         separately so maintenance cost can no longer
  //                         masquerade as serial-phase time.
  //   serial_seconds      — the ordered merge and remaining bookkeeping.
  double prepare_seconds = 0.0;
  double serial_seconds = 0.0;
  double maintenance_seconds = 0.0;

  // Simulated serving latency over the completions: end-to-end,
  // time-to-first-token, and scheduler queue delay.
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double p50_ttft_s = 0.0;
  double p99_ttft_s = 0.0;
  double p50_queue_delay_s = 0.0;
  double p99_queue_delay_s = 0.0;
  double mean_quality = 0.0;

  // Distance-kernel dispatch level used for every similarity computation in
  // this run ("avx2" | "scalar"). Resolved once at process startup, so all
  // threads and lanes of a run share one kernel — the determinism contract
  // (byte-identical decisions at any thread/lane count) holds per process.
  std::string simd_kernel;
  // HNSW exact re-rank activity (zeros unless the retrieval backend runs the
  // int8-quantized arena): queries that took the re-rank pass and candidates
  // re-scored at full precision.
  size_t hnsw_rerank_queries = 0;
  size_t hnsw_rerank_candidates = 0;

  // Embedding memo-cache activity in the batched prepare path. Memos are
  // per-worker (thread_local), so the split between hits and misses depends
  // on pool scheduling — report it, never gate on it. Hits replay stored
  // embedder output byte-for-byte, so the totals are diagnostics only.
  size_t embed_memo_hits = 0;
  size_t embed_memo_misses = 0;

  // Deterministic tail exemplars (slowest-K per window + fixed-rate sample),
  // sorted by (window, request_id). Stage-0 hits never reach the cluster, so
  // they produce no completion and cannot appear here.
  std::vector<TailExemplar> tail_exemplars;
  // SLO-watchdog anomalies fired during this run (empty unless configured).
  std::vector<WatchdogEvent> anomalies;
};

class ServingDriver {
 public:
  ServingDriver(DriverConfig config, const ModelCatalog* catalog);

  // Generates an arrival-stamped request stream: one QueryGenerator request
  // per ArrivalTrace timestamp. Deterministic in (profile, trace, seed).
  static std::vector<Request> MakeWorkload(const DatasetProfile& profile,
                                           const TraceConfig& trace, uint64_t seed);

  // Seeds the example pool with a large-model response (pool initialization).
  uint64_t SeedExample(const Request& request, double now);

  // Processes one stream segment (must be sorted by arrival_time) and runs
  // the cluster to completion. May be called repeatedly: each call reports
  // its own segment, and serving state (pool, selector, router, clocks)
  // carries across calls — Run(a) then Run(b) serves b exactly as a driver
  // restored from a snapshot taken after Run(a) would. Run always drains the
  // maintenance scheduler before returning (any pending tick publishes at
  // the final boundary), so snapshots between runs capture a complete state.
  DriverReport Run(const std::vector<Request>& requests);

  // --- Persistence ---------------------------------------------------------

  // Writes the complete learned serving state — example pool with native
  // HNSW graphs, selector/manager/proxy/router adaptation, generator stream,
  // replay/maintenance cursors + epoch, trace clock — as one atomic
  // snapshot. In-flight simulated requests are NOT captured: a snapshot
  // taken mid-trace restores the learned pool, not the cluster's queue.
  Status SaveSnapshot(const std::string& path);

  // Restores a SaveSnapshot image into this (freshly constructed, unserved)
  // driver and fast-forwards the trace clock to the snapshot time. After a
  // successful restore, serving a stream produces byte-identical decisions
  // to the driver that wrote the snapshot serving the same stream.
  Status RestoreSnapshot(const std::string& path);

  // Outcome of the constructor-time restore (restore_on_start): Ok after a
  // successful warm start AND after a cold start with no snapshot file.
  const Status& restore_status() const { return restore_status_; }
  bool restored_from_snapshot() const { return restored_from_snapshot_; }
  const PoolRestoreReport& restore_report() const { return restore_report_; }
  const Checkpointer& checkpointer() const { return checkpointer_; }

  // Pipeline metrics: counters/gauges maintained on the serial path plus a
  // per-window snapshot series, exportable as Prometheus text or Chrome-trace
  // counter tracks. Always on (passive; cannot influence decisions), and
  // cumulative across repeated Run calls.
  MetricsHub& metrics_hub() { return hub_; }
  const MetricsHub& metrics_hub() const { return hub_; }

  ShardedExampleCache& cache() { return cache_; }
  RequestRouter& router() { return router_; }
  ProxyUtilityModel& proxy() { return proxy_; }
  ExampleSelector& selector() { return selector_; }
  ExampleManager& manager() { return manager_; }
  Stage0ResponseCache& stage0() { return stage0_; }
  ClusterSim& cluster() { return cluster_; }
  const DriverConfig& config() const { return config_; }

 private:
  // Phase-1 output: everything the commit stage needs, computed purely.
  struct Prepared {
    std::vector<float> embedding;  // shared by stage-0, selection, admission
    std::vector<SelectorCandidate> candidates;
    PreparedLifecycleAdmission lifecycle;
    // Stage-0 probe against the window-start cache. The threshold decision
    // is NOT applied here — the lane judges it against the frozen threshold.
    std::optional<Stage0Probe> stage0;
  };

  // Lane-stage output: everything the deterministic merge and the publish
  // step apply, computed without touching shared mutable state.
  struct CommitSlot {
    std::vector<SelectedExample> selected;  // presentation order
    std::vector<uint64_t> accessed;         // selector access accounting
    RouteDecision decision;
    bool offloaded = false;
    size_t num_examples = 0;
    GenerationResult generation;
    bool probed = false;
    double probe_gain = 0.0;
    PreparedLifecycleAdmission lifecycle;  // staged admission (publish step)
    std::vector<float> embedding;          // for the merge-time stage-0 insert

    // Stage-0 hit outcome: the request was served from the response cache —
    // no routing, no generation, no cluster submission, no admission.
    bool stage0_hit = false;
    // On a hit: the served entry. On a miss: the probe's top-1 neighbour,
    // reused by the merge as the admission dedupe hint (no serial search).
    uint64_t stage0_id = 0;
    double stage0_similarity = 0.0;
    bool stage0_probed = false;          // shadow-generated the fresh response
    double stage0_fresh_quality = 0.0;   // counterfactual (probed hits only)
    int stage0_tokens_saved = 0;
  };

  // Batched prepare for `count` consecutive requests (one pool task's chunk):
  // per-request memoized embeds into a reused arena, one batched stage-0
  // probe, one batched stage-1 sweep, then the per-request tail
  // (filter/snapshot/stage-2 scoring + admission prep). out[i] is exactly
  // what the historical per-request prepare produced for chunk_requests[i].
  void PrepareChunk(const Request* chunk_requests, size_t count, Prepared* out) const;

  // Lane stage for one request: frozen selection, frozen-posterior routing,
  // generation, probe shadow generation. Pure given window-start state.
  void CommitLaneRequest(const Request& request, Prepared& prep, CommitSlot& slot) const;

  DriverConfig config_;
  ModelProfile small_;
  ModelProfile large_;
  std::shared_ptr<const Embedder> embedder_;
  ShardedExampleCache cache_;
  ProxyUtilityModel proxy_;
  ExampleSelector selector_;
  RequestRouter router_;
  GenerationSimulator generator_;
  ExampleManager manager_;
  Stage0ResponseCache stage0_;
  ClusterSim cluster_;
  MaintenanceScheduler maintenance_;
  double last_replay_time_ = 0.0;

  MetricsHub hub_;

  // Embedding-memo accounting, aggregated across the per-worker memos (the
  // workers tick these after each chunk; the driver thread folds deltas into
  // the report at run end).
  mutable std::atomic<uint64_t> memo_hits_{0};
  mutable std::atomic<uint64_t> memo_misses_{0};

  Checkpointer checkpointer_;
  Status restore_status_;
  bool restored_from_snapshot_ = false;
  PoolRestoreReport restore_report_;
};

}  // namespace iccache

#endif  // SRC_SERVING_DRIVER_H_
