// Concurrent end-to-end serving driver.
//
// Runs the IC-Cache pipeline — embed, stage-1 retrieval, stage-2 proxy
// scoring, bandit routing, generation, ClusterSim submission, feedback and
// admission — over a stream of arrival-stamped requests, using a ThreadPool
// to exploit parallel hardware.
//
// Selection runs through the real ExampleSelector pipeline (dynamic threshold
// adaptation, diversity guard, worst-to-best ordering) against the sharded
// cache via the unified ExampleStore/RetrievalBackend abstraction; the
// stage-1 index (flat | kmeans | hnsw) and the shard count are both chosen
// through DriverConfig.
//
// Concurrency model (vLLM-style batched lookahead, determinism-preserving):
// the stream is processed in fixed `batch_window` batches. Phase 1 fans the
// batch out across the pool and performs only PURE per-request work (embed
// the query, ExampleSelector::PrepareCandidates — sharded stage-1 search,
// candidate snapshot, stage-2 proxy scoring — and pre-scrub/embed of the
// admission payload) into per-request slots. Phase 2 walks the batch in
// arrival order on the driver thread and applies every stateful step:
// ExampleSelector::CommitSelection (threshold adaptation + combination +
// access accounting), route (bandit sampling + reward updates), generation,
// cluster submit, offload accounting, probe-sampled selector feedback, and
// the admission insert. Because phase 1 never mutates shared state and phase
// 2 order is independent of worker scheduling, a fixed seed produces
// identical routing decisions and completions at ANY thread count —
// `num_threads` only changes wall-clock time.
#ifndef SRC_SERVING_DRIVER_H_
#define SRC_SERVING_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/proxy_model.h"
#include "src/core/router.h"
#include "src/core/selector.h"
#include "src/core/sharded_cache.h"
#include "src/llm/generation.h"
#include "src/llm/model_profile.h"
#include "src/serving/cluster.h"
#include "src/workload/dataset.h"
#include "src/workload/query_generator.h"
#include "src/workload/trace.h"

namespace iccache {

struct DriverConfig {
  std::string small_model = "gemma-2-2b";
  std::string large_model = "gemma-2-27b";
  int small_replicas = 2;
  int large_replicas = 2;
  ServerConfig server;

  // Parallelism. `batch_window` is the lookahead batch fanned out per phase-1
  // round; it is part of the pipeline semantics (all lookups in a window see
  // the cache as of the window start), so results depend on it but NOT on
  // `num_threads`.
  size_t num_threads = 1;
  size_t batch_window = 64;

  // Full two-stage selection pipeline (stage-1 pool size, dynamic threshold
  // grid, diversity, context budget, ...).
  SelectorConfig selector;

  // Fraction of offloaded requests that shadow-generate the plain small-model
  // response so the selector gets a genuine counterfactual quality-gain label
  // (probe sampling, section 4.1). Sampled per request id, deterministically.
  double selector_probe_rate = 0.08;

  RouterConfig router;
  // Sharded cache: `cache.num_shards` picks the shard count and
  // `cache.cache.retrieval` the stage-1 backend (flat | kmeans | hnsw).
  ShardedCacheConfig cache;

  // Responses produced by the large model are admitted as future examples.
  bool admit_large_responses = true;

  uint64_t seed = 0xd21e5;
};

// Per-request routing outcome, recorded in arrival order.
struct DriverDecision {
  uint64_t request_id = 0;
  std::string model_name;
  bool offloaded = false;  // served by the small model with examples
  size_t num_examples = 0;
  double latent_quality = 0.0;
};

struct DriverReport {
  std::vector<DriverDecision> decisions;       // arrival order
  std::vector<CompletionRecord> completions;   // simulated completion order
  size_t total_requests = 0;
  size_t offloaded_requests = 0;
  size_t admitted_examples = 0;

  // Host-side pipeline throughput (what the ThreadPool accelerates).
  double wall_seconds = 0.0;
  double requests_per_second = 0.0;
  // Wall-clock split between the parallel preparation phase and the serial
  // ordered phase; prepare_seconds is the part that scales with num_threads.
  double prepare_seconds = 0.0;
  double serial_seconds = 0.0;

  // Simulated serving latency over the completions.
  double p50_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double mean_quality = 0.0;
};

class ServingDriver {
 public:
  ServingDriver(DriverConfig config, const ModelCatalog* catalog);

  // Generates an arrival-stamped request stream: one QueryGenerator request
  // per ArrivalTrace timestamp. Deterministic in (profile, trace, seed).
  static std::vector<Request> MakeWorkload(const DatasetProfile& profile,
                                           const TraceConfig& trace, uint64_t seed);

  // Seeds the example pool with a large-model response (pool initialization).
  uint64_t SeedExample(const Request& request, double now);

  // Processes the whole stream (must be sorted by arrival_time) and runs the
  // cluster to completion. May be called once per driver instance.
  DriverReport Run(const std::vector<Request>& requests);

  ShardedExampleCache& cache() { return cache_; }
  RequestRouter& router() { return router_; }
  ProxyUtilityModel& proxy() { return proxy_; }
  ExampleSelector& selector() { return selector_; }
  ClusterSim& cluster() { return cluster_; }
  const DriverConfig& config() const { return config_; }

 private:
  // Phase-1 output: everything the serial phase needs, computed purely.
  struct Prepared {
    std::vector<SelectorCandidate> candidates;
    PreparedAdmission admission;
  };

  Prepared PrepareRequest(const Request& request) const;

  DriverConfig config_;
  ModelProfile small_;
  ModelProfile large_;
  std::shared_ptr<const Embedder> embedder_;
  ShardedExampleCache cache_;
  ProxyUtilityModel proxy_;
  ExampleSelector selector_;
  RequestRouter router_;
  GenerationSimulator generator_;
  ClusterSim cluster_;
};

}  // namespace iccache

#endif  // SRC_SERVING_DRIVER_H_
