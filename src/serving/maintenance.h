// Epoch-based background maintenance scheduler for the serving driver.
//
// The driver's old pipeline ran decay, knapsack eviction, and example replay
// INSIDE the serial phase: a due tick stalled the very window that triggered
// it (the top "maintenance off the critical path" ROADMAP item). This
// scheduler moves the expensive half — replay regenerations and the eviction
// knapsack — onto a dedicated thread while keeping the determinism contract:
//
//   request  (window boundary W):  the driver exports an epoch-consistent
//            MaintenanceCut (ExampleStore::ExportMaintenanceCut, all shard
//            locks shared) and hands it to the scheduler together with a
//            MaintenanceTickSpec. The tick's sampling stream is derived from
//            (seed, epoch), never from wall time or a shared generator.
//   plan     (background thread): ExampleManager::PlanMaintenance — a pure
//            function of (cut, spec, rng) — computes the mutation batch.
//   publish  (window boundary W + publish_lag): the driver collects the plan
//            (blocking only if the background thread is still computing —
//            a "maintenance-stalled window", counted and surfaced) and
//            applies it via ExampleManager::ApplyMaintenance.
//
// Because the cut is taken at a deterministic boundary, the plan is pure, and
// the publish boundary is fixed by the window schedule (plus the driver's
// deterministic early-flush points: checkpoints and end-of-run), the entire
// scheme produces identical mutations at any thread count, any lane count,
// and in both threading modes (`background = false` plans inline at request
// time but still publishes at the same boundary, byte-for-byte identically —
// the toggle changes WHO computes, never WHAT).
//
// At most one tick is ever in flight; the driver's due-checks are suppressed
// while one is pending.
#ifndef SRC_SERVING_MAINTENANCE_H_
#define SRC_SERVING_MAINTENANCE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <utility>

#include "src/core/manager.h"

namespace iccache {

struct MaintenanceSchedulerConfig {
  // true: plan on the dedicated thread; false: plan inline at request time
  // (identical results — see file comment — useful for debugging and tests).
  bool background = true;
  uint64_t seed = 0;
};

class MaintenanceScheduler {
 public:
  MaintenanceScheduler(const ExampleManager* manager, MaintenanceSchedulerConfig config);
  ~MaintenanceScheduler();

  MaintenanceScheduler(const MaintenanceScheduler&) = delete;
  MaintenanceScheduler& operator=(const MaintenanceScheduler&) = delete;

  // True when no tick is requested or awaiting publish. The driver only
  // requests a new tick — and only snapshots its own state — while idle.
  bool idle() const { return !pending_; }

  // Number of window boundaries the current pending tick has aged (0 right
  // after Request); the driver publishes once this reaches its publish lag.
  size_t boundaries_pending() const { return boundaries_pending_; }
  void NoteBoundary() {
    if (pending_) {
      ++boundaries_pending_;
    }
  }

  // Hands a tick to the planner. Precondition: idle(). The tick's sampling
  // stream is Rng(Mix64(seed ^ Mix64(spec.epoch))) — derived, not shared, so
  // the plan is a pure function of its inputs wherever it runs.
  void Request(MaintenanceCut cut, const MaintenanceTickSpec& spec);

  // Retrieves the pending tick's plan, blocking until the background thread
  // finishes if it has not (sets *stalled in that case — with a sane publish
  // lag this means the planner fell behind the request path). Precondition:
  // !idle(). The scheduler is idle again afterwards.
  MaintenancePlan Collect(bool* stalled);

  // Epoch persistence: the NEXT tick ordinal. Snapshots save it so a
  // restored driver derives the same per-tick streams the uninterrupted run
  // would; restore only happens while idle.
  uint64_t next_epoch() const { return next_epoch_; }
  void set_next_epoch(uint64_t epoch) { next_epoch_ = epoch; }
  uint64_t ConsumeEpoch() { return next_epoch_++; }

 private:
  void WorkerLoop();

  const ExampleManager* manager_;
  MaintenanceSchedulerConfig config_;

  // Driver-thread-only bookkeeping.
  bool pending_ = false;
  size_t boundaries_pending_ = 0;
  uint64_t next_epoch_ = 0;
  MaintenancePlan inline_plan_;  // background == false

  // Handoff to the worker (background == true).
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  bool job_ready_ = false;
  bool plan_ready_ = false;
  bool shutdown_ = false;
  MaintenanceCut job_cut_;
  MaintenanceTickSpec job_spec_;
  MaintenancePlan plan_;
  std::thread worker_;
};

}  // namespace iccache

#endif  // SRC_SERVING_MAINTENANCE_H_
