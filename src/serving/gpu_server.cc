#include "src/serving/gpu_server.h"

#include <algorithm>

namespace iccache {

GpuServer::GpuServer(const ModelProfile& model, ServerConfig config)
    : model_(model), config_(config) {}

void GpuServer::Enqueue(const ServingRequest& request, double now) {
  (void)now;
  waiting_.push_back(request);
}

double GpuServer::StartIteration(double now) {
  if (iteration_in_progress_) {
    return iteration_end_;
  }
  if (active_.empty() && waiting_.empty()) {
    return -1.0;
  }

  // Admit new requests up to the batch limit; their prompts are prefilled
  // during this iteration.
  int prefill_tokens = 0;
  while (static_cast<int>(active_.size()) < config_.max_batch_size && !waiting_.empty()) {
    InFlightRequest in_flight;
    in_flight.request = waiting_.front();
    waiting_.pop_front();
    in_flight.admission_time = now;
    active_.push_back(in_flight);
    prefill_tokens += std::max(0, in_flight.request.prompt_tokens);
  }

  double duration = 0.0;
  if (prefill_tokens > 0) {
    duration += model_.ttft_base_s +
                static_cast<double>(prefill_tokens) / std::max(model_.prefill_tps, 1.0);
  }
  // One decode token for every active request (including the just-prefilled
  // ones: prefill emits the first token).
  const size_t batch = active_.size();
  if (batch > 0) {
    duration +=
        model_.Tbt() * (1.0 + config_.batch_decode_slowdown * static_cast<double>(batch - 1));
  }

  iteration_in_progress_ = true;
  iteration_end_ = now + duration;
  busy_time_ += duration;
  return iteration_end_;
}

void GpuServer::FinishIteration(double now, std::vector<CompletionRecord>* completions) {
  iteration_in_progress_ = false;
  std::vector<InFlightRequest> still_active;
  still_active.reserve(active_.size());
  for (InFlightRequest& in_flight : active_) {
    if (!in_flight.prefilled) {
      in_flight.prefilled = true;
      in_flight.first_token_time = now;
    }
    ++in_flight.tokens_decoded;
    if (in_flight.tokens_decoded >= in_flight.request.output_tokens) {
      CompletionRecord record;
      record.id = in_flight.request.id;
      record.model = model_.name;
      record.arrival_time = in_flight.request.arrival_time;
      record.admission_time = in_flight.admission_time;
      record.first_token_time = in_flight.first_token_time;
      record.completion_time = now;
      record.prompt_tokens = in_flight.request.prompt_tokens;
      record.output_tokens = in_flight.request.output_tokens;
      completions->push_back(record);
    } else {
      still_active.push_back(in_flight);
    }
  }
  active_ = std::move(still_active);
}

}  // namespace iccache
