// A single model replica with Orca/vLLM-style continuous batching, simulated
// at iteration granularity: every iteration prefills newly admitted requests
// (chunked prefill) and decodes one token for every active request. Decode
// step time grows mildly with batch size (memory-bandwidth contention), so
// batching multiplies aggregate token throughput while slightly inflating
// per-request TBT — the throughput/latency shape the end-to-end experiments
// (Figures 12, 18, 20) depend on.
#ifndef SRC_SERVING_GPU_SERVER_H_
#define SRC_SERVING_GPU_SERVER_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/llm/model_profile.h"

namespace iccache {

struct ServingRequest {
  uint64_t id = 0;
  double arrival_time = 0.0;
  int prompt_tokens = 0;
  int output_tokens = 1;
};

struct CompletionRecord {
  uint64_t id = 0;
  std::string model;
  double arrival_time = 0.0;
  double admission_time = 0.0;   // entered the running batch
  double first_token_time = 0.0;
  double completion_time = 0.0;
  int prompt_tokens = 0;
  int output_tokens = 0;

  double Ttft() const { return first_token_time - arrival_time; }
  double E2eLatency() const { return completion_time - arrival_time; }
  double QueueDelay() const { return admission_time - arrival_time; }
  double Tbt() const {
    return output_tokens > 1
               ? (completion_time - first_token_time) / static_cast<double>(output_tokens - 1)
               : 0.0;
  }
};

struct ServerConfig {
  int max_batch_size = 16;
  // Per-token decode step time multiplier: step = tbt0 * (1 + slowdown*(B-1)).
  double batch_decode_slowdown = 0.05;
};

class GpuServer {
 public:
  GpuServer(const ModelProfile& model, ServerConfig config);

  // Adds a request to the waiting queue.
  void Enqueue(const ServingRequest& request, double now);

  // True when an iteration is currently executing.
  bool IterationInProgress() const { return iteration_in_progress_; }

  // Starts the next iteration if there is any work; returns the absolute
  // completion time of the iteration, or a negative value when idle.
  double StartIteration(double now);

  // Completes the running iteration at time `now` (must equal the time
  // returned by StartIteration); appends finished requests to `completions`.
  void FinishIteration(double now, std::vector<CompletionRecord>* completions);

  size_t QueueLength() const { return waiting_.size(); }
  size_t ActiveCount() const { return active_.size(); }
  size_t InFlight() const { return waiting_.size() + active_.size(); }
  double BusyTime() const { return busy_time_; }
  const ModelProfile& model() const { return model_; }

 private:
  struct InFlightRequest {
    ServingRequest request;
    double admission_time = 0.0;
    double first_token_time = -1.0;
    int tokens_decoded = 0;
    bool prefilled = false;
  };

  ModelProfile model_;
  ServerConfig config_;
  std::deque<ServingRequest> waiting_;
  std::vector<InFlightRequest> active_;
  bool iteration_in_progress_ = false;
  double iteration_end_ = 0.0;
  double busy_time_ = 0.0;
};

}  // namespace iccache

#endif  // SRC_SERVING_GPU_SERVER_H_
