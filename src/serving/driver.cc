#include "src/serving/driver.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/binio.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/core/pipeline.h"
#include "src/embedding/embedder.h"
#include "src/persist/snapshot.h"

namespace iccache {

namespace {

std::vector<RouterArmSpec> MakeArms(const ModelProfile& small, const ModelProfile& large) {
  RouterArmSpec small_arm;
  small_arm.model_name = small.name;
  small_arm.uses_examples = true;
  small_arm.normalized_cost =
      large.cost_per_1k_tokens > 0.0 ? small.cost_per_1k_tokens / large.cost_per_1k_tokens : 0.1;

  RouterArmSpec large_arm;
  large_arm.model_name = large.name;
  large_arm.uses_examples = false;
  large_arm.normalized_cost = 1.0;
  return {small_arm, large_arm};
}

RouterConfig SeededRouterConfig(RouterConfig config, uint64_t seed) {
  config.seed = Mix64(seed ^ 0x4073ull);
  return config;
}

ShardedCacheConfig SeededCacheConfig(ShardedCacheConfig config, uint64_t seed) {
  config.cache.seed = Mix64(seed ^ 0xcac4eull);
  return config;
}

}  // namespace

ServingDriver::ServingDriver(DriverConfig config, const ModelCatalog* catalog)
    : config_(config),
      small_(catalog->Get(config.small_model)),
      large_(catalog->Get(config.large_model)),
      embedder_(std::make_shared<HashingEmbedder>()),
      cache_(embedder_, SeededCacheConfig(config.cache, config.seed)),
      proxy_(),
      selector_(&cache_, &proxy_, config.selector),
      router_(MakeArms(small_, large_), SeededRouterConfig(config.router, config.seed)),
      generator_(Mix64(config.seed ^ 0x6e4ull)),
      manager_(&cache_, &generator_, large_, config.manager),
      checkpointer_(CheckpointerConfig{config.snapshot_path, config.checkpoint_interval_s,
                                       config.replay_load_threshold,
                                       /*force_factor=*/2.0}) {
  cluster_.AddPool(small_, config_.small_replicas, config_.server);
  cluster_.AddPool(large_, config_.large_replicas, config_.server);
  if (config_.restore_on_start && !config_.snapshot_path.empty()) {
    const Status status = RestoreSnapshot(config_.snapshot_path);
    // A missing snapshot is a normal cold start; anything else (corruption,
    // geometry mismatch) is surfaced through restore_status().
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      restore_status_ = status;
    }
  }
}

std::vector<Request> ServingDriver::MakeWorkload(const DatasetProfile& profile,
                                                 const TraceConfig& trace, uint64_t seed) {
  ArrivalTrace arrivals(trace);
  QueryGenerator generator(profile, seed);
  std::vector<Request> requests;
  for (double t : arrivals.GenerateArrivals()) {
    Request request = generator.Next();
    request.arrival_time = t;
    requests.push_back(std::move(request));
  }
  return requests;
}

uint64_t ServingDriver::SeedExample(const Request& request, double now) {
  const GenerationResult generation = generator_.Generate(large_, request, {});
  return cache_.Put(request, "[seed-response]", generation.latent_quality, large_.capability,
                    generation.output_tokens, now);
}

Status ServingDriver::SaveSnapshot(const std::string& path) {
  SnapshotWriter writer;
  PoolComponents components;
  components.selector = &selector_;
  components.manager = &manager_;
  components.proxy = &proxy_;
  components.router = &router_;
  EncodePoolSections(cache_, components, cluster_.now(), &writer);

  ByteWriter driver;
  driver.PutDouble(last_replay_time_);
  EncodeRngState(generator_.rng_state(), &driver);
  writer.AddSection(SnapshotSection::kDriver, driver.TakeBytes());
  return writer.WriteToFile(path);
}

Status ServingDriver::RestoreSnapshot(const std::string& path) {
  SnapshotReader reader;
  Status status = reader.Open(path);
  if (!status.ok()) {
    return status;
  }
  PoolComponents components;
  components.selector = &selector_;
  components.manager = &manager_;
  components.proxy = &proxy_;
  components.router = &router_;
  status = DecodePoolSections(reader, &cache_, components, &restore_report_);
  if (!status.ok()) {
    return status;
  }
  const std::string* driver = reader.Section(SnapshotSection::kDriver);
  if (driver != nullptr) {
    ByteReader r(*driver);
    const double last_replay_time = r.GetDouble();
    const RngState generator_rng = DecodeRngState(&r);
    if (!r.ok() || !r.AtEnd()) {
      return Status::InvalidArgument("malformed driver section");
    }
    last_replay_time_ = last_replay_time;
    generator_.restore_rng_state(generator_rng);
  }
  // Fast-forward the (idle) cluster to the snapshot's trace time so load
  // observations and maintenance cadence resume where the writer stopped.
  cluster_.AdvanceTo(restore_report_.sim_time);
  checkpointer_.NoteRestored(restore_report_.sim_time);
  restored_from_snapshot_ = true;
  return Status::Ok();
}

ServingDriver::Prepared ServingDriver::PrepareRequest(const Request& request) const {
  Prepared prepared;
  const std::vector<float> embedding = embedder_->Embed(request.text);
  // Pure selector half: stage-1 sharded retrieval + stage-2 proxy scoring,
  // with candidate embeddings prefilled so the serial phase's diversity guard
  // does no embedding work. The dynamic utility threshold is applied later,
  // in the serial phase, so every request in the window sees the same
  // adaptation state. A bypassed selector (section 5) skips retrieval
  // entirely — the request is served without examples.
  if (!config_.selector_fault_bypass) {
    prepared.candidates =
        selector_.PrepareCandidates(request, small_, &embedding, /*embed_candidates=*/true);
  }
  // Pure lifecycle half: dedupe probe + scrub/embed of the admission payload
  // (the quality gate needs the generation and runs in the serial phase).
  if (config_.lifecycle_admission) {
    prepared.lifecycle = manager_.PrepareAdmission(request, &embedding);
  }
  return prepared;
}

DriverReport ServingDriver::Run(const std::vector<Request>& requests) {
  DriverReport report;
  report.total_requests = requests.size();
  report.decisions.reserve(requests.size());
  const uint64_t evicted_before = cache_.evicted_total();
  const size_t checkpoints_before = checkpointer_.taken();
  PercentileTracker run_checkpoint_ms;  // this segment's writes only

  // ClusterSim::AddPool clamps replica counts to >= 1; mirror that here so
  // the utilization denominator matches the pools that actually exist.
  const double pool_capacity = static_cast<double>(
      (std::max(1, config_.small_replicas) + std::max(1, config_.large_replicas)) *
      std::max(1, config_.server.max_batch_size));
  // One utilization definition for everything that gates on load (router
  // ObserveLoad and the off-peak replay threshold).
  const auto current_load = [this, pool_capacity] {
    return static_cast<double>(cluster_.PoolInFlight(small_.name) +
                               cluster_.PoolInFlight(large_.name)) /
           pool_capacity;
  };

  ThreadPool pool(config_.num_threads);
  const size_t window = std::max<size_t>(1, config_.batch_window);
  std::vector<Prepared> prepared(window);
  RunningStat quality;

  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t begin = 0; begin < requests.size(); begin += window) {
    const size_t count = std::min(window, requests.size() - begin);

    // Phase 1: pure per-request preparation, fanned out across the pool.
    const auto phase1_start = std::chrono::steady_clock::now();
    for (size_t slot = 0; slot < count; ++slot) {
      pool.Submit([this, &requests, &prepared, begin, slot] {
        prepared[slot] = PrepareRequest(requests[begin + slot]);
      });
    }
    pool.Wait();
    const auto phase1_end = std::chrono::steady_clock::now();
    report.prepare_seconds += std::chrono::duration<double>(phase1_end - phase1_start).count();

    // Phase 2: stateful pipeline steps, strictly in arrival order.
    for (size_t slot = 0; slot < count; ++slot) {
      const Request& request = requests[begin + slot];
      Prepared& prep = prepared[slot];

      cluster_.AdvanceTo(request.arrival_time);

      // Maintenance (decay + knapsack eviction) ticks off trace time, so a
      // long-running pool is periodically refined instead of only growing.
      if (config_.lifecycle_maintenance) {
        const MaintenanceReport tick = manager_.MaybeRunMaintenance(request.arrival_time);
        if (tick.ran) {
          ++report.maintenance_runs;
        }
      }

      router_.ObserveLoad(current_load());

      // Stateful selector half: dynamic-threshold filter, diversity guard,
      // token budget, worst-to-best ordering, access accounting. Skipped
      // entirely when the selector component is bypassed (section 5).
      const std::vector<SelectorCandidate> picked =
          config_.selector_fault_bypass
              ? std::vector<SelectorCandidate>{}
              : selector_.CommitSelection(prep.candidates, small_, request.arrival_time);
      const std::vector<SelectedExample> selected = ExampleSelector::ToSelected(picked);

      const RouteDecision decision =
          RouteOrBypass(&router_, request, selected, config_.router_fault_bypass, large_);
      const bool offloaded = decision.uses_examples;
      const ModelProfile& model = offloaded ? small_ : large_;

      std::vector<ExampleView> views;
      if (offloaded) {
        views.reserve(picked.size());
        Rng view_rng(Mix64(request.id ^ config_.seed ^ 0x71e35ull));
        for (const SelectorCandidate& candidate : picked) {
          views.push_back(MakeExampleView(request, candidate.example, view_rng));
        }
      }
      const GenerationResult generation = generator_.Generate(model, request, views);

      ServingRequest serving;
      serving.id = request.id;
      serving.arrival_time = request.arrival_time;
      serving.prompt_tokens = generation.prompt_tokens;
      serving.output_tokens = generation.output_tokens;
      cluster_.Submit(model.name, serving);

      if (!config_.router_fault_bypass) {
        router_.UpdateReward(decision, generation.latent_quality);
      }
      if (offloaded) {
        ++report.offloaded_requests;
        std::vector<uint64_t> used_ids;
        used_ids.reserve(selected.size());
        for (const SelectedExample& used : selected) {
          used_ids.push_back(used.example_id);
          if (generation.latent_quality > 0.5) {
            cache_.RecordOffload(used.example_id, generation.latent_quality);
          }
        }
        // Per-use gain accounting: G(e) = (1 - quality) * model_cost folded
        // into each used example's EMA — the replay ranking signal.
        if (!used_ids.empty()) {
          manager_.RecordUsage(used_ids, generation.latent_quality,
                               large_.cost_per_1k_tokens > 0.0
                                   ? small_.cost_per_1k_tokens / large_.cost_per_1k_tokens
                                   : 0.1);
        }
        // Probe sampling: on a deterministic per-request slice of offloaded
        // traffic, shadow-generate the plain small-model response so the
        // selector's feedback (proxy updates + threshold adaptation) uses a
        // genuine counterfactual quality gain, as in IcCacheService.
        if (!selected.empty()) {
          Rng probe_rng(Mix64(request.id ^ config_.seed ^ 0x9a0beull));
          if (probe_rng.Uniform() < config_.selector_probe_rate) {
            const GenerationResult plain = generator_.Generate(small_, request, {});
            selector_.OnFeedback(request, selected, small_,
                                 generation.latent_quality - plain.latent_quality);
          }
        }
      }

      // Lifecycle admission (shared with IcCacheService): large-model
      // responses always, offloaded small-model responses above the quality
      // gate; dedupe decided in phase 1, insert auto-enforces capacity.
      if (config_.lifecycle_admission) {
        const uint64_t admitted = manager_.CommitAdmission(
            request, std::move(prep.lifecycle), generation, model.capability,
            /*from_large_model=*/!offloaded, request.arrival_time);
        if (admitted != 0) {
          ++report.admitted_examples;
        }
      }

      quality.Add(generation.latent_quality);
      DriverDecision row;
      row.request_id = request.id;
      row.model_name = model.name;
      row.offloaded = offloaded;
      row.num_examples = offloaded ? picked.size() : 0;
      row.latent_quality = generation.latent_quality;
      report.decisions.push_back(std::move(row));
    }

    // Off-peak replay (section 4.3): between batch windows, when the cluster
    // is lightly loaded, spend idle capacity refining the hottest low-quality
    // examples. Runs on the driver thread — deterministic at any thread
    // count because it only depends on trace time and serial-phase state.
    if (config_.offpeak_replay) {
      const double sim_now = cluster_.now();
      if (current_load() < config_.replay_load_threshold &&
          sim_now - last_replay_time_ >= config_.replay_min_interval_s) {
        last_replay_time_ = sim_now;
        const ReplayReport replay = manager_.RunReplayPass();
        ++report.replay_passes;
        report.replayed_examples += replay.replayed;
        report.improved_examples += replay.improved;
      }
    }

    // Periodic crash-recovery checkpoint (section: persistence): runs between
    // batch windows — never inside the serial per-request loop — and rides
    // the same off-peak gate as replay, with a forced write once two
    // intervals overdue. The write is atomic (temp + fsync + rename), so a
    // kill mid-checkpoint leaves the previous snapshot intact.
    if (checkpointer_.enabled() && checkpointer_.Due(cluster_.now(), current_load())) {
      if (checkpointer_
              .Take(cluster_.now(), [this] { return SaveSnapshot(config_.snapshot_path); })
              .ok()) {
        run_checkpoint_ms.Add(checkpointer_.last_write_ms());
      }
    }
  }
  cluster_.RunUntilIdle();
  const auto wall_end = std::chrono::steady_clock::now();

  // Take (rather than copy) so repeated Run calls report their own segment.
  report.completions = cluster_.TakeCompletions();
  report.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  report.serial_seconds = report.wall_seconds - report.prepare_seconds;
  report.requests_per_second =
      report.wall_seconds > 0.0 ? static_cast<double>(report.total_requests) / report.wall_seconds
                                : 0.0;
  PercentileTracker latency;
  PercentileTracker ttft;
  PercentileTracker queue_delay;
  for (const CompletionRecord& record : report.completions) {
    latency.Add(record.E2eLatency());
    ttft.Add(record.Ttft());
    queue_delay.Add(record.QueueDelay());
  }
  report.p50_latency_s = latency.Percentile(50);
  report.p99_latency_s = latency.Percentile(99);
  report.p50_ttft_s = ttft.Percentile(50);
  report.p99_ttft_s = ttft.Percentile(99);
  report.p50_queue_delay_s = queue_delay.Percentile(50);
  report.p99_queue_delay_s = queue_delay.Percentile(99);
  report.mean_quality = quality.mean();
  report.evicted_examples = static_cast<size_t>(cache_.evicted_total() - evicted_before);
  report.checkpoints_taken = checkpointer_.taken() - checkpoints_before;
  report.checkpoint_p50_ms = run_checkpoint_ms.Percentile(50);
  report.checkpoint_p99_ms = run_checkpoint_ms.Percentile(99);
  return report;
}

}  // namespace iccache
