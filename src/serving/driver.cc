#include "src/serving/driver.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/embedding/embedder.h"

namespace iccache {

namespace {

std::vector<RouterArmSpec> MakeArms(const ModelProfile& small, const ModelProfile& large) {
  RouterArmSpec small_arm;
  small_arm.model_name = small.name;
  small_arm.uses_examples = true;
  small_arm.normalized_cost =
      large.cost_per_1k_tokens > 0.0 ? small.cost_per_1k_tokens / large.cost_per_1k_tokens : 0.1;

  RouterArmSpec large_arm;
  large_arm.model_name = large.name;
  large_arm.uses_examples = false;
  large_arm.normalized_cost = 1.0;
  return {small_arm, large_arm};
}

RouterConfig SeededRouterConfig(RouterConfig config, uint64_t seed) {
  config.seed = Mix64(seed ^ 0x4073ull);
  return config;
}

ShardedCacheConfig SeededCacheConfig(ShardedCacheConfig config, uint64_t seed) {
  config.cache.seed = Mix64(seed ^ 0xcac4eull);
  return config;
}

}  // namespace

ServingDriver::ServingDriver(DriverConfig config, const ModelCatalog* catalog)
    : config_(config),
      small_(catalog->Get(config.small_model)),
      large_(catalog->Get(config.large_model)),
      embedder_(std::make_shared<HashingEmbedder>()),
      cache_(embedder_, SeededCacheConfig(config.cache, config.seed)),
      proxy_(),
      selector_(&cache_, &proxy_, config.selector),
      router_(MakeArms(small_, large_), SeededRouterConfig(config.router, config.seed)),
      generator_(Mix64(config.seed ^ 0x6e4ull)) {
  cluster_.AddPool(small_, config_.small_replicas, config_.server);
  cluster_.AddPool(large_, config_.large_replicas, config_.server);
}

std::vector<Request> ServingDriver::MakeWorkload(const DatasetProfile& profile,
                                                 const TraceConfig& trace, uint64_t seed) {
  ArrivalTrace arrivals(trace);
  QueryGenerator generator(profile, seed);
  std::vector<Request> requests;
  for (double t : arrivals.GenerateArrivals()) {
    Request request = generator.Next();
    request.arrival_time = t;
    requests.push_back(std::move(request));
  }
  return requests;
}

uint64_t ServingDriver::SeedExample(const Request& request, double now) {
  const GenerationResult generation = generator_.Generate(large_, request, {});
  return cache_.Put(request, "[seed-response]", generation.latent_quality, large_.capability,
                    generation.output_tokens, now);
}

ServingDriver::Prepared ServingDriver::PrepareRequest(const Request& request) const {
  Prepared prepared;
  const std::vector<float> embedding = embedder_->Embed(request.text);
  // Pure selector half: stage-1 sharded retrieval + stage-2 proxy scoring,
  // with candidate embeddings prefilled so the serial phase's diversity guard
  // does no embedding work. The dynamic utility threshold is applied later,
  // in the serial phase, so every request in the window sees the same
  // adaptation state.
  prepared.candidates =
      selector_.PrepareCandidates(request, small_, &embedding, /*embed_candidates=*/true);
  if (config_.admit_large_responses) {
    prepared.admission = cache_.PrepareAdmission(request, &embedding);
  }
  return prepared;
}

DriverReport ServingDriver::Run(const std::vector<Request>& requests) {
  DriverReport report;
  report.total_requests = requests.size();
  report.decisions.reserve(requests.size());

  // ClusterSim::AddPool clamps replica counts to >= 1; mirror that here so
  // the utilization denominator matches the pools that actually exist.
  const double pool_capacity = static_cast<double>(
      (std::max(1, config_.small_replicas) + std::max(1, config_.large_replicas)) *
      std::max(1, config_.server.max_batch_size));

  ThreadPool pool(config_.num_threads);
  const size_t window = std::max<size_t>(1, config_.batch_window);
  std::vector<Prepared> prepared(window);
  RunningStat quality;

  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t begin = 0; begin < requests.size(); begin += window) {
    const size_t count = std::min(window, requests.size() - begin);

    // Phase 1: pure per-request preparation, fanned out across the pool.
    const auto phase1_start = std::chrono::steady_clock::now();
    for (size_t slot = 0; slot < count; ++slot) {
      pool.Submit([this, &requests, &prepared, begin, slot] {
        prepared[slot] = PrepareRequest(requests[begin + slot]);
      });
    }
    pool.Wait();
    const auto phase1_end = std::chrono::steady_clock::now();
    report.prepare_seconds += std::chrono::duration<double>(phase1_end - phase1_start).count();

    // Phase 2: stateful pipeline steps, strictly in arrival order.
    for (size_t slot = 0; slot < count; ++slot) {
      const Request& request = requests[begin + slot];
      Prepared& prep = prepared[slot];

      cluster_.AdvanceTo(request.arrival_time);
      const double load =
          static_cast<double>(cluster_.PoolInFlight(small_.name) +
                              cluster_.PoolInFlight(large_.name)) /
          pool_capacity;
      router_.ObserveLoad(load);

      // Stateful selector half: dynamic-threshold filter, diversity guard,
      // token budget, worst-to-best ordering, access accounting.
      const std::vector<SelectorCandidate> picked =
          selector_.CommitSelection(prep.candidates, small_, request.arrival_time);
      const std::vector<SelectedExample> selected = ExampleSelector::ToSelected(picked);

      const RouteDecision decision = router_.Route(request, selected);
      const bool offloaded = decision.uses_examples;
      const ModelProfile& model = offloaded ? small_ : large_;

      std::vector<ExampleView> views;
      if (offloaded) {
        views.reserve(picked.size());
        Rng view_rng(Mix64(request.id ^ config_.seed ^ 0x71e35ull));
        for (const SelectorCandidate& candidate : picked) {
          ExampleView view;
          view.relevance = StructuralRelevance(request, candidate.example.request, view_rng);
          view.quality = candidate.example.response_quality;
          view.source_capability = candidate.example.source_capability;
          view.tokens = candidate.example.PromptTokens();
          views.push_back(view);
        }
      }
      const GenerationResult generation = generator_.Generate(model, request, views);

      ServingRequest serving;
      serving.id = request.id;
      serving.arrival_time = request.arrival_time;
      serving.prompt_tokens = generation.prompt_tokens;
      serving.output_tokens = generation.output_tokens;
      cluster_.Submit(model.name, serving);

      router_.UpdateReward(decision, generation.latent_quality);
      if (offloaded) {
        ++report.offloaded_requests;
        for (const SelectedExample& used : selected) {
          if (generation.latent_quality > 0.5) {
            cache_.RecordOffload(used.example_id, generation.latent_quality);
          }
        }
        // Probe sampling: on a deterministic per-request slice of offloaded
        // traffic, shadow-generate the plain small-model response so the
        // selector's feedback (proxy updates + threshold adaptation) uses a
        // genuine counterfactual quality gain, as in IcCacheService.
        if (!selected.empty()) {
          Rng probe_rng(Mix64(request.id ^ config_.seed ^ 0x9a0beull));
          if (probe_rng.Uniform() < config_.selector_probe_rate) {
            const GenerationResult plain = generator_.Generate(small_, request, {});
            selector_.OnFeedback(request, selected, small_,
                                 generation.latent_quality - plain.latent_quality);
          }
        }
      } else if (prep.admission.admit && config_.admit_large_responses) {
        const uint64_t admitted = cache_.PutPrepared(
            request, std::move(prep.admission), "[driver-response]", generation.latent_quality,
            large_.capability, generation.output_tokens, request.arrival_time);
        if (admitted != 0) {
          ++report.admitted_examples;
        }
      }

      quality.Add(generation.latent_quality);
      DriverDecision row;
      row.request_id = request.id;
      row.model_name = model.name;
      row.offloaded = offloaded;
      row.num_examples = offloaded ? picked.size() : 0;
      row.latent_quality = generation.latent_quality;
      report.decisions.push_back(std::move(row));
    }
  }
  cluster_.RunUntilIdle();
  const auto wall_end = std::chrono::steady_clock::now();

  report.completions = cluster_.completions();
  report.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  report.serial_seconds = report.wall_seconds - report.prepare_seconds;
  report.requests_per_second =
      report.wall_seconds > 0.0 ? static_cast<double>(report.total_requests) / report.wall_seconds
                                : 0.0;
  PercentileTracker latency;
  for (const CompletionRecord& record : report.completions) {
    latency.Add(record.E2eLatency());
  }
  report.p50_latency_s = latency.Percentile(50);
  report.p99_latency_s = latency.Percentile(99);
  report.mean_quality = quality.mean();
  return report;
}

}  // namespace iccache
