#include "src/serving/driver.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>
#include <utility>

#include "src/common/binio.h"
#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/core/pipeline.h"
#include "src/embedding/embedder.h"
#include "src/obs/trace.h"
#include "src/persist/snapshot.h"

namespace iccache {

namespace {

std::vector<RouterArmSpec> MakeArms(const ModelProfile& small, const ModelProfile& large) {
  RouterArmSpec small_arm;
  small_arm.model_name = small.name;
  small_arm.uses_examples = true;
  small_arm.normalized_cost =
      large.cost_per_1k_tokens > 0.0 ? small.cost_per_1k_tokens / large.cost_per_1k_tokens : 0.1;

  RouterArmSpec large_arm;
  large_arm.model_name = large.name;
  large_arm.uses_examples = false;
  large_arm.normalized_cost = 1.0;
  return {small_arm, large_arm};
}

RouterConfig SeededRouterConfig(RouterConfig config, uint64_t seed) {
  config.seed = Mix64(seed ^ 0x4073ull);
  return config;
}

ShardedCacheConfig SeededCacheConfig(ShardedCacheConfig config, uint64_t seed) {
  config.cache.seed = Mix64(seed ^ 0xcac4eull);
  return config;
}

Stage0Config SeededStage0Config(Stage0Config config, uint64_t seed) {
  config.seed = Mix64(seed ^ 0x57a9e0ull);
  return config;
}

MaintenanceSchedulerConfig SchedulerConfig(const DriverConfig& config) {
  MaintenanceSchedulerConfig scheduler;
  scheduler.background = config.background_maintenance;
  scheduler.seed = Mix64(config.seed ^ 0x3a171ull);
  return scheduler;
}

double Since(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

ServingDriver::ServingDriver(DriverConfig config, const ModelCatalog* catalog)
    : config_(config),
      small_(catalog->Get(config.small_model)),
      large_(catalog->Get(config.large_model)),
      embedder_(std::make_shared<HashingEmbedder>()),
      cache_(embedder_, SeededCacheConfig(config.cache, config.seed)),
      proxy_(),
      selector_(&cache_, &proxy_, config.selector),
      router_(MakeArms(small_, large_), SeededRouterConfig(config.router, config.seed)),
      generator_(Mix64(config.seed ^ 0x6e4ull)),
      manager_(&cache_, &generator_, large_, config.manager),
      stage0_(embedder_, SeededStage0Config(config.stage0, config.seed)),
      maintenance_(&manager_, SchedulerConfig(config)),
      checkpointer_(CheckpointerConfig{config.snapshot_path, config.checkpoint_interval_s,
                                       config.replay_load_threshold,
                                       /*force_factor=*/2.0}) {
  cluster_.AddPool(small_, config_.small_replicas, config_.server);
  cluster_.AddPool(large_, config_.large_replicas, config_.server);
  if (config_.restore_on_start && !config_.snapshot_path.empty()) {
    const Status status = RestoreSnapshot(config_.snapshot_path);
    // A missing snapshot is a normal cold start; anything else (corruption,
    // geometry mismatch) is surfaced through restore_status().
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      restore_status_ = status;
    }
  }
}

std::vector<Request> ServingDriver::MakeWorkload(const DatasetProfile& profile,
                                                 const TraceConfig& trace, uint64_t seed) {
  ArrivalTrace arrivals(trace);
  QueryGenerator generator(profile, seed);
  std::vector<Request> requests;
  for (double t : arrivals.GenerateArrivals()) {
    Request request = generator.Next();
    request.arrival_time = t;
    requests.push_back(std::move(request));
  }
  return requests;
}

uint64_t ServingDriver::SeedExample(const Request& request, double now) {
  const GenerationResult generation = generator_.Generate(large_, request, {});
  return cache_.Put(request, "[seed-response]", generation.latent_quality, large_.capability,
                    generation.output_tokens, now);
}

Status ServingDriver::SaveSnapshot(const std::string& path) {
  SnapshotWriter writer;
  PoolComponents components;
  components.selector = &selector_;
  components.manager = &manager_;
  components.proxy = &proxy_;
  components.router = &router_;
  components.stage0 = config_.stage0.enabled ? &stage0_ : nullptr;
  EncodePoolSections(cache_, components, cluster_.now(), &writer);

  // The maintenance scheduler is idle at every point a snapshot can be taken
  // (checkpoints flush pending ticks first; Run drains before returning), so
  // the epoch counter alone captures its state.
  ByteWriter driver;
  driver.PutDouble(last_replay_time_);
  EncodeRngState(generator_.rng_state(), &driver);
  driver.PutU64(maintenance_.next_epoch());
  writer.AddSection(SnapshotSection::kDriver, driver.TakeBytes());
  return writer.WriteToFile(path);
}

Status ServingDriver::RestoreSnapshot(const std::string& path) {
  SnapshotReader reader;
  Status status = reader.Open(path);
  if (!status.ok()) {
    return status;
  }
  PoolComponents components;
  components.selector = &selector_;
  components.manager = &manager_;
  components.proxy = &proxy_;
  components.router = &router_;
  components.stage0 = config_.stage0.enabled ? &stage0_ : nullptr;
  status = DecodePoolSections(reader, &cache_, components, &restore_report_);
  if (!status.ok()) {
    return status;
  }
  const std::string* driver = reader.Section(SnapshotSection::kDriver);
  if (driver != nullptr) {
    ByteReader r(*driver);
    const double last_replay_time = r.GetDouble();
    const RngState generator_rng = DecodeRngState(&r);
    const uint64_t maintenance_epoch = r.GetU64();
    if (!r.ok() || !r.AtEnd()) {
      return Status::InvalidArgument("malformed driver section");
    }
    last_replay_time_ = last_replay_time;
    generator_.restore_rng_state(generator_rng);
    maintenance_.set_next_epoch(maintenance_epoch);
  }
  // Fast-forward the (idle) cluster to the snapshot's trace time so load
  // observations and maintenance cadence resume where the writer stopped.
  cluster_.AdvanceTo(restore_report_.sim_time);
  checkpointer_.NoteRestored(restore_report_.sim_time);
  restored_from_snapshot_ = true;
  return Status::Ok();
}

namespace {

// Per-thread scratch for the batched prepare path. Every buffer retains its
// capacity across chunks, so steady-state prepare work allocates only what
// the per-request outputs themselves own.
struct PrepareScratch {
  std::vector<float> embeddings;  // chunk-size * dim embedding arena
  std::vector<double> arrivals;   // per-request freshness clocks for stage-0
  std::vector<uint64_t> begin_ns;
  SearchScratch index_scratch;
  std::vector<std::optional<Stage0Probe>> probes;
  std::vector<std::vector<SearchResult>> stage1;
  // The memo caches THIS driver's embedder output; rebuilt if the thread
  // later serves a driver with a different embedder (tests construct many).
  std::unique_ptr<EmbedMemo> memo;
  const Embedder* memo_owner = nullptr;
};

}  // namespace

void ServingDriver::PrepareChunk(const Request* chunk_requests, size_t count,
                                 Prepared* out) const {
  static thread_local PrepareScratch s;
  const size_t dim = embedder_->dim();
  if (s.memo == nullptr || s.memo_owner != embedder_.get()) {
    s.memo = std::make_unique<EmbedMemo>(config_.embed_memo_slots);
    s.memo_owner = embedder_.get();
  }
  const uint64_t memo_hits_before = s.memo->hits();
  const uint64_t memo_misses_before = s.memo->misses();
  const bool traced = TraceRecorder::tracing_enabled();
  s.embeddings.resize(count * dim);
  s.begin_ns.resize(count);

  // One embed per request, shared by every stage below: stage-0 probe,
  // stage-1 retrieval, and the admission scrub all reuse the arena slot.
  // Memo hits replay stored embedder output byte-for-byte.
  for (size_t i = 0; i < count; ++i) {
    if (traced) {
      s.begin_ns[i] = TraceRecorder::Global().NowNs();
    }
    TraceSpan embed_span(TraceCategory::kEmbed, chunk_requests[i].id);
    s.memo->EmbedInto(*embedder_, chunk_requests[i].text, s.embeddings.data() + i * dim);
  }

  // Batched stage-0 probe against the window-start response cache (pure
  // read; the frozen-threshold hit decision happens in the lane). Stage-1
  // retrieval still runs below even when a probe looks confident — a hit
  // saves the generation, and skipping retrieval on a probe that the lane
  // then rejects would leave the request without candidates.
  if (config_.stage0.enabled) {
    s.arrivals.resize(count);
    for (size_t i = 0; i < count; ++i) {
      s.arrivals[i] = chunk_requests[i].arrival_time;
    }
    stage0_.ProbeBatch(s.embeddings.data(), count, dim, s.arrivals.data(), &s.index_scratch,
                       &s.probes);
  }

  // Batched stage-1 sweep: one multi-query pass over the sharded store takes
  // each shard's lock once for the whole chunk. Each query's result list is
  // exactly what its single-query FindSimilar would have returned, so the
  // per-request selector tail below is byte-identical to the unbatched path.
  // A bypassed selector (section 5) skips retrieval entirely.
  if (!config_.selector_fault_bypass) {
    TraceSpan batch_span(TraceCategory::kStage1Batch);
    batch_span.SetArgs(count, config_.selector.stage1_candidates);
    cache_.FindSimilarBatch(s.embeddings.data(), count, dim, config_.selector.stage1_candidates,
                            &s.index_scratch, &s.stage1);
  }

  // Per-request tail: selector filter/snapshot/stage-2 scoring (candidate
  // embeddings prefilled so the commit lanes' diversity guard does no
  // embedding work — the dynamic utility threshold is applied in the lane
  // stage) and the pure lifecycle half (dedupe probe + scrub/embed of the
  // admission payload; the quality gate runs at publish time).
  for (size_t i = 0; i < count; ++i) {
    const Request& request = chunk_requests[i];
    Prepared& prepared = out[i];
    prepared = Prepared();
    prepared.embedding.assign(s.embeddings.data() + i * dim,
                              s.embeddings.data() + (i + 1) * dim);
    if (config_.stage0.enabled) {
      prepared.stage0 = s.probes[i];
    }
    if (!config_.selector_fault_bypass) {
      prepared.candidates = selector_.PrepareCandidatesFrom(request, small_, s.stage1[i],
                                                            /*embed_candidates=*/true);
    }
    if (config_.lifecycle_admission) {
      prepared.lifecycle = manager_.PrepareAdmission(request, &prepared.embedding);
    }
    if (traced) {
      // Per-request prepare phase span, emitted manually so it brackets the
      // request's embed through its tail even though chunk phases interleave
      // the requests in between (the timeline assembler books the interleaved
      // work to prepare_other).
      TraceEvent prepare_event;
      prepare_event.category = TraceCategory::kPrepare;
      prepare_event.request_id = request.id;
      prepare_event.begin_ns = s.begin_ns[i];
      prepare_event.end_ns = TraceRecorder::Global().NowNs();
      TraceRecorder::Global().Emit(prepare_event);
    }
  }
  memo_hits_.fetch_add(s.memo->hits() - memo_hits_before, std::memory_order_relaxed);
  memo_misses_.fetch_add(s.memo->misses() - memo_misses_before, std::memory_order_relaxed);
}

void ServingDriver::CommitLaneRequest(const Request& request, Prepared& prep,
                                      CommitSlot& slot) const {
  slot = CommitSlot();
  slot.embedding = std::move(prep.embedding);

  // Stage-0 hit path: the probe's similarity clears the threshold FROZEN at
  // the window start (every lane judges against the same value), so the
  // cached response is served verbatim — no routing, no generation, no
  // cluster submission. The reuse quality is drawn from a dedicated
  // per-request stream, so the outcome stays a pure function of
  // (seed, request id, window-start state).
  if (config_.stage0.enabled && prep.stage0.has_value() && stage0_.Confident(*prep.stage0)) {
    const Stage0Entry& hit = prep.stage0->entry;
    slot.stage0_hit = true;
    slot.stage0_id = hit.id;
    slot.stage0_similarity = prep.stage0->similarity;

    Rng reuse_rng(Mix64(request.id ^ config_.seed ^ 0x57a9e17ull));
    const double relevance = StructuralRelevance(request, hit.request, reuse_rng);
    slot.generation.request_id = request.id;
    slot.generation.model_name = "stage0-cache";
    slot.generation.latent_quality =
        generator_.ReusedResponseQuality(hit.response_quality, relevance, reuse_rng);
    slot.generation.prompt_tokens = request.input_tokens;
    slot.generation.output_tokens = 0;  // zero generation cost
    slot.stage0_tokens_saved = hit.response_tokens;  // estimate when unprobed

    // Probe sampling for threshold learning: on a deterministic per-request
    // slice of hits, ALSO generate the response fresh so the merge can credit
    // the adaptation grid with a genuine (reused - fresh) counterfactual.
    Rng probe_rng(Mix64(request.id ^ config_.seed ^ 0x57a9ebull));
    if (probe_rng.Uniform() < config_.stage0.probe_rate) {
      TraceSpan generate_span(TraceCategory::kGenerate, request.id);
      Rng commit_rng(Mix64(request.id ^ config_.seed ^ 0x1a9ec0113ull));
      const GenerationResult fresh = generator_.Generate(large_, request, {}, commit_rng);
      slot.stage0_probed = true;
      slot.stage0_fresh_quality = fresh.latent_quality;
      slot.stage0_tokens_saved = fresh.output_tokens;
    }
    return;
  }
  if (config_.stage0.enabled && prep.stage0.has_value()) {
    // Miss: carry the probe's top-1 neighbour as the merge's dedupe hint so
    // the serial admission path never searches the index itself.
    slot.stage0_id = prep.stage0->entry.id;
    slot.stage0_similarity = prep.stage0->similarity;
  }

  // Frozen-threshold combination: diversity, token budget, worst-to-best
  // ordering against the window-start adaptation state. Access accounting is
  // collected for the merge step instead of applied here.
  std::vector<SelectorCandidate> picked;
  if (!config_.selector_fault_bypass) {
    picked = selector_.CommitSelectionFrozen(prep.candidates, small_, &slot.accessed);
  }
  slot.selected = ExampleSelector::ToSelected(picked);
  slot.num_examples = picked.size();

  // One per-request stream drives every stochastic step of this request —
  // Thompson sampling, generation, probe shadow generation — so the outcome
  // is a pure function of (seed, request id, window-start state).
  Rng commit_rng(Mix64(request.id ^ config_.seed ^ 0x1a9ec0113ull));

  {
    TraceSpan route_span(TraceCategory::kRoute, request.id);
    slot.decision = config_.router_fault_bypass
                        ? BypassRoute(router_, request, slot.selected, large_)
                        : router_.RouteWithRng(request, slot.selected, commit_rng);
  }
  slot.offloaded = slot.decision.uses_examples;
  const ModelProfile& model = slot.offloaded ? small_ : large_;

  {
    TraceSpan generate_span(TraceCategory::kGenerate, request.id);
    std::vector<ExampleView> views;
    if (slot.offloaded) {
      views.reserve(picked.size());
      Rng view_rng(Mix64(request.id ^ config_.seed ^ 0x71e35ull));
      for (const SelectorCandidate& candidate : picked) {
        views.push_back(MakeExampleView(request, candidate.example, view_rng));
      }
    }
    slot.generation = generator_.Generate(model, request, views, commit_rng);
  }

  // Probe sampling: on a deterministic per-request slice of offloaded
  // traffic, shadow-generate the plain small-model response so the
  // selector's feedback (applied in the merge) uses a genuine counterfactual
  // quality gain, as in IcCacheService.
  if (slot.offloaded && !slot.selected.empty()) {
    Rng probe_rng(Mix64(request.id ^ config_.seed ^ 0x9a0beull));
    if (probe_rng.Uniform() < config_.selector_probe_rate) {
      TraceSpan generate_span(TraceCategory::kGenerate, request.id);
      const GenerationResult plain = generator_.Generate(small_, request, {}, commit_rng);
      slot.probed = true;
      slot.probe_gain = slot.generation.latent_quality - plain.latent_quality;
    }
  }

  // Stage the admission for the per-shard publish step (quality gate and
  // insert both run there, in per-shard arrival order).
  if (config_.lifecycle_admission) {
    slot.lifecycle = std::move(prep.lifecycle);
  }
}

DriverReport ServingDriver::Run(const std::vector<Request>& requests) {
  DriverReport report;
  report.total_requests = requests.size();
  report.decisions.reserve(requests.size());
  const uint64_t evicted_before = cache_.evicted_total();
  const uint64_t memo_hits_before = memo_hits_.load(std::memory_order_relaxed);
  const uint64_t memo_misses_before = memo_misses_.load(std::memory_order_relaxed);
  size_t planned_evictions = 0;  // maintenance-batch removals (not in the store counter)
  const size_t checkpoints_before = checkpointer_.taken();
  LatencyHistogram run_checkpoint_ms(1e-3, 1.10, 256);  // this segment's writes only

  // Metric handles, registered once per Run (stable pointers, atomic-add hot
  // path). Every update below happens on the driver thread's serial path or
  // at a window boundary — lanes and prepare tasks never touch the hub, and
  // none of it feeds back into decisions.
  MetricCounter* m_requests = hub_.Counter("requests_total");
  MetricCounter* m_windows = hub_.Counter("windows_total");
  MetricCounter* m_offloaded = hub_.Counter("requests_offloaded_total");
  MetricCounter* m_stage0_hits = hub_.Counter("stage0_hits_total");
  MetricCounter* m_stage0_probes = hub_.Counter("stage0_probes_total");
  MetricCounter* m_stage0_invalidations = hub_.Counter("stage0_invalidations_total");
  MetricCounter* m_stage0_expired = hub_.Counter("stage0_expired_total");
  MetricCounter* m_stage0_admitted = hub_.Counter("stage0_admitted_total");
  MetricCounter* m_stage0_tokens_saved = hub_.Counter("stage0_tokens_saved_total");
  MetricCounter* m_generated_tokens = hub_.Counter("generated_tokens_total");
  MetricCounter* m_admitted = hub_.Counter("examples_admitted_total");
  MetricCounter* m_evicted = hub_.Counter("examples_evicted_total");
  MetricCounter* m_anomalies = hub_.Counter("watchdog_anomalies_total");
  MetricCounter* m_maintenance_ticks = hub_.Counter("maintenance_ticks_total");
  MetricCounter* m_replay_passes = hub_.Counter("replay_passes_total");
  MetricCounter* m_replayed = hub_.Counter("replayed_examples_total");
  MetricCounter* m_stalled = hub_.Counter("maintenance_stalled_windows_total");
  MetricCounter* m_checkpoints = hub_.Counter("checkpoints_total");
  MetricGauge* g_pool_bytes = hub_.Gauge("pool_bytes");
  MetricGauge* g_pool_examples = hub_.Gauge("pool_examples");
  MetricGauge* g_stage0_entries = hub_.Gauge("stage0_entries");
  MetricGauge* g_queue_depth = hub_.Gauge("cluster_inflight");
  MetricGauge* g_sim_time = hub_.Gauge("sim_time_s");
  MetricHistogram* h_e2e = hub_.Histogram("e2e_latency_seconds");
  MetricHistogram* h_ttft = hub_.Histogram("ttft_seconds");
  MetricHistogram* h_queue = hub_.Histogram("queue_delay_seconds");
  MetricHistogram* h_prepare = hub_.Histogram("window_prepare_seconds");
  // Requests per prepare chunk (fill of the batched prepare tasks). Observed
  // on the driver thread at submit time from the deterministic chunking, so
  // the series is thread- and lane-count invariant.
  MetricHistogram* h_batch_fill = hub_.Histogram("prepare_batch_fill");
  MetricHistogram* h_merge = hub_.Histogram("window_merge_seconds");
  MetricHistogram* h_publish = hub_.Histogram("window_publish_seconds");
  MetricHistogram* h_checkpoint = hub_.Histogram("checkpoint_write_ms", 1e-3, 1.10, 256);
  // Determinism guard: the distance-kernel dispatch level is resolved once at
  // process startup and never changes; publish it so any decision mismatch
  // between runs can be checked against the kernel in one glance.
  MetricGauge* g_simd_level = hub_.Gauge("simd_kernel_level");
  g_simd_level->Set(static_cast<double>(static_cast<int>(simd::ActiveKernelLevel())));
  MetricCounter* m_rerank_queries = hub_.Counter("hnsw_rerank_queries_total");
  MetricCounter* m_rerank_candidates = hub_.Counter("hnsw_rerank_candidates_total");
  // The HNSW rerank counters are process-global; sample them as deltas at
  // window boundaries so the hub's windowed series stays per-run.
  const uint64_t rerank_queries_before = HnswRerankQueriesTotal();
  const uint64_t rerank_candidates_before = HnswRerankCandidatesTotal();
  uint64_t rerank_queries_seen = rerank_queries_before;
  uint64_t rerank_candidates_seen = rerank_candidates_before;

  // ClusterSim::AddPool clamps replica counts to >= 1; mirror that here so
  // the utilization denominator matches the pools that actually exist.
  const double pool_capacity = static_cast<double>(
      (std::max(1, config_.small_replicas) + std::max(1, config_.large_replicas)) *
      std::max(1, config_.server.max_batch_size));
  // One utilization definition for everything that gates on load (router
  // ObserveLoad, the off-peak replay threshold, the checkpoint gate).
  const auto current_load = [this, pool_capacity] {
    return static_cast<double>(cluster_.PoolInFlight(small_.name) +
                               cluster_.PoolInFlight(large_.name)) /
           pool_capacity;
  };

  ThreadPool pool(config_.num_threads);
  const size_t window = std::max<size_t>(1, config_.batch_window);
  const size_t lanes = std::max<size_t>(1, config_.commit_lanes);
  const size_t publish_lag = std::max<size_t>(1, config_.maintenance_publish_lag);
  std::vector<Prepared> prepared(window);
  std::vector<Prepared> prepared_next(window);
  std::vector<CommitSlot> slots(window);
  RunningStat quality;
  double prepare_wall = 0.0;      // driver time blocked on pool task groups
  double maintenance_wall = 0.0;  // cut exports + plan collection + batch apply

  // Per-Run SLO watchdog over the per-window hub snapshots. Passive: it
  // reads metrics already maintained above, so arming it cannot perturb a
  // single decision.
  SloWatchdog watchdog(config_.watchdog);
  uint64_t evicted_seen = evicted_before;  // store-counter cursor for the window delta
  size_t planned_seen = 0;                 // maintenance-batch cursor, same delta

  // Bounded log-bucket histograms instead of retained-sample trackers: the
  // report's percentiles carry the histogram's quantile error bound
  // (relative error <= sqrt(growth) - 1, ~4.9% at growth 1.10) but memory
  // stays constant however many completions a run produces.
  LatencyHistogram latency;
  LatencyHistogram ttft;
  LatencyHistogram queue_delay;
  // Drains the cluster's finished requests into the report at each window
  // boundary (rather than once at the end) so the per-window hub snapshots
  // carry live latency histograms for the watchdog. TakeCompletions is
  // driven purely by the simulated clock, so per-boundary draining yields
  // the same global completion order as one final take.
  const auto drain_completions = [&] {
    for (CompletionRecord& record : cluster_.TakeCompletions()) {
      const double e2e = record.E2eLatency();
      latency.Add(e2e);
      ttft.Add(record.Ttft());
      queue_delay.Add(record.QueueDelay());
      h_e2e->Observe(e2e, record.id);  // request id = the bucket's exemplar
      h_ttft->Observe(record.Ttft());
      h_queue->Observe(record.QueueDelay());
      report.completions.push_back(std::move(record));
    }
  };

  // Publishes the pending maintenance tick's mutation batch. `forced` marks
  // the deterministic early-flush points (checkpoint, end of run), where a
  // blocking wait is expected and not a pipeline stall.
  const auto publish_tick = [&](bool forced) {
    const auto start = std::chrono::steady_clock::now();
    bool stalled = false;
    const MaintenancePlan plan = maintenance_.Collect(&stalled);
    if (!forced && stalled) {
      ++report.maintenance_stalled_windows;
      m_stalled->Increment();
    }
    MaintenanceApplyOutcome outcome;
    {
      TraceSpan span(TraceCategory::kMaintenanceApply);
      outcome = manager_.ApplyMaintenance(plan);
      span.SetArgs(outcome.evicted, outcome.replayed);
    }
    planned_evictions += outcome.evicted;
    if (outcome.decay_ran) {
      ++report.maintenance_runs;
      m_maintenance_ticks->Increment();
    }
    if (outcome.replay_ran) {
      ++report.replay_passes;
      report.replayed_examples += outcome.replayed;
      report.improved_examples += outcome.improved;
      m_replay_passes->Increment();
      m_replayed->Add(static_cast<double>(outcome.replayed));
    }
    maintenance_wall += Since(start);
  };

  // Chunked prepare fan-out: one task per prepare_chunk-sized slice of the
  // window. Chunk boundaries depend only on (window, prepare_chunk), so the
  // batch-fill histogram — observed here on the driver thread — is identical
  // at any thread/lane count.
  const size_t chunk = std::max<size_t>(1, config_.prepare_chunk);
  const auto submit_prepare = [&](size_t begin, size_t count, std::vector<Prepared>* out,
                                  WaitGroup* wg) {
    for (size_t chunk_begin = 0; chunk_begin < count; chunk_begin += chunk) {
      const size_t chunk_count = std::min(chunk, count - chunk_begin);
      h_batch_fill->Observe(static_cast<double>(chunk_count));
      wg->Add(1);
      pool.Submit([this, &requests, out, wg, begin, chunk_begin, chunk_count] {
        PrepareChunk(&requests[begin + chunk_begin], chunk_count, &(*out)[chunk_begin]);
        wg->Done();
      });
    }
  };

  const auto wall_start = std::chrono::steady_clock::now();

  // Prologue: prepare window 0 (there is nothing to overlap it with yet).
  if (!requests.empty()) {
    WaitGroup wg;
    const auto start = std::chrono::steady_clock::now();
    submit_prepare(0, std::min(window, requests.size()), &prepared, &wg);
    wg.Wait();
    prepare_wall += Since(start);
  }

  for (size_t begin = 0; begin < requests.size(); begin += window) {
    const size_t count = std::min(window, requests.size() - begin);
    const size_t window_index = begin / window;
    // Phase span covering the whole window (fan-out through boundary work).
    TraceSpan window_span(TraceCategory::kWindow);
    window_span.SetArgs(window_index, count);
    const bool final_window = begin + window >= requests.size();
    const size_t next_begin = begin + window;
    const size_t next_count =
        final_window ? 0 : std::min(window, requests.size() - next_begin);

    // Freeze the routing state for this window's lanes: refresh the bandit's
    // lazy posterior factorizations on this thread so concurrent frozen
    // routes are race-free.
    router_.PrepareSampling();

    // Fan out the sharded commit lanes for THIS window alongside the pure
    // preparation of the NEXT window (the pipeline overlap). Both task
    // families only read state frozen at this boundary, so they can share
    // the pool freely.
    std::vector<std::vector<size_t>> lane_slots(lanes);
    for (size_t slot = 0; slot < count; ++slot) {
      lane_slots[cache_.shard_for_request(requests[begin + slot]) % lanes].push_back(slot);
    }
    WaitGroup lanes_wg;
    WaitGroup prep_wg;
    const auto fan_start = std::chrono::steady_clock::now();
    for (size_t lane = 0; lane < lanes; ++lane) {
      if (lane_slots[lane].empty()) {
        continue;
      }
      lanes_wg.Add(1);
      pool.Submit([this, &requests, &prepared, &slots, &lane_slots, &lanes_wg, lane, begin] {
        TraceSpan lane_span(TraceCategory::kCommitLane, 0, static_cast<uint32_t>(lane));
        lane_span.SetArgs(lane_slots[lane].size());
        for (size_t slot : lane_slots[lane]) {
          TraceSpan commit_span(TraceCategory::kLaneCommit, requests[begin + slot].id,
                                static_cast<uint32_t>(lane));
          CommitLaneRequest(requests[begin + slot], prepared[slot], slots[slot]);
        }
        lanes_wg.Done();
      });
    }
    if (next_count > 0) {
      submit_prepare(next_begin, next_count, &prepared_next, &prep_wg);
    }
    lanes_wg.Wait();
    prep_wg.Wait();
    prepare_wall += Since(fan_start);
    h_prepare->Observe(Since(fan_start));

    // Deterministic cross-shard merge: every globally stateful step, applied
    // strictly in arrival order on the driver thread. The span is emitted
    // manually (not RAII) so it closes exactly at the end of the loop.
    const auto merge_start = std::chrono::steady_clock::now();
    TraceEvent merge_event;
    merge_event.category = TraceCategory::kMerge;
    merge_event.arg0 = window_index;
    merge_event.arg1 = count;
    const bool merge_traced = TraceRecorder::tracing_enabled();
    if (merge_traced) {
      merge_event.begin_ns = TraceRecorder::Global().NowNs();
    }
    for (size_t slot = 0; slot < count; ++slot) {
      const Request& request = requests[begin + slot];
      // Per-request slice of the serial merge, nested under the manual merge
      // span — lets the timeline assembler charge merge time to a request.
      TraceSpan step_span(TraceCategory::kMergeStep, request.id);
      CommitSlot& c = slots[slot];
      const ModelProfile& model = c.offloaded ? small_ : large_;

      // Stage-0 hit: the response came from the cache, so nothing downstream
      // of stage-0 (router, cluster queues, selector accounting, lifecycle)
      // sees this request. Only the cache's own state advances: hit
      // recency/count, probe-fed threshold learning, and quality-feedback
      // invalidation — all on the serial path, ordered against every probe.
      if (c.stage0_hit) {
        cluster_.AdvanceTo(request.arrival_time);
        ++report.stage0_hits;
        report.stage0_tokens_saved += c.stage0_tokens_saved;
        m_stage0_hits->Increment();
        m_stage0_tokens_saved->Add(static_cast<double>(c.stage0_tokens_saved));
        stage0_.RecordHit(c.stage0_id, request.arrival_time);
        if (c.stage0_probed) {
          ++report.stage0_probes;
          m_stage0_probes->Increment();
          stage0_.OnHitFeedback(c.stage0_similarity, c.generation.latent_quality,
                                c.stage0_fresh_quality, c.stage0_tokens_saved);
        }
        if (stage0_.OnQualityFeedback(c.stage0_id, c.generation.latent_quality)) {
          ++report.stage0_invalidations;
          m_stage0_invalidations->Increment();
        }
        quality.Add(c.generation.latent_quality);
        DriverDecision row;
        row.request_id = request.id;
        row.model_name = c.generation.model_name;
        row.offloaded = false;
        row.num_examples = 0;
        row.latent_quality = c.generation.latent_quality;
        report.decisions.push_back(std::move(row));
        continue;
      }

      cluster_.AdvanceTo(request.arrival_time);
      router_.ObserveLoad(current_load());
      for (uint64_t id : c.accessed) {
        cache_.RecordAccess(id, request.arrival_time);
      }

      ServingRequest serving;
      serving.id = request.id;
      serving.arrival_time = request.arrival_time;
      serving.prompt_tokens = c.generation.prompt_tokens;
      serving.output_tokens = c.generation.output_tokens;
      cluster_.Submit(model.name, serving);

      if (!config_.router_fault_bypass) {
        router_.UpdateReward(c.decision, c.generation.latent_quality);
      }
      if (c.offloaded) {
        ++report.offloaded_requests;
        m_offloaded->Increment();
        std::vector<uint64_t> used_ids;
        used_ids.reserve(c.selected.size());
        for (const SelectedExample& used : c.selected) {
          used_ids.push_back(used.example_id);
          if (c.generation.latent_quality > 0.5) {
            cache_.RecordOffload(used.example_id, c.generation.latent_quality);
          }
        }
        // Per-use gain accounting: G(e) = (1 - quality) * model_cost folded
        // into each used example's EMA — the replay ranking signal.
        if (!used_ids.empty()) {
          manager_.RecordUsage(used_ids, c.generation.latent_quality,
                               large_.cost_per_1k_tokens > 0.0
                                   ? small_.cost_per_1k_tokens / large_.cost_per_1k_tokens
                                   : 0.1);
        }
        if (c.probed) {
          selector_.OnFeedback(request, c.selected, small_, c.probe_gain);
        }
      }

      // Stage-0 insert (serial, arrival order): every freshly generated
      // response is a candidate cached answer for future duplicates. The
      // cache dedupes near-exact repeats and enforces its bounds inside Put;
      // admissions become probe-visible in window N+2 (same schedule as the
      // example pool).
      if (config_.stage0.enabled) {
        const Stage0DedupeHint hint{c.stage0_id, c.stage0_similarity};
        if (stage0_.Put(request, std::move(c.embedding), "[cached-response]",
                        c.generation.latent_quality, c.generation.output_tokens,
                        request.arrival_time, &hint) != 0) {
          ++report.stage0_admitted;
          m_stage0_admitted->Increment();
        }
      }
      report.generated_tokens += c.generation.output_tokens;
      m_generated_tokens->Add(static_cast<double>(c.generation.output_tokens));

      quality.Add(c.generation.latent_quality);
      DriverDecision row;
      row.request_id = request.id;
      row.model_name = model.name;
      row.offloaded = c.offloaded;
      row.num_examples = c.offloaded ? c.num_examples : 0;
      row.latent_quality = c.generation.latent_quality;
      report.decisions.push_back(std::move(row));
    }
    if (merge_traced) {
      merge_event.end_ns = TraceRecorder::Global().NowNs();
      TraceRecorder::Global().Emit(merge_event);
    }
    h_merge->Observe(Since(merge_start));
    // Batched threshold-adaptation cadence: the whole window served under
    // the frozen threshold; count it and re-evaluate at the boundary.
    if (!config_.selector_fault_bypass) {
      selector_.AdvanceWindow(count);
    }
    if (config_.stage0.enabled) {
      stage0_.AdvanceWindow(count);
      const size_t expired = stage0_.ExpireStale(cluster_.now());
      report.stage0_expired += expired;
      m_stage0_expired->Add(static_cast<double>(expired));
    }

    // Publish the window's admissions: per-shard tasks, per-shard arrival
    // order (deterministic id assignment), watermark eviction deferred to
    // ONE enforcement after the join so no lane can trigger a knapsack under
    // a racing pool view.
    if (config_.lifecycle_admission) {
      std::vector<std::vector<size_t>> shard_slots(cache_.num_shards());
      for (size_t slot = 0; slot < count; ++slot) {
        shard_slots[cache_.shard_for_request(requests[begin + slot])].push_back(slot);
      }
      std::vector<uint64_t> admitted(count, 0);
      cache_.set_defer_capacity(true);
      WaitGroup publish_wg;
      TraceSpan publish_span(TraceCategory::kPublish);
      publish_span.SetArgs(window_index, count);
      const auto publish_start = std::chrono::steady_clock::now();
      for (size_t shard = 0; shard < shard_slots.size(); ++shard) {
        if (shard_slots[shard].empty()) {
          continue;
        }
        publish_wg.Add(1);
        pool.Submit([this, &requests, &slots, &shard_slots, &admitted, &publish_wg, shard,
                     begin] {
          for (size_t slot : shard_slots[shard]) {
            const Request& request = requests[begin + slot];
            CommitSlot& c = slots[slot];
            if (c.stage0_hit) {
              continue;  // nothing was generated — nothing to admit
            }
            admitted[slot] = manager_.CommitAdmission(
                request, std::move(c.lifecycle), c.generation,
                (c.offloaded ? small_ : large_).capability,
                /*from_large_model=*/!c.offloaded, request.arrival_time);
          }
          publish_wg.Done();
        });
      }
      publish_wg.Wait();
      prepare_wall += Since(publish_start);
      h_publish->Observe(Since(publish_start));
      cache_.set_defer_capacity(false);
      for (size_t slot = 0; slot < count; ++slot) {
        if (admitted[slot] != 0) {
          ++report.admitted_examples;
          m_admitted->Increment();
        }
      }
      // No synchronous watermark knapsack here: capacity pressure requests
      // an eviction tick below, so the knapsack runs on the background
      // planner instead of the request path (soft watermark — see the
      // end-of-run enforcement that restores the hard invariant).
    }

    // --- Window boundary: background maintenance + checkpoint ---

    // 1. Publish a pending tick that reached its lag (or drain at the end of
    //    the run) — BEFORE any checkpoint, so snapshots never race a tick.
    if (!maintenance_.idle()) {
      maintenance_.NoteBoundary();
      if (maintenance_.boundaries_pending() >= publish_lag) {
        publish_tick(/*forced=*/false);
      } else if (final_window) {
        publish_tick(/*forced=*/true);
      }
    }

    // 2. Periodic crash-recovery checkpoint: rides the off-peak gate, forced
    //    once two intervals overdue. A still-pending tick is flushed first at
    //    this (deterministic) point so the snapshot captures a complete
    //    state. The write is atomic (temp + fsync + rename).
    if (checkpointer_.enabled() && checkpointer_.Due(cluster_.now(), current_load())) {
      if (!maintenance_.idle()) {
        publish_tick(/*forced=*/true);
      }
      if (checkpointer_
              .Take(cluster_.now(), [this] { return SaveSnapshot(config_.snapshot_path); })
              .ok()) {
        run_checkpoint_ms.Add(checkpointer_.last_write_ms());
        h_checkpoint->Observe(checkpointer_.last_write_ms());
        m_checkpoints->Increment();
      }
    }

    // 3. Request the next tick when decay, watermark eviction, or off-peak
    //    replay is due. The cut export runs here (cheap: records only, no
    //    embeddings or graphs) and the expensive planning — including the
    //    eviction knapsack, which used to run synchronously inside the
    //    serial phase on every watermark crossing — lands on the background
    //    thread. At the final boundary the tick is published immediately so
    //    Run never returns with the scheduler busy (snapshot parity).
    if (maintenance_.idle()) {
      const double sim_now = cluster_.now();
      const bool decay_due =
          config_.lifecycle_maintenance &&
          sim_now - manager_.last_decay_time() >= config_.manager.decay_interval_s;
      const int64_t capacity = config_.cache.cache.capacity_bytes;
      const bool evict_due =
          decay_due ||
          (capacity > 0 && static_cast<double>(cache_.used_bytes()) >
                               static_cast<double>(capacity) *
                                   std::min(1.0, config_.cache.cache.high_watermark));
      const bool replay_due = config_.offpeak_replay &&
                              current_load() < config_.replay_load_threshold &&
                              sim_now - last_replay_time_ >= config_.replay_min_interval_s;
      if (decay_due || evict_due || replay_due) {
        const auto start = std::chrono::steady_clock::now();
        MaintenanceTickSpec spec;
        spec.decay = decay_due;
        spec.evict = evict_due;
        spec.replay = replay_due;
        spec.now = sim_now;
        spec.epoch = maintenance_.ConsumeEpoch();
        if (decay_due) {
          manager_.set_last_decay_time(sim_now);
        }
        if (replay_due) {
          last_replay_time_ = sim_now;
        }
        maintenance_.Request(cache_.ExportMaintenanceCut(), spec);
        maintenance_wall += Since(start);
        if (final_window) {
          publish_tick(/*forced=*/true);
        }
      }
    }

    // Window-boundary metrics: gauges reflect the post-publish state, and
    // one row of the per-window series records every counter/gauge (the
    // exported Chrome-trace counter tracks and the windowed hit-rate /
    // queue-depth / pool-size time series).
    m_requests->Add(static_cast<double>(count));
    m_windows->Increment();
    g_pool_bytes->Set(static_cast<double>(cache_.used_bytes()));
    g_pool_examples->Set(static_cast<double>(cache_.size()));
    g_stage0_entries->Set(config_.stage0.enabled ? static_cast<double>(stage0_.size()) : 0.0);
    g_queue_depth->Set(static_cast<double>(cluster_.PoolInFlight(small_.name) +
                                           cluster_.PoolInFlight(large_.name)));
    g_sim_time->Set(cluster_.now());
    {
      const uint64_t q_now = HnswRerankQueriesTotal();
      const uint64_t c_now = HnswRerankCandidatesTotal();
      m_rerank_queries->Add(static_cast<double>(q_now - rerank_queries_seen));
      m_rerank_candidates->Add(static_cast<double>(c_now - rerank_candidates_seen));
      rerank_queries_seen = q_now;
      rerank_candidates_seen = c_now;
    }
    {
      // Evictions as a counter (store watermark + maintenance batches), so
      // the watchdog's eviction-storm rule sees per-window deltas.
      const uint64_t store_evicted = cache_.evicted_total();
      m_evicted->Add(static_cast<double>(store_evicted - evicted_seen) +
                     static_cast<double>(planned_evictions - planned_seen));
      evicted_seen = store_evicted;
      planned_seen = planned_evictions;
    }
    drain_completions();
    const MetricsWindowSample window_sample =
        hub_.SnapshotWindow(window_index, cluster_.now(), TraceRecorder::Global().NowNs());
    if (watchdog.armed()) {
      for (const WatchdogEvent& event :
           watchdog.OnWindow(window_sample, h_e2e->snapshot(), h_queue->snapshot())) {
        m_anomalies->Increment();
        if (TraceRecorder::tracing_enabled()) {
          TraceEvent anomaly;
          anomaly.category = TraceCategory::kAnomaly;
          anomaly.begin_ns = TraceRecorder::Global().NowNs();
          anomaly.end_ns = anomaly.begin_ns;
          anomaly.arg0 = static_cast<uint64_t>(event.rule);
          anomaly.arg1 = event.window;
          TraceRecorder::Global().Emit(anomaly);
        }
        report.anomalies.push_back(event);
      }
    }

    std::swap(prepared, prepared_next);
  }
  // Watermark eviction is planned with a publish lag (soft watermark during
  // the run), so the last windows' admissions may leave the pool above the
  // trigger with no further boundary to catch it; one synchronous pass
  // restores the hard capacity invariant before Run returns.
  if (config_.cache.cache.capacity_bytes > 0) {
    const auto start = std::chrono::steady_clock::now();
    cache_.EnforceCapacity();
    maintenance_wall += Since(start);
  }
  cluster_.RunUntilIdle();
  const auto wall_end = std::chrono::steady_clock::now();

  // Final drain: whatever finished after the last boundary. Per-boundary
  // drains already moved earlier completions into the report, in the same
  // simulated completion order one end-of-run take would have produced.
  drain_completions();
  report.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  report.prepare_seconds = prepare_wall;
  report.maintenance_seconds = maintenance_wall;
  report.serial_seconds = report.wall_seconds - prepare_wall - maintenance_wall;
  report.requests_per_second =
      report.wall_seconds > 0.0 ? static_cast<double>(report.total_requests) / report.wall_seconds
                                : 0.0;
  report.p50_latency_s = latency.Percentile(50);
  report.p99_latency_s = latency.Percentile(99);
  report.p50_ttft_s = ttft.Percentile(50);
  report.p99_ttft_s = ttft.Percentile(99);
  report.p50_queue_delay_s = queue_delay.Percentile(50);
  report.p99_queue_delay_s = queue_delay.Percentile(99);
  report.mean_quality = quality.mean();
  report.evicted_examples =
      static_cast<size_t>(cache_.evicted_total() - evicted_before) + planned_evictions;
  report.checkpoints_taken = checkpointer_.taken() - checkpoints_before;
  report.checkpoint_p50_ms = run_checkpoint_ms.Percentile(50);
  report.checkpoint_p99_ms = run_checkpoint_ms.Percentile(99);
  report.simd_kernel = simd::KernelLevelName(simd::ActiveKernelLevel());
  report.hnsw_rerank_queries =
      static_cast<size_t>(HnswRerankQueriesTotal() - rerank_queries_before);
  report.hnsw_rerank_candidates =
      static_cast<size_t>(HnswRerankCandidatesTotal() - rerank_candidates_before);
  report.embed_memo_hits = static_cast<size_t>(memo_hits_.load(std::memory_order_relaxed) -
                                               memo_hits_before);
  report.embed_memo_misses = static_cast<size_t>(memo_misses_.load(std::memory_order_relaxed) -
                                                 memo_misses_before);

  // Deterministic tail-exemplar selection: slowest-K completions per batch
  // window (ties broken by request id) plus an optional fixed-rate sample.
  // Everything here keys on simulated latency, request ids, and the window
  // structure — all thread- and lane-count invariant.
  if (config_.tail_slowest_per_window > 0 || config_.tail_sample_every > 0) {
    std::unordered_map<uint64_t, uint64_t> window_of;
    window_of.reserve(report.decisions.size());
    for (size_t i = 0; i < report.decisions.size(); ++i) {
      window_of.emplace(report.decisions[i].request_id, i / window);
    }
    std::map<uint64_t, std::vector<const CompletionRecord*>> by_window;
    for (const CompletionRecord& record : report.completions) {
      const auto it = window_of.find(record.id);
      by_window[it == window_of.end() ? 0 : it->second].push_back(&record);
    }
    std::map<std::pair<uint64_t, uint64_t>, TailExemplar> picked;
    const auto add = [&picked](uint64_t win, const CompletionRecord& record, bool slowest) {
      TailExemplar& exemplar = picked[{win, record.id}];
      exemplar.request_id = record.id;
      exemplar.window = win;
      exemplar.e2e_latency_s = record.E2eLatency();
      exemplar.slowest = exemplar.slowest || slowest;
    };
    for (auto& [win, records] : by_window) {
      const size_t keep = std::min(config_.tail_slowest_per_window, records.size());
      if (keep == 0) {
        continue;
      }
      std::partial_sort(records.begin(), records.begin() + keep, records.end(),
                        [](const CompletionRecord* a, const CompletionRecord* b) {
                          const double la = a->E2eLatency();
                          const double lb = b->E2eLatency();
                          if (la != lb) {
                            return la > lb;
                          }
                          return a->id < b->id;
                        });
      for (size_t i = 0; i < keep; ++i) {
        add(win, *records[i], /*slowest=*/true);
      }
    }
    if (config_.tail_sample_every > 0) {
      for (const CompletionRecord& record : report.completions) {
        if (record.id % config_.tail_sample_every == 0) {
          const auto it = window_of.find(record.id);
          add(it == window_of.end() ? 0 : it->second, record, /*slowest=*/false);
        }
      }
    }
    report.tail_exemplars.reserve(picked.size());
    for (auto& [key, exemplar] : picked) {
      report.tail_exemplars.push_back(exemplar);
    }
  }
  return report;
}

}  // namespace iccache
