#include "src/serving/driver.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/thread_pool.h"
#include "src/embedding/embedder.h"

namespace iccache {

namespace {

std::vector<RouterArmSpec> MakeArms(const ModelProfile& small, const ModelProfile& large) {
  RouterArmSpec small_arm;
  small_arm.model_name = small.name;
  small_arm.uses_examples = true;
  small_arm.normalized_cost =
      large.cost_per_1k_tokens > 0.0 ? small.cost_per_1k_tokens / large.cost_per_1k_tokens : 0.1;

  RouterArmSpec large_arm;
  large_arm.model_name = large.name;
  large_arm.uses_examples = false;
  large_arm.normalized_cost = 1.0;
  return {small_arm, large_arm};
}

RouterConfig SeededRouterConfig(RouterConfig config, uint64_t seed) {
  config.seed = Mix64(seed ^ 0x4073ull);
  return config;
}

ShardedCacheConfig SeededCacheConfig(ShardedCacheConfig config, uint64_t seed) {
  config.cache.seed = Mix64(seed ^ 0xcac4eull);
  return config;
}

}  // namespace

ServingDriver::ServingDriver(DriverConfig config, const ModelCatalog* catalog)
    : config_(config),
      small_(catalog->Get(config.small_model)),
      large_(catalog->Get(config.large_model)),
      embedder_(std::make_shared<HashingEmbedder>()),
      cache_(embedder_, SeededCacheConfig(config.cache, config.seed)),
      proxy_(),
      router_(MakeArms(small_, large_), SeededRouterConfig(config.router, config.seed)),
      generator_(Mix64(config.seed ^ 0x6e4ull)) {
  cluster_.AddPool(small_, config_.small_replicas, config_.server);
  cluster_.AddPool(large_, config_.large_replicas, config_.server);
}

std::vector<Request> ServingDriver::MakeWorkload(const DatasetProfile& profile,
                                                 const TraceConfig& trace, uint64_t seed) {
  ArrivalTrace arrivals(trace);
  QueryGenerator generator(profile, seed);
  std::vector<Request> requests;
  for (double t : arrivals.GenerateArrivals()) {
    Request request = generator.Next();
    request.arrival_time = t;
    requests.push_back(std::move(request));
  }
  return requests;
}

uint64_t ServingDriver::SeedExample(const Request& request, double now) {
  const GenerationResult generation = generator_.Generate(large_, request, {});
  return cache_.Put(request, "[seed-response]", generation.latent_quality, large_.capability,
                    generation.output_tokens, now);
}

ServingDriver::Prepared ServingDriver::PrepareRequest(const Request& request) const {
  Prepared prepared;
  const std::vector<float> embedding = embedder_->Embed(request.text);
  const std::vector<SearchResult> candidates =
      cache_.FindSimilar(embedding, config_.stage1_candidates);

  // Stage 2: proxy-score every stage-1 survivor, then combine.
  struct Scored {
    SelectedExample selected;
    Example example;
    ProxyFeatures features;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (const SearchResult& candidate : candidates) {
    if (candidate.score < config_.stage1_min_similarity) {
      continue;  // results are sorted best-first, but keep the scan simple
    }
    Scored entry;
    if (!cache_.Snapshot(candidate.id, &entry.example)) {
      continue;  // evicted between search and snapshot
    }
    entry.features = MakeProxyFeatures(
        candidate.score, entry.example.response_quality, entry.example.source_capability,
        small_.capability, entry.example.request.task == request.task,
        entry.example.PromptTokens());
    entry.selected.example_id = candidate.id;
    entry.selected.similarity = candidate.score;
    entry.selected.predicted_utility = proxy_.Predict(entry.features);
    if (entry.selected.predicted_utility < config_.utility_threshold) {
      continue;
    }
    scored.push_back(std::move(entry));
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    if (a.selected.predicted_utility != b.selected.predicted_utility) {
      return a.selected.predicted_utility > b.selected.predicted_utility;
    }
    return a.selected.example_id < b.selected.example_id;  // deterministic tie-break
  });

  const int token_budget = static_cast<int>(static_cast<double>(small_.context_window) *
                                            config_.context_budget_fraction);
  int used_tokens = 0;
  bool have_query_near_copy = false;
  Rng view_rng(Mix64(request.id ^ config_.seed ^ 0x71e35ull));
  for (Scored& entry : scored) {
    if (prepared.selected.size() >= config_.max_examples) {
      break;
    }
    const int tokens = entry.example.PromptTokens();
    if (used_tokens + tokens > token_budget) {
      continue;
    }
    // Diversity guard: two candidates this close to the query are near-copies
    // of each other; keep only the best-scored one.
    if (entry.selected.similarity >= config_.diversity_max_similarity) {
      if (have_query_near_copy) {
        continue;
      }
      have_query_near_copy = true;
    }
    used_tokens += tokens;
    ExampleView view;
    view.relevance = StructuralRelevance(request, entry.example.request, view_rng);
    view.quality = entry.example.response_quality;
    view.source_capability = entry.example.source_capability;
    view.tokens = tokens;
    prepared.views.push_back(view);
    prepared.features.push_back(entry.features);
    prepared.selected.push_back(entry.selected);
  }

  if (config_.admit_large_responses) {
    prepared.admission = cache_.PrepareAdmission(request, &embedding);
  }
  return prepared;
}

DriverReport ServingDriver::Run(const std::vector<Request>& requests) {
  DriverReport report;
  report.total_requests = requests.size();
  report.decisions.reserve(requests.size());

  // ClusterSim::AddPool clamps replica counts to >= 1; mirror that here so
  // the utilization denominator matches the pools that actually exist.
  const double pool_capacity = static_cast<double>(
      (std::max(1, config_.small_replicas) + std::max(1, config_.large_replicas)) *
      std::max(1, config_.server.max_batch_size));

  ThreadPool pool(config_.num_threads);
  const size_t window = std::max<size_t>(1, config_.batch_window);
  std::vector<Prepared> prepared(window);
  RunningStat quality;

  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t begin = 0; begin < requests.size(); begin += window) {
    const size_t count = std::min(window, requests.size() - begin);

    // Phase 1: pure per-request preparation, fanned out across the pool.
    const auto phase1_start = std::chrono::steady_clock::now();
    for (size_t slot = 0; slot < count; ++slot) {
      pool.Submit([this, &requests, &prepared, begin, slot] {
        prepared[slot] = PrepareRequest(requests[begin + slot]);
      });
    }
    pool.Wait();
    const auto phase1_end = std::chrono::steady_clock::now();
    report.prepare_seconds += std::chrono::duration<double>(phase1_end - phase1_start).count();

    // Phase 2: stateful pipeline steps, strictly in arrival order.
    for (size_t slot = 0; slot < count; ++slot) {
      const Request& request = requests[begin + slot];
      Prepared& prep = prepared[slot];

      cluster_.AdvanceTo(request.arrival_time);
      const double load =
          static_cast<double>(cluster_.PoolInFlight(small_.name) +
                              cluster_.PoolInFlight(large_.name)) /
          pool_capacity;
      router_.ObserveLoad(load);

      const RouteDecision decision = router_.Route(request, prep.selected);
      const bool offloaded = decision.uses_examples;
      const ModelProfile& model = offloaded ? small_ : large_;
      static const std::vector<ExampleView> kNoViews;
      const GenerationResult generation =
          generator_.Generate(model, request, offloaded ? prep.views : kNoViews);

      ServingRequest serving;
      serving.id = request.id;
      serving.arrival_time = request.arrival_time;
      serving.prompt_tokens = generation.prompt_tokens;
      serving.output_tokens = generation.output_tokens;
      cluster_.Submit(model.name, serving);

      router_.UpdateReward(decision, generation.latent_quality);
      if (offloaded) {
        ++report.offloaded_requests;
        for (size_t e = 0; e < prep.selected.size(); ++e) {
          const SelectedExample& used = prep.selected[e];
          cache_.RecordAccess(used.example_id, request.arrival_time);
          if (generation.latent_quality > 0.5) {
            cache_.RecordOffload(used.example_id, generation.latent_quality);
          }
          // Online proxy feedback: the observed quality of the offloaded
          // response is the helpfulness label for every example that served
          // it (same signal IcCacheService feeds the selector).
          proxy_.Update(prep.features[e], generation.latent_quality);
        }
      } else if (prep.admission.admit && config_.admit_large_responses) {
        const uint64_t admitted = cache_.PutPrepared(
            request, std::move(prep.admission), "[driver-response]", generation.latent_quality,
            large_.capability, generation.output_tokens, request.arrival_time);
        if (admitted != 0) {
          ++report.admitted_examples;
        }
      }

      quality.Add(generation.latent_quality);
      DriverDecision row;
      row.request_id = request.id;
      row.model_name = model.name;
      row.offloaded = offloaded;
      row.num_examples = offloaded ? prep.selected.size() : 0;
      row.latent_quality = generation.latent_quality;
      report.decisions.push_back(std::move(row));
    }
  }
  cluster_.RunUntilIdle();
  const auto wall_end = std::chrono::steady_clock::now();

  report.completions = cluster_.completions();
  report.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
  report.serial_seconds = report.wall_seconds - report.prepare_seconds;
  report.requests_per_second =
      report.wall_seconds > 0.0 ? static_cast<double>(report.total_requests) / report.wall_seconds
                                : 0.0;
  PercentileTracker latency;
  for (const CompletionRecord& record : report.completions) {
    latency.Add(record.E2eLatency());
  }
  report.p50_latency_s = latency.Percentile(50);
  report.p99_latency_s = latency.Percentile(99);
  report.mean_quality = quality.mean();
  return report;
}

}  // namespace iccache
