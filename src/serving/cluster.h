// Multi-model discrete-event serving cluster: replica pools per model,
// least-loaded dispatch inside a pool, and a central event loop. The online
// experiment harnesses interleave arrival processing with policy decisions:
//
//   cluster.AdvanceTo(arrival_time);     // drain events up to the arrival
//   ... policy reads PoolLoad(), decides model, possibly adds IC examples ...
//   cluster.Submit(model, request);
//   ...
//   cluster.RunUntilIdle();              // finish everything
#ifndef SRC_SERVING_CLUSTER_H_
#define SRC_SERVING_CLUSTER_H_

#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/serving/gpu_server.h"

namespace iccache {

class ClusterSim {
 public:
  ClusterSim() = default;

  // Registers a pool of `num_replicas` servers for the model. Total GPU
  // footprint is num_replicas * model.gpus_required.
  void AddPool(const ModelProfile& model, int num_replicas, ServerConfig config = {});

  bool HasPool(const std::string& model_name) const;

  // Submits a request to the named pool at time max(now, request.arrival_time).
  Status Submit(const std::string& model_name, const ServingRequest& request);

  // Processes all events with time <= t, then sets now = t.
  void AdvanceTo(double t);

  // Runs the event loop until no work remains.
  void RunUntilIdle();

  double now() const { return now_; }

  // In-flight requests (queued + running) divided by the pool's batch
  // capacity; > 1 means requests are necessarily queueing.
  double PoolLoad(const std::string& model_name) const;

  size_t PoolInFlight(const std::string& model_name) const;

  int TotalGpus() const;

  // Completions accumulated so far, in completion order.
  const std::vector<CompletionRecord>& completions() const { return completions_; }
  std::vector<CompletionRecord> TakeCompletions();

 private:
  struct Pool {
    ModelProfile model;
    ServerConfig config;
    std::vector<std::unique_ptr<GpuServer>> servers;
  };

  struct Event {
    double time = 0.0;
    GpuServer* server = nullptr;
    bool operator>(const Event& other) const { return time > other.time; }
  };

  void ScheduleServer(GpuServer* server);
  void ProcessEventsUntil(double t);

  std::unordered_map<std::string, Pool> pools_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  std::vector<CompletionRecord> completions_;
  double now_ = 0.0;
};

}  // namespace iccache

#endif  // SRC_SERVING_CLUSTER_H_
