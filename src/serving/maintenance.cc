#include "src/serving/maintenance.h"

#include "src/common/rng.h"
#include "src/obs/trace.h"

namespace iccache {

MaintenanceScheduler::MaintenanceScheduler(const ExampleManager* manager,
                                           MaintenanceSchedulerConfig config)
    : manager_(manager), config_(config) {
  if (config_.background) {
    worker_ = std::thread([this] { WorkerLoop(); });
  }
}

MaintenanceScheduler::~MaintenanceScheduler() {
  if (worker_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    worker_.join();
  }
}

void MaintenanceScheduler::Request(MaintenanceCut cut, const MaintenanceTickSpec& spec) {
  pending_ = true;
  boundaries_pending_ = 0;
  if (!config_.background) {
    // Inline mode: plan right here on the driver thread. Same inputs, same
    // rng derivation, same publish boundary — byte-identical to background.
    TraceSpan span(TraceCategory::kMaintenancePlan);
    span.SetArgs(spec.epoch);
    Rng rng(Mix64(config_.seed ^ Mix64(spec.epoch)));
    inline_plan_ = manager_->PlanMaintenance(cut, spec, rng);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_cut_ = std::move(cut);
    job_spec_ = spec;
    job_ready_ = true;
    plan_ready_ = false;
  }
  work_cv_.notify_one();
}

MaintenancePlan MaintenanceScheduler::Collect(bool* stalled) {
  pending_ = false;
  boundaries_pending_ = 0;
  if (!config_.background) {
    if (stalled != nullptr) {
      *stalled = false;
    }
    return std::move(inline_plan_);
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (stalled != nullptr) {
    *stalled = !plan_ready_;
  }
  done_cv_.wait(lock, [this] { return plan_ready_; });
  plan_ready_ = false;
  return std::move(plan_);
}

void MaintenanceScheduler::WorkerLoop() {
  while (true) {
    MaintenanceCut cut;
    MaintenanceTickSpec spec;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || job_ready_; });
      if (shutdown_) {
        return;
      }
      cut = std::move(job_cut_);
      spec = job_spec_;
      job_ready_ = false;
    }
    // Pure planning against the frozen cut; the tick's private stream keeps
    // it independent of every other RNG in the process.
    TraceSpan span(TraceCategory::kMaintenancePlan);
    span.SetArgs(spec.epoch);
    Rng rng(Mix64(config_.seed ^ Mix64(spec.epoch)));
    MaintenancePlan plan = manager_->PlanMaintenance(cut, spec, rng);
    {
      std::lock_guard<std::mutex> lock(mu_);
      plan_ = std::move(plan);
      plan_ready_ = true;
    }
    done_cv_.notify_all();
  }
}

}  // namespace iccache
