// Small numeric helpers shared across the library: activation functions used by
// the router's load controller (tanh bias, Theorem 4), softmax policies, and
// dense-vector kernels used by the embedding/index substrates.
#ifndef SRC_COMMON_MATHUTIL_H_
#define SRC_COMMON_MATHUTIL_H_

#include <cstddef>
#include <vector>

namespace iccache {

// Logistic sigmoid 1 / (1 + exp(-x)), numerically stable for large |x|.
double Sigmoid(double x);

// log(sum_i exp(x_i)), stable; returns -inf for empty input.
double LogSumExp(const std::vector<double>& xs);

// Softmax with optional temperature (> 0); returns a proper distribution.
std::vector<double> Softmax(const std::vector<double>& logits, double temperature = 1.0);

// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

// Dot product of equal-length vectors.
double Dot(const std::vector<float>& a, const std::vector<float>& b);

// Euclidean norm.
double L2Norm(const std::vector<float>& v);

// Pointer-span variant for callers writing into reused arenas (identical
// arithmetic: same accumulation order as the vector overload).
double L2Norm(const float* v, size_t n);

// Scales v in place to unit L2 norm (no-op on the zero vector).
void NormalizeL2(std::vector<float>& v);

// Pointer-span variant (identical arithmetic to the vector overload).
void NormalizeL2(float* v, size_t n);

// Cosine similarity in [-1, 1]; returns 0 when either vector is zero.
double CosineSimilarity(const std::vector<float>& a, const std::vector<float>& b);

// Squared Euclidean distance.
double SquaredL2Distance(const std::vector<float>& a, const std::vector<float>& b);

// Mean of xs; 0 for empty input.
double Mean(const std::vector<double>& xs);

// Population standard deviation of xs; 0 for fewer than two samples.
double StdDev(const std::vector<double>& xs);

// Pearson correlation coefficient in [-1, 1]; 0 when either side is constant
// or the inputs have mismatched/empty sizes.
double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace iccache

#endif  // SRC_COMMON_MATHUTIL_H_
