// Online statistics used throughout the serving simulator and the IC-Cache
// runtime: Welford running moments, exponential moving averages (the router's
// load signal, the manager's utility decay), percentile tracking for latency
// reporting, and simple histogram / CDF builders for the figure harnesses.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace iccache {

// Numerically stable running mean/variance (Welford).
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance; 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  void Reset();

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponential moving average with a configurable smoothing factor alpha in
// (0, 1]: ema <- alpha * x + (1 - alpha) * ema.
class Ema {
 public:
  explicit Ema(double alpha);

  void Add(double x);
  double value() const { return value_; }
  bool initialized() const { return initialized_; }
  void Reset();

  // Applies a multiplicative decay directly (used for the hourly 0.9 utility
  // decay in the Example Manager, paper section 4.3).
  void Decay(double factor);

  // Exact state restore (snapshot persistence); the initialized flag matters
  // because the first Add() assigns rather than blends.
  void RestoreState(double value, bool initialized) {
    value_ = value;
    initialized_ = initialized;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Retains all samples and answers percentile queries; intended for offline
// experiment reporting, not hot paths.
class PercentileTracker {
 public:
  void Add(double x);
  size_t count() const { return samples_.size(); }
  double mean() const;
  // p in [0, 100]; linear interpolation between order statistics.
  double Percentile(double p) const;
  const std::vector<double>& samples() const { return samples_; }
  void Reset();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Bounded log-bucketed latency histogram: constant memory regardless of run
// length, unlike PercentileTracker which retains every sample. Bucket i spans
// [lo * growth^i, lo * growth^(i+1)); values below `lo` land in a dedicated
// underflow bucket and values at or past the top edge in an overflow bucket,
// while the exact count, sum, min, and max are tracked alongside.
//
// Percentile() resolves the requested rank to a bucket and returns the
// bucket's geometric midpoint, so for in-range values the relative error is
// bounded by sqrt(growth) - 1 (about 4.9% with the default growth of 1.10).
// Ranks that land in the underflow/overflow buckets return the exact tracked
// min/max, and every result is clamped to [min, max]. The defaults cover
// 1 microsecond to roughly 10 hours when samples are in seconds.
class LatencyHistogram {
 public:
  explicit LatencyHistogram(double lo = 1e-6, double growth = 1.10,
                            size_t num_buckets = 256);

  void Add(double x);
  // Sums `other` into this histogram; both must share lo/growth/num_buckets.
  // Returns false (and leaves this histogram untouched) on a geometry
  // mismatch.
  bool Merge(const LatencyHistogram& other);

  // Bucket a value would land in: -1 for underflow, num_buckets() for
  // overflow, otherwise the in-range bucket index.
  int BucketIndex(double x) const;

  // Bucket-wise difference `now - prev`, where `prev` is an earlier snapshot
  // of the same histogram (the per-window delta the SLO watchdog evaluates).
  // Returns `now` unchanged when the geometries differ or `prev` is not a
  // prefix (its count exceeds now's). The delta keeps now's lifetime min/max
  // — exact per-window extremes are not recoverable from bucket counts — so
  // Percentile() on a delta is only approximate for ranks landing in the
  // underflow/overflow buckets.
  static LatencyHistogram Delta(const LatencyHistogram& now,
                                const LatencyHistogram& prev);

  // p in [0, 100]; nearest-rank bucket lookup, geometric-midpoint estimate.
  double Percentile(double p) const;

  size_t count() const { return static_cast<size_t>(count_); }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  size_t num_buckets() const { return buckets_.size(); }
  uint64_t bucket_count(size_t i) const { return buckets_[i]; }
  uint64_t underflow_count() const { return underflow_; }
  uint64_t overflow_count() const { return overflow_; }
  // Edges of bucket i: [BucketLowerEdge(i), BucketUpperEdge(i)).
  double BucketLowerEdge(size_t i) const { return edges_[i]; }
  double BucketUpperEdge(size_t i) const { return edges_[i + 1]; }
  double lo() const { return lo_; }
  double growth() const { return growth_; }

  void Reset();

 private:
  double lo_;
  double growth_;
  std::vector<double> edges_;  // num_buckets + 1 precomputed boundaries
  std::vector<uint64_t> buckets_;
  uint64_t underflow_ = 0;
  uint64_t overflow_ = 0;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-width histogram over [lo, hi) with out-of-range clamping.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_bins);

  void Add(double x);
  size_t count() const { return total_; }
  const std::vector<uint64_t>& bins() const { return bins_; }
  double BinCenter(size_t i) const;
  // Fraction of mass in bin i; 0 when empty.
  double Density(size_t i) const;
  // Renders "center density" rows, one per bin, for the figure harnesses.
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> bins_;
  uint64_t total_ = 0;
};

// Empirical CDF evaluation over a sample set.
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  // P(X <= x).
  double At(double x) const;
  // Inverse CDF (quantile), q in [0, 1].
  double Quantile(double q) const;
  size_t count() const { return samples_.size(); }

 private:
  std::vector<double> samples_;
};

}  // namespace iccache

#endif  // SRC_COMMON_STATS_H_
