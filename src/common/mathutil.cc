#include "src/common/mathutil.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace iccache {

double Sigmoid(double x) {
  if (x >= 0.0) {
    const double z = std::exp(-x);
    return 1.0 / (1.0 + z);
  }
  const double z = std::exp(x);
  return z / (1.0 + z);
}

double LogSumExp(const std::vector<double>& xs) {
  if (xs.empty()) {
    return -std::numeric_limits<double>::infinity();
  }
  const double max_x = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(max_x)) {
    return max_x;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += std::exp(x - max_x);
  }
  return max_x + std::log(sum);
}

std::vector<double> Softmax(const std::vector<double>& logits, double temperature) {
  std::vector<double> probs(logits.size(), 0.0);
  if (logits.empty()) {
    return probs;
  }
  const double t = std::max(temperature, 1e-9);
  std::vector<double> scaled(logits.size());
  for (size_t i = 0; i < logits.size(); ++i) {
    scaled[i] = logits[i] / t;
  }
  const double lse = LogSumExp(scaled);
  for (size_t i = 0; i < logits.size(); ++i) {
    probs[i] = std::exp(scaled[i] - lse);
  }
  return probs;
}

double Clamp(double x, double lo, double hi) { return std::min(hi, std::max(lo, x)); }

double Dot(const std::vector<float>& a, const std::vector<float>& b) {
  const size_t n = std::min(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return sum;
}

double L2Norm(const std::vector<float>& v) { return std::sqrt(Dot(v, v)); }

double L2Norm(const float* v, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += static_cast<double>(v[i]) * static_cast<double>(v[i]);
  }
  return std::sqrt(sum);
}

void NormalizeL2(std::vector<float>& v) {
  const double norm = L2Norm(v);
  if (norm <= 0.0) {
    return;
  }
  const float inv = static_cast<float>(1.0 / norm);
  for (auto& x : v) {
    x *= inv;
  }
}

void NormalizeL2(float* v, size_t n) {
  const double norm = L2Norm(v, n);
  if (norm <= 0.0) {
    return;
  }
  const float inv = static_cast<float>(1.0 / norm);
  for (size_t i = 0; i < n; ++i) {
    v[i] *= inv;
  }
}

double CosineSimilarity(const std::vector<float>& a, const std::vector<float>& b) {
  const double na = L2Norm(a);
  const double nb = L2Norm(b);
  if (na <= 0.0 || nb <= 0.0) {
    return 0.0;
  }
  return Clamp(Dot(a, b) / (na * nb), -1.0, 1.0);
}

double SquaredL2Distance(const std::vector<float>& a, const std::vector<float>& b) {
  const size_t n = std::min(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    sum += d * d;
  }
  return sum;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double mean = Mean(xs);
  double sum_sq = 0.0;
  for (double x : xs) {
    sum_sq += (x - mean) * (x - mean);
  }
  return std::sqrt(sum_sq / static_cast<double>(xs.size()));
}

double PearsonCorrelation(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    return 0.0;
  }
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return 0.0;
  }
  return Clamp(sxy / std::sqrt(sxx * syy), -1.0, 1.0);
}

}  // namespace iccache
