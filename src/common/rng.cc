#include "src/common/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace iccache {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t value) {
  uint64_t state = value;
  return SplitMix64(state);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) {
    s = SplitMix64(state);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xa5a5a5a5a5a5a5a5ull); }

RngState Rng::SaveState() const {
  RngState state;
  for (size_t i = 0; i < 4; ++i) {
    state.s[i] = s_[i];
  }
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (size_t i = 0; i < 4; ++i) {
    s_[i] = state.s[i];
  }
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  // Lemire's nearly-divisionless bounded sampling.
  if (n == 0) {
    return 0;
  }
  __uint128_t m = static_cast<__uint128_t>(NextU64()) * n;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < n) {
    const uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(NextU64()) * n;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(UniformInt(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) { return mean + stddev * Normal(); }

double Rng::LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

double Rng::Exponential(double rate) {
  double u = 0.0;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

double Rng::Gamma(double shape, double scale) {
  if (shape < 1.0) {
    // Boost shape by one and correct with a uniform power (Marsaglia-Tsang).
    const double u = std::max(Uniform(), 1e-300);
    return Gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v * scale;
    }
    if (u > 1e-300 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

double Rng::Beta(double alpha, double beta) {
  const double x = Gamma(alpha, 1.0);
  const double y = Gamma(beta, 1.0);
  const double sum = x + y;
  if (sum <= 0.0) {
    return 0.5;
  }
  return x / sum;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return Uniform() < p;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    const double sample = Normal(mean, std::sqrt(mean));
    return std::max<int64_t>(0, static_cast<int64_t>(std::llround(sample)));
  }
  const double limit = std::exp(-mean);
  int64_t count = -1;
  double product = 1.0;
  do {
    ++count;
    product *= Uniform();
  } while (product > limit);
  return count;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    total += std::max(0.0, w);
  }
  if (total <= 0.0 || weights.empty()) {
    return weights.empty() ? 0 : weights.size() - 1;
  }
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(0.0, weights[i]);
    if (target <= 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  for (size_t i = n; i > 1; --i) {
    const size_t j = UniformInt(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  k = std::min(k, n);
  std::vector<size_t> chosen;
  chosen.reserve(k);
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates.
    std::vector<size_t> perm = Permutation(n);
    chosen.assign(perm.begin(), perm.begin() + static_cast<long>(k));
    return chosen;
  }
  std::unordered_set<size_t> seen;
  seen.reserve(k * 2);
  while (chosen.size() < k) {
    const size_t candidate = UniformInt(n);
    if (seen.insert(candidate).second) {
      chosen.push_back(candidate);
    }
  }
  return chosen;
}

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  cdf_.resize(n);
  double total = 0.0;
  for (size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (auto& value : cdf_) {
    value /= total;
  }
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.Uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t k) const {
  if (k >= cdf_.size()) {
    return 0.0;
  }
  if (k == 0) {
    return cdf_[0];
  }
  return cdf_[k] - cdf_[k - 1];
}

}  // namespace iccache
