#include "src/common/binio.h"

#include <cstring>

namespace iccache {

namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
      }
      entries[i] = crc;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ Table().entries[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

void ByteWriter::PutU8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFull));
  }
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void ByteWriter::PutFloat(float v) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v), "IEEE-754 float expected");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void ByteWriter::PutString(const std::string& s) {
  PutU64(s.size());
  bytes_.append(s);
}

void ByteWriter::PutFloats(const std::vector<float>& v) {
  PutU64(v.size());
  for (float f : v) {
    PutFloat(f);
  }
}

void ByteWriter::PutBytes(const void* data, size_t size) {
  bytes_.append(static_cast<const char*>(data), size);
}

const uint8_t* ByteReader::Take(size_t n) {
  if (!ok_ || n > size_ - pos_) {
    ok_ = false;
    return nullptr;
  }
  const uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

uint8_t ByteReader::GetU8() {
  const uint8_t* p = Take(1);
  return p == nullptr ? 0 : *p;
}

uint32_t ByteReader::GetU32() {
  const uint8_t* p = Take(4);
  if (p == nullptr) {
    return 0;
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

uint64_t ByteReader::GetU64() {
  const uint8_t* p = Take(8);
  if (p == nullptr) {
    return 0;
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

double ByteReader::GetDouble() {
  const uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

float ByteReader::GetFloat() {
  const uint32_t bits = GetU32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0f;
}

std::string ByteReader::GetString() {
  const uint64_t n = GetU64();
  if (!ok_ || n > size_ - pos_) {
    ok_ = false;
    return {};
  }
  const uint8_t* p = Take(static_cast<size_t>(n));
  return p == nullptr ? std::string() : std::string(reinterpret_cast<const char*>(p),
                                                    static_cast<size_t>(n));
}

bool ByteReader::GetBytes(void* dst, size_t size) {
  const uint8_t* p = Take(size);
  if (p == nullptr) {
    return false;
  }
  std::memcpy(dst, p, size);
  return true;
}

std::vector<float> ByteReader::GetFloats() {
  const uint64_t n = GetU64();
  if (!ok_ || n > (size_ - pos_) / 4) {
    ok_ = false;
    return {};
  }
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& f : v) {
    f = GetFloat();
  }
  return v;
}

}  // namespace iccache
