#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace iccache {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

Ema::Ema(double alpha) : alpha_(std::min(1.0, std::max(1e-9, alpha))) {}

void Ema::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
    return;
  }
  value_ = alpha_ * x + (1.0 - alpha_) * value_;
}

void Ema::Reset() {
  value_ = 0.0;
  initialized_ = false;
}

void Ema::Decay(double factor) { value_ *= factor; }

void PercentileTracker::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double PercentileTracker::mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : samples_) {
    sum += x;
  }
  return sum / static_cast<double>(samples_.size());
}

double PercentileTracker::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double clamped = std::min(100.0, std::max(0.0, p));
  const double rank = clamped / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  if (lo == hi) {
    return samples_[lo];
  }
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void PercentileTracker::Reset() {
  samples_.clear();
  sorted_ = false;
}

LatencyHistogram::LatencyHistogram(double lo, double growth, size_t num_buckets)
    : lo_(std::max(1e-300, lo)),
      growth_(std::max(1.0 + 1e-9, growth)),
      buckets_(std::max<size_t>(1, num_buckets), 0) {
  edges_.reserve(buckets_.size() + 1);
  double edge = lo_;
  for (size_t i = 0; i <= buckets_.size(); ++i) {
    edges_.push_back(edge);
    edge *= growth_;
  }
}

void LatencyHistogram::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const int bin = BucketIndex(x);
  if (bin < 0) {
    ++underflow_;
  } else if (static_cast<size_t>(bin) >= buckets_.size()) {
    ++overflow_;
  } else {
    ++buckets_[bin];
  }
}

int LatencyHistogram::BucketIndex(double x) const {
  if (x < edges_.front()) {
    return -1;
  }
  if (x >= edges_.back()) {
    return static_cast<int>(buckets_.size());
  }
  // log() lands on the right bucket up to floating-point rounding at the
  // boundaries; the probes below repair an off-by-one either way.
  size_t bin = static_cast<size_t>(std::log(x / lo_) / std::log(growth_));
  bin = std::min(bin, buckets_.size() - 1);
  while (bin > 0 && x < edges_[bin]) {
    --bin;
  }
  while (bin + 1 < buckets_.size() && x >= edges_[bin + 1]) {
    ++bin;
  }
  return static_cast<int>(bin);
}

bool LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.lo_ != lo_ || other.growth_ != growth_ ||
      other.buckets_.size() != buckets_.size()) {
    return false;
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
  return true;
}

LatencyHistogram LatencyHistogram::Delta(const LatencyHistogram& now,
                                         const LatencyHistogram& prev) {
  if (prev.lo_ != now.lo_ || prev.growth_ != now.growth_ ||
      prev.buckets_.size() != now.buckets_.size() || prev.count_ > now.count_) {
    return now;
  }
  LatencyHistogram delta = now;
  for (size_t i = 0; i < delta.buckets_.size(); ++i) {
    delta.buckets_[i] -= prev.buckets_[i];
  }
  delta.underflow_ -= prev.underflow_;
  delta.overflow_ -= prev.overflow_;
  delta.count_ -= prev.count_;
  delta.sum_ -= prev.sum_;
  if (delta.count_ == 0) {
    delta.sum_ = 0.0;
    delta.min_ = 0.0;
    delta.max_ = 0.0;
  }
  return delta;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  const double clamped = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: the smallest bucket whose cumulative count reaches `rank`.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(clamped / 100.0 * static_cast<double>(count_))));
  uint64_t cumulative = underflow_;
  if (rank <= cumulative) {
    return min_;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (rank <= cumulative) {
      const double midpoint = std::sqrt(edges_[i] * edges_[i + 1]);
      return std::min(max_, std::max(min_, midpoint));
    }
  }
  return max_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  underflow_ = 0;
  overflow_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

Histogram::Histogram(double lo, double hi, size_t num_bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(std::max<size_t>(1, num_bins))),
      bins_(std::max<size_t>(1, num_bins), 0) {}

void Histogram::Add(double x) {
  double clamped = std::min(std::nextafter(hi_, lo_), std::max(lo_, x));
  size_t bin = static_cast<size_t>((clamped - lo_) / width_);
  bin = std::min(bin, bins_.size() - 1);
  ++bins_[bin];
  ++total_;
}

double Histogram::BinCenter(size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::Density(size_t i) const {
  if (total_ == 0 || i >= bins_.size()) {
    return 0.0;
  }
  return static_cast<double>(bins_[i]) / static_cast<double>(total_);
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < bins_.size(); ++i) {
    out << BinCenter(i) << " " << Density(i) << "\n";
  }
  return out.str();
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end());
}

double EmpiricalCdf::At(double x) const {
  if (samples_.empty()) {
    return 0.0;
  }
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) / static_cast<double>(samples_.size());
}

double EmpiricalCdf::Quantile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  const double clamped = std::min(1.0, std::max(0.0, q));
  const double rank = clamped * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  if (lo == hi) {
    return samples_[lo];
  }
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace iccache
