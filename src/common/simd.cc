#include "src/common/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define ICCACHE_SIMD_X86 1
#include <immintrin.h>
#endif

namespace iccache {
namespace simd {

// --- Scalar reference kernels ----------------------------------------------

double ScalarDot(const float* a, const float* b, size_t n) {
  // 4-accumulator unroll: breaks the serial dependency chain so the
  // auto-vectorizer (and out-of-order hardware) can overlap the multiplies.
  // This is byte-for-byte the historical hnsw.cc DotFast kernel.
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  for (; i < n; ++i) {
    acc0 += a[i] * b[i];
  }
  return static_cast<double>((acc0 + acc1) + (acc2 + acc3));
}

double ScalarL2Sq(const float* a, const float* b, size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    acc0 += d * d;
  }
  return static_cast<double>((acc0 + acc1) + (acc2 + acc3));
}

int32_t ScalarDotI8(const int8_t* a, const int8_t* b, size_t n) {
  int32_t acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return acc;
}

double ScalarDotF32I8(const float* a, const int8_t* b, size_t n) {
  float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += a[i] * static_cast<float>(b[i]);
    acc1 += a[i + 1] * static_cast<float>(b[i + 1]);
    acc2 += a[i + 2] * static_cast<float>(b[i + 2]);
    acc3 += a[i + 3] * static_cast<float>(b[i + 3]);
  }
  for (; i < n; ++i) {
    acc0 += a[i] * static_cast<float>(b[i]);
  }
  return static_cast<double>((acc0 + acc1) + (acc2 + acc3));
}

// --- AVX2 + FMA kernels -----------------------------------------------------
//
// Compiled with per-function target attributes so the translation unit builds
// on any x86-64 toolchain without global -mavx2 flags; the dispatcher only
// calls them after cpuid reports both features.

#ifdef ICCACHE_SIMD_X86

namespace {

__attribute__((target("avx2"))) inline float HSum256(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

__attribute__((target("avx2"))) inline int32_t HSum256i(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  return _mm_cvtsi128_si32(s);
}

__attribute__((target("avx2,fma"))) double DotAvx2(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8), acc1);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc0);
  }
  float total = HSum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    total += a[i] * b[i];
  }
  return static_cast<double>(total);
}

__attribute__((target("avx2,fma"))) double L2SqAvx2(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    const __m256 d1 = _mm256_sub_ps(_mm256_loadu_ps(a + i + 8), _mm256_loadu_ps(b + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    acc0 = _mm256_fmadd_ps(d, d, acc0);
  }
  float total = HSum256(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    const float d = a[i] - b[i];
    total += d * d;
  }
  return static_cast<double>(total);
}

__attribute__((target("avx2"))) int32_t DotI8Avx2(const int8_t* a, const int8_t* b, size_t n) {
  // Widen int8 -> int16 and use the pairwise multiply-add: every product is
  // exact in int16 x int16 -> int32, so this path is bit-identical to the
  // scalar reference (determinism relies on that for graph traversal).
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i a_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(va));
    const __m256i a_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(va, 1));
    const __m256i b_lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(vb));
    const __m256i b_hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(vb, 1));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_lo, b_lo));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a_hi, b_hi));
  }
  for (; i + 16 <= n; i += 16) {
    const __m256i a16 =
        _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i)));
    const __m256i b16 =
        _mm256_cvtepi8_epi16(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i)));
    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(a16, b16));
  }
  int32_t total = HSum256i(acc);
  for (; i < n; ++i) {
    total += static_cast<int32_t>(a[i]) * static_cast<int32_t>(b[i]);
  }
  return total;
}

__attribute__((target("avx2,fma"))) double DotF32I8Avx2(const float* a, const int8_t* b,
                                                        size_t n) {
  __m256 acc = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i q8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + i));
    const __m256 qf = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q8));
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), qf, acc);
  }
  float total = HSum256(acc);
  for (; i < n; ++i) {
    total += a[i] * static_cast<float>(b[i]);
  }
  return static_cast<double>(total);
}

}  // namespace

#endif  // ICCACHE_SIMD_X86

// --- Dispatch ----------------------------------------------------------------

KernelLevel ResolveKernelLevel(bool cpu_has_avx2_fma, bool force_scalar) {
  if (force_scalar || !cpu_has_avx2_fma) {
    return KernelLevel::kScalar;
  }
  return KernelLevel::kAvx2;
}

namespace {

bool ForceScalarFromEnv() {
  const char* value = std::getenv("ICCACHE_FORCE_SCALAR");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

bool CpuHasAvx2Fma() {
#ifdef ICCACHE_SIMD_X86
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

struct Dispatch {
  KernelLevel level;
  bool forced_scalar;
  double (*dot)(const float*, const float*, size_t);
  double (*l2sq)(const float*, const float*, size_t);
  int32_t (*dot_i8)(const int8_t*, const int8_t*, size_t);
  double (*dot_f32_i8)(const float*, const int8_t*, size_t);
};

Dispatch MakeDispatch() {
  Dispatch d;
  d.forced_scalar = ForceScalarFromEnv();
  d.level = ResolveKernelLevel(CpuHasAvx2Fma(), d.forced_scalar);
#ifdef ICCACHE_SIMD_X86
  if (d.level == KernelLevel::kAvx2) {
    d.dot = &DotAvx2;
    d.l2sq = &L2SqAvx2;
    d.dot_i8 = &DotI8Avx2;
    d.dot_f32_i8 = &DotF32I8Avx2;
    return d;
  }
#endif
  d.dot = &ScalarDot;
  d.l2sq = &ScalarL2Sq;
  d.dot_i8 = &ScalarDotI8;
  d.dot_f32_i8 = &ScalarDotF32I8;
  return d;
}

// Resolved once (thread-safe magic static); constant for the process life.
const Dispatch& GetDispatch() {
  static const Dispatch dispatch = MakeDispatch();
  return dispatch;
}

}  // namespace

KernelLevel ActiveKernelLevel() { return GetDispatch().level; }

bool ScalarForced() { return GetDispatch().forced_scalar; }

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kAvx2:
      return "avx2";
    case KernelLevel::kScalar:
    default:
      return "scalar";
  }
}

double Dot(const float* a, const float* b, size_t n) { return GetDispatch().dot(a, b, n); }

double L2Sq(const float* a, const float* b, size_t n) { return GetDispatch().l2sq(a, b, n); }

int32_t DotI8(const int8_t* a, const int8_t* b, size_t n) {
  return GetDispatch().dot_i8(a, b, n);
}

double DotF32I8(const float* a, const int8_t* b, size_t n) {
  return GetDispatch().dot_f32_i8(a, b, n);
}

double Cosine(const float* a, const float* b, size_t n) {
  const double na = Dot(a, a, n);
  const double nb = Dot(b, b, n);
  if (na <= 0.0 || nb <= 0.0) {
    return 0.0;
  }
  const double cosine = Dot(a, b, n) / std::sqrt(na * nb);
  return std::min(1.0, std::max(-1.0, cosine));
}

void QuantizeI8(const float* src, size_t n, int8_t* dst, float* scale) {
  float max_abs = 0.0f;
  for (size_t i = 0; i < n; ++i) {
    max_abs = std::max(max_abs, std::fabs(src[i]));
  }
  if (max_abs <= 0.0f) {
    std::fill(dst, dst + n, static_cast<int8_t>(0));
    *scale = 0.0f;
    return;
  }
  const float s = max_abs / 127.0f;
  const float inv = 127.0f / max_abs;
  for (size_t i = 0; i < n; ++i) {
    // lround ties away from zero; any consistent rounding works, it only has
    // to be the SAME everywhere (quantization runs on one path, unvectorized).
    const long q = std::lround(src[i] * inv);
    dst[i] = static_cast<int8_t>(std::min(127l, std::max(-127l, q)));
  }
  *scale = s;
}

void DequantizeI8(const int8_t* src, size_t n, float scale, float* dst) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<float>(src[i]) * scale;
  }
}

}  // namespace simd
}  // namespace iccache
