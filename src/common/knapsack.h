// 0/1 knapsack solvers backing the Example Manager's cache-eviction decision
// (paper section 4.3): each cached example is an item whose weight is its
// plaintext size and whose value is the efficiency gain (offloads enabled).
//
// Two solvers are provided: an exact dynamic program for modest capacities and
// a greedy value-density heuristic for very large caches, selected
// automatically by SolveKnapsack based on a work bound.
#ifndef SRC_COMMON_KNAPSACK_H_
#define SRC_COMMON_KNAPSACK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iccache {

struct KnapsackItem {
  int64_t weight = 0;  // must be >= 0
  double value = 0.0;  // negative values are never selected
};

struct KnapsackSolution {
  // Indices of selected items in ascending order.
  std::vector<size_t> selected;
  double total_value = 0.0;
  int64_t total_weight = 0;
  bool exact = false;  // true when the DP (optimal) path was used
};

// Exact 0/1 knapsack via dynamic programming over capacity. O(n * capacity)
// time and O(capacity) value memory plus O(n * capacity) bits for traceback.
KnapsackSolution SolveKnapsackExact(const std::vector<KnapsackItem>& items, int64_t capacity);

// Greedy by value density (value / weight); zero-weight positive-value items
// are always taken. Not optimal but a (1 - epsilon) approximation in practice
// for the long-tailed cache-size distributions seen here.
KnapsackSolution SolveKnapsackGreedy(const std::vector<KnapsackItem>& items, int64_t capacity);

// Picks the exact DP when n * capacity <= max_dp_work, otherwise the greedy
// heuristic. This mirrors the paper's "solved efficiently, runs periodically
// in the background" framing.
KnapsackSolution SolveKnapsack(const std::vector<KnapsackItem>& items, int64_t capacity,
                               int64_t max_dp_work = 64LL << 20);

}  // namespace iccache

#endif  // SRC_COMMON_KNAPSACK_H_
