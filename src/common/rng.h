// Deterministic pseudo-random number generation and the sampling distributions
// used across the IC-Cache simulators.
//
// Every stochastic component in this repository draws from an explicitly seeded
// Rng so that experiments are reproducible run-to-run. The generator is
// xoshiro256** seeded via splitmix64, which is fast, high quality, and easy to
// fork into independent streams.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace iccache {

// splitmix64 step; used for seeding and for cheap stateless hashing.
uint64_t SplitMix64(uint64_t& state);

// Stateless 64-bit mix of a single value (useful for hashing ids to seeds).
uint64_t Mix64(uint64_t value);

// Complete generator state, exposed so persisted components (snapshot
// subsystem) can resume their random streams exactly where they stopped.
// Includes the Box-Muller cache: dropping it would shift every subsequent
// Normal() draw by one.
struct RngState {
  std::array<uint64_t, 4> s{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

// xoshiro256** PRNG. Not thread-safe; fork one per thread via Fork().
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Returns a uniformly distributed 64-bit value.
  uint64_t NextU64();

  // Returns a new generator whose stream is independent of this one.
  Rng Fork();

  // Uniform double in [0, 1).
  double Uniform();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller (cached second value).
  double Normal();

  // Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  // Lognormal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  // Exponential with the given rate (lambda). Requires rate > 0.
  double Exponential(double rate);

  // Gamma(shape, scale) via Marsaglia-Tsang; shape > 0, scale > 0.
  double Gamma(double shape, double scale);

  // Beta(alpha, beta) via two Gamma draws; both parameters > 0.
  double Beta(double alpha, double beta);

  // Bernoulli trial with success probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  // Poisson with the given mean (Knuth for small mean, normal approx above 64).
  int64_t Poisson(double mean);

  // Samples an index proportional to the (non-negative) weights. Returns
  // weights.size() - 1 on degenerate all-zero input... callers treat a uniform
  // fallback as acceptable in that case.
  size_t Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle of indices [0, n); returns the permuted index vector.
  std::vector<size_t> Permutation(size_t n);

  // Samples k distinct indices from [0, n) (k <= n) in O(k) expected time.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  // Exact stream save/restore (snapshot persistence).
  RngState SaveState() const;
  void RestoreState(const RngState& state);

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

// Zipf(s) sampler over ranks {0, ..., n-1}: P(k) proportional to 1/(k+1)^s.
// Precomputes the CDF once; sampling is O(log n).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  size_t Sample(Rng& rng) const;

  size_t size() const { return cdf_.size(); }

  // Probability mass of rank k.
  double Pmf(size_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace iccache

#endif  // SRC_COMMON_RNG_H_
