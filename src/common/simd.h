// Runtime-dispatched SIMD distance kernels — the one implementation every
// stage-1 retrieval backend (FlatIndex, KMeansIndex, HnswIndex), the K-Means
// clusterer, and stage-2 diversity scoring share.
//
// Dispatch model: the kernel level is resolved ONCE, the first time any
// dispatched kernel (or ActiveKernelLevel) is called, and never changes for
// the lifetime of the process. On x86-64 the AVX2+FMA path is selected when
// the CPU reports both features; everywhere else (or when the
// ICCACHE_FORCE_SCALAR environment variable is set to anything but "0"/"")
// the portable scalar path runs. A fixed per-process choice is what keeps
// the serving driver's determinism contract intact: every thread, lane, and
// restore-then-serve replay inside one process computes bit-identical
// similarities. Scores are NOT bit-identical across *differently dispatched*
// processes — the AVX2 kernels accumulate in 8 float lanes with FMA while
// the scalar reference uses a 4-accumulator unroll — so cross-process
// comparisons must either force a common level or allow the documented
// tolerance below. Integer kernels (DotI8) are exact on every path.
//
// Accuracy contract (see tests/common_simd_test.cc):
//   Dot / L2Sq / DotF32I8 — dispatched vs scalar agree within a relative
//     error of 1e-5 (plus 1e-6 absolute slack near zero) for |x| <= 1 inputs
//     at dims up to a few thousand; both are float-accumulated.
//   DotI8 — bit-exact on every path (pure int32 arithmetic).
//   QuantizeI8 — symmetric per-vector scheme: scale = max|x| / 127, values
//     rounded to the nearest int8 in [-127, 127]; element-wise dequantization
//     error is bounded by scale / 2. The zero vector quantizes to scale 0.
//
// mathutil::Dot (double accumulation) intentionally stays separate: it backs
// L2Norm / NormalizeL2 / CosineSimilarity and the numeric tests that pin its
// exact values. Hot retrieval paths use the kernels here instead.
#ifndef SRC_COMMON_SIMD_H_
#define SRC_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace iccache {
namespace simd {

enum class KernelLevel : int {
  kScalar = 0,
  kAvx2 = 1,  // AVX2 + FMA
};

// The per-process kernel choice (resolved once, then constant). Thread-safe.
KernelLevel ActiveKernelLevel();

// "scalar" | "avx2".
const char* KernelLevelName(KernelLevel level);

// True when ICCACHE_FORCE_SCALAR suppressed an available AVX2 path (CI/TSan
// machines use this to keep runs comparable across heterogeneous hardware).
bool ScalarForced();

// --- Dispatched kernels (all accept unaligned pointers, any n >= 0) --------

// Inner product of two float vectors, float-accumulated.
double Dot(const float* a, const float* b, size_t n);

// Squared Euclidean distance of two float vectors, float-accumulated.
double L2Sq(const float* a, const float* b, size_t n);

// Exact int32 inner product of two int8 vectors. Safe for n up to ~2^17
// (worst case |sum| = n * 127^2 must fit int32); retrieval dims are O(100).
int32_t DotI8(const int8_t* a, const int8_t* b, size_t n);

// Asymmetric inner product: full-precision floats against an int8-quantized
// vector (the caller applies the vector's scale). This is the exact-float
// re-rank kernel: the query side never loses precision to quantization.
double DotF32I8(const float* a, const int8_t* b, size_t n);

// Cosine similarity in [-1, 1] composed from the dispatched Dot; returns 0
// when either vector has zero norm. Matches mathutil::CosineSimilarity
// semantics but float-accumulated (stage-2 diversity scoring hot path).
double Cosine(const float* a, const float* b, size_t n);

// --- Symmetric int8 scalar quantization -------------------------------------

// Quantizes n floats to int8 with scale = max|src| / 127 (0 for the zero
// vector): dst[i] = round(src[i] / scale) clamped to [-127, 127].
void QuantizeI8(const float* src, size_t n, int8_t* dst, float* scale);

// Inverse map: dst[i] = src[i] * scale.
void DequantizeI8(const int8_t* src, size_t n, float scale, float* dst);

// --- Scalar reference implementations ---------------------------------------
//
// Always available regardless of dispatch; the kernel correctness suite
// compares the dispatched forms against these. ScalarDot is the exact
// 4-accumulator unroll the pre-SIMD HNSW hot loop used (hnsw.cc DotFast), so
// scalar-dispatched processes reproduce its historical similarities.
double ScalarDot(const float* a, const float* b, size_t n);
double ScalarL2Sq(const float* a, const float* b, size_t n);
int32_t ScalarDotI8(const int8_t* a, const int8_t* b, size_t n);
double ScalarDotF32I8(const float* a, const int8_t* b, size_t n);

// Internal dispatch resolver, exposed for tests: the level the process WOULD
// pick given cpu support and the force-scalar override.
KernelLevel ResolveKernelLevel(bool cpu_has_avx2_fma, bool force_scalar);

}  // namespace simd
}  // namespace iccache

#endif  // SRC_COMMON_SIMD_H_
