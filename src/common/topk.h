// Bounded top-k selection used by the vector indexes and the example selector:
// keeps the k items with the largest scores seen so far in O(log k) per push.
#ifndef SRC_COMMON_TOPK_H_
#define SRC_COMMON_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <queue>
#include <utility>
#include <vector>

namespace iccache {

template <typename Payload>
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}

  // Offers an item; retained only if it ranks among the k best scores.
  void Push(double score, Payload payload) {
    if (k_ == 0) {
      return;
    }
    if (heap_.size() < k_) {
      heap_.emplace(score, std::move(payload));
      return;
    }
    if (score > heap_.top().first) {
      heap_.pop();
      heap_.emplace(score, std::move(payload));
    }
  }

  size_t size() const { return heap_.size(); }

  // Smallest retained score; only meaningful when size() == k.
  double WorstScore() const { return heap_.empty() ? 0.0 : heap_.top().first; }

  bool Full() const { return heap_.size() >= k_; }

  // Drains the heap and returns (score, payload) pairs sorted best-first.
  std::vector<std::pair<double, Payload>> TakeSortedDescending() {
    std::vector<std::pair<double, Payload>> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

 private:
  struct MinFirst {
    bool operator()(const std::pair<double, Payload>& a,
                    const std::pair<double, Payload>& b) const {
      return a.first > b.first;
    }
  };

  size_t k_;
  std::priority_queue<std::pair<double, Payload>, std::vector<std::pair<double, Payload>>,
                      MinFirst>
      heap_;
};

}  // namespace iccache

#endif  // SRC_COMMON_TOPK_H_
