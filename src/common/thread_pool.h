// Fixed-size worker pool used by the benchmark harnesses to parallelize
// independent experiment sweeps (e.g., one dataset per worker).
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace iccache {

// Join point for a SUBSET of pool tasks. ThreadPool::Wait drains the whole
// queue; a pipelined caller that keeps two task families in flight at once
// (e.g. the serving driver's commit lanes overlapping the next window's
// preparation) attaches a WaitGroup to each family and joins them
// independently: Add before submitting, Done at the end of each task, Wait
// to block until that family alone has finished.
class WaitGroup {
 public:
  void Add(size_t n = 1);
  void Done();
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable done_;
  size_t pending_ = 0;
};

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; tasks must not throw.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::queue<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace iccache

#endif  // SRC_COMMON_THREAD_POOL_H_
