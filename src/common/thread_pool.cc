#include "src/common/thread_pool.h"

#include <algorithm>

namespace iccache {

void WaitGroup::Add(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  pending_ += n;
}

void WaitGroup::Done() {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_ > 0 && --pending_ == 0) {
    done_.notify_all();
  }
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(1, num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // shutdown with drained queue
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) {
        all_done_.notify_all();
      }
    }
  }
}

}  // namespace iccache
