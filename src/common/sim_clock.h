// Virtual time for the discrete-event serving simulator and the IC-Cache
// runtime's time-based policies (EMA decay ticks, off-peak replay windows).
// Components take a Clock& so tests and simulations can drive time manually.
#ifndef SRC_COMMON_SIM_CLOCK_H_
#define SRC_COMMON_SIM_CLOCK_H_

#include <chrono>

namespace iccache {

class Clock {
 public:
  virtual ~Clock() = default;
  // Seconds since an arbitrary epoch.
  virtual double Now() const = 0;
};

// Manually advanced clock; the unit is seconds of simulated time.
class SimClock : public Clock {
 public:
  explicit SimClock(double start = 0.0) : now_(start) {}

  double Now() const override { return now_; }

  void AdvanceTo(double t) {
    if (t > now_) {
      now_ = t;
    }
  }

  void AdvanceBy(double dt) {
    if (dt > 0.0) {
      now_ += dt;
    }
  }

 private:
  double now_;
};

// Wall-clock implementation for the example binaries.
class SystemClock : public Clock {
 public:
  double Now() const override {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(now).count();
  }
};

}  // namespace iccache

#endif  // SRC_COMMON_SIM_CLOCK_H_
