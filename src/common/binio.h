// Little-endian binary encoding primitives shared by everything that
// serializes state to bytes (the src/persist snapshot subsystem, the HNSW
// native graph format). Deliberately tiny: fixed-width integers, IEEE
// doubles/floats, length-prefixed strings and arrays — no varints, no
// reflection — so a format stays readable from a hex dump and stable across
// builds.
//
// ByteReader is bounds-checked everywhere and latches a failure flag instead
// of throwing: a truncated or corrupted buffer makes every subsequent read
// return zero values and ok() == false, so callers validate once at the end.
#ifndef SRC_COMMON_BINIO_H_
#define SRC_COMMON_BINIO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace iccache {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over the buffer;
// `seed` allows incremental computation by passing the previous result.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

class ByteWriter {
 public:
  void PutU8(uint8_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutDouble(double v);
  void PutFloat(float v);
  // Length-prefixed (u64) string / float array.
  void PutString(const std::string& s);
  void PutFloats(const std::vector<float>& v);
  void PutBytes(const void* data, size_t size);

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  std::string bytes_;
};

class ByteReader {
 public:
  ByteReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit ByteReader(const std::string& bytes) : ByteReader(bytes.data(), bytes.size()) {}

  uint8_t GetU8();
  uint32_t GetU32();
  uint64_t GetU64();
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetDouble();
  float GetFloat();
  std::string GetString();
  std::vector<float> GetFloats();
  // Bulk copy of `size` raw bytes into dst; false (latching failure) when out
  // of bounds. Used for arena-sized blocks where per-element reads would cost.
  bool GetBytes(void* dst, size_t size);

  // True iff every read so far was in bounds. Check after the final read.
  bool ok() const { return ok_; }
  // True when the whole buffer has been consumed (format-exactness check).
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  // Returns a pointer to `n` readable bytes or nullptr (latching failure).
  const uint8_t* Take(size_t n);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace iccache

#endif  // SRC_COMMON_BINIO_H_
