// Minimal Status/StatusOr pair for fallible APIs. Library code reports errors
// by value instead of throwing across module boundaries, per the project's
// os-systems conventions.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace iccache {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kInternal,
};

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return message_.empty() ? CodeName() : CodeName() + ": " + message_;
  }

 private:
  std::string CodeName() const {
    switch (code_) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "INVALID_ARGUMENT";
      case StatusCode::kNotFound:
        return "NOT_FOUND";
      case StatusCode::kFailedPrecondition:
        return "FAILED_PRECONDITION";
      case StatusCode::kResourceExhausted:
        return "RESOURCE_EXHAUSTED";
      case StatusCode::kUnavailable:
        return "UNAVAILABLE";
      case StatusCode::kInternal:
        return "INTERNAL";
    }
    return "UNKNOWN";
  }

  StatusCode code_;
  std::string message_;
};

template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT: implicit by design
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT: implicit by design

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }
  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_ = Status::Ok();
  std::optional<T> value_;
};

}  // namespace iccache

#endif  // SRC_COMMON_STATUS_H_
