#include "src/common/knapsack.h"

#include <algorithm>
#include <numeric>

namespace iccache {

KnapsackSolution SolveKnapsackExact(const std::vector<KnapsackItem>& items, int64_t capacity) {
  KnapsackSolution solution;
  solution.exact = true;
  if (capacity < 0) {
    capacity = 0;
  }
  const size_t n = items.size();
  const size_t width = static_cast<size_t>(capacity) + 1;

  // best[w] = max value using a prefix of items at weight budget w.
  std::vector<double> best(width, 0.0);
  // taken[i * width + w] records whether item i is taken at budget w.
  std::vector<uint8_t> taken(n * width, 0);

  for (size_t i = 0; i < n; ++i) {
    const int64_t w_i = std::max<int64_t>(0, items[i].weight);
    const double v_i = items[i].value;
    if (v_i <= 0.0) {
      continue;  // never worth selecting
    }
    if (w_i == 0) {
      // Free value: always take.
      for (size_t w = 0; w < width; ++w) {
        best[w] += v_i;
        taken[i * width + w] = 1;
      }
      continue;
    }
    for (int64_t w = capacity; w >= w_i; --w) {
      const double candidate = best[static_cast<size_t>(w - w_i)] + v_i;
      if (candidate > best[static_cast<size_t>(w)]) {
        best[static_cast<size_t>(w)] = candidate;
        taken[i * width + static_cast<size_t>(w)] = 1;
      }
    }
  }

  // Trace back the selected set.
  int64_t w = capacity;
  std::vector<size_t> selected;
  for (size_t i = n; i-- > 0;) {
    if (taken[i * width + static_cast<size_t>(w)]) {
      selected.push_back(i);
      if (items[i].weight > 0) {
        w -= items[i].weight;
      }
    }
  }
  std::reverse(selected.begin(), selected.end());
  solution.selected = std::move(selected);
  solution.total_value = best[static_cast<size_t>(capacity)];
  for (size_t idx : solution.selected) {
    solution.total_weight += std::max<int64_t>(0, items[idx].weight);
  }
  return solution;
}

KnapsackSolution SolveKnapsackGreedy(const std::vector<KnapsackItem>& items, int64_t capacity) {
  KnapsackSolution solution;
  solution.exact = false;
  if (capacity < 0) {
    capacity = 0;
  }
  std::vector<size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&items](size_t a, size_t b) {
    const auto density = [&items](size_t i) {
      const int64_t w = std::max<int64_t>(0, items[i].weight);
      if (w == 0) {
        return items[i].value > 0.0 ? 1e300 : -1e300;
      }
      return items[i].value / static_cast<double>(w);
    };
    return density(a) > density(b);
  });

  int64_t remaining = capacity;
  for (size_t idx : order) {
    if (items[idx].value <= 0.0) {
      continue;
    }
    const int64_t w = std::max<int64_t>(0, items[idx].weight);
    if (w <= remaining) {
      solution.selected.push_back(idx);
      solution.total_value += items[idx].value;
      solution.total_weight += w;
      remaining -= w;
    }
  }
  std::sort(solution.selected.begin(), solution.selected.end());
  return solution;
}

KnapsackSolution SolveKnapsack(const std::vector<KnapsackItem>& items, int64_t capacity,
                               int64_t max_dp_work) {
  const int64_t work = static_cast<int64_t>(items.size()) * std::max<int64_t>(1, capacity);
  if (work <= max_dp_work) {
    return SolveKnapsackExact(items, capacity);
  }
  return SolveKnapsackGreedy(items, capacity);
}

}  // namespace iccache
