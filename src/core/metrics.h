// Lightweight metrics registry for the service: counters and gauges keyed by
// name, snapshotted by the harnesses and examples. Not a hot path.
#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <map>
#include <string>

namespace iccache {

class MetricsRegistry {
 public:
  void Increment(const std::string& name, double delta = 1.0) { values_[name] += delta; }
  void Set(const std::string& name, double value) { values_[name] = value; }

  double Get(const std::string& name) const {
    const auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
  }

  // Ratio helper: Get(numerator) / Get(denominator), 0 when empty.
  double Ratio(const std::string& numerator, const std::string& denominator) const {
    const double denom = Get(denominator);
    return denom > 0.0 ? Get(numerator) / denom : 0.0;
  }

  const std::map<std::string, double>& snapshot() const { return values_; }
  void Reset() { values_.clear(); }

 private:
  std::map<std::string, double> values_;
};

}  // namespace iccache

#endif  // SRC_CORE_METRICS_H_
