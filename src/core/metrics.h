// Lightweight metrics registry for the service: counters and gauges keyed by
// name, snapshotted by the harnesses and examples. Not a hot path, but the
// service can be driven from multiple client threads, so every method takes
// the internal mutex (snapshot() returns a copy rather than a reference for
// the same reason). Driver-side pipeline metrics use the richer
// obs::MetricsHub instead; this registry keeps the service's stable,
// externally-asserted metric names.
#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <map>
#include <mutex>
#include <string>

namespace iccache {

class MetricsRegistry {
 public:
  void Increment(const std::string& name, double delta = 1.0) {
    std::lock_guard<std::mutex> lock(mu_);
    values_[name] += delta;
  }
  void Set(const std::string& name, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    values_[name] = value;
  }

  double Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
  }

  // Ratio helper: Get(numerator) / Get(denominator), 0 when empty.
  double Ratio(const std::string& numerator, const std::string& denominator) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto den = values_.find(denominator);
    if (den == values_.end() || den->second <= 0.0) {
      return 0.0;
    }
    const auto num = values_.find(numerator);
    return num == values_.end() ? 0.0 : num->second / den->second;
  }

  // Consistent copy of every metric (by value: the map keeps mutating under
  // concurrent serving, so a reference would race).
  std::map<std::string, double> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    values_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> values_;
};

}  // namespace iccache

#endif  // SRC_CORE_METRICS_H_
