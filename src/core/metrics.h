// Thin facade keeping the service's stable, externally-asserted metric names
// (Increment/Set/Get/Ratio/snapshot) while the storage lives in an
// obs::MetricsHub — the same counters/gauges/histograms, window-snapshot
// series, and Prometheus exposition the driver uses. Existing callers and
// tests keep working unchanged; new code should prefer the hub directly.
//
// Semantics note: Increment() registers a counter and Set() a gauge. Using
// both verbs on the same name would create two entries (Get() prefers the
// counter); no caller does.
#ifndef SRC_CORE_METRICS_H_
#define SRC_CORE_METRICS_H_

#include <map>
#include <memory>
#include <string>

#include "src/obs/metrics.h"

namespace iccache {

class MetricsRegistry {
 public:
  // Standalone registry owning its hub (tests, ad-hoc callers).
  MetricsRegistry() : owned_(std::make_unique<MetricsHub>()), hub_(owned_.get()) {}
  // Facade over an externally-owned hub (IcCacheService); `hub` must outlive
  // the registry.
  explicit MetricsRegistry(MetricsHub* hub) : hub_(hub) {}

  void Increment(const std::string& name, double delta = 1.0) {
    hub_->Counter(name)->Add(delta);
  }
  void Set(const std::string& name, double value) { hub_->Gauge(name)->Set(value); }

  double Get(const std::string& name) const { return hub_->Value(name); }

  // Ratio helper: Get(numerator) / Get(denominator), 0 when empty.
  double Ratio(const std::string& numerator, const std::string& denominator) const {
    const double den = hub_->Value(denominator);
    if (den <= 0.0) {
      return 0.0;
    }
    return hub_->Value(numerator) / den;
  }

  // Consistent copy of every counter/gauge (by value: values keep mutating
  // under concurrent serving, so a reference would race).
  std::map<std::string, double> snapshot() const {
    std::map<std::string, double> values;
    for (const auto& [name, value] : hub_->CountersAndGauges()) {
      values.emplace(name, value);
    }
    return values;
  }
  void Reset() { hub_->Reset(); }

  MetricsHub& hub() { return *hub_; }
  const MetricsHub& hub() const { return *hub_; }

 private:
  std::unique_ptr<MetricsHub> owned_;  // null when wrapping an external hub
  MetricsHub* hub_;
};

}  // namespace iccache

#endif  // SRC_CORE_METRICS_H_
