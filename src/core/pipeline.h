// Shared Algorithm-1 pipeline steps.
//
// The synchronous IcCacheService facade and the concurrent ServingDriver run
// the SAME policy logic; this header holds the steps that would otherwise be
// duplicated between them. Selection lives in ExampleSelector (prepare/commit
// split), the example lifecycle (admission, gain accounting, replay, decay +
// eviction) lives in ExampleManager over the ExampleStore interface, and the
// routing + fault-tolerance step (section 5) and example-view construction
// live here.
#ifndef SRC_CORE_PIPELINE_H_
#define SRC_CORE_PIPELINE_H_

#include <vector>

#include "src/common/rng.h"
#include "src/core/example.h"
#include "src/core/router.h"
#include "src/llm/generation.h"
#include "src/llm/model_profile.h"
#include "src/workload/request.h"

namespace iccache {

// Step 2 with section-5 fault tolerance: a healthy router Thompson-samples an
// arm; a failed router is bypassed with a direct route to the fallback
// (large) backend, preserving service continuity. The bypass decision still
// carries a context so reward plumbing stays well-formed, but callers must
// not feed rewards back for bypassed requests (the bandit never chose).
RouteDecision RouteOrBypass(RequestRouter* router, const Request& request,
                            const std::vector<SelectedExample>& selected, bool router_failed,
                            const ModelProfile& fallback);

// The bypass leg alone, usable from const/concurrent contexts (it only reads
// the router's arm table): a direct route to the fallback backend with a
// well-formed context. The driver's commit lanes call this when the router
// component is failed; callers must not feed rewards back for bypassed
// requests (the bandit never chose).
RouteDecision BypassRoute(const RequestRouter& router, const Request& request,
                          const std::vector<SelectedExample>& selected,
                          const ModelProfile& fallback);

// What the generation step is allowed to see about one selected example.
ExampleView MakeExampleView(const Request& request, const Example& example, Rng& rng);

}  // namespace iccache

#endif  // SRC_CORE_PIPELINE_H_
