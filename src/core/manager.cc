#include "src/core/manager.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "src/common/knapsack.h"
#include "src/common/mathutil.h"

namespace iccache {

namespace {

// Shared replay economics (RunReplayPass and PlanMaintenance): expected
// savings scale with how often the example is reused; once they fall below
// the one-time replay cost, every lower-ranked candidate is below it too.
double ReuseWeight(const Example& example) {
  return 1.0 + std::min<double>(static_cast<double>(example.access_count), 50.0);
}

}  // namespace

ExampleManager::ExampleManager(ExampleStore* store, GenerationSimulator* generator,
                               const ModelProfile& replay_model, ManagerConfig config)
    : store_(store), generator_(generator), replay_model_(replay_model), config_(config) {}

PreparedLifecycleAdmission ExampleManager::PrepareAdmission(
    const Request& request, const std::vector<float>* text_embedding) const {
  PreparedLifecycleAdmission prepared;
  // Exact-duplicate suppression: a near-identical cached request adds tokens
  // to the index without adding coverage. The probe reads the pool as of this
  // call; in a batched driver two duplicates inside one window both pass —
  // an accepted (and deterministic) race of the lookahead design.
  const auto nearest = text_embedding != nullptr ? store_->FindSimilar(*text_embedding, 1)
                                                 : store_->FindSimilar(request, 1);
  if (!nearest.empty() && nearest[0].score >= config_.dedupe_similarity) {
    prepared.duplicate = true;
    return prepared;
  }
  prepared.admission = store_->PrepareAdmission(request, text_embedding);
  return prepared;
}

uint64_t ExampleManager::CommitAdmission(const Request& request,
                                         PreparedLifecycleAdmission prepared,
                                         const GenerationResult& generation,
                                         double source_capability, bool from_large_model,
                                         double now) {
  if (prepared.duplicate || !prepared.admission.admit) {
    return 0;
  }
  if (!from_large_model && generation.latent_quality < config_.small_model_admit_quality) {
    return 0;
  }
  return store_->PutPrepared(request, std::move(prepared.admission), "[cached-response]",
                             generation.latent_quality, source_capability,
                             generation.output_tokens, now);
}

uint64_t ExampleManager::MaybeAdmit(const Request& request, const GenerationResult& generation,
                                    double source_capability, bool from_large_model, double now) {
  if (!from_large_model && generation.latent_quality < config_.small_model_admit_quality) {
    return 0;  // gate first: skip the dedupe probe and scrub/embed entirely
  }
  return CommitAdmission(request, PrepareAdmission(request), generation, source_capability,
                         from_large_model, now);
}

void ExampleManager::RecordUsage(const std::vector<uint64_t>& example_ids,
                                 double response_quality, double normalized_model_cost) {
  const double gain = (1.0 - Clamp(response_quality, 0.0, 1.0)) *
                      Clamp(normalized_model_cost, 0.0, 1.0);
  const double alpha = config_.gain_ema_alpha;
  for (uint64_t id : example_ids) {
    store_->UpdateExample(id, [gain, alpha](Example& example) {
      example.replay_gain_ema = alpha * gain + (1.0 - alpha) * example.replay_gain_ema;
    });
  }
}

ReplayReport ExampleManager::RunReplayPass() {
  ReplayReport report;

  // Rank replayable examples by gain EMA, descending.
  struct Ranked {
    uint64_t id;
    double gain;
  };
  std::vector<Ranked> ranked;
  for (uint64_t id : store_->AllIds()) {
    Example example;
    if (!store_->Snapshot(id, &example) ||
        example.replay_count >= config_.max_replays_per_example) {
      continue;
    }
    ranked.push_back(Ranked{id, example.replay_gain_ema});
  }
  report.candidates = ranked.size();
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.gain != b.gain) {
      return a.gain > b.gain;
    }
    return a.id < b.id;  // deterministic tie-break across shards
  });

  for (const Ranked& candidate : ranked) {
    if (report.replayed >= config_.max_replays_per_pass) {
      break;
    }
    Example example;
    if (!store_->Snapshot(candidate.id, &example)) {
      continue;  // evicted since the ranking snapshot
    }
    // Cost-aware cutoff: see ReuseWeight above — stop the pass.
    const double reuse_weight = ReuseWeight(example);
    if (candidate.gain * reuse_weight <= config_.replay_cost) {
      break;
    }

    // Best-of-n regeneration on the replay model.
    double best_quality = example.response_quality;
    int best_tokens = example.response_tokens;
    for (int draw = 0; draw < config_.draws_per_replay; ++draw) {
      const GenerationResult fresh = generator_->Generate(replay_model_, example.request, {});
      if (fresh.latent_quality > best_quality) {
        best_quality = fresh.latent_quality;
        best_tokens = fresh.output_tokens;
      }
    }

    const bool improved = best_quality > example.response_quality;
    const double improvement = best_quality - example.response_quality;
    const double replay_capability = replay_model_.capability;
    store_->UpdateExample(candidate.id, [&](Example& stored) {
      ++stored.replay_count;
      if (improved) {
        stored.response_quality = best_quality;
        stored.response_tokens = best_tokens;
        stored.source_capability = std::max(stored.source_capability, replay_capability);
      }
      // Refinement reduces the remaining headroom; shrink the gain estimate.
      stored.replay_gain_ema *= (1.0 - stored.response_quality);
    });
    ++report.replayed;
    if (improved) {
      report.total_quality_gain += improvement;
      ++report.improved;
    }
  }
  // Replay grows stored responses; re-enforce the byte budget so a pass can
  // never leave the pool above its watermark.
  if (report.improved > 0) {
    store_->EnforceCapacity();
  }
  return report;
}

MaintenancePlan ExampleManager::PlanMaintenance(const MaintenanceCut& cut,
                                                const MaintenanceTickSpec& spec,
                                                Rng& rng) const {
  MaintenancePlan plan;
  plan.spec = spec;

  // Eviction: one global knapsack over the decayed cut. The decay that the
  // apply step will perform is simulated here (value *= decay_factor when the
  // tick decays) so the keep/evict decision matches the post-decay pool.
  std::unordered_set<uint64_t> evicting;
  if (spec.evict && cut.capacity_bytes > 0 &&
      static_cast<double>(cut.used_bytes) >
          static_cast<double>(cut.capacity_bytes) * std::min(1.0, cut.high_watermark)) {
    const int64_t target = static_cast<int64_t>(static_cast<double>(cut.capacity_bytes) *
                                                Clamp(cut.low_watermark, 0.1, 1.0));
    std::vector<KnapsackItem> items;
    items.reserve(cut.examples.size());
    const double value_scale = spec.decay ? cut.decay_factor : 1.0;
    for (const Example& example : cut.examples) {  // cut is ascending-id: stable tie-breaks
      KnapsackItem item;
      item.weight = example.SizeBytes();
      item.value = example.offload_value * value_scale + 1e-3;
      items.push_back(item);
    }
    const KnapsackSolution solution = SolveKnapsack(items, target);
    std::vector<bool> keep(cut.examples.size(), false);
    for (size_t idx : solution.selected) {
      keep[idx] = true;
    }
    for (size_t i = 0; i < cut.examples.size(); ++i) {
      if (!keep[i]) {
        plan.evict_ids.push_back(cut.examples[i].id);
        evicting.insert(cut.examples[i].id);
      }
    }
  }

  if (!spec.replay) {
    return plan;
  }

  // Replay: identical ranking and economics to RunReplayPass, over the cut.
  struct Ranked {
    const Example* example;
    double gain;
  };
  std::vector<Ranked> ranked;
  for (const Example& example : cut.examples) {
    if (example.replay_count >= config_.max_replays_per_example ||
        evicting.count(example.id) > 0) {
      continue;  // replaying an example this tick evicts would waste the draws
    }
    ranked.push_back(Ranked{&example, example.replay_gain_ema});
  }
  plan.replay_candidates = ranked.size();
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.gain != b.gain) {
      return a.gain > b.gain;
    }
    return a.example->id < b.example->id;
  });

  for (const Ranked& candidate : ranked) {
    if (plan.replays.size() >= config_.max_replays_per_pass) {
      break;
    }
    if (candidate.gain * ReuseWeight(*candidate.example) <= config_.replay_cost) {
      break;
    }
    MaintenancePlan::PlannedReplay replay;
    replay.id = candidate.example->id;
    replay.best_quality = candidate.example->response_quality;
    replay.best_tokens = candidate.example->response_tokens;
    for (int draw = 0; draw < config_.draws_per_replay; ++draw) {
      const GenerationResult fresh =
          generator_->Generate(replay_model_, candidate.example->request, {}, rng);
      if (fresh.latent_quality > replay.best_quality) {
        replay.best_quality = fresh.latent_quality;
        replay.best_tokens = fresh.output_tokens;
      }
    }
    plan.replays.push_back(replay);
  }
  return plan;
}

MaintenanceApplyOutcome ExampleManager::ApplyMaintenance(const MaintenancePlan& plan) {
  MaintenanceApplyOutcome outcome;
  if (plan.spec.decay) {
    store_->DecayTick();
    outcome.decay_ran = true;
  }
  if (plan.spec.evict) {
    for (uint64_t id : plan.evict_ids) {
      if (store_->Remove(id)) {
        ++outcome.evicted;
      }
    }
  }
  if (plan.spec.replay) {
    const double replay_capability = replay_model_.capability;
    for (const MaintenancePlan::PlannedReplay& replay : plan.replays) {
      bool improved = false;
      const bool applied = store_->UpdateExample(replay.id, [&](Example& stored) {
        ++stored.replay_count;
        // Re-check against the LIVE quality: only this tick mutates response
        // quality, so the comparison is deterministic, and a no-op draw still
        // consumes the lifetime replay slot (as in RunReplayPass).
        if (replay.best_quality > stored.response_quality) {
          outcome.total_quality_gain += replay.best_quality - stored.response_quality;
          stored.response_quality = replay.best_quality;
          stored.response_tokens = replay.best_tokens;
          stored.source_capability = std::max(stored.source_capability, replay_capability);
          improved = true;
        }
        stored.replay_gain_ema *= (1.0 - stored.response_quality);
      });
      if (applied) {
        ++outcome.replayed;
        if (improved) {
          ++outcome.improved;
        }
      }
    }
    outcome.replay_ran = true;
  }
  // One deterministic budget re-enforcement covers replay token growth AND
  // any admissions that landed between cut and apply (no-op under the
  // watermark); its evictions ride the store's own counter, so only the
  // planned removals are tallied here.
  if (plan.spec.evict || outcome.improved > 0) {
    store_->EnforceCapacity();
  }
  return outcome;
}

MaintenanceReport ExampleManager::MaybeRunMaintenance(double now) {
  MaintenanceReport report;
  if (now - last_decay_time_ < config_.decay_interval_s) {
    return report;
  }
  last_decay_time_ = now;
  store_->DecayTick();
  report.evicted = store_->EnforceCapacity().size();
  report.ran = true;
  return report;
}

}  // namespace iccache
