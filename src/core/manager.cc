#include "src/core/manager.h"

#include <algorithm>

#include "src/common/mathutil.h"

namespace iccache {

ExampleManager::ExampleManager(ExampleCache* cache, GenerationSimulator* generator,
                               const ModelProfile& replay_model, ManagerConfig config)
    : cache_(cache), generator_(generator), replay_model_(replay_model), config_(config) {}

uint64_t ExampleManager::MaybeAdmit(const Request& request, const GenerationResult& generation,
                                    double source_capability, bool from_large_model, double now) {
  if (!from_large_model && generation.latent_quality < config_.small_model_admit_quality) {
    return 0;
  }
  // Exact-duplicate suppression: a near-identical cached request adds tokens
  // to the index without adding coverage.
  const auto nearest = cache_->FindSimilar(request, 1);
  if (!nearest.empty() && nearest[0].score >= config_.dedupe_similarity) {
    return 0;
  }
  return cache_->Put(request, "[cached-response]", generation.latent_quality, source_capability,
                     generation.output_tokens, now);
}

void ExampleManager::RecordUsage(const std::vector<uint64_t>& example_ids,
                                 double response_quality, double normalized_model_cost) {
  const double gain = (1.0 - Clamp(response_quality, 0.0, 1.0)) *
                      Clamp(normalized_model_cost, 0.0, 1.0);
  for (uint64_t id : example_ids) {
    Example* example = cache_->GetMutable(id);
    if (example == nullptr) {
      continue;
    }
    example->replay_gain_ema = config_.gain_ema_alpha * gain +
                               (1.0 - config_.gain_ema_alpha) * example->replay_gain_ema;
  }
}

ReplayReport ExampleManager::RunReplayPass() {
  ReplayReport report;

  // Rank replayable examples by gain EMA, descending.
  struct Ranked {
    uint64_t id;
    double gain;
  };
  std::vector<Ranked> ranked;
  for (uint64_t id : cache_->AllIds()) {
    const Example* example = cache_->Get(id);
    if (example == nullptr || example->replay_count >= config_.max_replays_per_example) {
      continue;
    }
    ranked.push_back(Ranked{id, example->replay_gain_ema});
  }
  report.candidates = ranked.size();
  std::sort(ranked.begin(), ranked.end(),
            [](const Ranked& a, const Ranked& b) { return a.gain > b.gain; });

  for (const Ranked& candidate : ranked) {
    if (report.replayed >= config_.max_replays_per_pass) {
      break;
    }
    // Cost-aware cutoff: expected savings scale with how often the example is
    // reused; once that falls below the one-time replay cost, every
    // lower-ranked example is below it too — stop the pass.
    const Example* example = cache_->Get(candidate.id);
    const double reuse_weight =
        1.0 + std::min<double>(static_cast<double>(example->access_count), 50.0);
    if (candidate.gain * reuse_weight <= config_.replay_cost) {
      break;
    }

    // Best-of-n regeneration on the replay model.
    double best_quality = example->response_quality;
    int best_tokens = example->response_tokens;
    for (int draw = 0; draw < config_.draws_per_replay; ++draw) {
      const GenerationResult fresh = generator_->Generate(replay_model_, example->request, {});
      if (fresh.latent_quality > best_quality) {
        best_quality = fresh.latent_quality;
        best_tokens = fresh.output_tokens;
      }
    }

    Example* mutable_example = cache_->GetMutable(candidate.id);
    ++mutable_example->replay_count;
    ++report.replayed;
    if (best_quality > mutable_example->response_quality) {
      report.total_quality_gain += best_quality - mutable_example->response_quality;
      mutable_example->response_quality = best_quality;
      mutable_example->response_tokens = best_tokens;
      mutable_example->source_capability =
          std::max(mutable_example->source_capability, replay_model_.capability);
      ++report.improved;
    }
    // Refinement reduces the remaining headroom; shrink the gain estimate.
    mutable_example->replay_gain_ema *= (1.0 - mutable_example->response_quality);
  }
  return report;
}

void ExampleManager::MaybeRunMaintenance(double now) {
  if (now - last_decay_time_ < config_.decay_interval_s) {
    return;
  }
  last_decay_time_ = now;
  cache_->DecayTick();
  cache_->EnforceCapacity();
}

}  // namespace iccache
