#include "src/core/manager.h"

#include <algorithm>
#include <utility>

#include "src/common/mathutil.h"

namespace iccache {

ExampleManager::ExampleManager(ExampleStore* store, GenerationSimulator* generator,
                               const ModelProfile& replay_model, ManagerConfig config)
    : store_(store), generator_(generator), replay_model_(replay_model), config_(config) {}

PreparedLifecycleAdmission ExampleManager::PrepareAdmission(
    const Request& request, const std::vector<float>* text_embedding) const {
  PreparedLifecycleAdmission prepared;
  // Exact-duplicate suppression: a near-identical cached request adds tokens
  // to the index without adding coverage. The probe reads the pool as of this
  // call; in a batched driver two duplicates inside one window both pass —
  // an accepted (and deterministic) race of the lookahead design.
  const auto nearest = text_embedding != nullptr ? store_->FindSimilar(*text_embedding, 1)
                                                 : store_->FindSimilar(request, 1);
  if (!nearest.empty() && nearest[0].score >= config_.dedupe_similarity) {
    prepared.duplicate = true;
    return prepared;
  }
  prepared.admission = store_->PrepareAdmission(request, text_embedding);
  return prepared;
}

uint64_t ExampleManager::CommitAdmission(const Request& request,
                                         PreparedLifecycleAdmission prepared,
                                         const GenerationResult& generation,
                                         double source_capability, bool from_large_model,
                                         double now) {
  if (prepared.duplicate || !prepared.admission.admit) {
    return 0;
  }
  if (!from_large_model && generation.latent_quality < config_.small_model_admit_quality) {
    return 0;
  }
  return store_->PutPrepared(request, std::move(prepared.admission), "[cached-response]",
                             generation.latent_quality, source_capability,
                             generation.output_tokens, now);
}

uint64_t ExampleManager::MaybeAdmit(const Request& request, const GenerationResult& generation,
                                    double source_capability, bool from_large_model, double now) {
  if (!from_large_model && generation.latent_quality < config_.small_model_admit_quality) {
    return 0;  // gate first: skip the dedupe probe and scrub/embed entirely
  }
  return CommitAdmission(request, PrepareAdmission(request), generation, source_capability,
                         from_large_model, now);
}

void ExampleManager::RecordUsage(const std::vector<uint64_t>& example_ids,
                                 double response_quality, double normalized_model_cost) {
  const double gain = (1.0 - Clamp(response_quality, 0.0, 1.0)) *
                      Clamp(normalized_model_cost, 0.0, 1.0);
  const double alpha = config_.gain_ema_alpha;
  for (uint64_t id : example_ids) {
    store_->UpdateExample(id, [gain, alpha](Example& example) {
      example.replay_gain_ema = alpha * gain + (1.0 - alpha) * example.replay_gain_ema;
    });
  }
}

ReplayReport ExampleManager::RunReplayPass() {
  ReplayReport report;

  // Rank replayable examples by gain EMA, descending.
  struct Ranked {
    uint64_t id;
    double gain;
  };
  std::vector<Ranked> ranked;
  for (uint64_t id : store_->AllIds()) {
    Example example;
    if (!store_->Snapshot(id, &example) ||
        example.replay_count >= config_.max_replays_per_example) {
      continue;
    }
    ranked.push_back(Ranked{id, example.replay_gain_ema});
  }
  report.candidates = ranked.size();
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.gain != b.gain) {
      return a.gain > b.gain;
    }
    return a.id < b.id;  // deterministic tie-break across shards
  });

  for (const Ranked& candidate : ranked) {
    if (report.replayed >= config_.max_replays_per_pass) {
      break;
    }
    Example example;
    if (!store_->Snapshot(candidate.id, &example)) {
      continue;  // evicted since the ranking snapshot
    }
    // Cost-aware cutoff: expected savings scale with how often the example is
    // reused; once that falls below the one-time replay cost, every
    // lower-ranked example is below it too — stop the pass.
    const double reuse_weight =
        1.0 + std::min<double>(static_cast<double>(example.access_count), 50.0);
    if (candidate.gain * reuse_weight <= config_.replay_cost) {
      break;
    }

    // Best-of-n regeneration on the replay model.
    double best_quality = example.response_quality;
    int best_tokens = example.response_tokens;
    for (int draw = 0; draw < config_.draws_per_replay; ++draw) {
      const GenerationResult fresh = generator_->Generate(replay_model_, example.request, {});
      if (fresh.latent_quality > best_quality) {
        best_quality = fresh.latent_quality;
        best_tokens = fresh.output_tokens;
      }
    }

    const bool improved = best_quality > example.response_quality;
    const double improvement = best_quality - example.response_quality;
    const double replay_capability = replay_model_.capability;
    store_->UpdateExample(candidate.id, [&](Example& stored) {
      ++stored.replay_count;
      if (improved) {
        stored.response_quality = best_quality;
        stored.response_tokens = best_tokens;
        stored.source_capability = std::max(stored.source_capability, replay_capability);
      }
      // Refinement reduces the remaining headroom; shrink the gain estimate.
      stored.replay_gain_ema *= (1.0 - stored.response_quality);
    });
    ++report.replayed;
    if (improved) {
      report.total_quality_gain += improvement;
      ++report.improved;
    }
  }
  // Replay grows stored responses; re-enforce the byte budget so a pass can
  // never leave the pool above its watermark.
  if (report.improved > 0) {
    store_->EnforceCapacity();
  }
  return report;
}

MaintenanceReport ExampleManager::MaybeRunMaintenance(double now) {
  MaintenanceReport report;
  if (now - last_decay_time_ < config_.decay_interval_s) {
    return report;
  }
  last_decay_time_ = now;
  store_->DecayTick();
  report.evicted = store_->EnforceCapacity().size();
  report.ran = true;
  return report;
}

}  // namespace iccache
