#include "src/core/dp_synthesis.h"

#include <algorithm>
#include <cmath>

#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/embedding/embedder.h"

namespace iccache {

DpSynthesisReport SynthesizeDpCache(const ExampleCache& source, ExampleCache* out,
                                    DpSynthesisConfig config) {
  DpSynthesisReport report;
  Rng rng(config.seed);

  const double eps_token = config.epsilon / std::max(config.sensitivity_tokens, 1.0);
  const double keep_probability = std::exp(eps_token) / (std::exp(eps_token) + 1.0);
  report.token_keep_probability = keep_probability;
  report.epsilon_spent = config.epsilon;

  for (uint64_t id : source.AllIds()) {
    const Example* example = source.Get(id);
    if (example == nullptr) {
      continue;
    }
    ++report.source_examples;

    Request synthetic = example->request;
    // Randomized response over tokens: replaced tokens break surface overlap
    // (and thus linkability) while most content survives at reasonable eps.
    std::vector<std::string> words = TokenizeWords(example->request.text);
    std::string rebuilt;
    for (const std::string& word : words) {
      if (!rebuilt.empty()) {
        rebuilt.push_back(' ');
      }
      if (rng.Bernoulli(keep_probability)) {
        rebuilt += word;
      } else {
        rebuilt += "x" + std::to_string(rng.UniformInt(100000));
      }
    }
    synthetic.text = rebuilt;

    // Latent-attribute perturbation: occasionally the synthetic example lands
    // on a neighbouring intent, diluting its relevance (the Figure 21 cost).
    if (rng.Bernoulli(1.0 - keep_probability)) {
      synthetic.intent_id = static_cast<uint32_t>(rng.UniformInt(4));
    }
    synthetic.difficulty = Clamp(synthetic.difficulty + rng.Normal(0.0, 0.04), 0.0, 1.0);

    const double quality =
        Clamp(example->response_quality - config.quality_penalty * rng.Uniform(), 0.0, 1.0);
    const uint64_t new_id = out->Put(synthetic, "[dp-synthetic-response]", quality,
                                     example->source_capability, example->response_tokens,
                                     example->admitted_time);
    if (new_id != 0) {
      ++report.synthesized;
    }
  }
  return report;
}

}  // namespace iccache
