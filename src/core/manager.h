// Example Manager (section 4.3): cache admission, per-use gain accounting,
// cost-aware example replay, and periodic maintenance (decay + eviction).
//
// Replay exploits generation variance: re-querying the replay model a few
// times and keeping the best response measurably improves the stored example
// (Figure 11). Because reuse frequency is long-tailed (Figure 10), replay is
// rationed: candidates are ranked by the EMA of their potential gain
//   G(e) = (1 - normalized_response_quality) * normalized_model_cost
// accumulated on every reuse, and the pass stops at the first candidate whose
// expected savings no longer cover the one-time replay cost. Each example
// consumes at most five replay iterations in its lifetime (section 5).
#ifndef SRC_CORE_MANAGER_H_
#define SRC_CORE_MANAGER_H_

#include <cstdint>
#include <vector>

#include "src/core/example_cache.h"
#include "src/llm/generation.h"
#include "src/llm/model_profile.h"

namespace iccache {

struct ManagerConfig {
  // Admission: always cache responses from the large model; cache small-model
  // responses only above this quality bar (avoid polluting the pool).
  double small_model_admit_quality = 0.75;
  // Skip admission when a near-duplicate is already cached.
  double dedupe_similarity = 0.995;

  // Replay.
  int max_replays_per_example = 5;  // lifetime cap (section 5)
  int draws_per_replay = 3;         // best-of-n per replay pass
  double replay_cost = 0.35;        // one-time cost in normalized gain units
  double gain_ema_alpha = 0.25;
  size_t max_replays_per_pass = 64;

  // Maintenance cadence (simulated seconds).
  double decay_interval_s = 3600.0;
};

struct ReplayReport {
  size_t candidates = 0;
  size_t replayed = 0;
  size_t improved = 0;
  double total_quality_gain = 0.0;
};

class ExampleManager {
 public:
  ExampleManager(ExampleCache* cache, GenerationSimulator* generator,
                 const ModelProfile& replay_model, ManagerConfig config = {});

  // Admission after serving: returns the cached example id or 0 when skipped.
  uint64_t MaybeAdmit(const Request& request, const GenerationResult& generation,
                      double source_capability, bool from_large_model, double now);

  // Per-use gain accounting for the examples that served a request:
  // G(e) = (1 - quality) * model_cost, folded into each example's EMA.
  void RecordUsage(const std::vector<uint64_t>& example_ids, double response_quality,
                   double normalized_model_cost);

  // One cost-aware replay pass (run off-peak); refines top-ranked examples.
  ReplayReport RunReplayPass();

  // Hourly decay + capacity enforcement; call with the current sim time.
  void MaybeRunMaintenance(double now);

  const ManagerConfig& config() const { return config_; }

 private:
  ExampleCache* cache_;
  GenerationSimulator* generator_;
  ModelProfile replay_model_;
  ManagerConfig config_;
  double last_decay_time_ = 0.0;
};

}  // namespace iccache

#endif  // SRC_CORE_MANAGER_H_
