// Example lifecycle layer (section 4.3): cache admission, per-use gain
// accounting, cost-aware example replay, and periodic maintenance (decay +
// knapsack eviction) — running against the store-agnostic ExampleStore
// interface, so the same policy serves the single-threaded ExampleCache
// (IcCacheService) and the concurrent ShardedExampleCache (ServingDriver).
//
// Replay exploits generation variance: re-querying the replay model a few
// times and keeping the best response measurably improves the stored example
// (Figure 11). Because reuse frequency is long-tailed (Figure 10), replay is
// rationed: candidates are ranked by the EMA of their potential gain
//   G(e) = (1 - normalized_response_quality) * normalized_model_cost
// accumulated on every reuse, and the pass stops at the first candidate whose
// expected savings no longer cover the one-time replay cost. Each example
// consumes at most five replay iterations in its lifetime (section 5).
//
// For concurrent drivers the admission path is split driver-style in two:
//
//   PrepareAdmission — dedupe probe + PII scrub + embedding; const and
//                      side-effect free, safe to fan out across workers
//                      (reads the store as of the call).
//   CommitAdmission  — quality gate + the insert; serial phase only.
//
// MaybeAdmit composes the two for synchronous callers.
#ifndef SRC_CORE_MANAGER_H_
#define SRC_CORE_MANAGER_H_

#include <cstdint>
#include <vector>

#include "src/core/retrieval_backend.h"
#include "src/llm/generation.h"
#include "src/llm/model_profile.h"

namespace iccache {

struct ManagerConfig {
  // Admission: always cache responses from the large model; cache small-model
  // responses only above this quality bar (avoid polluting the pool).
  double small_model_admit_quality = 0.75;
  // Skip admission when a near-duplicate is already cached.
  double dedupe_similarity = 0.995;

  // Replay.
  int max_replays_per_example = 5;  // lifetime cap (section 5)
  int draws_per_replay = 3;         // best-of-n per replay pass
  double replay_cost = 0.35;        // one-time cost in normalized gain units
  double gain_ema_alpha = 0.25;
  size_t max_replays_per_pass = 64;

  // Maintenance cadence (simulated seconds).
  double decay_interval_s = 3600.0;
};

struct ReplayReport {
  size_t candidates = 0;
  size_t replayed = 0;
  size_t improved = 0;
  double total_quality_gain = 0.0;
};

struct MaintenanceReport {
  bool ran = false;       // false while within the decay interval
  size_t evicted = 0;     // examples removed by the capacity knapsack
};

// Parallel-phase half of a lifecycle admission.
struct PreparedLifecycleAdmission {
  PreparedAdmission admission;  // privacy decision + sanitized-text embedding
  bool duplicate = false;       // a near-identical example was already cached
};

class ExampleManager {
 public:
  ExampleManager(ExampleStore* store, GenerationSimulator* generator,
                 const ModelProfile& replay_model, ManagerConfig config = {});

  // --- Two-phase admission (concurrent drivers) ----------------------------

  // Pure half: dedupe probe against the current pool plus the store's
  // scrub/embed preparation. Thread-safe; pass `text_embedding` when the
  // caller already embedded request.text (skips a duplicate embedding pass).
  PreparedLifecycleAdmission PrepareAdmission(
      const Request& request, const std::vector<float>* text_embedding = nullptr) const;

  // Stateful half: applies the quality gate and inserts. Returns the cached
  // example id or 0 when skipped.
  uint64_t CommitAdmission(const Request& request, PreparedLifecycleAdmission prepared,
                           const GenerationResult& generation, double source_capability,
                           bool from_large_model, double now);

  // Synchronous admission after serving (composes prepare + commit); returns
  // the cached example id or 0 when skipped.
  uint64_t MaybeAdmit(const Request& request, const GenerationResult& generation,
                      double source_capability, bool from_large_model, double now);

  // --- Gain accounting, replay, maintenance --------------------------------

  // Per-use gain accounting for the examples that served a request:
  // G(e) = (1 - quality) * model_cost, folded into each example's EMA.
  void RecordUsage(const std::vector<uint64_t>& example_ids, double response_quality,
                   double normalized_model_cost);

  // One cost-aware replay pass (run off-peak); refines top-ranked examples.
  ReplayReport RunReplayPass();

  // Hourly decay + capacity enforcement; call with the current sim time.
  MaintenanceReport MaybeRunMaintenance(double now);

  const ManagerConfig& config() const { return config_; }

  // Maintenance cursor (snapshot persistence): the trace time of the last
  // decay tick, so a restored pool neither skips nor double-runs maintenance.
  double last_decay_time() const { return last_decay_time_; }
  void set_last_decay_time(double t) { last_decay_time_ = t; }

 private:
  ExampleStore* store_;
  GenerationSimulator* generator_;
  ModelProfile replay_model_;
  ManagerConfig config_;
  double last_decay_time_ = 0.0;
};

}  // namespace iccache

#endif  // SRC_CORE_MANAGER_H_
