// Example lifecycle layer (section 4.3): cache admission, per-use gain
// accounting, cost-aware example replay, and periodic maintenance (decay +
// knapsack eviction) — running against the store-agnostic ExampleStore
// interface, so the same policy serves the single-threaded ExampleCache
// (IcCacheService) and the concurrent ShardedExampleCache (ServingDriver).
//
// Replay exploits generation variance: re-querying the replay model a few
// times and keeping the best response measurably improves the stored example
// (Figure 11). Because reuse frequency is long-tailed (Figure 10), replay is
// rationed: candidates are ranked by the EMA of their potential gain
//   G(e) = (1 - normalized_response_quality) * normalized_model_cost
// accumulated on every reuse, and the pass stops at the first candidate whose
// expected savings no longer cover the one-time replay cost. Each example
// consumes at most five replay iterations in its lifetime (section 5).
//
// For concurrent drivers the admission path is split driver-style in two:
//
//   PrepareAdmission — dedupe probe + PII scrub + embedding; const and
//                      side-effect free, safe to fan out across workers
//                      (reads the store as of the call).
//   CommitAdmission  — quality gate + the insert; serial phase only.
//
// MaybeAdmit composes the two for synchronous callers.
#ifndef SRC_CORE_MANAGER_H_
#define SRC_CORE_MANAGER_H_

#include <cstdint>
#include <vector>

#include "src/core/retrieval_backend.h"
#include "src/llm/generation.h"
#include "src/llm/model_profile.h"

namespace iccache {

struct ManagerConfig {
  // Admission: always cache responses from the large model; cache small-model
  // responses only above this quality bar (avoid polluting the pool).
  double small_model_admit_quality = 0.75;
  // Skip admission when a near-duplicate is already cached.
  double dedupe_similarity = 0.995;

  // Replay.
  int max_replays_per_example = 5;  // lifetime cap (section 5)
  int draws_per_replay = 3;         // best-of-n per replay pass
  double replay_cost = 0.35;        // one-time cost in normalized gain units
  double gain_ema_alpha = 0.25;
  size_t max_replays_per_pass = 64;

  // Maintenance cadence (simulated seconds).
  double decay_interval_s = 3600.0;
};

struct ReplayReport {
  size_t candidates = 0;
  size_t replayed = 0;
  size_t improved = 0;
  double total_quality_gain = 0.0;
};

struct MaintenanceReport {
  bool ran = false;       // false while within the decay interval
  size_t evicted = 0;     // examples removed by the capacity knapsack
};

// --- Epoch-based background maintenance (plan / apply split) ---------------
//
// A concurrent driver never runs decay, eviction, or replay inline: at a
// window boundary it exports an epoch-consistent MaintenanceCut, a background
// thread PLANS the tick against that frozen view (pure, expensive — replay
// regenerations and the eviction knapsack), and the resulting mutation batch
// is APPLIED at a later, deterministic window boundary. Because the plan is
// a pure function of (cut, spec, rng) and the apply point is fixed by the
// window schedule, the whole scheme is invariant to thread and lane counts.

// What one tick should do, stamped with its epoch (the tick ordinal, which
// also derives the tick's private sampling stream).
struct MaintenanceTickSpec {
  bool decay = false;   // hourly utility decay
  bool evict = false;   // capacity knapsack (watermark pressure or post-decay)
  bool replay = false;  // cost-aware best-of-n example replay
  double now = 0.0;     // trace time of the cut (the tick's nominal time)
  uint64_t epoch = 0;
};

// Planned mutations, all keyed by example id so they survive pool churn
// between cut and apply (ids that vanished are skipped deterministically).
struct MaintenancePlan {
  MaintenanceTickSpec spec;
  std::vector<uint64_t> evict_ids;  // ascending id order
  struct PlannedReplay {
    uint64_t id = 0;
    double best_quality = 0.0;  // best-of-n outcome on the replay model
    int best_tokens = 0;
  };
  std::vector<PlannedReplay> replays;  // replay-rank order
  size_t replay_candidates = 0;
};

// What ApplyMaintenance actually changed.
struct MaintenanceApplyOutcome {
  bool decay_ran = false;
  bool replay_ran = false;
  // PLANNED removals applied, only. The trailing watermark top-up inside
  // ApplyMaintenance reports through the store's own eviction counter
  // instead, so consumers summing both sources never double-count.
  size_t evicted = 0;
  size_t replayed = 0;
  size_t improved = 0;
  double total_quality_gain = 0.0;
};

// Parallel-phase half of a lifecycle admission.
struct PreparedLifecycleAdmission {
  PreparedAdmission admission;  // privacy decision + sanitized-text embedding
  bool duplicate = false;       // a near-identical example was already cached
};

class ExampleManager {
 public:
  ExampleManager(ExampleStore* store, GenerationSimulator* generator,
                 const ModelProfile& replay_model, ManagerConfig config = {});

  // --- Two-phase admission (concurrent drivers) ----------------------------

  // Pure half: dedupe probe against the current pool plus the store's
  // scrub/embed preparation. Thread-safe; pass `text_embedding` when the
  // caller already embedded request.text (skips a duplicate embedding pass).
  PreparedLifecycleAdmission PrepareAdmission(
      const Request& request, const std::vector<float>* text_embedding = nullptr) const;

  // Stateful half: applies the quality gate and inserts. Returns the cached
  // example id or 0 when skipped.
  uint64_t CommitAdmission(const Request& request, PreparedLifecycleAdmission prepared,
                           const GenerationResult& generation, double source_capability,
                           bool from_large_model, double now);

  // Synchronous admission after serving (composes prepare + commit); returns
  // the cached example id or 0 when skipped.
  uint64_t MaybeAdmit(const Request& request, const GenerationResult& generation,
                      double source_capability, bool from_large_model, double now);

  // --- Gain accounting, replay, maintenance --------------------------------

  // Per-use gain accounting for the examples that served a request:
  // G(e) = (1 - quality) * model_cost, folded into each example's EMA.
  void RecordUsage(const std::vector<uint64_t>& example_ids, double response_quality,
                   double normalized_model_cost);

  // One cost-aware replay pass (run off-peak); refines top-ranked examples.
  ReplayReport RunReplayPass();

  // Hourly decay + capacity enforcement; call with the current sim time.
  MaintenanceReport MaybeRunMaintenance(double now);

  // --- Epoch-based maintenance (background scheduler) ----------------------

  // PURE planning half: ranks and simulates the tick against the frozen cut.
  // Touches no mutable state (generation uses `rng`, the tick's private
  // stream), so it is safe on a background thread while the store serves.
  // Eviction is planned as ONE GLOBAL knapsack over the decayed cut (the
  // background planner sees the whole pool at once, so it does not need the
  // per-shard apportioning the inline EnforceCapacity path uses); replay
  // follows the same ranking, cost cutoff, and per-example lifetime cap as
  // RunReplayPass. Examples planned for eviction are never replayed.
  MaintenancePlan PlanMaintenance(const MaintenanceCut& cut, const MaintenanceTickSpec& spec,
                                  Rng& rng) const;

  // Serial application half: publishes the planned mutations against the
  // live store — DecayTick, planned removals, replay refinements — then
  // re-enforces the byte budget once so admissions that landed between cut
  // and apply (and replay token growth) cannot leave the pool above its
  // watermark. Ids evicted since the cut are skipped; outcomes are exact.
  MaintenanceApplyOutcome ApplyMaintenance(const MaintenancePlan& plan);

  const ManagerConfig& config() const { return config_; }

  // Maintenance cursor (snapshot persistence): the trace time of the last
  // decay tick, so a restored pool neither skips nor double-runs maintenance.
  double last_decay_time() const { return last_decay_time_; }
  void set_last_decay_time(double t) { last_decay_time_ = t; }

 private:
  ExampleStore* store_;
  GenerationSimulator* generator_;
  ModelProfile replay_model_;
  ManagerConfig config_;
  double last_decay_time_ = 0.0;
};

}  // namespace iccache

#endif  // SRC_CORE_MANAGER_H_
