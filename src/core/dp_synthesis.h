// Differentially private synthetic example pool (section 4.3, Figure 21):
// for deployments with strict privacy guarantees, the raw historical cache is
// replaced with a DP-synthesized clone. Synthesis applies randomized response
// at the token level (replace each token with a random draw with probability
// p derived from epsilon) and perturbs latent attributes, so an adversary
// holding the synthetic pool cannot confidently infer any original example —
// at the price of a small relevance/quality haircut that Figure 21 measures.
#ifndef SRC_CORE_DP_SYNTHESIS_H_
#define SRC_CORE_DP_SYNTHESIS_H_

#include <cstdint>

#include "src/core/example_cache.h"

namespace iccache {

struct DpSynthesisConfig {
  // Privacy budget. Token keep-probability follows randomized response:
  // keep = exp(eps_token) / (exp(eps_token) + 1) with eps_token = epsilon / k.
  double epsilon = 6.0;
  double delta = 1e-6;
  // Tokens treated as one record of k sensitive attributes.
  double sensitivity_tokens = 4.0;
  // Quality haircut applied to synthesized responses.
  double quality_penalty = 0.05;
  uint64_t seed = 0xd9;
};

struct DpSynthesisReport {
  size_t source_examples = 0;
  size_t synthesized = 0;
  double epsilon_spent = 0.0;
  double token_keep_probability = 0.0;
};

// Builds a DP-synthetic clone of `source` into `out` (which should be empty
// and configured with CacheAdmissionMode::kAllowAll).
DpSynthesisReport SynthesizeDpCache(const ExampleCache& source, ExampleCache* out,
                                    DpSynthesisConfig config = {});

}  // namespace iccache

#endif  // SRC_CORE_DP_SYNTHESIS_H_
