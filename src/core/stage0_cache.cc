#include "src/core/stage0_cache.h"

#include <algorithm>
#include <utility>

#include "src/index/hnsw.h"
#include "src/obs/trace.h"

namespace iccache {

RetrievalBackendConfig DefaultStage0Retrieval() {
  RetrievalBackendConfig config;
  config.kind = RetrievalBackendKind::kHnsw;
  return config;
}

Stage0ResponseCache::Stage0ResponseCache(std::shared_ptr<const Embedder> embedder,
                                         Stage0Config config)
    : embedder_(std::move(embedder)),
      config_(std::move(config)),
      index_(MakeRetrievalIndex(config_.retrieval, embedder_->dim(), config_.seed)),
      hit_threshold_(config_.initial_hit_threshold),
      grid_benefit_(config_.threshold_grid.size(), 0.0),
      grid_count_(config_.threshold_grid.size(), 0) {}

const Stage0Entry* Stage0ResponseCache::Nearest(const std::vector<float>& embedding,
                                                double* similarity) const {
  const std::vector<SearchResult> results = index_->Search(embedding, 1);
  if (results.empty()) {
    return nullptr;
  }
  const auto it = entries_.find(results[0].id);
  if (it == entries_.end()) {
    return nullptr;
  }
  *similarity = results[0].score;
  return &it->second;
}

std::optional<Stage0Probe> Stage0ResponseCache::Probe(const std::vector<float>& embedding,
                                                      double now) const {
  // arg0: 1 when a nearest entry was found, arg1: 1 when it was also fresh.
  TraceSpan span(TraceCategory::kStage0Probe);
  double similarity = 0.0;
  const Stage0Entry* nearest = Nearest(embedding, &similarity);
  if (nearest == nullptr) {
    return std::nullopt;
  }
  Stage0Probe probe;
  probe.entry = *nearest;
  probe.similarity = similarity;
  probe.fresh = config_.ttl_s <= 0.0 || now - nearest->admitted_time <= config_.ttl_s;
  span.SetArgs(1, probe.fresh ? 1 : 0);
  return probe;
}

std::optional<Stage0Probe> Stage0ResponseCache::Probe(const Request& request, double now) const {
  return Probe(embedder_->Embed(request.text), now);
}

void Stage0ResponseCache::ProbeBatch(const float* embeddings, size_t num_queries,
                                     size_t query_dim, const double* nows,
                                     SearchScratch* scratch,
                                     std::vector<std::optional<Stage0Probe>>* out) const {
  out->assign(num_queries, std::nullopt);
  if (num_queries == 0) {
    return;
  }
  index_->SearchBatch(embeddings, num_queries, query_dim, /*k=*/1, scratch);
  for (size_t i = 0; i < num_queries; ++i) {
    // Same span shape as Probe: arg0 = found, arg1 = fresh.
    TraceSpan span(TraceCategory::kStage0Probe);
    if (scratch->ResultCountOf(i) == 0) {
      continue;
    }
    const SearchResult& top = scratch->ResultsOf(i)[0];
    const auto it = entries_.find(top.id);
    if (it == entries_.end()) {
      continue;
    }
    Stage0Probe probe;
    probe.entry = it->second;
    probe.similarity = top.score;
    probe.fresh =
        config_.ttl_s <= 0.0 || nows[i] - it->second.admitted_time <= config_.ttl_s;
    span.SetArgs(1, probe.fresh ? 1 : 0);
    (*out)[i] = std::move(probe);
  }
}

std::vector<Stage0Probe> Stage0ResponseCache::ProbeK(const std::vector<float>& embedding,
                                                     size_t k, double now) const {
  std::vector<Stage0Probe> probes;
  for (const SearchResult& result : index_->Search(embedding, k)) {
    const auto it = entries_.find(result.id);
    if (it == entries_.end()) {
      continue;
    }
    Stage0Probe probe;
    probe.entry = it->second;
    probe.similarity = result.score;
    probe.fresh = config_.ttl_s <= 0.0 || now - it->second.admitted_time <= config_.ttl_s;
    if (!probe.fresh) {
      continue;
    }
    probes.push_back(std::move(probe));
  }
  return probes;
}

std::optional<double> Stage0ResponseCache::NearestSimilarity(
    const std::vector<float>& embedding) const {
  const std::vector<SearchResult> results = index_->Search(embedding, 1);
  if (results.empty()) {
    return std::nullopt;
  }
  return results[0].score;
}

std::optional<double> Stage0ResponseCache::NearestSimilarity(const Request& request) const {
  return NearestSimilarity(embedder_->Embed(request.text));
}

uint64_t Stage0ResponseCache::Put(const Request& request, std::vector<float> embedding,
                                  std::string response_text, double response_quality,
                                  int response_tokens, double now,
                                  const Stage0DedupeHint* dedupe_hint) {
  if (response_quality < config_.min_admit_quality) {
    return 0;
  }

  // Dedupe: byte-identical text always merges; otherwise a near-exact
  // neighbour (paraphrase-of-a-paraphrase traffic) absorbs the insert. The
  // stored response only changes when the new one is better — repeated
  // traffic must not degrade a good cached answer — but recency is always
  // refreshed: the entry just proved it matches live traffic.
  uint64_t existing_id = 0;
  const auto exact = id_by_text_.find(request.text);
  if (exact != id_by_text_.end()) {
    existing_id = exact->second;
  } else if (dedupe_hint != nullptr) {
    // Prepare-phase hint: no index search on the serial path. Revalidate —
    // the hinted entry may have been evicted since the probe.
    if (dedupe_hint->id != 0 && dedupe_hint->similarity >= config_.dedupe_min_similarity &&
        entries_.count(dedupe_hint->id) > 0) {
      existing_id = dedupe_hint->id;
    }
  } else {
    double similarity = 0.0;
    const Stage0Entry* nearest = Nearest(embedding, &similarity);
    if (nearest != nullptr && similarity >= config_.dedupe_min_similarity) {
      existing_id = nearest->id;
    }
  }
  if (existing_id != 0) {
    Stage0Entry& entry = entries_[existing_id];
    entry.admitted_time = now;
    if (response_quality > entry.response_quality) {
      used_bytes_ -= entry.SizeBytes();
      entry.response_text = std::move(response_text);
      entry.response_quality = response_quality;
      entry.response_tokens = response_tokens;
      used_bytes_ += entry.SizeBytes();
    }
    return existing_id;
  }

  const uint64_t id = next_id_++;
  Stage0Entry entry;
  entry.id = id;
  entry.request = request;
  entry.response_text = std::move(response_text);
  entry.response_quality = response_quality;
  entry.response_tokens = response_tokens;
  entry.admitted_time = now;
  used_bytes_ += entry.SizeBytes();
  id_by_text_[entry.request.text] = id;
  entries_[id] = std::move(entry);
  index_->Add(id, std::move(embedding));
  EnforceBounds();
  return entries_.count(id) > 0 ? id : 0;
}

uint64_t Stage0ResponseCache::Put(const Request& request, double response_quality,
                                  int response_tokens, double now) {
  return Put(request, embedder_->Embed(request.text), "[cached-response]", response_quality,
             response_tokens, now);
}

void Stage0ResponseCache::RecordHit(uint64_t id, double now) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    return;
  }
  ++it->second.hit_count;
  it->second.last_hit_time = now;
}

bool Stage0ResponseCache::RemoveEntry(uint64_t id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    return false;
  }
  used_bytes_ -= it->second.SizeBytes();
  const auto text_it = id_by_text_.find(it->second.request.text);
  if (text_it != id_by_text_.end() && text_it->second == id) {
    id_by_text_.erase(text_it);
  }
  index_->Remove(id);
  entries_.erase(it);
  return true;
}

bool Stage0ResponseCache::Invalidate(uint64_t id) { return RemoveEntry(id); }

bool Stage0ResponseCache::OnQualityFeedback(uint64_t id, double observed_reuse_quality) {
  if (observed_reuse_quality >= config_.invalidate_below_quality) {
    return false;
  }
  return RemoveEntry(id);
}

size_t Stage0ResponseCache::ExpireStale(double now) {
  if (config_.ttl_s <= 0.0) {
    return 0;
  }
  std::vector<uint64_t> stale;
  for (const auto& [id, entry] : entries_) {
    if (now - entry.admitted_time > config_.ttl_s) {
      stale.push_back(id);
    }
  }
  std::sort(stale.begin(), stale.end());
  for (uint64_t id : stale) {
    RemoveEntry(id);
  }
  return stale.size();
}

void Stage0ResponseCache::EnforceBounds() {
  const bool over_entries = config_.max_entries > 0 && entries_.size() > config_.max_entries;
  const bool over_bytes =
      config_.capacity_bytes > 0 &&
      static_cast<double>(used_bytes_) >
          static_cast<double>(config_.capacity_bytes) * std::min(1.0, config_.high_watermark);
  if (!over_entries && !over_bytes) {
    return;
  }
  // Deterministic worst-first ranking: least recently useful (older of
  // last-hit/admission), then lower quality, then older id. A plain total
  // order — not a knapsack — keeps the insert path O(n log n) worst case and
  // identical across runs.
  struct Ranked {
    uint64_t id;
    double last_use;
    double quality;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    ranked.push_back({id, std::max(entry.admitted_time, entry.last_hit_time),
                      entry.response_quality});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.last_use != b.last_use) {
      return a.last_use < b.last_use;
    }
    if (a.quality != b.quality) {
      return a.quality < b.quality;
    }
    return a.id < b.id;
  });
  const size_t entry_target =
      config_.max_entries > 0 ? config_.max_entries : entries_.size();
  const double byte_target =
      config_.capacity_bytes > 0
          ? static_cast<double>(config_.capacity_bytes) * std::min(1.0, config_.low_watermark)
          : static_cast<double>(used_bytes_);
  for (const Ranked& victim : ranked) {
    if (entries_.size() <= entry_target && static_cast<double>(used_bytes_) <= byte_target) {
      break;
    }
    if (entries_.size() <= 1) {
      break;  // never evict the entry just inserted down to an empty cache
    }
    RemoveEntry(victim.id);
  }
}

void Stage0ResponseCache::OnHitFeedback(double similarity, double reused_quality,
                                        double fresh_quality, int tokens_saved) {
  for (size_t g = 0; g < config_.threshold_grid.size(); ++g) {
    if (similarity >= config_.threshold_grid[g]) {
      grid_benefit_[g] += (reused_quality - fresh_quality) +
                          config_.token_saving_weight * static_cast<double>(tokens_saved);
    }
    // A cell the similarity does not clear would have generated fresh: zero
    // net benefit, but the sample still counts so cell means are comparable.
    ++grid_count_[g];
  }
}

void Stage0ResponseCache::AdvanceWindow(size_t requests) {
  if (requests == 0 || !config_.learn_threshold) {
    return;
  }
  const uint64_t before = requests_seen_;
  requests_seen_ += requests;
  if (config_.adapt_every_n_requests == 0) {
    return;
  }
  const uint64_t n = config_.adapt_every_n_requests;
  if (before / n != requests_seen_ / n) {
    AdaptThresholdFromGrid();
  }
}

void Stage0ResponseCache::AdaptThresholdFromGrid() {
  double best_benefit = -1e300;
  double best_threshold = hit_threshold_;
  bool any = false;
  for (size_t g = 0; g < config_.threshold_grid.size(); ++g) {
    if (grid_count_[g] == 0) {
      continue;
    }
    const double mean_benefit = grid_benefit_[g] / static_cast<double>(grid_count_[g]);
    if (mean_benefit > best_benefit) {
      best_benefit = mean_benefit;
      best_threshold = config_.threshold_grid[g];
      any = true;
    }
  }
  if (any) {
    hit_threshold_ = best_threshold;
  }
}

Stage0AdaptiveState Stage0ResponseCache::SaveAdaptiveState() const {
  Stage0AdaptiveState state;
  state.hit_threshold = hit_threshold_;
  state.requests_seen = requests_seen_;
  state.grid_benefit = grid_benefit_;
  state.grid_count = grid_count_;
  return state;
}

bool Stage0ResponseCache::RestoreAdaptiveState(const Stage0AdaptiveState& state) {
  if (state.grid_benefit.size() != config_.threshold_grid.size() ||
      state.grid_count.size() != config_.threshold_grid.size()) {
    return false;
  }
  hit_threshold_ = state.hit_threshold;
  requests_seen_ = state.requests_seen;
  grid_benefit_ = state.grid_benefit;
  grid_count_ = state.grid_count;
  return true;
}

void Stage0ResponseCache::ExportEntries(
    const std::function<void(const Stage0Entry&, const std::vector<float>&)>& fn) const {
  std::vector<uint64_t> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  std::vector<float> embedding;
  for (uint64_t id : ids) {
    if (!index_->GetVector(id, &embedding)) {
      embedding.assign(embedder_->dim(), 0.0f);
    }
    fn(entries_.at(id), embedding);
  }
}

bool Stage0ResponseCache::ImportEntry(const Stage0Entry& entry, std::vector<float> embedding,
                                      bool add_to_index) {
  if (entry.id == 0 || entries_.count(entry.id) > 0) {
    return false;
  }
  used_bytes_ += entry.SizeBytes();
  id_by_text_[entry.request.text] = entry.id;
  entries_[entry.id] = entry;
  next_id_ = std::max(next_id_, entry.id + 1);
  if (add_to_index) {
    index_->Add(entry.id, std::move(embedding));
  }
  return true;
}

void Stage0ResponseCache::restore_next_id(uint64_t next_id) {
  next_id_ = std::max(next_id_, next_id);
}

bool Stage0ResponseCache::SaveIndexBlob(std::string* out) const {
  const auto* hnsw = dynamic_cast<const HnswIndex*>(index_.get());
  if (hnsw == nullptr) {
    return false;
  }
  hnsw->SaveGraph(out);
  return true;
}

bool Stage0ResponseCache::LoadIndexBlob(const std::string& blob) {
  auto* hnsw = dynamic_cast<HnswIndex*>(index_.get());
  return hnsw != nullptr && hnsw->LoadGraph(blob);
}

}  // namespace iccache
