#include "src/core/retrieval_backend.h"

#include <utility>

namespace iccache {

PreparedAdmission PrepareAdmissionPayload(const PiiScrubber& scrubber, CacheAdmissionMode mode,
                                          const Embedder& embedder, const Request& request,
                                          const std::vector<float>* text_embedding) {
  PreparedAdmission prepared;
  AdmissionDecision decision = DecideAdmission(scrubber, mode, request.text);
  if (!decision.admit) {
    return prepared;
  }
  prepared.admit = true;
  if (text_embedding != nullptr && decision.sanitized_text == request.text) {
    prepared.embedding = *text_embedding;
  } else {
    prepared.embedding = embedder.Embed(decision.sanitized_text);
  }
  prepared.sanitized_text = std::move(decision.sanitized_text);
  return prepared;
}

void ExampleStore::FindSimilarBatch(const float* queries, size_t num_queries, size_t query_dim,
                                    size_t k, SearchScratch* scratch,
                                    std::vector<std::vector<SearchResult>>* out) const {
  (void)scratch;
  out->resize(num_queries);
  static thread_local std::vector<float> query;
  for (size_t i = 0; i < num_queries; ++i) {
    query.assign(queries + i * query_dim, queries + (i + 1) * query_dim);
    (*out)[i] = FindSimilar(query, k);
  }
}

std::unique_ptr<VectorIndex> MakeRetrievalIndex(const RetrievalBackendConfig& config, size_t dim,
                                                uint64_t seed) {
  switch (config.kind) {
    case RetrievalBackendKind::kFlat:
      return std::make_unique<FlatIndex>(dim);
    case RetrievalBackendKind::kHnsw: {
      HnswIndexConfig hnsw = config.hnsw;
      hnsw.dim = dim;
      hnsw.seed = seed;
      hnsw.quantize_int8 = config.quantize == QuantizationKind::kInt8;
      hnsw.rerank_k = config.rerank_k;
      return std::make_unique<HnswIndex>(hnsw);
    }
    case RetrievalBackendKind::kKMeans:
    default: {
      KMeansIndexConfig kmeans;
      kmeans.dim = dim;
      kmeans.nprobe = config.nprobe;
      kmeans.seed = seed;
      return std::make_unique<KMeansIndex>(kmeans);
    }
  }
}

const char* RetrievalBackendKindName(RetrievalBackendKind kind) {
  switch (kind) {
    case RetrievalBackendKind::kFlat:
      return "flat";
    case RetrievalBackendKind::kHnsw:
      return "hnsw";
    case RetrievalBackendKind::kKMeans:
    default:
      return "kmeans";
  }
}

bool ParseRetrievalBackendKind(const std::string& name, RetrievalBackendKind* out) {
  if (name == "flat") {
    *out = RetrievalBackendKind::kFlat;
  } else if (name == "kmeans") {
    *out = RetrievalBackendKind::kKMeans;
  } else if (name == "hnsw") {
    *out = RetrievalBackendKind::kHnsw;
  } else {
    return false;
  }
  return true;
}

const char* QuantizationKindName(QuantizationKind kind) {
  switch (kind) {
    case QuantizationKind::kInt8:
      return "int8";
    case QuantizationKind::kNone:
    default:
      return "none";
  }
}

bool ParseQuantizationKind(const std::string& name, QuantizationKind* out) {
  if (name == "none") {
    *out = QuantizationKind::kNone;
  } else if (name == "int8") {
    *out = QuantizationKind::kInt8;
  } else {
    return false;
  }
  return true;
}

}  // namespace iccache
