// Stage-2 proxy utility model (section 4.1): a lightweight learned model that
// estimates, per (request, candidate example) pair, how much the example will
// improve the final response. The paper uses a TinyBERT-scale scorer trained
// offline from sampled user feedback; here it is an online logistic regressor
// over the features such a scorer would consume. What matters architecturally
// is that the estimate combines relevance with example quality and the target
// model's capability gap — the signals pure cosine similarity misses
// (Figure 7's weak correlation).
#ifndef SRC_CORE_PROXY_MODEL_H_
#define SRC_CORE_PROXY_MODEL_H_

#include <array>
#include <cstddef>

namespace iccache {

struct ProxyFeatures {
  static constexpr size_t kDim = 7;

  // [bias, similarity, example_quality, capability_gap, same_task,
  //  length_cost, similarity * example_quality]
  std::array<double, kDim> x{};
};

// Builds the feature vector. `similarity` is embedding cosine; quality and
// capabilities are in [0, 1]; `example_tokens` is the prompt-length cost.
ProxyFeatures MakeProxyFeatures(double similarity, double example_quality,
                                double source_capability, double target_capability,
                                bool same_task, int example_tokens);

struct ProxyModelConfig {
  double learning_rate = 0.03;
  double l2 = 1e-4;
};

class ProxyUtilityModel {
 public:
  explicit ProxyUtilityModel(ProxyModelConfig config = {});

  // Predicted helpfulness in [0, 1].
  double Predict(const ProxyFeatures& features) const;

  // One SGD step toward the observed helpfulness label in [0, 1].
  void Update(const ProxyFeatures& features, double label);

  size_t updates() const { return updates_; }
  const std::array<double, ProxyFeatures::kDim>& weights() const { return weights_; }

  // Exact learned-state restore (snapshot persistence).
  void RestoreState(const std::array<double, ProxyFeatures::kDim>& weights, size_t updates) {
    weights_ = weights;
    updates_ = updates;
  }

 private:
  ProxyModelConfig config_;
  std::array<double, ProxyFeatures::kDim> weights_{};
  size_t updates_ = 0;
};

}  // namespace iccache

#endif  // SRC_CORE_PROXY_MODEL_H_
