#include "src/core/sharded_cache.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/common/rng.h"

namespace iccache {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

size_t Log2(size_t pow2) {
  size_t bits = 0;
  while ((size_t{1} << bits) < pow2) {
    ++bits;
  }
  return bits;
}

}  // namespace

ShardedExampleCache::ShardedExampleCache(std::shared_ptr<const Embedder> embedder,
                                         ShardedCacheConfig config)
    : embedder_(std::move(embedder)), config_(config) {
  const size_t n = RoundUpPow2(std::max<size_t>(1, config.num_shards));
  shard_bits_ = Log2(n);
  shard_mask_ = n - 1;

  ExampleCacheConfig shard_config = config.cache;
  if (shard_config.capacity_bytes > 0) {
    shard_config.capacity_bytes =
        std::max<int64_t>(1, shard_config.capacity_bytes / static_cast<int64_t>(n));
  }
  shards_ = std::vector<Shard>(n);
  for (size_t i = 0; i < n; ++i) {
    ExampleCacheConfig c = shard_config;
    c.seed = Mix64(shard_config.seed ^ (0x5a4dull + i));
    shards_[i].cache = std::make_unique<ExampleCache>(embedder_, c);
  }
}

size_t ShardedExampleCache::ShardOfRequest(const Request& request) const {
  return static_cast<size_t>(Mix64(request.id ^ 0x9e3779b97f4a7c15ull) & shard_mask_);
}

uint64_t ShardedExampleCache::Put(const Request& request, std::string response_text,
                                  double response_quality, double source_capability,
                                  int response_tokens, double now) {
  PreparedAdmission prepared = PrepareAdmission(request);
  return PutPrepared(request, std::move(prepared), std::move(response_text), response_quality,
                     source_capability, response_tokens, now);
}

PreparedAdmission ShardedExampleCache::PrepareAdmission(
    const Request& request, const std::vector<float>* text_embedding) const {
  PreparedAdmission prepared;
  AdmissionDecision decision =
      DecideAdmission(scrubber_, config_.cache.admission_mode, request.text);
  if (!decision.admit) {
    return prepared;
  }
  prepared.admit = true;
  if (text_embedding != nullptr && decision.sanitized_text == request.text) {
    prepared.embedding = *text_embedding;
  } else {
    prepared.embedding = embedder_->Embed(decision.sanitized_text);
  }
  prepared.sanitized_text = std::move(decision.sanitized_text);
  return prepared;
}

uint64_t ShardedExampleCache::PutPrepared(const Request& request, PreparedAdmission prepared,
                                          std::string response_text, double response_quality,
                                          double source_capability, int response_tokens,
                                          double now) {
  if (!prepared.admit) {
    return 0;
  }
  const size_t shard = ShardOfRequest(request);
  std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
  const uint64_t inner = shards_[shard].cache->PutPrepared(
      request, std::move(prepared.sanitized_text), std::move(prepared.embedding),
      std::move(response_text), response_quality, source_capability, response_tokens, now);
  return GlobalId(inner, shard);
}

std::vector<SearchResult> ShardedExampleCache::FindSimilar(const Request& request,
                                                           size_t k) const {
  return FindSimilar(embedder_->Embed(request.text), k);
}

std::vector<SearchResult> ShardedExampleCache::FindSimilar(const std::vector<float>& embedding,
                                                           size_t k) const {
  std::vector<SearchResult> merged;
  merged.reserve(k * shards_.size());
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    std::shared_lock<std::shared_mutex> lock(shards_[shard].mu);
    for (SearchResult result : shards_[shard].cache->FindSimilar(embedding, k)) {
      result.id = GlobalId(result.id, shard);
      merged.push_back(result);
    }
  }
  std::sort(merged.begin(), merged.end(), [](const SearchResult& a, const SearchResult& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.id < b.id;  // deterministic tie-break
  });
  if (merged.size() > k) {
    merged.resize(k);
  }
  return merged;
}

bool ShardedExampleCache::Snapshot(uint64_t id, Example* out) const {
  const size_t shard = ShardOfId(id);
  std::shared_lock<std::shared_mutex> lock(shards_[shard].mu);
  const Example* example = shards_[shard].cache->Get(InnerId(id));
  if (example == nullptr) {
    return false;
  }
  *out = *example;
  out->id = id;  // expose the global id, not the shard-internal one
  return true;
}

bool ShardedExampleCache::Contains(uint64_t id) const {
  const size_t shard = ShardOfId(id);
  std::shared_lock<std::shared_mutex> lock(shards_[shard].mu);
  return shards_[shard].cache->Get(InnerId(id)) != nullptr;
}

bool ShardedExampleCache::Remove(uint64_t id) {
  const size_t shard = ShardOfId(id);
  std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
  return shards_[shard].cache->Remove(InnerId(id));
}

void ShardedExampleCache::RecordAccess(uint64_t id, double now) {
  const size_t shard = ShardOfId(id);
  std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
  shards_[shard].cache->RecordAccess(InnerId(id), now);
}

void ShardedExampleCache::RecordOffload(uint64_t id, double gain) {
  const size_t shard = ShardOfId(id);
  std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
  shards_[shard].cache->RecordOffload(InnerId(id), gain);
}

void ShardedExampleCache::DecayTick() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.cache->DecayTick();
  }
}

std::vector<uint64_t> ShardedExampleCache::EnforceCapacity() {
  std::vector<uint64_t> evicted;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
    for (uint64_t inner : shards_[shard].cache->EnforceCapacity()) {
      evicted.push_back(GlobalId(inner, shard));
    }
  }
  return evicted;
}

size_t ShardedExampleCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.cache->size();
  }
  return total;
}

int64_t ShardedExampleCache::used_bytes() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.cache->used_bytes();
  }
  return total;
}

std::vector<uint64_t> ShardedExampleCache::AllIds() const {
  std::vector<uint64_t> ids;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    std::shared_lock<std::shared_mutex> lock(shards_[shard].mu);
    for (uint64_t inner : shards_[shard].cache->AllIds()) {
      ids.push_back(GlobalId(inner, shard));
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace iccache
