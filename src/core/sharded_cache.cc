#include "src/core/sharded_cache.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "src/common/binio.h"
#include "src/common/mathutil.h"
#include "src/common/rng.h"

namespace iccache {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

size_t Log2(size_t pow2) {
  size_t bits = 0;
  while ((size_t{1} << bits) < pow2) {
    ++bits;
  }
  return bits;
}

}  // namespace

ShardedExampleCache::ShardedExampleCache(std::shared_ptr<const Embedder> embedder,
                                         ShardedCacheConfig config)
    : embedder_(std::move(embedder)), config_(config) {
  const size_t n = RoundUpPow2(std::max<size_t>(1, config.num_shards));
  shard_bits_ = Log2(n);
  shard_mask_ = n - 1;

  // Shards are unbounded: the byte budget is global (watermark accounting in
  // this wrapper), so a hot shard may use more than an even split.
  ExampleCacheConfig shard_config = config.cache;
  shard_config.capacity_bytes = -1;
  shards_ = std::vector<Shard>(n);
  for (size_t i = 0; i < n; ++i) {
    ExampleCacheConfig c = shard_config;
    c.seed = Mix64(shard_config.seed ^ (0x5a4dull + i));
    shards_[i].cache = std::make_unique<ExampleCache>(embedder_, c);
  }
}

size_t ShardedExampleCache::ShardOfRequest(const Request& request) const {
  return static_cast<size_t>(Mix64(request.id ^ 0x9e3779b97f4a7c15ull) & shard_mask_);
}

uint64_t ShardedExampleCache::Put(const Request& request, std::string response_text,
                                  double response_quality, double source_capability,
                                  int response_tokens, double now) {
  PreparedAdmission prepared = PrepareAdmission(request);
  return PutPrepared(request, std::move(prepared), std::move(response_text), response_quality,
                     source_capability, response_tokens, now);
}

PreparedAdmission ShardedExampleCache::PrepareAdmission(
    const Request& request, const std::vector<float>* text_embedding) const {
  return PrepareAdmissionPayload(scrubber_, config_.cache.admission_mode, *embedder_, request,
                                 text_embedding);
}

uint64_t ShardedExampleCache::PutPrepared(const Request& request, PreparedAdmission prepared,
                                          std::string response_text, double response_quality,
                                          double source_capability, int response_tokens,
                                          double now) {
  if (!prepared.admit) {
    return 0;
  }
  const size_t shard = ShardOfRequest(request);
  uint64_t inner = 0;
  {
    std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
    const int64_t before = shards_[shard].cache->used_bytes();
    inner = shards_[shard].cache->PutPrepared(
        request, std::move(prepared.sanitized_text), std::move(prepared.embedding),
        std::move(response_text), response_quality, source_capability, response_tokens, now);
    used_bytes_total_.fetch_add(shards_[shard].cache->used_bytes() - before,
                                std::memory_order_relaxed);
  }
  // Automatic capacity enforcement past the high watermark (the shard lock is
  // released first: EnforceCapacity re-locks every shard in turn). Suspended
  // while a commit pipeline publishes a window from several lanes at once
  // (set_defer_capacity): the publisher runs one deterministic enforcement
  // after the lanes join instead.
  const int64_t capacity = config_.cache.capacity_bytes;
  if (capacity > 0 && !defer_capacity_.load(std::memory_order_relaxed) &&
      static_cast<double>(used_bytes()) >
          static_cast<double>(capacity) * config_.cache.high_watermark) {
    EnforceCapacity();
  }
  return GlobalId(inner, shard);
}

std::vector<SearchResult> ShardedExampleCache::FindSimilar(const Request& request,
                                                           size_t k) const {
  return FindSimilar(embedder_->Embed(request.text), k);
}

std::vector<SearchResult> ShardedExampleCache::FindSimilar(const std::vector<float>& embedding,
                                                           size_t k) const {
  std::vector<SearchResult> merged;
  merged.reserve(k * shards_.size());
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    std::shared_lock<std::shared_mutex> lock(shards_[shard].mu);
    for (SearchResult result : shards_[shard].cache->FindSimilar(embedding, k)) {
      result.id = GlobalId(result.id, shard);
      merged.push_back(result);
    }
  }
  std::sort(merged.begin(), merged.end(), [](const SearchResult& a, const SearchResult& b) {
    if (a.score != b.score) {
      return a.score > b.score;
    }
    return a.id < b.id;  // deterministic tie-break
  });
  if (merged.size() > k) {
    merged.resize(k);
  }
  return merged;
}

void ShardedExampleCache::FindSimilarBatch(const float* queries, size_t num_queries,
                                           size_t query_dim, size_t k, SearchScratch* scratch,
                                           std::vector<std::vector<SearchResult>>* out) const {
  out->resize(num_queries);
  for (auto& merged : *out) {
    merged.clear();  // capacity retained: steady-state batches do not allocate
  }
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    std::shared_lock<std::shared_mutex> lock(shards_[shard].mu);
    shards_[shard].cache->index().SearchBatch(queries, num_queries, query_dim, k, scratch);
    for (size_t i = 0; i < num_queries; ++i) {
      const SearchResult* results = scratch->ResultsOf(i);
      for (size_t r = 0; r < scratch->ResultCountOf(i); ++r) {
        SearchResult global = results[r];
        global.id = GlobalId(global.id, shard);
        (*out)[i].push_back(global);
      }
    }
  }
  for (auto& merged : *out) {
    std::sort(merged.begin(), merged.end(), [](const SearchResult& a, const SearchResult& b) {
      if (a.score != b.score) {
        return a.score > b.score;
      }
      return a.id < b.id;  // deterministic tie-break
    });
    if (merged.size() > k) {
      merged.resize(k);
    }
  }
}

bool ShardedExampleCache::Snapshot(uint64_t id, Example* out) const {
  const size_t shard = ShardOfId(id);
  std::shared_lock<std::shared_mutex> lock(shards_[shard].mu);
  const Example* example = shards_[shard].cache->Get(InnerId(id));
  if (example == nullptr) {
    return false;
  }
  *out = *example;
  out->id = id;  // expose the global id, not the shard-internal one
  return true;
}

bool ShardedExampleCache::Contains(uint64_t id) const {
  const size_t shard = ShardOfId(id);
  std::shared_lock<std::shared_mutex> lock(shards_[shard].mu);
  return shards_[shard].cache->Get(InnerId(id)) != nullptr;
}

bool ShardedExampleCache::Remove(uint64_t id) {
  const size_t shard = ShardOfId(id);
  std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
  const int64_t before = shards_[shard].cache->used_bytes();
  const bool removed = shards_[shard].cache->Remove(InnerId(id));
  used_bytes_total_.fetch_add(shards_[shard].cache->used_bytes() - before,
                              std::memory_order_relaxed);
  return removed;
}

bool ShardedExampleCache::UpdateExample(uint64_t id,
                                        const std::function<void(Example&)>& mutate) {
  const size_t shard = ShardOfId(id);
  std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
  const int64_t before = shards_[shard].cache->used_bytes();
  const bool updated = shards_[shard].cache->UpdateExample(InnerId(id), mutate);
  used_bytes_total_.fetch_add(shards_[shard].cache->used_bytes() - before,
                              std::memory_order_relaxed);
  return updated;
}

void ShardedExampleCache::RecordAccess(uint64_t id, double now) {
  const size_t shard = ShardOfId(id);
  std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
  shards_[shard].cache->RecordAccess(InnerId(id), now);
}

void ShardedExampleCache::RecordOffload(uint64_t id, double gain) {
  const size_t shard = ShardOfId(id);
  std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
  shards_[shard].cache->RecordOffload(InnerId(id), gain);
}

void ShardedExampleCache::DecayTick() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.cache->DecayTick();
  }
}

std::vector<uint64_t> ShardedExampleCache::EnforceCapacity() {
  std::vector<uint64_t> evicted;
  const int64_t capacity = config_.cache.capacity_bytes;
  const int64_t total = used_bytes();
  // Evict once usage passes the high watermark; a watermark above 1.0 (used
  // by tests to disable auto-eviction) still enforces at the capacity line.
  const double trigger = static_cast<double>(capacity) *
                         std::min(1.0, config_.cache.high_watermark);
  if (capacity <= 0 || static_cast<double>(total) <= trigger) {
    return evicted;
  }
  const double target = static_cast<double>(capacity) *
                        Clamp(config_.cache.low_watermark, 0.1, 1.0);
  // Apportion the global target across shards in proportion to their usage:
  // a hot shard keeps a larger slice of the budget than a cold one.
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
    const int64_t before = shards_[shard].cache->used_bytes();
    const int64_t shard_target = static_cast<int64_t>(
        target * static_cast<double>(before) / static_cast<double>(total));
    for (uint64_t inner : shards_[shard].cache->EvictToBytes(shard_target)) {
      evicted.push_back(GlobalId(inner, shard));
    }
    used_bytes_total_.fetch_add(shards_[shard].cache->used_bytes() - before,
                                std::memory_order_relaxed);
  }
  evicted_total_.fetch_add(evicted.size(), std::memory_order_relaxed);
  return evicted;
}

size_t ShardedExampleCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    total += shard.cache->size();
  }
  return total;
}

std::vector<uint64_t> ShardedExampleCache::AllIds() const {
  std::vector<uint64_t> ids;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    std::shared_lock<std::shared_mutex> lock(shards_[shard].mu);
    for (uint64_t inner : shards_[shard].cache->AllIds()) {
      ids.push_back(GlobalId(inner, shard));
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ShardedExampleCache::ExportExamples(
    const std::function<void(const Example&, const std::vector<float>&)>& fn) const {
  // Global-id order with one shard lock held at a time: a concurrent writer
  // may mutate between iterations (examples admitted or evicted mid-export
  // are included on a best-effort basis), but every record handed to `fn` is
  // a consistent copy taken under its shard lock.
  std::vector<float> embedding;
  for (uint64_t id : AllIds()) {
    const size_t shard = ShardOfId(id);
    std::shared_lock<std::shared_mutex> lock(shards_[shard].mu);
    const Example* example = shards_[shard].cache->Get(InnerId(id));
    if (example == nullptr) {
      continue;  // evicted since the id snapshot
    }
    embedding.clear();
    shards_[shard].cache->index().GetVector(InnerId(id), &embedding);
    Example copy = *example;
    copy.id = id;  // expose the global id, matching Snapshot()
    fn(copy, embedding);
  }
}

MaintenanceCut ShardedExampleCache::ExportMaintenanceCut() const {
  // Every shard lock, shared, ascending (same discipline as
  // ExportSnapshotCut): the records and byte counts form one epoch-consistent
  // view even while other threads serve.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    locks.emplace_back(shard.mu);
  }

  MaintenanceCut cut;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    const ExampleCache& cache = *shards_[shard].cache;
    for (uint64_t inner : cache.AllIds()) {
      Example copy = *cache.Get(inner);
      copy.id = GlobalId(inner, shard);
      cut.examples.push_back(std::move(copy));
    }
    cut.used_bytes += cache.used_bytes();
  }
  std::sort(cut.examples.begin(), cut.examples.end(),
            [](const Example& a, const Example& b) { return a.id < b.id; });
  cut.capacity_bytes = config_.cache.capacity_bytes;
  cut.high_watermark = config_.cache.high_watermark;
  cut.low_watermark = config_.cache.low_watermark;
  cut.decay_factor = config_.cache.decay_factor;
  return cut;
}

StoreSnapshotCut ShardedExampleCache::ExportSnapshotCut() const {
  // Every shard lock, shared, in ascending order (writers take one unique
  // shard lock at a time, so this cannot deadlock): for the duration of the
  // export no admission, mutation, or eviction can slip between the example
  // records, the saved graphs, the insertion counters, and the byte counts.
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    locks.emplace_back(shard.mu);
  }

  StoreSnapshotCut cut;
  ByteWriter index_writer;
  index_writer.PutU64(shards_.size());
  bool native = true;
  for (size_t shard = 0; shard < shards_.size(); ++shard) {
    const ExampleCache& cache = *shards_[shard].cache;
    for (uint64_t inner : cache.AllIds()) {
      ExportedExample entry;
      entry.example = *cache.Get(inner);
      entry.example.id = GlobalId(inner, shard);
      cache.index().GetVector(inner, &entry.embedding);
      cut.examples.push_back(std::move(entry));
    }
    cut.next_ids.push_back(cache.ExportNextIds()[0]);
    if (native) {
      std::string blob;
      native = cache.SaveIndexBlob(&blob);
      if (native) {
        index_writer.PutString(blob);
      }
    }
    cut.used_bytes += cache.used_bytes();
  }
  std::sort(cut.examples.begin(), cut.examples.end(),
            [](const ExportedExample& a, const ExportedExample& b) {
              return a.example.id < b.example.id;
            });
  cut.native_index = native;
  if (native) {
    cut.index_blob = index_writer.TakeBytes();
  }
  return cut;
}

bool ShardedExampleCache::ImportExample(const Example& example, std::vector<float> embedding,
                                        bool add_to_index) {
  const uint64_t inner = InnerId(example.id);
  if (inner == 0) {
    return false;  // id 0 is the rejection sentinel; low bits alone are no id
  }
  const size_t shard = ShardOfId(example.id);
  Example local = example;
  local.id = inner;
  std::unique_lock<std::shared_mutex> lock(shards_[shard].mu);
  const int64_t before = shards_[shard].cache->used_bytes();
  const bool imported =
      shards_[shard].cache->ImportExample(local, std::move(embedding), add_to_index);
  used_bytes_total_.fetch_add(shards_[shard].cache->used_bytes() - before,
                              std::memory_order_relaxed);
  return imported;
}

std::vector<uint64_t> ShardedExampleCache::ExportNextIds() const {
  std::vector<uint64_t> next_ids;
  next_ids.reserve(shards_.size());
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    next_ids.push_back(shard.cache->ExportNextIds()[0]);
  }
  return next_ids;
}

bool ShardedExampleCache::ImportNextIds(const std::vector<uint64_t>& next_ids) {
  if (next_ids.size() != shards_.size()) {
    return false;  // shard count changed; keep the max(id)+1 counters
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::shared_mutex> lock(shards_[i].mu);
    shards_[i].cache->ImportNextIds({next_ids[i]});
  }
  return true;
}

bool ShardedExampleCache::SaveIndexBlob(std::string* out) const {
  ByteWriter writer;
  writer.PutU64(shards_.size());
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    std::string blob;
    if (!shard.cache->SaveIndexBlob(&blob)) {
      return false;  // backend has no native image (flat | kmeans)
    }
    writer.PutString(blob);
  }
  *out = writer.TakeBytes();
  return true;
}

bool ShardedExampleCache::LoadIndexBlob(const std::string& blob) {
  ByteReader reader(blob);
  const uint64_t shard_count = reader.GetU64();
  if (!reader.ok() || shard_count != shards_.size()) {
    return false;  // snapshot taken under a different shard count: rebuild
  }
  // Split first so a malformed trailing sub-blob is detected before any
  // shard is touched; a per-shard graph mismatch after that point still
  // reports false and the rebuild fallback overwrites cleanly.
  std::vector<std::string> per_shard;
  per_shard.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    per_shard.push_back(reader.GetString());
  }
  if (!reader.ok() || !reader.AtEnd()) {
    return false;
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::unique_lock<std::shared_mutex> lock(shards_[i].mu);
    if (!shards_[i].cache->LoadIndexBlob(per_shard[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace iccache
