// Two-stage example selector (section 4.1, Algorithm 1 lines 7-13).
//
// Stage 1 narrows the candidate pool with cheap embedding similarity against
// the cache's retrieval backend (flat | kmeans | hnsw); stage 2 scores each
// survivor with the proxy utility model. The combination step then assembles
// the final example list: it filters by the current dynamic utility
// threshold, deduplicates near-identical candidates (diversity), respects the
// prompt-token budget of the target model, and orders examples worst-to-best
// so the most helpful example sits adjacent to the question.
//
// The dynamic threshold adapts online: the selector periodically probes a
// grid of thresholds on sampled traffic and keeps the one with the best
// observed net benefit (quality gain minus token cost), per the paper's
// "Selecting Example Combinations".
//
// The selector runs against the ExampleStore interface, so the same pipeline
// serves the single-threaded ExampleCache and the concurrent
// ShardedExampleCache. For concurrent drivers the work is split in two:
//
//   PrepareCandidates  — stage 1 + stage 2, const and side-effect free; safe
//                        to fan out across worker threads (candidates are
//                        snapshot copies, no pointer escapes a shard lock).
//   CommitSelection    — the stateful combination step (threshold adaptation
//                        cadence, dynamic-threshold filter, diversity, token
//                        budget, worst-to-best ordering, access accounting);
//                        must run serially in arrival order.
//
// Select() composes the two for synchronous callers.
#ifndef SRC_CORE_SELECTOR_H_
#define SRC_CORE_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "src/core/proxy_model.h"
#include "src/core/retrieval_backend.h"
#include "src/llm/model_profile.h"
#include "src/workload/request.h"

namespace iccache {

struct SelectedExample {
  uint64_t example_id = 0;
  double similarity = 0.0;         // stage-1 score
  double predicted_utility = 0.0;  // stage-2 score
};

// A stage-1 survivor with everything the combination step (and a concurrent
// driver) needs: the scored example snapshot.
struct SelectorCandidate {
  uint64_t id = 0;
  double similarity = 0.0;  // stage-1 cosine
  double utility = 0.0;     // stage-2 proxy score
  Example example;          // snapshot copy (safe across shard locks)
  // Example-text embedding for the diversity guard. Empty until needed:
  // Combine embeds lazily, so serial callers only pay for candidates that
  // clear the threshold/budget filters; a concurrent driver prefills it in
  // the parallel phase via PrepareCandidates(embed_candidates=true).
  std::vector<float> embedding;
};

// The selector's online-learned state (snapshot persistence): the dynamic
// utility threshold plus the adaptation cadence counter and per-grid-cell
// net-benefit accounting that drive MaybeAdaptThreshold.
struct SelectorAdaptiveState {
  double utility_threshold = 0.0;
  uint64_t requests_seen = 0;
  std::vector<double> grid_benefit;
  std::vector<uint64_t> grid_count;
};

struct SelectorConfig {
  size_t stage1_candidates = 24;  // pre-selection pool size
  // Candidates below this cosine never reach stage 2: with anisotropic
  // embeddings, scores near the ~0.5 random-pair baseline carry no relevance
  // signal and such examples can only distract the model.
  double stage1_min_similarity = 0.70;
  size_t max_examples = 5;
  double initial_utility_threshold = 0.45;
  // Feedback labels are amplified around 0.5: per-request quality gains are
  // small (a few hundredths), and un-amplified labels would collapse the
  // proxy toward predicting the mean.
  double feedback_gain_scale = 3.0;
  // Diversity: drop a candidate whose embedding similarity to an already
  // selected example exceeds this (near-duplicates add tokens, not signal).
  double diversity_max_similarity = 0.985;
  // Prompt budget: examples may use at most this fraction of the target
  // model's context window.
  double context_budget_fraction = 0.5;
  // Threshold adaptation grid and cadence.
  std::vector<double> threshold_grid = {0.20, 0.30, 0.40, 0.50, 0.60};
  size_t adapt_every_n_requests = 512;
  // Net-benefit model for adaptation: quality gain per unit utility vs token
  // cost per example token (both in arbitrary consistent units).
  double token_cost_weight = 0.00002;
};

class ExampleSelector {
 public:
  ExampleSelector(ExampleStore* store, ProxyUtilityModel* proxy, SelectorConfig config = {});

  // Full two-stage selection for `request` targeting `target_model`.
  std::vector<SelectedExample> Select(const Request& request, const ModelProfile& target_model,
                                      double now);

  // Stage 1 only (exposed for the Figure 9 ablation).
  std::vector<SelectedExample> SelectStage1Only(const Request& request,
                                                const ModelProfile& target_model, double now);

  // --- Two-phase API for concurrent drivers --------------------------------

  // Pure preparation half: stage-1 retrieval + stage-2 proxy scoring.
  // Thread-safe (reads the store and the proxy, mutates nothing). Pass
  // `query_embedding` when the caller already embedded request.text to skip
  // the duplicate embedding pass; pass embed_candidates=true to also embed
  // every candidate's text here (moves the diversity-guard embedding work
  // into the parallel phase of a concurrent driver).
  std::vector<SelectorCandidate> PrepareCandidates(
      const Request& request, const ModelProfile& target_model,
      const std::vector<float>* query_embedding = nullptr,
      bool embed_candidates = false) const;

  // PrepareCandidates with the stage-1 ANN sweep hoisted out: consumes
  // `stage1` — the raw FindSimilar(query_embedding, stage1_candidates)
  // results the batched prepare path fetched via FindSimilarBatch — and runs
  // the identical filter / snapshot / stage-2 scoring pipeline. Byte-identical
  // output to PrepareCandidates for the same stage-1 results; emits the same
  // per-request stage1_retrieval / stage2_scoring trace spans.
  std::vector<SelectorCandidate> PrepareCandidatesFrom(
      const Request& request, const ModelProfile& target_model,
      const std::vector<SearchResult>& stage1, bool embed_candidates = false) const;

  // Stateful combination half: advances the adaptation cadence, applies the
  // current dynamic threshold, diversity guard, token budget, worst-to-best
  // ordering, and records accesses. Returns the picked candidates in
  // presentation (worst-to-best) order. Serial callers only.
  std::vector<SelectorCandidate> CommitSelection(const std::vector<SelectorCandidate>& candidates,
                                                 const ModelProfile& target_model, double now);

  // Frozen combination half for sharded commit lanes: applies the CURRENT
  // dynamic threshold, diversity guard, token budget, and worst-to-best
  // ordering exactly like CommitSelection, but mutates nothing — neither the
  // adaptation cadence (see AdvanceWindow) nor store access accounting. The
  // ids the stateful path would have passed to RecordAccess are appended to
  // `accessed` in recording order so a deterministic merge step can replay
  // them. Safe to call concurrently from many lanes: every request in a
  // batch window sees the same threshold (the window-start value), which is
  // what makes the lane partition invisible in the decisions.
  std::vector<SelectorCandidate> CommitSelectionFrozen(
      const std::vector<SelectorCandidate>& candidates, const ModelProfile& target_model,
      std::vector<uint64_t>* accessed) const;

  // Batched cadence advance for drivers that commit whole windows through
  // CommitSelectionFrozen: counts `requests` toward the adaptation cadence
  // and re-evaluates the threshold grid once if the counter crossed an
  // adapt_every_n_requests multiple. Serial callers only (window boundary).
  void AdvanceWindow(size_t requests);

  // Feeds an observed helpfulness label back into the proxy model and the
  // threshold adaptation accounting.
  void OnFeedback(const Request& request, const std::vector<SelectedExample>& used,
                  const ModelProfile& target_model, double observed_quality_gain);

  double utility_threshold() const { return utility_threshold_; }
  void set_utility_threshold(double threshold) { utility_threshold_ = threshold; }
  const SelectorConfig& config() const { return config_; }

  // Snapshot persistence. RestoreAdaptiveState returns false (leaving the
  // selector untouched) when the saved grid does not match this config's
  // threshold_grid size — a restored pool with a different grid keeps its
  // configured defaults instead of inheriting misaligned accounting.
  SelectorAdaptiveState SaveAdaptiveState() const;
  bool RestoreAdaptiveState(const SelectorAdaptiveState& state);

  // Converts committed candidates into the wire-level selection records.
  static std::vector<SelectedExample> ToSelected(const std::vector<SelectorCandidate>& picked);

 private:
  std::vector<SelectorCandidate> Stage1(const Request& request,
                                        const std::vector<float>* query_embedding,
                                        bool embed_candidates) const;
  // Shared stage-1 tail: filters raw ANN results by stage1_min_similarity,
  // snapshots survivors, optionally embeds candidate texts. Both Stage1 and
  // PrepareCandidatesFrom funnel through this loop.
  std::vector<SelectorCandidate> Stage1FromResults(const std::vector<SearchResult>& results,
                                                   bool embed_candidates) const;
  // Stage-2 proxy scoring applied in place (the PrepareCandidates tail).
  void ScoreStage2(const Request& request, const ModelProfile& target_model,
                   std::vector<SelectorCandidate>* candidates) const;
  // Pure combination core shared by the serial and frozen paths: collects the
  // ids RecordAccess would receive instead of recording them.
  std::vector<SelectorCandidate> CombineCore(const std::vector<SelectorCandidate>& candidates,
                                             const ModelProfile& target_model,
                                             bool apply_threshold,
                                             std::vector<uint64_t>* accessed) const;
  std::vector<SelectorCandidate> Combine(const std::vector<SelectorCandidate>& candidates,
                                         const ModelProfile& target_model, bool apply_threshold,
                                         double now);
  void MaybeAdaptThreshold();
  void AdaptThresholdFromGrid();

  ExampleStore* store_;
  ProxyUtilityModel* proxy_;
  SelectorConfig config_;
  double utility_threshold_;
  uint64_t requests_seen_ = 0;

  // Per-threshold running net benefit from feedback (threshold adaptation).
  std::vector<double> grid_benefit_;
  std::vector<uint64_t> grid_count_;
};

}  // namespace iccache

#endif  // SRC_CORE_SELECTOR_H_
