// IcCacheService: the synchronous Algorithm-1 facade tying the Example
// Selector, Request Router, and Example Manager together in front of the
// model backends. All policy logic is shared with the concurrent
// ServingDriver: selection in ExampleSelector, routing + fault bypass in
// src/core/pipeline.h, and the example lifecycle in ExampleManager over the
// ExampleStore interface — this class only sequences the steps and layers on
// the observed-feedback model, overhead accounting, and metrics.
//
//   ServeRequest:
//     1. RetrieveExamples  — two-stage selection targeting the small model;
//     2. RouteRequest      — bandit + load bias chooses the serving model;
//     3. GenerateResponse  — examples are prepended iff the chosen arm uses
//                            them (offloaded small-model serving);
//     4. ManageExamples    — feedback to router/selector, per-use gain
//                            accounting, admission of the new pair.
//
// Fault tolerance (section 5): when the selector or router component is
// marked failed, the request bypasses it — no examples, or a direct route to
// the default (large) backend — preserving service continuity.
#ifndef SRC_CORE_SERVICE_H_
#define SRC_CORE_SERVICE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/core/example_cache.h"
#include "src/core/manager.h"
#include "src/core/metrics.h"
#include "src/core/proxy_model.h"
#include "src/core/router.h"
#include "src/core/selector.h"
#include "src/core/stage0_cache.h"
#include "src/llm/generation.h"
#include "src/llm/model_profile.h"
#include "src/obs/watchdog.h"

namespace iccache {

struct ServiceConfig {
  std::string small_model = "gemma-2-2b";
  std::string large_model = "gemma-2-27b";

  // Stage-0 response tier: probe a bounded semantic response cache before
  // stage-1 retrieval; a confident hit serves the cached response at zero
  // generation cost. Off by default. The learned hit threshold, TTL, and
  // quality-feedback invalidation all live in Stage0Config.
  Stage0Config stage0;

  SelectorConfig selector;
  RouterConfig router;
  ManagerConfig manager;
  ExampleCacheConfig cache;

  // Observed-feedback model: user quality signals are noisy reads of the
  // latent quality, sampled at this rate (production systems sample ~1%; the
  // experiments use 1.0 to keep learning fast at small request counts).
  double feedback_noise = 0.08;
  double feedback_sample_rate = 1.0;
  // Preference comparisons on uncertainty-gated requests (Appendix A.2).
  bool enable_preference_feedback = true;
  // Fraction of offloaded requests probed with a shadow plain generation to
  // measure the examples' true gain (threshold adaptation, section 4.1).
  double selector_probe_rate = 0.08;

  // Component overheads charged per request (section 6.3, Figure 18).
  double selector_stage1_latency_s = 0.020;
  double selector_stage2_latency_s = 0.030;
  double router_latency_s = 0.010;
  double stage0_probe_latency_s = 0.004;  // embed + ANN probe (stage-0 only)

  // Persistence (src/persist): with `snapshot_path` set, `restore_on_start`
  // warm-starts the service from that file at construction (missing file =
  // cold start; other failures surface via restore_status()). SaveSnapshot
  // writes the same pool format the concurrent ServingDriver uses, so
  // snapshots interchange between the two stacks.
  std::string snapshot_path;
  bool restore_on_start = false;

  // Observability: the service snapshots its MetricsHub every
  // `metrics_window` requests (0 disables) and evaluates the SLO watchdog on
  // each snapshot. All watchdog rules default to disabled; note the service
  // exposes stage-0 counters without the `_total` suffix, which the
  // constructor rewires automatically.
  size_t metrics_window = 64;
  WatchdogConfig watchdog;

  uint64_t seed = 0x5e41;
};

struct ServeOutcome {
  GenerationResult generation;
  RouteDecision route;
  std::vector<SelectedExample> examples_used;  // empty when not offloaded
  bool offloaded = false;                      // served by the small model
  double overhead_latency_s = 0.0;             // selector + router overhead
  uint64_t admitted_example_id = 0;
  double observed_quality = 0.0;               // post-noise feedback signal

  // Stage-0 hit: the response was served from the response cache (zero
  // generation cost; generation.output_tokens == 0, no routing happened).
  bool stage0_hit = false;
  double stage0_similarity = 0.0;
};

class IcCacheService {
 public:
  IcCacheService(ServiceConfig config, const ModelCatalog* catalog,
                 GenerationSimulator* generator, std::shared_ptr<const Embedder> embedder);

  // Seeds the example pool with a historical request answered by the large
  // model (the paper's pool-initialization protocol, Appendix A.4).
  uint64_t SeedExample(const Request& request, double now);

  // Offline proxy training (section 4.1): the serving platform samples
  // requests, shadow-generates the small model's response with and without a
  // candidate example, and uses the contrast as the helpfulness label — the
  // reward-model/feedback pipeline the paper trains its TinyBERT proxy on.
  // Half the samples pair a query with a retrieved neighbour (hard
  // positives), half with a random example (negatives).
  void PretrainProxy(size_t num_samples);

  // Full Algorithm-1 serving path.
  ServeOutcome ServeRequest(const Request& request, double now);

  // Current cluster utilization (1.0 == at capacity) from the harness.
  void ObserveLoad(double load);

  // Periodic maintenance: utility decay, replay pass, eviction.
  void RunMaintenance(double now);

  // Fault injection (section 5).
  void set_selector_failed(bool failed) { selector_failed_ = failed; }
  void set_router_failed(bool failed) { router_failed_ = failed; }

  // --- Persistence ---------------------------------------------------------

  // Atomically writes the full learned state: pool, selector/manager/proxy/
  // router adaptation, the service feedback RNG and baseline-quality EMA,
  // and the (caller-owned) generator's sampling stream.
  Status SaveSnapshot(const std::string& path);

  // Restores into this freshly constructed service (the cache must be
  // empty). A restored service continues byte-identically to the one that
  // wrote the snapshot. Note the generator stream is restored into the
  // caller-owned GenerationSimulator.
  Status RestoreSnapshot(const std::string& path);

  const Status& restore_status() const { return restore_status_; }
  bool restored_from_snapshot() const { return restored_from_snapshot_; }

  ExampleCache& cache() { return cache_; }
  const ExampleCache& cache() const { return cache_; }
  ExampleSelector& selector() { return selector_; }
  RequestRouter& router() { return router_; }
  ExampleManager& manager() { return manager_; }
  Stage0ResponseCache& stage0() { return stage0_; }
  ProxyUtilityModel& proxy() { return proxy_; }
  MetricsRegistry& metrics() { return metrics_; }
  // The hub behind metrics(): histograms, window series, Prometheus export.
  MetricsHub& metrics_hub() { return hub_; }
  const MetricsHub& metrics_hub() const { return hub_; }
  // Anomalies the SLO watchdog has fired so far (empty unless configured).
  const std::vector<WatchdogEvent>& anomalies() const { return watchdog_.events(); }
  const ServiceConfig& config() const { return config_; }
  const ModelProfile& small_model() const { return small_model_; }
  const ModelProfile& large_model() const { return large_model_; }

 private:
  std::vector<ExampleView> BuildExampleViews(const Request& request,
                                             const std::vector<SelectedExample>& selected);

  // Per-request epilogue: e2e histogram observation (with the request id as
  // the bucket exemplar), window-cadence hub snapshots, and watchdog
  // evaluation. Strictly passive — no RNG, no effect on serving decisions.
  void FinishRequest(const ServeOutcome& outcome);

  ServiceConfig config_;
  const ModelCatalog* catalog_;
  GenerationSimulator* generator_;
  ModelProfile small_model_;
  ModelProfile large_model_;

  ExampleCache cache_;
  Stage0ResponseCache stage0_;
  ProxyUtilityModel proxy_;
  ExampleSelector selector_;
  RequestRouter router_;
  ExampleManager manager_;
  MetricsHub hub_;
  MetricsRegistry metrics_{&hub_};  // legacy-name facade over hub_
  SloWatchdog watchdog_;
  Ema baseline_quality_;
  Rng rng_;

  size_t requests_in_window_ = 0;
  uint64_t window_index_ = 0;

  bool selector_failed_ = false;
  bool router_failed_ = false;

  // Latest `now` this service has observed; stamps snapshots so a warm
  // start (service or driver) resumes the maintenance cadence on the same
  // clock as the manager's decay cursor.
  double last_now_ = 0.0;
  Status restore_status_;
  bool restored_from_snapshot_ = false;
};

}  // namespace iccache

#endif  // SRC_CORE_SERVICE_H_
