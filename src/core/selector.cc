#include "src/core/selector.h"

#include <algorithm>

#include "src/common/mathutil.h"
#include "src/common/simd.h"
#include "src/obs/trace.h"

namespace iccache {

ExampleSelector::ExampleSelector(ExampleStore* store, ProxyUtilityModel* proxy,
                                 SelectorConfig config)
    : store_(store),
      proxy_(proxy),
      config_(config),
      utility_threshold_(config.initial_utility_threshold),
      grid_benefit_(config.threshold_grid.size(), 0.0),
      grid_count_(config.threshold_grid.size(), 0) {}

std::vector<SelectorCandidate> ExampleSelector::Stage1FromResults(
    const std::vector<SearchResult>& results, bool embed_candidates) const {
  const auto embedder = store_->embedder();
  std::vector<SelectorCandidate> candidates;
  for (const SearchResult& result : results) {
    if (result.score < config_.stage1_min_similarity) {
      continue;  // results are sorted best-first, but keep the scan simple
    }
    SelectorCandidate candidate;
    if (!store_->Snapshot(result.id, &candidate.example)) {
      continue;  // evicted between search and snapshot
    }
    candidate.id = result.id;
    candidate.similarity = result.score;
    if (embed_candidates) {
      candidate.embedding = embedder->Embed(candidate.example.request.text);
    }
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

std::vector<SelectorCandidate> ExampleSelector::Stage1(
    const Request& request, const std::vector<float>* query_embedding,
    bool embed_candidates) const {
  TraceSpan span(TraceCategory::kStage1Retrieval, request.id);
  std::vector<float> local_embedding;
  if (query_embedding == nullptr) {
    local_embedding = store_->embedder()->Embed(request.text);
    query_embedding = &local_embedding;
  }
  std::vector<SelectorCandidate> candidates = Stage1FromResults(
      store_->FindSimilar(*query_embedding, config_.stage1_candidates), embed_candidates);
  span.SetArgs(candidates.size());
  return candidates;
}

void ExampleSelector::ScoreStage2(const Request& request, const ModelProfile& target_model,
                                  std::vector<SelectorCandidate>* candidates) const {
  TraceSpan span(TraceCategory::kStage2Scoring, request.id);
  span.SetArgs(candidates->size());
  for (SelectorCandidate& candidate : *candidates) {
    const ProxyFeatures features = MakeProxyFeatures(
        candidate.similarity, candidate.example.response_quality,
        candidate.example.source_capability, target_model.capability,
        candidate.example.request.task == request.task, candidate.example.PromptTokens());
    candidate.utility = proxy_->Predict(features);
  }
}

std::vector<SelectorCandidate> ExampleSelector::PrepareCandidates(
    const Request& request, const ModelProfile& target_model,
    const std::vector<float>* query_embedding, bool embed_candidates) const {
  std::vector<SelectorCandidate> candidates =
      Stage1(request, query_embedding, embed_candidates);
  ScoreStage2(request, target_model, &candidates);
  return candidates;
}

std::vector<SelectorCandidate> ExampleSelector::PrepareCandidatesFrom(
    const Request& request, const ModelProfile& target_model,
    const std::vector<SearchResult>& stage1, bool embed_candidates) const {
  std::vector<SelectorCandidate> candidates;
  {
    // Same per-request span the unbatched Stage1 emits; the ANN sweep itself
    // ran earlier under the chunk's stage1_batch span.
    TraceSpan span(TraceCategory::kStage1Retrieval, request.id);
    candidates = Stage1FromResults(stage1, embed_candidates);
    span.SetArgs(candidates.size());
  }
  ScoreStage2(request, target_model, &candidates);
  return candidates;
}

std::vector<SelectorCandidate> ExampleSelector::CombineCore(
    const std::vector<SelectorCandidate>& candidates, const ModelProfile& target_model,
    bool apply_threshold, std::vector<uint64_t>* accessed) const {
  std::vector<const SelectorCandidate*> order;
  order.reserve(candidates.size());
  for (const SelectorCandidate& candidate : candidates) {
    order.push_back(&candidate);
  }
  std::sort(order.begin(), order.end(), [](const SelectorCandidate* a,
                                           const SelectorCandidate* b) {
    if (a->utility != b->utility) {
      return a->utility > b->utility;
    }
    return a->id < b->id;  // deterministic tie-break
  });

  const int token_budget = static_cast<int>(config_.context_budget_fraction *
                                            static_cast<double>(target_model.context_window));
  int tokens_used = 0;

  const auto embedder = store_->embedder();
  std::vector<SelectorCandidate> selected;
  for (const SelectorCandidate* candidate : order) {
    if (selected.size() >= config_.max_examples) {
      break;
    }
    if (apply_threshold && candidate->utility < utility_threshold_) {
      continue;
    }
    const int tokens = candidate->example.PromptTokens();
    if (tokens_used + tokens > token_budget) {
      continue;
    }
    // Diversity: reject near-duplicates of already selected examples.
    // Embed lazily when the preparation phase did not: only candidates that
    // survive the threshold/budget filters pay for an embedding.
    std::vector<float> embedding =
        candidate->embedding.empty() ? embedder->Embed(candidate->example.request.text)
                                     : candidate->embedding;
    bool duplicate = false;
    for (const SelectorCandidate& prior : selected) {
      if (simd::Cosine(embedding.data(), prior.embedding.data(),
                       std::min(embedding.size(), prior.embedding.size())) >
          config_.diversity_max_similarity) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      continue;
    }

    selected.push_back(*candidate);
    selected.back().embedding = std::move(embedding);
    tokens_used += tokens;
    if (accessed != nullptr) {
      accessed->push_back(candidate->id);
    }
  }

  // Present worst-to-best: the strongest example ends up adjacent to the
  // question, where in-context attention is strongest.
  std::reverse(selected.begin(), selected.end());
  return selected;
}

std::vector<SelectorCandidate> ExampleSelector::Combine(
    const std::vector<SelectorCandidate>& candidates, const ModelProfile& target_model,
    bool apply_threshold, double now) {
  std::vector<uint64_t> accessed;
  std::vector<SelectorCandidate> selected =
      CombineCore(candidates, target_model, apply_threshold, &accessed);
  for (uint64_t id : accessed) {
    store_->RecordAccess(id, now);
  }
  return selected;
}

std::vector<SelectorCandidate> ExampleSelector::CommitSelection(
    const std::vector<SelectorCandidate>& candidates, const ModelProfile& target_model,
    double now) {
  ++requests_seen_;
  MaybeAdaptThreshold();
  return Combine(candidates, target_model, /*apply_threshold=*/true, now);
}

std::vector<SelectorCandidate> ExampleSelector::CommitSelectionFrozen(
    const std::vector<SelectorCandidate>& candidates, const ModelProfile& target_model,
    std::vector<uint64_t>* accessed) const {
  return CombineCore(candidates, target_model, /*apply_threshold=*/true, accessed);
}

void ExampleSelector::AdvanceWindow(size_t requests) {
  if (requests == 0) {
    return;
  }
  const uint64_t before = requests_seen_;
  requests_seen_ += requests;
  if (config_.adapt_every_n_requests == 0) {
    return;
  }
  // Adapt once per window that crosses a cadence multiple: the whole window
  // was served under the window-start threshold, so the grid re-evaluation
  // lands at the boundary — the batched equivalent of CommitSelection's
  // per-request check, and independent of lane count by construction.
  const uint64_t n = config_.adapt_every_n_requests;
  if (before / n != requests_seen_ / n) {
    AdaptThresholdFromGrid();
  }
}

std::vector<SelectedExample> ExampleSelector::ToSelected(
    const std::vector<SelectorCandidate>& picked) {
  std::vector<SelectedExample> selected;
  selected.reserve(picked.size());
  for (const SelectorCandidate& candidate : picked) {
    SelectedExample chosen;
    chosen.example_id = candidate.id;
    chosen.similarity = candidate.similarity;
    chosen.predicted_utility = candidate.utility;
    selected.push_back(chosen);
  }
  return selected;
}

std::vector<SelectedExample> ExampleSelector::Select(const Request& request,
                                                     const ModelProfile& target_model,
                                                     double now) {
  const std::vector<SelectorCandidate> candidates = PrepareCandidates(request, target_model);
  return ToSelected(CommitSelection(candidates, target_model, now));
}

std::vector<SelectedExample> ExampleSelector::SelectStage1Only(const Request& request,
                                                               const ModelProfile& target_model,
                                                               double now) {
  // Rank purely by similarity; stage-2 scoring and utility filtering skipped.
  std::vector<SelectorCandidate> candidates =
      Stage1(request, /*query_embedding=*/nullptr, /*embed_candidates=*/false);
  for (SelectorCandidate& candidate : candidates) {
    candidate.utility = candidate.similarity;
  }
  return ToSelected(Combine(candidates, target_model, /*apply_threshold=*/false, now));
}

void ExampleSelector::OnFeedback(const Request& request, const std::vector<SelectedExample>& used,
                                 const ModelProfile& target_model,
                                 double observed_quality_gain) {
  if (used.empty()) {
    return;
  }
  // Proxy label: shared credit across the combination, amplified so small
  // per-request gains still carry gradient signal.
  const double label =
      Clamp(0.5 + config_.feedback_gain_scale * observed_quality_gain, 0.0, 1.0);
  std::vector<int> used_tokens(used.size(), 0);
  for (size_t i = 0; i < used.size(); ++i) {
    Example example;
    if (!store_->Snapshot(used[i].example_id, &example)) {
      continue;
    }
    used_tokens[i] = example.PromptTokens();
    const ProxyFeatures features = MakeProxyFeatures(
        used[i].similarity, example.response_quality, example.source_capability,
        target_model.capability, example.request.task == request.task, example.PromptTokens());
    proxy_->Update(features, label);
  }

  // Threshold adaptation accounting: estimate the net benefit each grid
  // threshold would have produced on this request, attributing the observed
  // gain proportionally to the utility mass the threshold retains.
  double total_utility = 0.0;
  for (const SelectedExample& sel : used) {
    total_utility += sel.predicted_utility;
  }
  if (total_utility <= 0.0) {
    return;
  }
  for (size_t g = 0; g < config_.threshold_grid.size(); ++g) {
    const double threshold = config_.threshold_grid[g];
    double kept_utility = 0.0;
    double kept_tokens = 0.0;
    for (size_t i = 0; i < used.size(); ++i) {
      if (used[i].predicted_utility >= threshold) {
        kept_utility += used[i].predicted_utility;
        kept_tokens += used_tokens[i];
      }
    }
    const double benefit = observed_quality_gain * (kept_utility / total_utility) -
                           config_.token_cost_weight * kept_tokens;
    grid_benefit_[g] += benefit;
    ++grid_count_[g];
  }
}

SelectorAdaptiveState ExampleSelector::SaveAdaptiveState() const {
  SelectorAdaptiveState state;
  state.utility_threshold = utility_threshold_;
  state.requests_seen = requests_seen_;
  state.grid_benefit = grid_benefit_;
  state.grid_count = grid_count_;
  return state;
}

bool ExampleSelector::RestoreAdaptiveState(const SelectorAdaptiveState& state) {
  if (state.grid_benefit.size() != config_.threshold_grid.size() ||
      state.grid_count.size() != config_.threshold_grid.size()) {
    return false;
  }
  utility_threshold_ = state.utility_threshold;
  requests_seen_ = state.requests_seen;
  grid_benefit_ = state.grid_benefit;
  grid_count_ = state.grid_count;
  return true;
}

void ExampleSelector::MaybeAdaptThreshold() {
  if (config_.adapt_every_n_requests == 0 ||
      requests_seen_ % config_.adapt_every_n_requests != 0) {
    return;
  }
  AdaptThresholdFromGrid();
}

void ExampleSelector::AdaptThresholdFromGrid() {
  double best_benefit = -1e300;
  double best_threshold = utility_threshold_;
  bool any = false;
  for (size_t g = 0; g < config_.threshold_grid.size(); ++g) {
    if (grid_count_[g] == 0) {
      continue;
    }
    const double mean_benefit = grid_benefit_[g] / static_cast<double>(grid_count_[g]);
    if (mean_benefit > best_benefit) {
      best_benefit = mean_benefit;
      best_threshold = config_.threshold_grid[g];
      any = true;
    }
  }
  if (any) {
    utility_threshold_ = best_threshold;
  }
}

}  // namespace iccache
