#include "src/core/selector.h"

#include <algorithm>

#include "src/common/mathutil.h"

namespace iccache {

ExampleSelector::ExampleSelector(ExampleCache* cache, ProxyUtilityModel* proxy,
                                 SelectorConfig config)
    : cache_(cache),
      proxy_(proxy),
      config_(config),
      utility_threshold_(config.initial_utility_threshold),
      grid_benefit_(config.threshold_grid.size(), 0.0),
      grid_count_(config.threshold_grid.size(), 0) {}

std::vector<ExampleSelector::Candidate> ExampleSelector::Stage1(const Request& request) const {
  std::vector<Candidate> candidates;
  for (const SearchResult& result : cache_->FindSimilar(request, config_.stage1_candidates)) {
    const Example* example = cache_->Get(result.id);
    if (example == nullptr || result.score < config_.stage1_min_similarity) {
      continue;
    }
    Candidate candidate;
    candidate.id = result.id;
    candidate.similarity = result.score;
    candidate.example = example;
    candidates.push_back(candidate);
  }
  return candidates;
}

void ExampleSelector::ScoreStage2(const Request& request, const ModelProfile& target_model,
                                  std::vector<Candidate>& candidates) const {
  for (Candidate& candidate : candidates) {
    const Example& example = *candidate.example;
    const ProxyFeatures features = MakeProxyFeatures(
        candidate.similarity, example.response_quality, example.source_capability,
        target_model.capability, example.request.task == request.task, example.PromptTokens());
    candidate.utility = proxy_->Predict(features);
  }
}

std::vector<SelectedExample> ExampleSelector::Combine(const std::vector<Candidate>& candidates,
                                                      const ModelProfile& target_model,
                                                      bool apply_threshold, double now) {
  std::vector<const Candidate*> order;
  order.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    order.push_back(&candidate);
  }
  std::sort(order.begin(), order.end(),
            [](const Candidate* a, const Candidate* b) { return a->utility > b->utility; });

  const int token_budget = static_cast<int>(config_.context_budget_fraction *
                                            static_cast<double>(target_model.context_window));
  int tokens_used = 0;

  std::vector<SelectedExample> selected;
  std::vector<std::vector<float>> selected_embeddings;
  const auto embedder = cache_->embedder();
  for (const Candidate* candidate : order) {
    if (selected.size() >= config_.max_examples) {
      break;
    }
    if (apply_threshold && candidate->utility < utility_threshold_) {
      continue;
    }
    const int tokens = candidate->example->PromptTokens();
    if (tokens_used + tokens > token_budget) {
      continue;
    }
    // Diversity: reject near-duplicates of already selected examples.
    const std::vector<float> embedding = embedder->Embed(candidate->example->request.text);
    bool duplicate = false;
    for (const auto& prior : selected_embeddings) {
      if (CosineSimilarity(embedding, prior) > config_.diversity_max_similarity) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      continue;
    }

    SelectedExample chosen;
    chosen.example_id = candidate->id;
    chosen.similarity = candidate->similarity;
    chosen.predicted_utility = candidate->utility;
    selected.push_back(chosen);
    selected_embeddings.push_back(embedding);
    tokens_used += tokens;
    cache_->RecordAccess(candidate->id, now);
  }

  // Present worst-to-best: the strongest example ends up adjacent to the
  // question, where in-context attention is strongest.
  std::reverse(selected.begin(), selected.end());
  return selected;
}

std::vector<SelectedExample> ExampleSelector::Select(const Request& request,
                                                     const ModelProfile& target_model,
                                                     double now) {
  ++requests_seen_;
  MaybeAdaptThreshold();
  std::vector<Candidate> candidates = Stage1(request);
  ScoreStage2(request, target_model, candidates);
  return Combine(candidates, target_model, /*apply_threshold=*/true, now);
}

std::vector<SelectedExample> ExampleSelector::SelectStage1Only(const Request& request,
                                                               const ModelProfile& target_model,
                                                               double now) {
  std::vector<Candidate> candidates = Stage1(request);
  // Rank purely by similarity; no utility filtering.
  for (Candidate& candidate : candidates) {
    candidate.utility = candidate.similarity;
  }
  return Combine(candidates, target_model, /*apply_threshold=*/false, now);
}

void ExampleSelector::OnFeedback(const Request& request, const std::vector<SelectedExample>& used,
                                 const ModelProfile& target_model,
                                 double observed_quality_gain) {
  if (used.empty()) {
    return;
  }
  // Proxy label: shared credit across the combination, amplified so small
  // per-request gains still carry gradient signal.
  const double label =
      Clamp(0.5 + config_.feedback_gain_scale * observed_quality_gain, 0.0, 1.0);
  for (const SelectedExample& sel : used) {
    const Example* example = cache_->Get(sel.example_id);
    if (example == nullptr) {
      continue;
    }
    const ProxyFeatures features = MakeProxyFeatures(
        sel.similarity, example->response_quality, example->source_capability,
        target_model.capability, example->request.task == request.task, example->PromptTokens());
    proxy_->Update(features, label);
  }

  // Threshold adaptation accounting: estimate the net benefit each grid
  // threshold would have produced on this request, attributing the observed
  // gain proportionally to the utility mass the threshold retains.
  double total_utility = 0.0;
  for (const SelectedExample& sel : used) {
    total_utility += sel.predicted_utility;
  }
  if (total_utility <= 0.0) {
    return;
  }
  for (size_t g = 0; g < config_.threshold_grid.size(); ++g) {
    const double threshold = config_.threshold_grid[g];
    double kept_utility = 0.0;
    double kept_tokens = 0.0;
    for (const SelectedExample& sel : used) {
      if (sel.predicted_utility >= threshold) {
        kept_utility += sel.predicted_utility;
        const Example* example = cache_->Get(sel.example_id);
        kept_tokens += example != nullptr ? example->PromptTokens() : 0;
      }
    }
    const double benefit = observed_quality_gain * (kept_utility / total_utility) -
                           config_.token_cost_weight * kept_tokens;
    grid_benefit_[g] += benefit;
    ++grid_count_[g];
  }
}

void ExampleSelector::MaybeAdaptThreshold() {
  if (config_.adapt_every_n_requests == 0 ||
      requests_seen_ % config_.adapt_every_n_requests != 0) {
    return;
  }
  double best_benefit = -1e300;
  double best_threshold = utility_threshold_;
  bool any = false;
  for (size_t g = 0; g < config_.threshold_grid.size(); ++g) {
    if (grid_count_[g] == 0) {
      continue;
    }
    const double mean_benefit = grid_benefit_[g] / static_cast<double>(grid_count_[g]);
    if (mean_benefit > best_benefit) {
      best_benefit = mean_benefit;
      best_threshold = config_.threshold_grid[g];
      any = true;
    }
  }
  if (any) {
    utility_threshold_ = best_threshold;
  }
}

}  // namespace iccache
