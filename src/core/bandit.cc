#include "src/core/bandit.h"

#include <algorithm>
#include <cmath>

#include "src/common/mathutil.h"

namespace iccache {

namespace {

// Cholesky factorization of a symmetric positive-definite matrix (row-major);
// returns the lower-triangular factor. Sizes here are tiny (context dims of
// ~8), so dense O(d^3) is immaterial.
std::vector<double> CholeskyLower(const std::vector<double>& a, size_t d) {
  std::vector<double> l(d * d, 0.0);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a[i * d + j];
      for (size_t k = 0; k < j; ++k) {
        sum -= l[i * d + k] * l[j * d + k];
      }
      if (i == j) {
        l[i * d + i] = std::sqrt(std::max(sum, 1e-12));
      } else {
        l[i * d + j] = sum / l[j * d + j];
      }
    }
  }
  return l;
}

// Solves L y = rhs (forward substitution).
std::vector<double> ForwardSolve(const std::vector<double>& l, const std::vector<double>& rhs,
                                 size_t d) {
  std::vector<double> y(d, 0.0);
  for (size_t i = 0; i < d; ++i) {
    double sum = rhs[i];
    for (size_t k = 0; k < i; ++k) {
      sum -= l[i * d + k] * y[k];
    }
    y[i] = sum / l[i * d + i];
  }
  return y;
}

// Solves L^T x = rhs (backward substitution).
std::vector<double> BackwardSolve(const std::vector<double>& l, const std::vector<double>& rhs,
                                  size_t d) {
  std::vector<double> x(d, 0.0);
  for (size_t i = d; i-- > 0;) {
    double sum = rhs[i];
    for (size_t k = i + 1; k < d; ++k) {
      sum -= l[k * d + i] * x[k];
    }
    x[i] = sum / l[i * d + i];
  }
  return x;
}

}  // namespace

LinearThompsonArm::LinearThompsonArm(size_t dim, double prior_precision, double noise_var,
                                     double forget_rate)
    : dim_(dim),
      noise_var_(noise_var),
      prior_precision_(prior_precision),
      forget_rate_(forget_rate),
      precision_(dim * dim, 0.0),
      b_(dim, 0.0) {
  for (size_t i = 0; i < dim; ++i) {
    precision_[i * dim + i] = prior_precision;
  }
}

void LinearThompsonArm::Refresh() const {
  if (fresh_) {
    return;
  }
  // mu = A^-1 b via Cholesky of A.
  const std::vector<double> chol_a = CholeskyLower(precision_, dim_);
  mu_ = BackwardSolve(chol_a, ForwardSolve(chol_a, b_, dim_), dim_);

  // Covariance = noise_var * A^-1; its Cholesky factor is
  // sqrt(noise_var) * (L_A)^-T, computed by solving L_A^T X = I columnwise.
  cov_chol_.assign(dim_ * dim_, 0.0);
  std::vector<double> unit(dim_, 0.0);
  const double scale = std::sqrt(noise_var_);
  for (size_t col = 0; col < dim_; ++col) {
    std::fill(unit.begin(), unit.end(), 0.0);
    unit[col] = 1.0;
    const std::vector<double> column = BackwardSolve(chol_a, unit, dim_);
    for (size_t row = 0; row < dim_; ++row) {
      cov_chol_[row * dim_ + col] = scale * column[row];
    }
  }
  fresh_ = true;
}

double LinearThompsonArm::MeanScore(const std::vector<double>& x) const {
  Refresh();
  double score = 0.0;
  for (size_t i = 0; i < dim_ && i < x.size(); ++i) {
    score += mu_[i] * x[i];
  }
  return score;
}

double LinearThompsonArm::SampleScore(const std::vector<double>& x, Rng& rng) const {
  Refresh();
  // w = mu + C z with C the covariance factor and z standard normal; the
  // score is then w . x.
  std::vector<double> z(dim_);
  for (auto& zi : z) {
    zi = rng.Normal();
  }
  double score = 0.0;
  for (size_t i = 0; i < dim_ && i < x.size(); ++i) {
    double wi = mu_[i];
    for (size_t k = 0; k < dim_; ++k) {
      wi += cov_chol_[i * dim_ + k] * z[k];
    }
    score += wi * x[i];
  }
  return score;
}

void LinearThompsonArm::Update(const std::vector<double>& x, double reward) {
  // Recency weighting: decay the data portion of the posterior (keeping the
  // prior mass intact) so stale evidence ages out.
  const double keep = 1.0 - forget_rate_;
  for (size_t i = 0; i < dim_; ++i) {
    b_[i] *= keep;
    for (size_t j = 0; j < dim_; ++j) {
      double data_mass = precision_[i * dim_ + j];
      if (i == j) {
        data_mass -= prior_precision_;
      }
      precision_[i * dim_ + j] = data_mass * keep + (i == j ? prior_precision_ : 0.0);
    }
  }
  for (size_t i = 0; i < dim_; ++i) {
    const double xi = i < x.size() ? x[i] : 0.0;
    b_[i] += reward * xi;
    for (size_t j = 0; j < dim_; ++j) {
      const double xj = j < x.size() ? x[j] : 0.0;
      precision_[i * dim_ + j] += xi * xj;
    }
  }
  ++updates_;
  fresh_ = false;
}

bool LinearThompsonArm::RestoreState(const std::vector<double>& precision,
                                     const std::vector<double>& b, size_t updates) {
  if (precision.size() != dim_ * dim_ || b.size() != dim_) {
    return false;
  }
  precision_ = precision;
  b_ = b;
  updates_ = updates;
  fresh_ = false;
  return true;
}

BetaBernoulliArm::BetaBernoulliArm(double alpha, double beta) : alpha_(alpha), beta_(beta) {}

double BetaBernoulliArm::Sample(Rng& rng) const { return rng.Beta(alpha_, beta_); }

double BetaBernoulliArm::Mean() const { return alpha_ / (alpha_ + beta_); }

void BetaBernoulliArm::Update(bool win) {
  if (win) {
    alpha_ += 1.0;
  } else {
    beta_ += 1.0;
  }
}

ContextualBandit::ContextualBandit(size_t num_arms, size_t context_dim, uint64_t seed)
    : rng_(seed) {
  arms_.reserve(num_arms);
  for (size_t i = 0; i < num_arms; ++i) {
    arms_.emplace_back(context_dim);
  }
}

BanditSelection ContextualBandit::Select(const std::vector<double>& context,
                                         const std::vector<double>& biases) {
  return SelectWithRng(context, biases, rng_);
}

void ContextualBandit::RefreshAll() const {
  for (const LinearThompsonArm& arm : arms_) {
    arm.EnsureFresh();
  }
}

BanditSelection ContextualBandit::SelectWithRng(const std::vector<double>& context,
                                                const std::vector<double>& biases,
                                                Rng& rng) const {
  BanditSelection selection;
  selection.sampled_scores.resize(arms_.size());
  selection.mean_scores.resize(arms_.size());
  std::vector<double> unbiased_means(arms_.size());
  for (size_t i = 0; i < arms_.size(); ++i) {
    const double bias = i < biases.size() ? biases[i] : 0.0;
    unbiased_means[i] = arms_[i].MeanScore(context);
    selection.sampled_scores[i] = arms_[i].SampleScore(context, rng) + bias;
    selection.mean_scores[i] = unbiased_means[i] + bias;
  }
  selection.arm = static_cast<size_t>(
      std::max_element(selection.sampled_scores.begin(), selection.sampled_scores.end()) -
      selection.sampled_scores.begin());

  // Confidence reflects the learned posterior only: exogenous biases (cost
  // preference, overload pressure) must not masquerade as certainty.
  selection.confidence = Softmax(unbiased_means, /*temperature=*/0.25);
  selection.confidence_std = StdDev(selection.confidence);

  // Runner-up for preference solicitation: sample among the other arms
  // proportional to their confidence.
  if (arms_.size() > 1) {
    std::vector<double> weights = selection.confidence;
    weights[selection.arm] = 0.0;
    selection.second_choice = rng.Categorical(weights);
    if (selection.second_choice == selection.arm) {
      selection.second_choice = (selection.arm + 1) % arms_.size();
    }
  }
  return selection;
}

void ContextualBandit::Update(size_t arm, const std::vector<double>& context, double reward) {
  if (arm < arms_.size()) {
    arms_[arm].Update(context, reward);
  }
}

}  // namespace iccache
