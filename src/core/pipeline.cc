#include "src/core/pipeline.h"

namespace iccache {

RouteDecision RouteOrBypass(RequestRouter* router, const Request& request,
                            const std::vector<SelectedExample>& selected, bool router_failed,
                            const ModelProfile& fallback) {
  if (!router_failed) {
    return router->Route(request, selected);
  }
  return BypassRoute(*router, request, selected, fallback);
}

RouteDecision BypassRoute(const RequestRouter& router, const Request& request,
                          const std::vector<SelectedExample>& selected,
                          const ModelProfile& fallback) {
  RouteDecision decision;
  decision.model_name = fallback.name;
  decision.uses_examples = false;
  decision.arm = 0;
  for (size_t i = 0; i < router.num_arms(); ++i) {
    if (router.arm_spec(i).model_name == fallback.name) {
      decision.arm = i;
      break;
    }
  }
  decision.context = RequestRouter::MakeContext(request, selected);
  return decision;
}

ExampleView MakeExampleView(const Request& request, const Example& example, Rng& rng) {
  ExampleView view;
  view.relevance = StructuralRelevance(request, example.request, rng);
  view.quality = example.response_quality;
  view.source_capability = example.source_capability;
  view.tokens = example.PromptTokens();
  return view;
}

}  // namespace iccache
