#include "src/core/router.h"

#include <algorithm>
#include <cmath>

#include "src/common/mathutil.h"
#include "src/common/rng.h"

namespace iccache {

RequestRouter::RequestRouter(std::vector<RouterArmSpec> arms, RouterConfig config)
    : arms_(std::move(arms)),
      config_(config),
      bandit_(arms_.size(), kContextDim, config.seed),
      load_ema_(config.load_ema_alpha),
      explore_rng_(config.seed ^ 0xe9d) {}

std::vector<double> RequestRouter::MakeContext(const Request& request,
                                               const std::vector<SelectedExample>& examples) {
  double utility_sum = 0.0;
  double max_similarity = 0.0;
  for (const SelectedExample& ex : examples) {
    utility_sum += ex.predicted_utility;
    max_similarity = std::max(max_similarity, ex.similarity);
  }
  std::vector<double> context(kContextDim, 0.0);
  context[0] = 1.0;  // bias
  context[1] = static_cast<double>(examples.size()) / 5.0;
  context[2] = std::min(1.0, utility_sum / 3.0);
  context[3] = Clamp(max_similarity, 0.0, 1.0);
  context[4] = std::min(1.0, static_cast<double>(request.input_tokens) / 512.0);
  context[5] = std::min(1.0, static_cast<double>(request.target_output_tokens) / 1024.0);
  context[6] = EstimateDifficulty(request);
  context[7] = static_cast<double>(request.task) / 4.0;  // coarse task signal
  return context;
}

double RequestRouter::EstimateDifficulty(const Request& request) {
  Rng rng(Mix64(request.id ^ 0xd1ff1cu));
  return Clamp(request.difficulty + rng.Normal(0.0, 0.12), 0.0, 1.0);
}

void RequestRouter::ObserveLoad(double load) { load_ema_.Add(load); }

std::vector<double> RequestRouter::OverloadBiases(double load, double* overload) const {
  // Theorem-4 overload bias on the positive load deviation only.
  const double deviation = std::max(0.0, load - config_.load_threshold);
  *overload = config_.bias_lambda * std::tanh(config_.bias_gamma * deviation);
  std::vector<double> biases(arms_.size(), 0.0);
  for (size_t i = 0; i < arms_.size(); ++i) {
    biases[i] = -(config_.cost_preference + *overload) * arms_[i].normalized_cost;
  }
  return biases;
}

RouteDecision RequestRouter::FinishDecision(BanditSelection selection,
                                            std::vector<double> context, double load,
                                            double overload, Rng& explore_rng) const {
  if (arms_.size() > 1 && explore_rng.Bernoulli(config_.exploration_epsilon)) {
    selection.arm = explore_rng.UniformInt(arms_.size());
    if (selection.second_choice == selection.arm) {
      selection.second_choice = (selection.arm + 1) % arms_.size();
    }
  }

  RouteDecision decision;
  decision.arm = selection.arm;
  decision.model_name = arms_[selection.arm].model_name;
  decision.uses_examples = arms_[selection.arm].uses_examples;
  decision.second_choice = selection.second_choice;
  decision.load_ema = load;
  decision.overload_bias_magnitude = overload;
  decision.context = std::move(context);
  decision.arm_means = std::move(selection.mean_scores);
  decision.solicit_feedback = selection.confidence_std < config_.uncertainty_gate;
  return decision;
}

RouteDecision RequestRouter::Route(const Request& request,
                                   const std::vector<SelectedExample>& examples) {
  std::vector<double> context = MakeContext(request, examples);
  const double load = load_ema_.value();
  double overload = 0.0;
  const std::vector<double> biases = OverloadBiases(load, &overload);
  BanditSelection selection = bandit_.Select(context, biases);
  return FinishDecision(std::move(selection), std::move(context), load, overload, explore_rng_);
}

RouteDecision RequestRouter::RouteWithRng(const Request& request,
                                          const std::vector<SelectedExample>& examples,
                                          Rng& rng) const {
  std::vector<double> context = MakeContext(request, examples);
  const double load = load_ema_.value();
  double overload = 0.0;
  const std::vector<double> biases = OverloadBiases(load, &overload);
  BanditSelection selection = bandit_.SelectWithRng(context, biases, rng);
  return FinishDecision(std::move(selection), std::move(context), load, overload, rng);
}

void RequestRouter::UpdateReward(const RouteDecision& decision, double reward) {
  // Rewards are centered at the quality midpoint so the zero-mean prior of an
  // unexplored arm corresponds to "average quality", not "worst possible" —
  // otherwise the first arm to collect a decent reward permanently outruns
  // the others and exploration collapses.
  bandit_.Update(decision.arm, decision.context, Clamp(reward, 0.0, 1.0) - 0.5);
}

void RequestRouter::UpdatePreference(const RouteDecision& decision, bool top_choice_won) {
  // A preference comparison trains both compared arms: the winner toward the
  // top of the (centered) reward scale, the loser toward the bottom.
  const size_t winner = top_choice_won ? decision.arm : decision.second_choice;
  const size_t loser = top_choice_won ? decision.second_choice : decision.arm;
  bandit_.Update(winner, decision.context, 0.25);
  bandit_.Update(loser, decision.context, -0.25);
}

}  // namespace iccache
