#include "src/core/service.h"

#include <algorithm>

#include "src/common/binio.h"
#include "src/common/mathutil.h"
#include "src/core/pipeline.h"
#include "src/obs/trace.h"
#include "src/persist/pool_codec.h"
#include "src/persist/snapshot.h"

namespace iccache {

namespace {

std::vector<RouterArmSpec> MakeArms(const ModelProfile& small, const ModelProfile& large) {
  // Costs normalized so the most expensive arm is 1.0.
  const double max_cost = std::max(small.cost_per_1k_tokens, large.cost_per_1k_tokens);
  RouterArmSpec small_arm;
  small_arm.model_name = small.name;
  small_arm.normalized_cost = small.cost_per_1k_tokens / max_cost;
  small_arm.uses_examples = true;
  RouterArmSpec large_arm;
  large_arm.model_name = large.name;
  large_arm.normalized_cost = large.cost_per_1k_tokens / max_cost;
  large_arm.uses_examples = false;
  return {small_arm, large_arm};
}

Stage0Config SeededStage0Config(Stage0Config config, uint64_t seed) {
  config.seed = Mix64(seed ^ 0x57a9e0ull);
  return config;
}

WatchdogConfig ServiceWatchdogConfig(WatchdogConfig config) {
  // The service's legacy metric names carry no `_total` suffix.
  config.requests_counter = "requests_total";
  config.stage0_hits_counter = "stage0_hits";
  config.evictions_counter = "examples_evicted";
  config.stalled_counter = "maintenance_stalled_windows";
  return config;
}

}  // namespace

IcCacheService::IcCacheService(ServiceConfig config, const ModelCatalog* catalog,
                               GenerationSimulator* generator,
                               std::shared_ptr<const Embedder> embedder)
    : config_(config),
      catalog_(catalog),
      generator_(generator),
      small_model_(catalog->Get(config.small_model)),
      large_model_(catalog->Get(config.large_model)),
      cache_(std::move(embedder), config.cache),
      stage0_(cache_.embedder(), SeededStage0Config(config.stage0, config.seed)),
      proxy_(),
      selector_(&cache_, &proxy_, config.selector),
      router_(MakeArms(small_model_, large_model_), config.router),
      manager_(&cache_, generator, large_model_, config.manager),
      watchdog_(ServiceWatchdogConfig(config.watchdog)),
      baseline_quality_(0.02),
      rng_(config.seed) {
  if (config_.restore_on_start && !config_.snapshot_path.empty()) {
    const Status status = RestoreSnapshot(config_.snapshot_path);
    // A missing snapshot is a normal cold start.
    if (!status.ok() && status.code() != StatusCode::kNotFound) {
      restore_status_ = status;
    }
  }
}

Status IcCacheService::SaveSnapshot(const std::string& path) {
  SnapshotWriter writer;
  PoolComponents components;
  components.selector = &selector_;
  components.manager = &manager_;
  components.proxy = &proxy_;
  components.router = &router_;
  components.stage0 = config_.stage0.enabled ? &stage0_ : nullptr;
  // Stamp the snapshot with this service's clock so the manager's decay
  // cursor and a restoring driver's trace clock stay on the same timeline.
  EncodePoolSections(cache_, components, /*sim_time=*/last_now_, &writer);

  ByteWriter service;
  EncodeRngState(rng_.SaveState(), &service);
  service.PutDouble(baseline_quality_.value());
  service.PutU8(baseline_quality_.initialized() ? 1 : 0);
  EncodeRngState(generator_->rng_state(), &service);
  writer.AddSection(SnapshotSection::kService, service.TakeBytes());
  return writer.WriteToFile(path);
}

Status IcCacheService::RestoreSnapshot(const std::string& path) {
  SnapshotReader reader;
  Status status = reader.Open(path);
  if (!status.ok()) {
    return status;
  }
  PoolComponents components;
  components.selector = &selector_;
  components.manager = &manager_;
  components.proxy = &proxy_;
  components.router = &router_;
  components.stage0 = config_.stage0.enabled ? &stage0_ : nullptr;
  PoolRestoreReport report;
  status = DecodePoolSections(reader, &cache_, components, &report);
  if (!status.ok()) {
    return status;
  }
  const std::string* service = reader.Section(SnapshotSection::kService);
  if (service != nullptr) {
    ByteReader r(*service);
    const RngState service_rng = DecodeRngState(&r);
    const double baseline = r.GetDouble();
    const bool baseline_initialized = r.GetU8() != 0;
    const RngState generator_rng = DecodeRngState(&r);
    if (!r.ok() || !r.AtEnd()) {
      return Status::InvalidArgument("malformed service section");
    }
    rng_.RestoreState(service_rng);
    baseline_quality_.RestoreState(baseline, baseline_initialized);
    generator_->restore_rng_state(generator_rng);
  }
  last_now_ = report.sim_time;
  restored_from_snapshot_ = true;
  return Status::Ok();
}

uint64_t IcCacheService::SeedExample(const Request& request, double now) {
  last_now_ = std::max(last_now_, now);
  const GenerationResult generation = generator_->Generate(large_model_, request, {});
  return cache_.Put(request, "[seed-response]", generation.latent_quality,
                    large_model_.capability, generation.output_tokens, now);
}

void IcCacheService::PretrainProxy(size_t num_samples) {
  const std::vector<uint64_t> ids = cache_.AllIds();
  if (ids.size() < 2) {
    return;
  }
  const auto embedder = cache_.embedder();
  for (size_t i = 0; i < num_samples; ++i) {
    const Example* query_example = cache_.Get(ids[rng_.UniformInt(ids.size())]);
    const Request& query = query_example->request;

    const Example* candidate = nullptr;
    if (rng_.Bernoulli(0.5)) {
      // Retrieved neighbour: the pairs stage 2 must rank among.
      const auto neighbours = cache_.FindSimilar(query, 4);
      if (!neighbours.empty()) {
        candidate = cache_.Get(neighbours[rng_.UniformInt(neighbours.size())].id);
      }
    }
    if (candidate == nullptr) {
      candidate = cache_.Get(ids[rng_.UniformInt(ids.size())]);
    }

    ExampleView view;
    view.relevance = StructuralRelevance(query, candidate->request, rng_);
    view.quality = candidate->response_quality;
    view.source_capability = candidate->source_capability;
    view.tokens = candidate->PromptTokens();

    const double with_example =
        generator_->Generate(small_model_, query, {view}).latent_quality;
    const double without = generator_->Generate(small_model_, query, {}).latent_quality;
    const double label =
        Clamp(0.5 + config_.selector.feedback_gain_scale * (with_example - without), 0.0, 1.0);

    const double similarity = CosineSimilarity(embedder->Embed(query.text),
                                               embedder->Embed(candidate->request.text));
    proxy_.Update(MakeProxyFeatures(similarity, candidate->response_quality,
                                    candidate->source_capability, small_model_.capability,
                                    candidate->request.task == query.task,
                                    candidate->PromptTokens()),
                  label);
  }
  metrics_.Increment("proxy_pretrain_samples", static_cast<double>(num_samples));
}

std::vector<ExampleView> IcCacheService::BuildExampleViews(
    const Request& request, const std::vector<SelectedExample>& selected) {
  std::vector<ExampleView> views;
  views.reserve(selected.size());
  for (const SelectedExample& sel : selected) {
    const Example* example = cache_.Get(sel.example_id);
    if (example == nullptr) {
      continue;
    }
    views.push_back(MakeExampleView(request, *example, rng_));
  }
  return views;
}

ServeOutcome IcCacheService::ServeRequest(const Request& request, double now) {
  TraceSpan span(TraceCategory::kServiceRequest, request.id);
  ServeOutcome outcome;
  last_now_ = std::max(last_now_, now);
  metrics_.Increment("requests_total");

  // 0. Stage-0 response-cache probe: one embed, shared with stage-1
  // retrieval below on a miss. A confident hit serves the cached response
  // verbatim — no selection, no routing, no generation.
  std::vector<float> embedding;
  Stage0DedupeHint dedupe_hint;
  if (config_.stage0.enabled) {
    embedding = cache_.embedder()->Embed(request.text);
    outcome.overhead_latency_s += config_.stage0_probe_latency_s;
    const std::optional<Stage0Probe> probe = stage0_.Probe(embedding, now);
    if (probe.has_value()) {
      dedupe_hint = {probe->entry.id, probe->similarity};
    }
    if (probe.has_value() && stage0_.Confident(*probe)) {
      const Stage0Entry& hit = probe->entry;
      outcome.stage0_hit = true;
      outcome.stage0_similarity = probe->similarity;
      const double relevance = StructuralRelevance(request, hit.request, rng_);
      outcome.generation.request_id = request.id;
      outcome.generation.model_name = "stage0-cache";
      outcome.generation.latent_quality =
          generator_->ReusedResponseQuality(hit.response_quality, relevance);
      outcome.generation.prompt_tokens = request.input_tokens;
      outcome.generation.output_tokens = 0;  // zero generation cost
      outcome.generation.e2e_latency_s = outcome.overhead_latency_s;
      outcome.generation.ttft_s = outcome.overhead_latency_s;
      outcome.observed_quality =
          Clamp(outcome.generation.latent_quality + rng_.Normal(0.0, config_.feedback_noise),
                0.0, 1.0);

      stage0_.RecordHit(hit.id, now);
      int tokens_saved = hit.response_tokens;
      if (rng_.Bernoulli(config_.stage0.probe_rate)) {
        // Probe sampling: shadow-generate the fresh response so threshold
        // adaptation learns from a genuine (reused - fresh) counterfactual.
        const GenerationResult fresh = generator_->Generate(large_model_, request, {});
        tokens_saved = fresh.output_tokens;
        stage0_.OnHitFeedback(probe->similarity, outcome.generation.latent_quality,
                              fresh.latent_quality, tokens_saved);
        metrics_.Increment("stage0_probes");
      }
      if (stage0_.OnQualityFeedback(hit.id, outcome.generation.latent_quality)) {
        metrics_.Increment("stage0_invalidations");
      }
      stage0_.AdvanceWindow(1);
      metrics_.Increment("stage0_hits");
      metrics_.Increment("stage0_tokens_saved", static_cast<double>(tokens_saved));
      metrics_.Increment("latency_sum_s", outcome.generation.e2e_latency_s);
      metrics_.Increment("quality_sum", outcome.generation.latent_quality);
      FinishRequest(outcome);
      return outcome;
    }
  }

  // 1. RetrieveExamples (bypassed when the selector component is down). With
  // stage-0 enabled the probe's embedding is reused — no second embed.
  std::vector<SelectedExample> selected;
  if (!selector_failed_) {
    if (config_.stage0.enabled) {
      selected = ExampleSelector::ToSelected(selector_.CommitSelection(
          selector_.PrepareCandidates(request, small_model_, &embedding), small_model_, now));
    } else {
      selected = selector_.Select(request, small_model_, now);
    }
    outcome.overhead_latency_s +=
        config_.selector_stage1_latency_s + config_.selector_stage2_latency_s;
  } else {
    metrics_.Increment("selector_bypassed");
  }

  // 2. RouteRequest (shared step; a failed router falls back to the default
  // backend, section 5).
  outcome.route = RouteOrBypass(&router_, request, selected, router_failed_, large_model_);
  if (!router_failed_) {
    outcome.overhead_latency_s += config_.router_latency_s;
  } else {
    metrics_.Increment("router_bypassed");
  }
  outcome.offloaded = outcome.route.uses_examples;

  // 3. GenerateResponse.
  const ModelProfile& serving_model =
      outcome.offloaded ? small_model_ : large_model_;
  if (outcome.offloaded) {
    outcome.examples_used = selected;
    const std::vector<ExampleView> views = BuildExampleViews(request, selected);
    outcome.generation = generator_->Generate(serving_model, request, views);
    metrics_.Increment("requests_offloaded");
    metrics_.Increment("examples_prepended", static_cast<double>(views.size()));
  } else {
    outcome.generation = generator_->Generate(serving_model, request, {});
  }
  outcome.generation.e2e_latency_s += outcome.overhead_latency_s;
  outcome.generation.ttft_s += outcome.overhead_latency_s;

  // 4. ManageExamples: feedback, usage accounting, admission.
  outcome.observed_quality = Clamp(
      outcome.generation.latent_quality + rng_.Normal(0.0, config_.feedback_noise), 0.0, 1.0);

  const bool sampled = rng_.Bernoulli(config_.feedback_sample_rate);
  if (sampled && !router_failed_) {
    router_.UpdateReward(outcome.route, outcome.observed_quality);

    if (config_.enable_preference_feedback && outcome.route.solicit_feedback) {
      // Shadow-generate on the runner-up arm and feed the preference back.
      const RouterArmSpec& second = router_.arm_spec(outcome.route.second_choice);
      const ModelProfile& second_model = catalog_->Get(second.model_name);
      GenerationResult shadow;
      if (second.uses_examples) {
        shadow = generator_->Generate(second_model, request,
                                      BuildExampleViews(request, selected));
      } else {
        shadow = generator_->Generate(second_model, request, {});
      }
      const bool top_won = outcome.generation.latent_quality +
                               rng_.Normal(0.0, config_.feedback_noise) >=
                           shadow.latent_quality + rng_.Normal(0.0, config_.feedback_noise);
      router_.UpdatePreference(outcome.route, top_won);
      metrics_.Increment("preference_solicitations");
    }
  }

  baseline_quality_.Add(outcome.observed_quality);
  if (sampled && !selector_failed_ && !outcome.examples_used.empty() &&
      rng_.Bernoulli(config_.selector_probe_rate)) {
    // Probe sampling (section 4.1): on a small fraction of offloaded
    // requests, shadow-generate the plain small-model response so the
    // example gain is a genuine counterfactual contrast — the signal that
    // trains the proxy online and drives threshold adaptation.
    const GenerationResult shadow_plain = generator_->Generate(small_model_, request, {});
    const double plain_observed =
        Clamp(shadow_plain.latent_quality + rng_.Normal(0.0, config_.feedback_noise), 0.0, 1.0);
    const double gain = outcome.observed_quality - plain_observed;
    selector_.OnFeedback(request, outcome.examples_used, small_model_, gain);
    metrics_.Increment("selector_probes");
  }

  if (!outcome.examples_used.empty()) {
    std::vector<uint64_t> used_ids;
    used_ids.reserve(outcome.examples_used.size());
    for (const SelectedExample& sel : outcome.examples_used) {
      used_ids.push_back(sel.example_id);
      if (outcome.offloaded) {
        cache_.RecordOffload(sel.example_id);
      }
    }
    manager_.RecordUsage(used_ids, outcome.observed_quality,
                         outcome.offloaded
                             ? small_model_.cost_per_1k_tokens / large_model_.cost_per_1k_tokens
                             : 1.0);
  }

  outcome.admitted_example_id =
      manager_.MaybeAdmit(request, outcome.generation,
                          serving_model.capability, /*from_large_model=*/!outcome.offloaded, now);

  // Stage-0 insert: every freshly generated response is a candidate cached
  // answer for future duplicates (deduped and bounded inside Put).
  if (config_.stage0.enabled) {
    // The step-0 probe doubles as the dedupe hint: nothing has touched the
    // stage-0 cache since, so this is exactly the index search Put would run.
    stage0_.Put(request, std::move(embedding), "[cached-response]",
                outcome.generation.latent_quality, outcome.generation.output_tokens, now,
                &dedupe_hint);
    stage0_.AdvanceWindow(1);
  }

  metrics_.Increment("latency_sum_s", outcome.generation.e2e_latency_s);
  metrics_.Increment("quality_sum", outcome.generation.latent_quality);
  FinishRequest(outcome);
  return outcome;
}

void IcCacheService::FinishRequest(const ServeOutcome& outcome) {
  hub_.Histogram("e2e_latency_seconds")
      ->Observe(outcome.generation.e2e_latency_s, outcome.generation.request_id);
  ++requests_in_window_;
  if (config_.metrics_window == 0 || requests_in_window_ < config_.metrics_window) {
    return;
  }
  requests_in_window_ = 0;
  const MetricsWindowSample sample = hub_.SnapshotWindow(
      window_index_++, last_now_, TraceRecorder::Global().NowNs());
  if (!watchdog_.armed()) {
    return;
  }
  const std::vector<WatchdogEvent> fired =
      watchdog_.OnWindow(sample, hub_.HistogramSnapshot("e2e_latency_seconds"));
  if (fired.empty()) {
    return;
  }
  metrics_.Increment("watchdog_anomalies", static_cast<double>(fired.size()));
  if (TraceRecorder::tracing_enabled()) {
    TraceRecorder& recorder = TraceRecorder::Global();
    for (const WatchdogEvent& event : fired) {
      TraceEvent trace_event;
      trace_event.category = TraceCategory::kAnomaly;
      trace_event.begin_ns = recorder.NowNs();
      trace_event.end_ns = trace_event.begin_ns;
      trace_event.arg0 = static_cast<uint64_t>(event.rule);
      trace_event.arg1 = event.window;
      recorder.Emit(trace_event);
    }
  }
}

void IcCacheService::ObserveLoad(double load) { router_.ObserveLoad(load); }

void IcCacheService::RunMaintenance(double now) {
  last_now_ = std::max(last_now_, now);
  if (config_.stage0.enabled) {
    metrics_.Increment("stage0_expired", static_cast<double>(stage0_.ExpireStale(now)));
  }
  manager_.MaybeRunMaintenance(now);
  // Asynchronous proxy refresh from freshly sampled feedback (section 4.1).
  PretrainProxy(64);
  const ReplayReport report = manager_.RunReplayPass();
  metrics_.Increment("replay_examined", static_cast<double>(report.candidates));
  metrics_.Increment("replay_performed", static_cast<double>(report.replayed));
  metrics_.Increment("replay_improved", static_cast<double>(report.improved));
}

}  // namespace iccache
