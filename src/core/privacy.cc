#include "src/core/privacy.h"

#include <cctype>

namespace iccache {

namespace {

bool IsWordChar(char c) {
  const unsigned char u = static_cast<unsigned char>(c);
  return std::isalnum(u) || c == '.' || c == '_' || c == '-' || c == '+';
}

// Scans for token@token.tld shapes starting at position i; returns the end of
// the matched span or std::string::npos.
size_t MatchEmail(const std::string& text, size_t i) {
  size_t at = text.find('@', i);
  if (at == std::string::npos || at == i) {
    return std::string::npos;
  }
  // Local part must directly precede '@' from position i.
  for (size_t j = i; j < at; ++j) {
    if (!IsWordChar(text[j])) {
      return std::string::npos;
    }
  }
  size_t end = at + 1;
  bool saw_dot = false;
  while (end < text.size() && (IsWordChar(text[end]))) {
    if (text[end] == '.') {
      saw_dot = true;
    }
    ++end;
  }
  if (!saw_dot || end == at + 1) {
    return std::string::npos;
  }
  return end;
}

// Counts digits in a span allowing separators; used for phone/SSN shapes.
struct DigitRun {
  size_t end = 0;
  int digits = 0;
  int separators = 0;
  bool ssn_shape = false;  // 3-2-4 grouping
};

DigitRun ScanDigitRun(const std::string& text, size_t i) {
  DigitRun run;
  size_t j = i;
  int group = 0;
  int groups_seen = 0;
  bool grouping_ssn = true;
  static const int kSsnGroups[3] = {3, 2, 4};
  while (j < text.size()) {
    const char c = text[j];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      ++run.digits;
      ++group;
      ++j;
    } else if ((c == '-' || c == ' ' || c == '.') && run.digits > 0 &&
               j + 1 < text.size() && std::isdigit(static_cast<unsigned char>(text[j + 1]))) {
      if (groups_seen < 3 && group != kSsnGroups[groups_seen]) {
        grouping_ssn = false;
      }
      ++groups_seen;
      group = 0;
      ++run.separators;
      ++j;
    } else {
      break;
    }
  }
  if (groups_seen < 3 && group > 0) {
    if (groups_seen < 3 && group != kSsnGroups[groups_seen]) {
      grouping_ssn = false;
    }
    ++groups_seen;
  }
  run.ssn_shape = grouping_ssn && groups_seen == 3 && run.digits == 9;
  run.end = j;
  return run;
}

}  // namespace

ScrubResult PiiScrubber::Scrub(const std::string& text) const {
  ScrubResult result;
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (IsWordChar(c) && std::isalnum(static_cast<unsigned char>(c))) {
      const size_t email_end = MatchEmail(text, i);
      if (email_end != std::string::npos) {
        out += "[EMAIL]";
        ++result.emails_removed;
        i = email_end;
        continue;
      }
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const DigitRun run = ScanDigitRun(text, i);
      if (run.ssn_shape) {
        out += "[ID]";
        ++result.ids_removed;
        i = run.end;
        continue;
      }
      if (run.digits >= 10 && run.digits <= 13) {
        out += "[PHONE]";
        ++result.phones_removed;
        i = run.end;
        continue;
      }
      // Plain number: copy the run through.
      out.append(text, i, run.end - i);
      i = run.end;
      continue;
    }
    out.push_back(c);
    ++i;
  }
  result.text = std::move(out);
  return result;
}

AdmissionDecision DecideAdmission(const PiiScrubber& scrubber, CacheAdmissionMode mode,
                                  const std::string& text) {
  AdmissionDecision decision;
  switch (mode) {
    case CacheAdmissionMode::kDenyAll:
      decision.admit = false;
      return decision;
    case CacheAdmissionMode::kAllowAll:
      decision.admit = true;
      decision.sanitized_text = text;
      return decision;
    case CacheAdmissionMode::kScrub: {
      ScrubResult scrubbed = scrubber.Scrub(text);
      decision.admit = true;
      decision.sanitized_text = std::move(scrubbed.text);
      return decision;
    }
    case CacheAdmissionMode::kRejectPii: {
      ScrubResult scrubbed = scrubber.Scrub(text);
      decision.admit = !scrubbed.AnyPiiFound();
      decision.sanitized_text = decision.admit ? text : std::string();
      return decision;
    }
  }
  return decision;
}

}  // namespace iccache
