#include "src/core/proxy_model.h"

#include <algorithm>

#include "src/common/mathutil.h"

namespace iccache {

ProxyFeatures MakeProxyFeatures(double similarity, double example_quality,
                                double source_capability, double target_capability,
                                bool same_task, int example_tokens) {
  ProxyFeatures f;
  // Sentence embeddings are anisotropic: unrelated texts already sit near
  // cosine 0.5, so raw cosine overstates relevance. Recenter onto [0, 1]
  // with 0 at the random-pair baseline (standard embedding whitening).
  const double sim = Clamp((similarity - 0.5) / 0.5, 0.0, 1.0);
  const double quality = Clamp(example_quality, 0.0, 1.0);
  f.x[0] = 1.0;
  f.x[1] = sim;
  f.x[2] = quality;
  f.x[3] = Clamp(source_capability - target_capability, -1.0, 1.0);
  f.x[4] = same_task ? 1.0 : 0.0;
  f.x[5] = std::min(1.0, static_cast<double>(std::max(0, example_tokens)) / 1024.0);
  f.x[6] = sim * quality;
  return f;
}

ProxyUtilityModel::ProxyUtilityModel(ProxyModelConfig config) : config_(config) {
  // Mild informed prior: relevance and quality help, length costs. The online
  // updates dominate quickly; the prior only avoids a cold-start where the
  // selector filters everything out.
  weights_[0] = -1.0;
  weights_[1] = 1.0;
  weights_[2] = 0.5;
  weights_[6] = 1.0;
  weights_[5] = -0.25;
}

double ProxyUtilityModel::Predict(const ProxyFeatures& features) const {
  double z = 0.0;
  for (size_t i = 0; i < ProxyFeatures::kDim; ++i) {
    z += weights_[i] * features.x[i];
  }
  return Sigmoid(z);
}

void ProxyUtilityModel::Update(const ProxyFeatures& features, double label) {
  const double target = Clamp(label, 0.0, 1.0);
  const double prediction = Predict(features);
  const double gradient = prediction - target;  // d(logloss)/dz
  for (size_t i = 0; i < ProxyFeatures::kDim; ++i) {
    weights_[i] -= config_.learning_rate * (gradient * features.x[i] + config_.l2 * weights_[i]);
  }
  ++updates_;
}

}  // namespace iccache
