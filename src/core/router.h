// Load- and quality-aware Request Router (section 4.2).
//
// Arms are candidate models (e.g., small-with-examples and large-without).
// For each request the router builds a context from observable request and
// example statistics, Thompson-samples every arm, and applies two additive
// biases before the argmax:
//
//  * a standing cost preference that breaks quality ties toward cheap models;
//  * the Theorem-4 overload bias  -lambda0 * tanh(gamma * (load - threshold))
//    * cost_i, active only while the EMA load exceeds the operational
//    threshold — a smooth, saturating pressure toward cheap arms that leaves
//    the learned policy untouched.
//
// Feedback is solicited selectively (Appendix A.2): only when the softmax of
// the arms' posterior-mean scores is near-uniform (std below a gate) does the
// router ask for a preference comparison between the top choice and a
// confidence-sampled runner-up.
#ifndef SRC_CORE_ROUTER_H_
#define SRC_CORE_ROUTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/core/bandit.h"
#include "src/core/selector.h"
#include "src/workload/request.h"

namespace iccache {

struct RouterArmSpec {
  std::string model_name;
  double normalized_cost = 1.0;  // relative serving cost in [0, 1]
  bool uses_examples = false;    // whether this arm serves with IC examples
};

struct RouterConfig {
  double load_ema_alpha = 0.05;
  double load_threshold = 0.75;   // operational utilization threshold
  double bias_lambda = 1.5;       // lambda_0 in Theorem 4
  double bias_gamma = 2.0;        // gamma: tanh steepness on load deviation
  double cost_preference = 0.12;  // standing tie-break toward cheap arms
  double uncertainty_gate = 0.10; // solicit feedback when confidence std < gate
  // Forced exploration: fraction of requests routed to a uniformly random
  // arm. The per-arm linear posteriors under-explore context regions an arm
  // rarely serves (selection bias); a small epsilon keeps every region
  // sampled so the policy can track drift (section 8, model updates).
  double exploration_epsilon = 0.08;
  uint64_t seed = 0x40073;
};

struct RouteDecision {
  size_t arm = 0;
  std::string model_name;
  bool uses_examples = false;
  bool solicit_feedback = false;
  size_t second_choice = 0;
  double load_ema = 0.0;
  double overload_bias_magnitude = 0.0;  // auto-scaling signal (section 4.2)
  std::vector<double> context;
  std::vector<double> arm_means;
};

class RequestRouter {
 public:
  static constexpr size_t kContextDim = 8;

  RequestRouter(std::vector<RouterArmSpec> arms, RouterConfig config = {});

  // Builds the observable context for a request plus its selected examples.
  static std::vector<double> MakeContext(const Request& request,
                                         const std::vector<SelectedExample>& examples);

  // Difficulty estimate a production router would obtain from its
  // text-difficulty classifier. The synthetic workload's difficulty is not
  // decodable from the generated text, so a noisy deterministic oracle keyed
  // by request id stands in for that classifier (same device the RouteLLM
  // baseline uses).
  static double EstimateDifficulty(const Request& request);

  // Records an instantaneous load sample (utilization; 1.0 == at capacity).
  void ObserveLoad(double load);

  // Chooses the serving arm for the request.
  RouteDecision Route(const Request& request, const std::vector<SelectedExample>& examples);

  // Same decision logic with an external sampling stream and no mutation of
  // the router: Thompson sampling, exploration, and the runner-up draw all
  // consume `rng`, and the posteriors/load EMA are read as-is. Used by the
  // serving driver's commit lanes, which route a whole batch window against
  // posteriors frozen at the window start (reward updates are merged at the
  // window boundary) with a per-request stream, so any lane/thread count
  // reproduces the same decisions. Call PrepareSampling() after the last
  // posterior update and before fanning out concurrent callers.
  RouteDecision RouteWithRng(const Request& request,
                             const std::vector<SelectedExample>& examples, Rng& rng) const;

  // Refreshes the bandit's lazy posterior factorizations on the calling
  // thread so concurrent RouteWithRng calls are race-free.
  void PrepareSampling() const { bandit_.RefreshAll(); }

  // Reward feedback for a previously routed request (quality signal in [0,1]).
  void UpdateReward(const RouteDecision& decision, double reward);

  // Preference feedback between the two solicited arms (Appendix A.2).
  void UpdatePreference(const RouteDecision& decision, bool top_choice_won);

  double load_ema() const { return load_ema_.value(); }
  size_t num_arms() const { return arms_.size(); }
  const RouterArmSpec& arm_spec(size_t i) const { return arms_[i]; }
  const RouterConfig& config() const { return config_; }
  const ContextualBandit& bandit() const { return bandit_; }

  // Snapshot persistence: the router's learned/stochastic state is the bandit
  // posteriors + its sampling RNG, the load EMA, and the exploration RNG.
  ContextualBandit& mutable_bandit() { return bandit_; }
  bool load_ema_initialized() const { return load_ema_.initialized(); }
  void RestoreLoadEma(double value, bool initialized) {
    load_ema_.RestoreState(value, initialized);
  }
  RngState explore_rng_state() const { return explore_rng_.SaveState(); }
  void restore_explore_rng_state(const RngState& state) { explore_rng_.RestoreState(state); }

 private:
  // Shared route core: the Theorem-4 bias vector for the current load, and
  // the exploration override + decision fill applied to a bandit selection.
  // Route and RouteWithRng differ ONLY in which RNG streams they thread
  // through these helpers.
  std::vector<double> OverloadBiases(double load, double* overload) const;
  RouteDecision FinishDecision(BanditSelection selection, std::vector<double> context,
                               double load, double overload, Rng& explore_rng) const;

  std::vector<RouterArmSpec> arms_;
  RouterConfig config_;
  ContextualBandit bandit_;
  Ema load_ema_;
  Rng explore_rng_;
};

}  // namespace iccache

#endif  // SRC_CORE_ROUTER_H_
