// The cached example record: a historical request-response pair plus the
// bookkeeping the Example Manager needs (access statistics, utility EMAs,
// replay state, plaintext weight for the knapsack eviction).
//
// The stored response is represented by its latent quality and token count —
// the attributes every downstream consumer (generation simulator, judge,
// replay) actually reads. `response_text` carries the scrubbed plaintext for
// cache-size accounting and the privacy pipeline.
#ifndef SRC_CORE_EXAMPLE_H_
#define SRC_CORE_EXAMPLE_H_

#include <cstdint>
#include <string>

#include "src/workload/request.h"

namespace iccache {

struct Example {
  uint64_t id = 0;
  Request request;

  std::string response_text;
  double response_quality = 0.0;   // latent quality of the stored response
  double source_capability = 0.0;  // capability of the model that produced it
  int response_tokens = 0;

  // --- Example Manager bookkeeping (section 4.3) ---
  uint64_t access_count = 0;
  double last_access_time = 0.0;
  double admitted_time = 0.0;

  // EMA of the replay potential gain G(e) = (1 - quality) * model_cost.
  double replay_gain_ema = 0.0;
  int replay_count = 0;  // replay iterations consumed (capped at 5, section 5)

  // Decayed count of successful offloads this example enabled — the "value"
  // term of the knapsack eviction problem.
  double offload_value = 0.0;

  // Prompt-length contribution when prepended as an in-context example.
  int PromptTokens() const { return request.input_tokens + response_tokens; }

  // Plaintext weight (bytes) — the knapsack "weight".
  int64_t SizeBytes() const {
    return static_cast<int64_t>(request.text.size() + response_text.size()) +
           4LL * (request.input_tokens + response_tokens);
  }
};

}  // namespace iccache

#endif  // SRC_CORE_EXAMPLE_H_
