#include "src/core/client.h"

namespace iccache {

IcCacheClient::IcCacheClient(IcCacheService* service) : service_(service) {}

GenerationResult IcCacheClient::Generate(const Request& request) {
  clock_s_ += 1.0;
  last_outcome_ = service_->ServeRequest(request, clock_s_);
  return last_outcome_.generation;
}

std::vector<GenerationResult> IcCacheClient::Generate(const std::vector<Request>& requests) {
  std::vector<GenerationResult> responses;
  responses.reserve(requests.size());
  for (const Request& request : requests) {
    responses.push_back(Generate(request));
  }
  return responses;
}

void IcCacheClient::UpdateCache(const Request& request, const GenerationResult& response) {
  service_->cache().Put(request, "[client-registered]", response.latent_quality,
                        service_->large_model().capability, response.output_tokens, clock_s_);
}

void IcCacheClient::Stop() {
  if (stopped_) {
    return;
  }
  service_->RunMaintenance(clock_s_ + 3600.0);
  stopped_ = true;
}

}  // namespace iccache
