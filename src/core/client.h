// IcCacheClient: the few-lines-of-code integration facade from Figure 6.
//
//   IcCacheClient client(&service);
//   auto response = client.Generate(request);   // full Algorithm-1 path
//   client.UpdateCache(request, response);      // explicit cache registration
//   client.Stop();
//
// Generate() runs the serving path (which already performs opportunistic
// admission); UpdateCache() is the explicit registration hook applications
// use when they control admission themselves (e.g., after local PII review).
#ifndef SRC_CORE_CLIENT_H_
#define SRC_CORE_CLIENT_H_

#include <vector>

#include "src/core/service.h"

namespace iccache {

class IcCacheClient {
 public:
  explicit IcCacheClient(IcCacheService* service);

  // Serves one request through IC-Cache; advances the client clock.
  GenerationResult Generate(const Request& request);

  // Batch variant mirroring the Figure 6 API.
  std::vector<GenerationResult> Generate(const std::vector<Request>& requests);

  // Registers a request-response pair into the example cache.
  void UpdateCache(const Request& request, const GenerationResult& response);

  // Flushes maintenance work (decay/replay/eviction) and closes the session.
  void Stop();

  const ServeOutcome& last_outcome() const { return last_outcome_; }

 private:
  IcCacheService* service_;
  ServeOutcome last_outcome_;
  double clock_s_ = 0.0;
  bool stopped_ = false;
};

}  // namespace iccache

#endif  // SRC_CORE_CLIENT_H_
