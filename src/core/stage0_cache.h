// Stage-0 semantic response cache: the tier that runs BEFORE stage-1 example
// retrieval in both serving stacks. The cheapest request is the one never
// generated — when a new request's nearest cached neighbour clears the
// learned hit threshold, the stored response is returned verbatim at zero
// generation cost (InstCache-style predictive response caching; the hit
// decision is an embedding-similarity threshold as in "Efficient Prompt
// Caching via Embedding Similarity").
//
// This is the promotion of the old `src/baselines/semantic_cache.{h,cc}`
// GPTCache-style baseline into a first-class pipeline stage, fixing its
// latent bugs on the way in:
//
//   * bounded: exact/near-exact duplicate inserts merge into one entry
//     (keeping the better-quality response) and an entry + byte watermark is
//     enforced on every insert with a deterministic eviction ranking;
//   * pluggable stage-1 index: the retrieval backend (flat | kmeans | hnsw)
//     is chosen through RetrievalBackendConfig instead of a hard-coded
//     FlatIndex — serving defaults to HNSW, the standalone baseline keeps
//     the exact flat reference;
//   * no redundant embedding: every probe has an overload taking the
//     caller's already-computed request embedding;
//   * NearestSimilarity returns std::optional<double> — the old -1.0
//     empty-cache sentinel collided with legitimately negative cosines.
//
// Serving semantics layered on top:
//
//   * learned hit threshold — the selector's dynamic-threshold machinery
//     (grid of candidate thresholds, per-cell net-benefit accounting fed by
//     probe-sampled counterfactuals, cadence-driven re-evaluation);
//   * staleness — entries older than `ttl_s` never hit and are expired at
//     maintenance boundaries; quality feedback below
//     `invalidate_below_quality` invalidates the entry outright.
//
// Concurrency contract (mirrors ExampleSelector): every const method is a
// pure read and safe to fan out across a driver's parallel prepare phase;
// every mutating method (Put / RecordHit / OnHitFeedback / AdvanceWindow /
// ExpireStale / Invalidate) must run on the serial path — the driver calls
// them only from the arrival-order merge and the window boundary, which the
// pipeline already orders against all concurrent probes.
#ifndef SRC_CORE_STAGE0_CACHE_H_
#define SRC_CORE_STAGE0_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/retrieval_backend.h"
#include "src/embedding/embedder.h"
#include "src/index/vector_index.h"
#include "src/workload/request.h"

namespace iccache {

// One cached request-response pair. The response is represented by its
// latent quality and token count (the attributes downstream consumers read)
// plus the scrubbed plaintext for byte accounting, exactly like Example.
struct Stage0Entry {
  uint64_t id = 0;
  Request request;
  std::string response_text;
  double response_quality = 0.0;  // latent quality of the stored response
  int response_tokens = 0;

  double admitted_time = 0.0;  // refreshed when a duplicate insert merges
  double last_hit_time = 0.0;
  uint64_t hit_count = 0;

  int64_t SizeBytes() const {
    return static_cast<int64_t>(request.text.size() + response_text.size()) +
           4LL * (request.input_tokens + response_tokens);
  }
};

// Result of a pure probe: the nearest entry (snapshot copy — no pointer into
// the cache escapes), its similarity, and whether it is within TTL at the
// probe time. The threshold decision is NOT applied here: a concurrent
// driver probes in the parallel prepare phase but must judge the hit against
// the threshold FROZEN at its window start (see Confident), or lane count
// would leak into decisions.
struct Stage0Probe {
  Stage0Entry entry;
  double similarity = 0.0;
  bool fresh = true;
};

// Prepare-phase dedupe hint: the top-1 neighbour a pure Probe already found,
// letting the serial merge's Put skip its own index search. The id may be
// stale by merge time (evicted, or superseded by a same-window admission) —
// Put revalidates existence and always checks the exact-text map first.
struct Stage0DedupeHint {
  uint64_t id = 0;  // 0: the probe saw an empty cache
  double similarity = 0.0;
};

// Online-learned state for snapshot persistence (mirrors
// SelectorAdaptiveState): the dynamic hit threshold plus the cadence counter
// and per-grid-cell net-benefit accounting.
struct Stage0AdaptiveState {
  double hit_threshold = 0.0;
  uint64_t requests_seen = 0;
  std::vector<double> grid_benefit;
  std::vector<uint64_t> grid_count;
};

// Serving-path default: the incremental HNSW backend (the baseline adapter
// overrides to flat, the exact reference).
RetrievalBackendConfig DefaultStage0Retrieval();

struct Stage0Config {
  // Master switch (DriverConfig/ServiceConfig embed this config). Off by
  // default: stage-0 changes the decision stream, so existing traces only
  // gain the tier when asked.
  bool enabled = false;

  // Hit decision. The threshold starts here and, with `learn_threshold`,
  // adapts over `threshold_grid` at `adapt_every_n_requests` cadence using
  // probe-sampled counterfactual feedback: on a deterministic `probe_rate`
  // slice of hits the response is ALSO generated fresh, and every grid cell
  // the hit's similarity clears is credited with
  //   (reused_quality - fresh_quality) + token_saving_weight * tokens_saved
  // — the cell with the best mean net benefit wins the next re-evaluation.
  double initial_hit_threshold = 0.92;
  bool learn_threshold = true;
  std::vector<double> threshold_grid = {0.85, 0.90, 0.94, 0.97, 0.99};
  size_t adapt_every_n_requests = 256;
  double token_saving_weight = 0.0004;
  double probe_rate = 0.10;

  // Invalidation. `ttl_s` <= 0 disables staleness; otherwise entries older
  // than ttl_s never hit (Probe reports fresh=false) and ExpireStale removes
  // them. A served hit whose reuse quality lands below
  // `invalidate_below_quality` is removed immediately — the cached answer
  // demonstrably no longer fits the traffic matching it.
  double ttl_s = 0.0;
  double invalidate_below_quality = 0.30;

  // Admission / eviction. Only responses at or above `min_admit_quality`
  // are cached (a bad answer served twice is twice as bad). Near-exact
  // duplicates (similarity >= dedupe_min_similarity, or byte-identical
  // text) merge into the existing entry, keeping the better response.
  // Bounds are enforced on every insert: when `max_entries` or
  // capacity_bytes * high_watermark is crossed, entries are evicted down to
  // the low watermark in a deterministic worst-first order (least recently
  // useful, then lowest quality, then oldest id).
  double min_admit_quality = 0.45;
  double dedupe_min_similarity = 0.995;
  size_t max_entries = 4096;
  int64_t capacity_bytes = -1;  // <= 0: no byte bound
  double high_watermark = 1.0;
  double low_watermark = 0.9;

  // Stage-1 index over the entry embeddings (flat | kmeans | hnsw).
  RetrievalBackendConfig retrieval = DefaultStage0Retrieval();
  uint64_t seed = 0x57a9e0;
};

class Stage0ResponseCache {
 public:
  explicit Stage0ResponseCache(std::shared_ptr<const Embedder> embedder,
                               Stage0Config config = {});

  // --- Pure probes (const, parallel-phase safe) ----------------------------

  // Nearest cached entry with its similarity and TTL freshness at `now`.
  // Thresholds are NOT applied — see Confident. nullopt when empty.
  std::optional<Stage0Probe> Probe(const std::vector<float>& embedding, double now) const;
  std::optional<Stage0Probe> Probe(const Request& request, double now) const;

  // Batched Probe over `num_queries` contiguous embeddings (query i at
  // embeddings[i * query_dim]): runs the index's multi-query SearchBatch
  // through `scratch`, then resolves each top-1 hit exactly as Probe does,
  // judging freshness against nows[i]. (*out)[i] compares equal to
  // Probe(embedding_i, nows[i]); out is resized to num_queries. The per-query
  // trace spans match the single-probe path.
  void ProbeBatch(const float* embeddings, size_t num_queries, size_t query_dim,
                  const double* nows, SearchScratch* scratch,
                  std::vector<std::optional<Stage0Probe>>* out) const;

  // Top-k fresh entries, best first (baseline LookupK path: retrieved
  // entries repurposed as in-context examples).
  std::vector<Stage0Probe> ProbeK(const std::vector<float>& embedding, size_t k,
                                  double now) const;

  // Nearest-neighbour similarity regardless of threshold or TTL; nullopt
  // when the cache is empty (NOT a negative sentinel — cosines can be
  // legitimately negative).
  std::optional<double> NearestSimilarity(const std::vector<float>& embedding) const;
  std::optional<double> NearestSimilarity(const Request& request) const;

  // Hit decision against the CURRENT threshold. In a concurrent driver the
  // threshold only moves at window boundaries (AdvanceWindow), so lanes
  // judge every request in a window against the same frozen value.
  bool Confident(const Stage0Probe& probe) const {
    return probe.fresh && probe.similarity >= hit_threshold_;
  }

  // --- Stateful mutations (serial merge / synchronous callers only) --------

  // Inserts a request-response pair (embedding-taking fast path). Returns
  // the entry id — the EXISTING id when the insert deduped into a
  // near-exact neighbour — or 0 when rejected by the quality gate. Enforces
  // the entry/byte bound before returning. When `dedupe_hint` is non-null
  // the near-exact dedupe uses the caller's prepare-phase probe instead of
  // a fresh index search (the concurrent driver's serial-path saving).
  uint64_t Put(const Request& request, std::vector<float> embedding,
               std::string response_text, double response_quality, int response_tokens,
               double now, const Stage0DedupeHint* dedupe_hint = nullptr);
  // Embeds internally (standalone/baseline path).
  uint64_t Put(const Request& request, double response_quality, int response_tokens,
               double now = 0.0);

  // Marks a served hit (recency + hit accounting for the eviction ranking).
  void RecordHit(uint64_t id, double now);

  // Removes the entry; false when absent.
  bool Invalidate(uint64_t id);

  // Quality-feedback invalidation: removes the entry when the observed
  // reuse quality fell below config.invalidate_below_quality. Returns true
  // when the entry was invalidated.
  bool OnQualityFeedback(uint64_t id, double observed_reuse_quality);

  // Removes every entry whose age exceeds ttl_s; returns how many. No-op
  // (returns 0) when ttl_s <= 0.
  size_t ExpireStale(double now);

  // --- Threshold learning --------------------------------------------------

  // Credits every grid threshold the hit's similarity clears with the
  // probe-measured net benefit; cells above the similarity would have missed
  // (fresh generation, zero benefit) and only advance their sample count.
  void OnHitFeedback(double similarity, double reused_quality, double fresh_quality,
                     int tokens_saved);

  // Counts `requests` toward the adaptation cadence and re-evaluates the
  // grid once when the counter crosses an adapt_every_n_requests multiple
  // (the driver calls this per window boundary, the service per request).
  void AdvanceWindow(size_t requests);

  double hit_threshold() const { return hit_threshold_; }
  void set_hit_threshold(double threshold) { hit_threshold_ = threshold; }

  // --- Accessors / persistence ---------------------------------------------

  size_t size() const { return entries_.size(); }
  int64_t used_bytes() const { return used_bytes_; }
  const Stage0Config& config() const { return config_; }
  std::shared_ptr<const Embedder> embedder() const { return embedder_; }

  Stage0AdaptiveState SaveAdaptiveState() const;
  // False (cache untouched) on a grid-size mismatch, as with the selector.
  bool RestoreAdaptiveState(const Stage0AdaptiveState& state);

  // Iterates every entry in ascending id order with its index embedding.
  void ExportEntries(
      const std::function<void(const Stage0Entry&, const std::vector<float>&)>& fn) const;
  // Re-inserts an exported entry preserving id, statistics, and byte
  // accounting. `add_to_index` is false when the index was restored
  // natively. False on id 0 or a duplicate id.
  bool ImportEntry(const Stage0Entry& entry, std::vector<float> embedding, bool add_to_index);

  uint64_t next_id() const { return next_id_; }
  void restore_next_id(uint64_t next_id);

  // Native index image (HNSW graph); false when the backend has no native
  // format — callers rebuild from the exported embeddings instead. Restoring
  // the graph image (not a rebuild) is what keeps post-restore probe results
  // byte-identical to the writer's: an HNSW graph rebuilt in id order can
  // differ from one grown insert-by-insert through merges and evictions.
  bool SaveIndexBlob(std::string* out) const;
  bool LoadIndexBlob(const std::string& blob);

 private:
  const Stage0Entry* Nearest(const std::vector<float>& embedding, double* similarity) const;
  bool RemoveEntry(uint64_t id);
  void EnforceBounds();
  void AdaptThresholdFromGrid();

  std::shared_ptr<const Embedder> embedder_;
  Stage0Config config_;
  std::unique_ptr<VectorIndex> index_;
  std::unordered_map<uint64_t, Stage0Entry> entries_;
  // Exact-text dedupe acceleration: an approximate index (hnsw/kmeans) is
  // not guaranteed to surface a byte-identical duplicate as the top-1.
  std::unordered_map<std::string, uint64_t> id_by_text_;
  uint64_t next_id_ = 1;
  int64_t used_bytes_ = 0;

  double hit_threshold_;
  uint64_t requests_seen_ = 0;
  std::vector<double> grid_benefit_;
  std::vector<uint64_t> grid_count_;
};

}  // namespace iccache

#endif  // SRC_CORE_STAGE0_CACHE_H_
