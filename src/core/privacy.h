// Privacy admission controls (section 4.3, "How Does IC-Cache Respect
// Privacy?"): client-side sanitization that removes personally identifiable
// information before a request-response pair may enter the shared cache, plus
// a domain tag so cached data can be restricted to designated user domains.
// The detector is a rule-based stand-in for the paper's spaCy pipeline.
#ifndef SRC_CORE_PRIVACY_H_
#define SRC_CORE_PRIVACY_H_

#include <string>

namespace iccache {

struct ScrubResult {
  std::string text;        // input with PII spans replaced by placeholders
  int emails_removed = 0;
  int phones_removed = 0;
  int ids_removed = 0;     // SSN-like digit patterns

  bool AnyPiiFound() const { return emails_removed + phones_removed + ids_removed > 0; }
};

class PiiScrubber {
 public:
  // Replaces e-mail addresses, phone numbers, and SSN-like identifiers with
  // "[EMAIL]", "[PHONE]", "[ID]" placeholders.
  ScrubResult Scrub(const std::string& text) const;
};

enum class CacheAdmissionMode {
  kAllowAll,        // cache everything as-is
  kScrub,           // scrub PII, then admit (default, mirrors the paper)
  kRejectPii,       // drop any request containing PII outright
  kDenyAll,         // caching disabled (client opted out via the API)
};

struct AdmissionDecision {
  bool admit = false;
  std::string sanitized_text;
};

// Applies the admission mode to a candidate cache entry's text.
AdmissionDecision DecideAdmission(const PiiScrubber& scrubber, CacheAdmissionMode mode,
                                  const std::string& text);

}  // namespace iccache

#endif  // SRC_CORE_PRIVACY_H_
