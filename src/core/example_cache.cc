#include "src/core/example_cache.h"

#include <algorithm>
#include <utility>

#include "src/common/knapsack.h"
#include "src/common/mathutil.h"

namespace iccache {

ExampleCache::ExampleCache(std::shared_ptr<const Embedder> embedder, ExampleCacheConfig config)
    : embedder_(std::move(embedder)),
      config_(config),
      index_(MakeRetrievalIndex(config.retrieval, embedder_->dim(), config.seed)) {}

uint64_t ExampleCache::Put(const Request& request, std::string response_text,
                           double response_quality, double source_capability, int response_tokens,
                           double now) {
  const AdmissionDecision decision =
      DecideAdmission(scrubber_, config_.admission_mode, request.text);
  if (!decision.admit) {
    return 0;
  }
  std::vector<float> embedding = embedder_->Embed(decision.sanitized_text);
  return PutPrepared(request, decision.sanitized_text, std::move(embedding),
                     std::move(response_text), response_quality, source_capability,
                     response_tokens, now);
}

uint64_t ExampleCache::PutPrepared(const Request& request, std::string sanitized_text,
                                   std::vector<float> embedding, std::string response_text,
                                   double response_quality, double source_capability,
                                   int response_tokens, double now) {
  Example example;
  example.id = next_id_++;
  example.request = request;
  example.request.text = std::move(sanitized_text);
  example.response_text = std::move(response_text);
  example.response_quality = response_quality;
  example.source_capability = source_capability;
  example.response_tokens = response_tokens;
  example.admitted_time = now;
  example.last_access_time = now;
  // New examples start with replay gain proportional to their headroom.
  example.replay_gain_ema = (1.0 - response_quality);

  used_bytes_ += example.SizeBytes();
  index_->Add(example.id, std::move(embedding));
  examples_[example.id] = std::move(example);

  if (config_.capacity_bytes > 0 &&
      static_cast<double>(used_bytes_) >
          static_cast<double>(config_.capacity_bytes) * config_.high_watermark) {
    EnforceCapacity();
  }
  return next_id_ - 1;
}

std::vector<SearchResult> ExampleCache::FindSimilar(const Request& request, size_t k) const {
  return FindSimilar(embedder_->Embed(request.text), k);
}

std::vector<SearchResult> ExampleCache::FindSimilar(const std::vector<float>& embedding,
                                                    size_t k) const {
  return index_->Search(embedding, k);
}

const Example* ExampleCache::Get(uint64_t id) const {
  const auto it = examples_.find(id);
  return it == examples_.end() ? nullptr : &it->second;
}

Example* ExampleCache::GetMutable(uint64_t id) {
  const auto it = examples_.find(id);
  return it == examples_.end() ? nullptr : &it->second;
}

bool ExampleCache::Snapshot(uint64_t id, Example* out) const {
  const Example* example = Get(id);
  if (example == nullptr) {
    return false;
  }
  *out = *example;
  return true;
}

bool ExampleCache::Remove(uint64_t id) {
  const auto it = examples_.find(id);
  if (it == examples_.end()) {
    return false;
  }
  used_bytes_ -= it->second.SizeBytes();
  index_->Remove(id);
  examples_.erase(it);
  return true;
}

void ExampleCache::RecordAccess(uint64_t id, double now) {
  Example* example = GetMutable(id);
  if (example == nullptr) {
    return;
  }
  ++example->access_count;
  example->last_access_time = now;
}

void ExampleCache::RecordOffload(uint64_t id, double gain) {
  Example* example = GetMutable(id);
  if (example == nullptr) {
    return;
  }
  example->offload_value += gain;
}

void ExampleCache::DecayTick() {
  for (auto& [id, example] : examples_) {
    example.offload_value *= config_.decay_factor;
    example.replay_gain_ema *= config_.decay_factor;
  }
}

std::vector<uint64_t> ExampleCache::EnforceCapacity() {
  std::vector<uint64_t> evicted;
  if (config_.capacity_bytes <= 0 || used_bytes_ <= config_.capacity_bytes) {
    return evicted;
  }

  // Knapsack over retained examples: weight = plaintext bytes, value =
  // decayed offload gain (with a small recency epsilon so fresh, not-yet-used
  // examples are not starved out immediately).
  std::vector<uint64_t> ids;
  std::vector<KnapsackItem> items;
  ids.reserve(examples_.size());
  items.reserve(examples_.size());
  for (const auto& [id, example] : examples_) {
    ids.push_back(id);
    KnapsackItem item;
    item.weight = example.SizeBytes();
    item.value = example.offload_value + 1e-3;
    items.push_back(item);
  }

  const int64_t target_bytes = static_cast<int64_t>(
      static_cast<double>(config_.capacity_bytes) * Clamp(config_.low_watermark, 0.1, 1.0));
  const KnapsackSolution solution = SolveKnapsack(items, target_bytes);
  std::vector<bool> keep(ids.size(), false);
  for (size_t idx : solution.selected) {
    keep[idx] = true;
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!keep[i]) {
      evicted.push_back(ids[i]);
      Remove(ids[i]);
    }
  }
  return evicted;
}

std::vector<uint64_t> ExampleCache::AllIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(examples_.size());
  for (const auto& [id, example] : examples_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace iccache
