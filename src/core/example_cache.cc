#include "src/core/example_cache.h"

#include <algorithm>
#include <utility>

#include "src/common/knapsack.h"
#include "src/common/mathutil.h"

namespace iccache {

ExampleCache::ExampleCache(std::shared_ptr<const Embedder> embedder, ExampleCacheConfig config)
    : embedder_(std::move(embedder)),
      config_(config),
      index_(MakeRetrievalIndex(config.retrieval, embedder_->dim(), config.seed)) {}

uint64_t ExampleCache::Put(const Request& request, std::string response_text,
                           double response_quality, double source_capability, int response_tokens,
                           double now) {
  return PutPrepared(request, PrepareAdmission(request), std::move(response_text),
                     response_quality, source_capability, response_tokens, now);
}

PreparedAdmission ExampleCache::PrepareAdmission(const Request& request,
                                                 const std::vector<float>* text_embedding) const {
  return PrepareAdmissionPayload(scrubber_, config_.admission_mode, *embedder_, request,
                                 text_embedding);
}

uint64_t ExampleCache::PutPrepared(const Request& request, PreparedAdmission prepared,
                                   std::string response_text, double response_quality,
                                   double source_capability, int response_tokens, double now) {
  if (!prepared.admit) {
    return 0;
  }
  return PutPrepared(request, std::move(prepared.sanitized_text), std::move(prepared.embedding),
                     std::move(response_text), response_quality, source_capability,
                     response_tokens, now);
}

uint64_t ExampleCache::PutPrepared(const Request& request, std::string sanitized_text,
                                   std::vector<float> embedding, std::string response_text,
                                   double response_quality, double source_capability,
                                   int response_tokens, double now) {
  Example example;
  example.id = next_id_++;
  example.request = request;
  example.request.text = std::move(sanitized_text);
  example.response_text = std::move(response_text);
  example.response_quality = response_quality;
  example.source_capability = source_capability;
  example.response_tokens = response_tokens;
  example.admitted_time = now;
  example.last_access_time = now;
  // New examples start with replay gain proportional to their headroom.
  example.replay_gain_ema = (1.0 - response_quality);

  used_bytes_ += example.SizeBytes();
  index_->Add(example.id, std::move(embedding));
  examples_[example.id] = std::move(example);

  if (config_.capacity_bytes > 0 &&
      static_cast<double>(used_bytes_) >
          static_cast<double>(config_.capacity_bytes) * config_.high_watermark) {
    EnforceCapacity();
  }
  return next_id_ - 1;
}

std::vector<SearchResult> ExampleCache::FindSimilar(const Request& request, size_t k) const {
  return FindSimilar(embedder_->Embed(request.text), k);
}

std::vector<SearchResult> ExampleCache::FindSimilar(const std::vector<float>& embedding,
                                                    size_t k) const {
  return index_->Search(embedding, k);
}

void ExampleCache::FindSimilarBatch(const float* queries, size_t num_queries, size_t query_dim,
                                    size_t k, SearchScratch* scratch,
                                    std::vector<std::vector<SearchResult>>* out) const {
  index_->SearchBatch(queries, num_queries, query_dim, k, scratch);
  out->resize(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    const SearchResult* results = scratch->ResultsOf(i);
    (*out)[i].assign(results, results + scratch->ResultCountOf(i));
  }
}

const Example* ExampleCache::Get(uint64_t id) const {
  const auto it = examples_.find(id);
  return it == examples_.end() ? nullptr : &it->second;
}

Example* ExampleCache::GetMutable(uint64_t id) {
  const auto it = examples_.find(id);
  return it == examples_.end() ? nullptr : &it->second;
}

bool ExampleCache::Snapshot(uint64_t id, Example* out) const {
  const Example* example = Get(id);
  if (example == nullptr) {
    return false;
  }
  *out = *example;
  return true;
}

bool ExampleCache::Remove(uint64_t id) {
  const auto it = examples_.find(id);
  if (it == examples_.end()) {
    return false;
  }
  used_bytes_ -= it->second.SizeBytes();
  index_->Remove(id);
  examples_.erase(it);
  return true;
}

bool ExampleCache::UpdateExample(uint64_t id, const std::function<void(Example&)>& mutate) {
  Example* example = GetMutable(id);
  if (example == nullptr) {
    return false;
  }
  const int64_t before = example->SizeBytes();
  mutate(*example);
  used_bytes_ += example->SizeBytes() - before;
  return true;
}

void ExampleCache::RecordAccess(uint64_t id, double now) {
  Example* example = GetMutable(id);
  if (example == nullptr) {
    return;
  }
  ++example->access_count;
  example->last_access_time = now;
}

void ExampleCache::RecordOffload(uint64_t id, double gain) {
  Example* example = GetMutable(id);
  if (example == nullptr) {
    return;
  }
  example->offload_value += gain;
}

void ExampleCache::DecayTick() {
  for (auto& [id, example] : examples_) {
    example.offload_value *= config_.decay_factor;
    example.replay_gain_ema *= config_.decay_factor;
  }
}

std::vector<uint64_t> ExampleCache::EnforceCapacity() {
  // Evict once usage passes the high watermark; a watermark above 1.0 (used
  // by tests to disable auto-eviction) still enforces at the capacity line.
  const double trigger = static_cast<double>(config_.capacity_bytes) *
                         std::min(1.0, config_.high_watermark);
  if (config_.capacity_bytes <= 0 || static_cast<double>(used_bytes_) <= trigger) {
    return {};
  }
  return EvictToBytes(static_cast<int64_t>(static_cast<double>(config_.capacity_bytes) *
                                           Clamp(config_.low_watermark, 0.1, 1.0)));
}

std::vector<uint64_t> ExampleCache::EvictToBytes(int64_t target_bytes) {
  std::vector<uint64_t> evicted;
  if (used_bytes_ <= target_bytes) {
    return evicted;
  }

  // Knapsack over retained examples: weight = plaintext bytes, value =
  // decayed offload gain (with a small recency epsilon so fresh, not-yet-used
  // examples are not starved out immediately). Items are fed in ascending-id
  // order: the solver's tie-breaks depend on item order, so eviction must be
  // a function of pool CONTENTS, not of hash-map iteration history — a
  // snapshot-restored pool has to evict exactly what the original would.
  const std::vector<uint64_t> ids = AllIds();
  std::vector<KnapsackItem> items;
  items.reserve(ids.size());
  for (uint64_t id : ids) {
    const Example& example = examples_.at(id);
    KnapsackItem item;
    item.weight = example.SizeBytes();
    item.value = example.offload_value + 1e-3;
    items.push_back(item);
  }

  const KnapsackSolution solution = SolveKnapsack(items, target_bytes);
  std::vector<bool> keep(ids.size(), false);
  for (size_t idx : solution.selected) {
    keep[idx] = true;
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (!keep[i]) {
      evicted.push_back(ids[i]);
      Remove(ids[i]);
    }
  }
  return evicted;
}

std::vector<uint64_t> ExampleCache::AllIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(examples_.size());
  for (const auto& [id, example] : examples_) {
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ExampleCache::ExportExamples(
    const std::function<void(const Example&, const std::vector<float>&)>& fn) const {
  std::vector<float> embedding;
  for (uint64_t id : AllIds()) {
    embedding.clear();
    index_->GetVector(id, &embedding);
    fn(examples_.at(id), embedding);
  }
}

MaintenanceCut ExampleCache::ExportMaintenanceCut() const {
  MaintenanceCut cut;
  cut.examples.reserve(examples_.size());
  for (uint64_t id : AllIds()) {
    cut.examples.push_back(examples_.at(id));
  }
  cut.used_bytes = used_bytes_;
  cut.capacity_bytes = config_.capacity_bytes;
  cut.high_watermark = config_.high_watermark;
  cut.low_watermark = config_.low_watermark;
  cut.decay_factor = config_.decay_factor;
  return cut;
}

StoreSnapshotCut ExampleCache::ExportSnapshotCut() const {
  // Single-threaded by contract, so the piecewise reads already form a cut.
  StoreSnapshotCut cut;
  cut.examples.reserve(examples_.size());
  for (uint64_t id : AllIds()) {
    ExportedExample entry;
    entry.example = examples_.at(id);
    index_->GetVector(id, &entry.embedding);
    cut.examples.push_back(std::move(entry));
  }
  cut.next_ids = ExportNextIds();
  cut.native_index = SaveIndexBlob(&cut.index_blob);
  if (!cut.native_index) {
    cut.index_blob.clear();
  }
  cut.used_bytes = used_bytes_;
  return cut;
}

bool ExampleCache::ImportExample(const Example& example, std::vector<float> embedding,
                                 bool add_to_index) {
  if (example.id == 0 || examples_.count(example.id) > 0) {
    return false;
  }
  used_bytes_ += example.SizeBytes();
  if (add_to_index) {
    index_->Add(example.id, std::move(embedding));
  }
  examples_[example.id] = example;
  next_id_ = std::max(next_id_, example.id + 1);
  return true;
}

std::vector<uint64_t> ExampleCache::ExportNextIds() const { return {next_id_}; }

bool ExampleCache::ImportNextIds(const std::vector<uint64_t>& next_ids) {
  if (next_ids.size() != 1) {
    return false;
  }
  next_id_ = std::max(next_id_, next_ids[0]);
  return true;
}

bool ExampleCache::SaveIndexBlob(std::string* out) const {
  const auto* hnsw = dynamic_cast<const HnswIndex*>(index_.get());
  if (hnsw == nullptr) {
    return false;
  }
  hnsw->SaveGraph(out);
  return true;
}

bool ExampleCache::LoadIndexBlob(const std::string& blob) {
  auto* hnsw = dynamic_cast<HnswIndex*>(index_.get());
  return hnsw != nullptr && hnsw->LoadGraph(blob);
}

}  // namespace iccache
