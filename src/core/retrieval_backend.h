// Unified stage-1 retrieval backend.
//
// Every component that performs embedding-similarity retrieval — ExampleCache,
// each ShardedExampleCache shard, the figure benches — routes through one
// pluggable VectorIndex chosen here:
//
//   flat   — exact brute force; the correctness reference and the
//            determinism-preserving default for small pools.
//   kmeans — inverted-file over K-Means clusters (the paper's section 4.1
//            offline clustering); approximate, rebuilds as the pool grows.
//   hnsw   — incremental graph ANN (src/index/hnsw.h); sub-millisecond
//            search at pool sizes where flat scans and stale clusters fail.
//
// The ExampleStore interface below is the consumer-side half of the
// unification: ExampleSelector runs against it, so the full selection
// pipeline (dynamic threshold, diversity, worst-to-best ordering) works
// identically over a plain ExampleCache and over the concurrent
// ShardedExampleCache the serving driver uses.
#ifndef SRC_CORE_RETRIEVAL_BACKEND_H_
#define SRC_CORE_RETRIEVAL_BACKEND_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/example.h"
#include "src/core/privacy.h"
#include "src/embedding/embedder.h"
#include "src/index/hnsw.h"
#include "src/index/vector_index.h"

namespace iccache {

enum class RetrievalBackendKind {
  kFlat,
  kKMeans,
  kHnsw,
};

// Embedding storage precision for backends that support quantization (today:
// hnsw). kInt8 stores each vector as dim int8 codes + one float scale (~3.9x
// less arena memory at dim=128) and re-ranks the top `rerank_k` candidates
// against the full-precision query, keeping recall@10 >= 0.95 of the float
// index at million-example pools.
enum class QuantizationKind {
  kNone,
  kInt8,
};

struct RetrievalBackendConfig {
  // kKMeans is the seed repo's behavior and stays the default.
  RetrievalBackendKind kind = RetrievalBackendKind::kKMeans;
  // K-Means: clusters probed per query.
  size_t nprobe = 3;
  // Embedding storage precision (hnsw only; flat/kmeans ignore it — they are
  // the exact references).
  QuantizationKind quantize = QuantizationKind::kNone;
  // Beam candidates re-scored at full precision before the final top-k cut
  // (only meaningful with quantize = kInt8).
  size_t rerank_k = 64;
  // HNSW knobs; `hnsw.dim` and `hnsw.seed` are overridden by the owning
  // cache (embedder dimension / per-shard seed) at construction, and
  // `hnsw.quantize_int8` / `hnsw.rerank_k` by the fields above.
  HnswIndexConfig hnsw;
};

// Builds the configured index with the given vector dimension and seed.
std::unique_ptr<VectorIndex> MakeRetrievalIndex(const RetrievalBackendConfig& config, size_t dim,
                                                uint64_t seed);

// "flat" | "kmeans" | "hnsw".
const char* RetrievalBackendKindName(RetrievalBackendKind kind);

// Parses a backend name (as accepted by bench --index flags); returns false
// on an unknown name, leaving *out untouched.
bool ParseRetrievalBackendKind(const std::string& name, RetrievalBackendKind* out);

// "none" | "int8".
const char* QuantizationKindName(QuantizationKind kind);

// Parses a quantization name (bench --quantize flags); returns false on an
// unknown name, leaving *out untouched.
bool ParseQuantizationKind(const std::string& name, QuantizationKind* out);

// Result of the pure (parallel-phase) half of an admission: the privacy
// decision plus the embedding of the sanitized text. Produced by
// ExampleStore::PrepareAdmission, consumed by ExampleStore::PutPrepared.
struct PreparedAdmission {
  bool admit = false;
  std::string sanitized_text;
  std::vector<float> embedding;
};

// Shared implementation of PrepareAdmission for every store: privacy
// decision + embedding of the sanitized text. When the caller already
// embedded request.text, pass it as `text_embedding`; it is reused whenever
// scrubbing left the text unchanged (the PII-free common case).
PreparedAdmission PrepareAdmissionPayload(const PiiScrubber& scrubber, CacheAdmissionMode mode,
                                          const Embedder& embedder, const Request& request,
                                          const std::vector<float>* text_embedding);

// One exported pool entry: the full lifecycle record plus its index vector.
struct ExportedExample {
  Example example;
  std::vector<float> embedding;
};

// Result of ExampleStore::ExportSnapshotCut — see that method's contract.
struct StoreSnapshotCut {
  std::vector<ExportedExample> examples;  // ascending (global) id order
  std::vector<uint64_t> next_ids;         // per-shard insertion counters
  std::string index_blob;                 // empty when no native image
  bool native_index = false;
  int64_t used_bytes = 0;
};

// Epoch-consistent view of the pool for background maintenance planning
// (ExampleStore::ExportMaintenanceCut): every lifecycle record plus the byte
// accounting and the capacity/decay policy knobs the planner needs, all
// describing one instant. Much cheaper than ExportSnapshotCut — no
// embeddings, no native index image — because decay, knapsack eviction, and
// replay ranking only read the records.
struct MaintenanceCut {
  std::vector<Example> examples;  // ascending (global) id order
  int64_t used_bytes = 0;
  // Capacity policy of the owning store at cut time.
  int64_t capacity_bytes = -1;
  double high_watermark = 1.0;
  double low_watermark = 0.9;
  double decay_factor = 0.9;
};

// Surface the selection pipeline AND the example lifecycle layer
// (ExampleManager: admission, gain accounting, replay, decay + eviction) need
// from an example store. Implemented by ExampleCache (single-threaded) and
// ShardedExampleCache (concurrent). Snapshot copies the example out so no
// pointer escapes a shard lock; UpdateExample applies a mutation under it.
class ExampleStore {
 public:
  virtual ~ExampleStore() = default;

  // --- Selection surface ---------------------------------------------------

  // Stage-1 relevance lookup: top-k most similar cached examples.
  virtual std::vector<SearchResult> FindSimilar(const Request& request, size_t k) const = 0;
  virtual std::vector<SearchResult> FindSimilar(const std::vector<float>& embedding,
                                                size_t k) const = 0;

  // Batched stage-1 lookup over `num_queries` contiguous embeddings (query i
  // at queries[i*query_dim, (i+1)*query_dim)); (*out)[i] receives exactly
  // what FindSimilar(embedding_i, k) returns — batching is a locking and
  // cache-locality optimization, never a semantic one. `scratch` carries the
  // reusable per-thread search buffers (one scratch per thread); `out`'s
  // inner vectors retain capacity across calls, so steady-state batches do
  // not allocate. The base implementation loops over FindSimilar; stores
  // with batched indexes override (ExampleCache routes to
  // VectorIndex::SearchBatch, ShardedExampleCache takes each shard's shared
  // lock ONCE per batch instead of once per query).
  virtual void FindSimilarBatch(const float* queries, size_t num_queries, size_t query_dim,
                                size_t k, SearchScratch* scratch,
                                std::vector<std::vector<SearchResult>>* out) const;

  // Copies the example for id into *out; false when absent (e.g. evicted).
  virtual bool Snapshot(uint64_t id, Example* out) const = 0;

  // Marks a stage-2 access for recency/statistics bookkeeping.
  virtual void RecordAccess(uint64_t id, double now) = 0;

  virtual std::shared_ptr<const Embedder> embedder() const = 0;

  // --- Lifecycle surface (Example Manager, section 4.3) --------------------

  // Pure half of an admission: privacy decision + embedding of the sanitized
  // text. Const and thread-safe; safe in a concurrent driver's parallel
  // phase. When the caller already embedded request.text (e.g. for
  // retrieval), pass it as `text_embedding` to skip a second embedding pass
  // on the PII-free common case.
  virtual PreparedAdmission PrepareAdmission(
      const Request& request, const std::vector<float>* text_embedding = nullptr) const = 0;

  // Stateful half: inserts a prepared admission. Returns the new example id,
  // or 0 when the preparation was rejected.
  virtual uint64_t PutPrepared(const Request& request, PreparedAdmission prepared,
                               std::string response_text, double response_quality,
                               double source_capability, int response_tokens, double now) = 0;

  // Applies `mutate` to the stored example under the store's write lock (gain
  // EMAs, replay state). Byte accounting is refreshed afterwards, so mutators
  // may change token counts. The example's `id` field is store-internal and
  // must not be read or written by the mutator. Returns false when absent.
  virtual bool UpdateExample(uint64_t id, const std::function<void(Example&)>& mutate) = 0;

  // Credits the example for a successful offload (knapsack eviction value).
  virtual void RecordOffload(uint64_t id, double gain) = 0;

  // Removes the example (and its index entry); false when absent. Used by
  // maintenance batches that apply a background-planned eviction set.
  virtual bool Remove(uint64_t id) = 0;

  // Hourly multiplicative utility decay over every example.
  virtual void DecayTick() = 0;

  // Knapsack eviction down to the configured byte budget; returns evicted
  // ids. No-op when unbounded or under budget.
  virtual std::vector<uint64_t> EnforceCapacity() = 0;

  // Snapshot of ids for iteration (replay scheduling, experiments); sorted.
  virtual std::vector<uint64_t> AllIds() const = 0;

  virtual size_t size() const = 0;
  virtual int64_t used_bytes() const = 0;

  // --- Persistence surface (src/persist: snapshot/restore) -----------------

  // Iterates every live example in ascending id order together with its
  // stage-1 index embedding. Thread-safe on the sharded store (each example
  // is copied out under its shard lock) but NOT a consistent cut across
  // examples — concurrent snapshots must use ExportSnapshotCut.
  virtual void ExportExamples(
      const std::function<void(const Example&, const std::vector<float>&)>& fn) const = 0;

  // One atomically consistent export of everything background maintenance
  // needs: every example record, the byte accounting, and the capacity/decay
  // policy, all describing one instant (the sharded store holds every shard
  // lock, shared, for the duration). The epoch scheduler plans decay,
  // eviction, and replay against this view off the request path and applies
  // the resulting mutation batch at a later window boundary.
  virtual MaintenanceCut ExportMaintenanceCut() const = 0;

  // One atomically consistent export of everything a snapshot needs: the
  // example records (ascending id), the native index image, the insertion
  // counters, and the byte accounting all describe the SAME instant. The
  // sharded store holds every shard lock (shared, ascending order) for the
  // duration, so a checkpoint taken while other threads serve can never
  // capture an example the saved index image lacks (which would make it
  // silently unretrievable after a native-graph restore) or a byte count
  // that disagrees with the records.
  virtual StoreSnapshotCut ExportSnapshotCut() const = 0;

  // Re-inserts a previously exported example, preserving its id, every
  // lifecycle statistic, and byte accounting (the sharded store re-shards by
  // id and replays the delta through its global watermark counter, so
  // used_bytes() is exact after a restore). When `add_to_index` is false the
  // caller has already restored the retrieval index natively
  // (LoadIndexBlob). Returns false on id 0 or an id collision.
  virtual bool ImportExample(const Example& example, std::vector<float> embedding,
                             bool add_to_index) = 0;

  // Store-private insertion counters, one per shard (a plain cache is one
  // shard). Restoring them exactly — rather than max(id)+1 — is what makes
  // post-restore admissions assign the same ids the uninterrupted run would
  // have. ImportNextIds returns false on a shard-count mismatch; the store
  // then keeps the safe max(id)+1 counters ImportExample maintained.
  virtual std::vector<uint64_t> ExportNextIds() const = 0;
  virtual bool ImportNextIds(const std::vector<uint64_t>& next_ids) = 0;

  // Native retrieval-index image (HNSW graph save/load; one sub-blob per
  // shard). Returns false when the configured backend has no native format
  // (flat | kmeans) or the image does not match this store's geometry —
  // callers fall back to rebuilding the index from the exported embeddings,
  // which always works. A partially applied LoadIndexBlob is safe to follow
  // with the rebuild fallback: Add() has overwrite semantics in every
  // backend.
  virtual bool SaveIndexBlob(std::string* out) const = 0;
  virtual bool LoadIndexBlob(const std::string& blob) = 0;
};

}  // namespace iccache

#endif  // SRC_CORE_RETRIEVAL_BACKEND_H_
