// Unified stage-1 retrieval backend.
//
// Every component that performs embedding-similarity retrieval — ExampleCache,
// each ShardedExampleCache shard, the figure benches — routes through one
// pluggable VectorIndex chosen here:
//
//   flat   — exact brute force; the correctness reference and the
//            determinism-preserving default for small pools.
//   kmeans — inverted-file over K-Means clusters (the paper's section 4.1
//            offline clustering); approximate, rebuilds as the pool grows.
//   hnsw   — incremental graph ANN (src/index/hnsw.h); sub-millisecond
//            search at pool sizes where flat scans and stale clusters fail.
//
// The ExampleStore interface below is the consumer-side half of the
// unification: ExampleSelector runs against it, so the full selection
// pipeline (dynamic threshold, diversity, worst-to-best ordering) works
// identically over a plain ExampleCache and over the concurrent
// ShardedExampleCache the serving driver uses.
#ifndef SRC_CORE_RETRIEVAL_BACKEND_H_
#define SRC_CORE_RETRIEVAL_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/example.h"
#include "src/embedding/embedder.h"
#include "src/index/hnsw.h"
#include "src/index/vector_index.h"

namespace iccache {

enum class RetrievalBackendKind {
  kFlat,
  kKMeans,
  kHnsw,
};

struct RetrievalBackendConfig {
  // kKMeans is the seed repo's behavior and stays the default.
  RetrievalBackendKind kind = RetrievalBackendKind::kKMeans;
  // K-Means: clusters probed per query.
  size_t nprobe = 3;
  // HNSW knobs; `hnsw.dim` and `hnsw.seed` are overridden by the owning
  // cache (embedder dimension / per-shard seed) at construction.
  HnswIndexConfig hnsw;
};

// Builds the configured index with the given vector dimension and seed.
std::unique_ptr<VectorIndex> MakeRetrievalIndex(const RetrievalBackendConfig& config, size_t dim,
                                                uint64_t seed);

// "flat" | "kmeans" | "hnsw".
const char* RetrievalBackendKindName(RetrievalBackendKind kind);

// Parses a backend name (as accepted by bench --index flags); returns false
// on an unknown name, leaving *out untouched.
bool ParseRetrievalBackendKind(const std::string& name, RetrievalBackendKind* out);

// Read/annotate surface the selection pipeline needs from an example store.
// Implemented by ExampleCache (single-threaded) and ShardedExampleCache
// (concurrent). Snapshot copies the example out so no pointer escapes a
// shard lock.
class ExampleStore {
 public:
  virtual ~ExampleStore() = default;

  // Stage-1 relevance lookup: top-k most similar cached examples.
  virtual std::vector<SearchResult> FindSimilar(const Request& request, size_t k) const = 0;
  virtual std::vector<SearchResult> FindSimilar(const std::vector<float>& embedding,
                                                size_t k) const = 0;

  // Copies the example for id into *out; false when absent (e.g. evicted).
  virtual bool Snapshot(uint64_t id, Example* out) const = 0;

  // Marks a stage-2 access for recency/statistics bookkeeping.
  virtual void RecordAccess(uint64_t id, double now) = 0;

  virtual std::shared_ptr<const Embedder> embedder() const = 0;
};

}  // namespace iccache

#endif  // SRC_CORE_RETRIEVAL_BACKEND_H_
