// The example cache (section 4.3): plaintext storage of historical
// request-response pairs, an embedding index for stage-1 relevance retrieval,
// utility bookkeeping with hourly decay, and knapsack-based eviction under a
// byte-capacity budget.
#ifndef SRC_CORE_EXAMPLE_CACHE_H_
#define SRC_CORE_EXAMPLE_CACHE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/core/example.h"
#include "src/core/privacy.h"
#include "src/core/retrieval_backend.h"
#include "src/embedding/embedder.h"
#include "src/index/vector_index.h"

namespace iccache {

struct ExampleCacheConfig {
  // Byte budget; <= 0 means unbounded (the paper notes ~1 GB holds a million
  // LMSys examples, so most deployments are effectively unbounded).
  int64_t capacity_bytes = -1;
  // Eviction triggers when usage exceeds capacity * high_watermark and
  // evicts down to capacity * low_watermark (amortizes knapsack runs).
  double high_watermark = 1.0;
  double low_watermark = 0.9;
  // Utility decay applied by DecayTick (0.9 per hour in the paper).
  double decay_factor = 0.9;
  CacheAdmissionMode admission_mode = CacheAdmissionMode::kScrub;
  // Stage-1 retrieval backend (flat | kmeans | hnsw) and its tuning knobs.
  RetrievalBackendConfig retrieval;
  uint64_t seed = 0xcac4e;
};

class ExampleCache : public ExampleStore {
 public:
  ExampleCache(std::shared_ptr<const Embedder> embedder, ExampleCacheConfig config = {});

  // Admits a request-response pair (subject to the privacy admission mode)
  // and returns the new example id, or 0 when rejected.
  uint64_t Put(const Request& request, std::string response_text, double response_quality,
               double source_capability, int response_tokens, double now);

  // Pure half of an admission (ExampleStore): privacy decision + embedding of
  // the sanitized text. Const and side-effect free.
  PreparedAdmission PrepareAdmission(
      const Request& request, const std::vector<float>* text_embedding = nullptr) const override;

  // Stateful half (ExampleStore): inserts a prepared admission.
  uint64_t PutPrepared(const Request& request, PreparedAdmission prepared,
                       std::string response_text, double response_quality,
                       double source_capability, int response_tokens, double now) override;

  // Insertion path for callers that already ran the admission decision and
  // embedded the sanitized text (e.g. a concurrent driver moving embedding
  // work off its serial path). `embedding` must be the embedder's output for
  // `sanitized_text`.
  uint64_t PutPrepared(const Request& request, std::string sanitized_text,
                       std::vector<float> embedding, std::string response_text,
                       double response_quality, double source_capability, int response_tokens,
                       double now);

  // Stage-1 relevance lookup: top-k most similar cached examples.
  std::vector<SearchResult> FindSimilar(const Request& request, size_t k) const override;
  std::vector<SearchResult> FindSimilar(const std::vector<float>& embedding,
                                        size_t k) const override;
  // Routes the whole batch through the index's batched kernel (one interleaved
  // traversal over the caller's scratch); (*out)[i] == FindSimilar(q_i, k).
  void FindSimilarBatch(const float* queries, size_t num_queries, size_t query_dim, size_t k,
                        SearchScratch* scratch,
                        std::vector<std::vector<SearchResult>>* out) const override;

  const Example* Get(uint64_t id) const;
  Example* GetMutable(uint64_t id);
  bool Remove(uint64_t id) override;

  // Copies the example out (ExampleStore); false when absent.
  bool Snapshot(uint64_t id, Example* out) const override;

  // Marks an access (stage-2 consumed this example) for Figure 10 statistics
  // and recency bookkeeping.
  void RecordAccess(uint64_t id, double now) override;

  // Applies `mutate` to the stored example and refreshes byte accounting
  // (ExampleStore); false when absent.
  bool UpdateExample(uint64_t id, const std::function<void(Example&)>& mutate) override;

  // Credits the example for a successful offload (knapsack value).
  void RecordOffload(uint64_t id, double gain = 1.0) override;

  // Applies the hourly multiplicative decay to every example's value/gain.
  void DecayTick() override;

  // Runs knapsack eviction down to capacity; returns evicted ids. No-op when
  // unbounded or under the watermark.
  std::vector<uint64_t> EnforceCapacity() override;

  // Knapsack-evicts down to an explicit byte target regardless of the
  // configured budget (used by ShardedExampleCache's global watermark
  // accounting); returns evicted ids.
  std::vector<uint64_t> EvictToBytes(int64_t target_bytes);

  size_t size() const override { return examples_.size(); }
  int64_t used_bytes() const override { return used_bytes_; }
  const ExampleCacheConfig& config() const { return config_; }
  std::shared_ptr<const Embedder> embedder() const override { return embedder_; }
  const VectorIndex& index() const { return *index_; }

  // Snapshot of ids for iteration (replay scheduling, experiments).
  std::vector<uint64_t> AllIds() const override;

  // --- Persistence surface (ExampleStore) ----------------------------------
  void ExportExamples(
      const std::function<void(const Example&, const std::vector<float>&)>& fn) const override;
  MaintenanceCut ExportMaintenanceCut() const override;
  StoreSnapshotCut ExportSnapshotCut() const override;
  bool ImportExample(const Example& example, std::vector<float> embedding,
                     bool add_to_index) override;
  std::vector<uint64_t> ExportNextIds() const override;
  bool ImportNextIds(const std::vector<uint64_t>& next_ids) override;
  bool SaveIndexBlob(std::string* out) const override;
  bool LoadIndexBlob(const std::string& blob) override;

 private:
  std::shared_ptr<const Embedder> embedder_;
  ExampleCacheConfig config_;
  PiiScrubber scrubber_;
  std::unordered_map<uint64_t, Example> examples_;
  std::unique_ptr<VectorIndex> index_;
  int64_t used_bytes_ = 0;
  uint64_t next_id_ = 1;
};

}  // namespace iccache

#endif  // SRC_CORE_EXAMPLE_CACHE_H_
