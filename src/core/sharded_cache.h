// Mutex-sharded wrapper around ExampleCache for concurrent serving.
//
// The plain ExampleCache is single-threaded; the serving driver runs stage-1
// retrieval for a whole batch of requests in parallel, so cache reads must
// scale across workers while admissions still land safely. Requests are
// hashed onto `num_shards` independent ExampleCache shards, each guarded by
// its own std::shared_mutex: lookups take a shard-local shared lock (readers
// never contend with readers), admissions take an exclusive lock on exactly
// one shard.
//
// Example ids are globally unique: the shard index is encoded in the low bits
// of the public id (`global = inner << shard_bits | shard`), so ids returned
// by Put/FindSimilar round-trip through every other accessor.
//
// Admission is split in two so the expensive part (PII scrub + embedding) can
// run in a parallel phase: PrepareAdmission() is const and thread-safe;
// PutPrepared() takes the prepared payload and only pays the index insert
// under the shard's write lock.
//
// Capacity is a GLOBAL byte budget with watermark accounting: the shards
// themselves are unbounded, and the wrapper tracks total usage in an atomic
// counter. Any insert that pushes the total past capacity * high_watermark
// triggers eviction automatically (matching ExampleCache semantics, so no
// caller can forget it): the global target capacity * low_watermark is
// apportioned across shards in proportion to their current usage and each
// shard runs its own knapsack down to its slice — a hot shard keeps more of
// the budget than a cold one, unlike a fixed per-shard split.
#ifndef SRC_CORE_SHARDED_CACHE_H_
#define SRC_CORE_SHARDED_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/core/example_cache.h"

namespace iccache {

struct ShardedCacheConfig {
  // Rounded up to a power of two; each shard is an independent ExampleCache.
  size_t num_shards = 8;
  // Per-deployment settings; capacity_bytes is the TOTAL budget, enforced
  // globally with watermark accounting (see file comment).
  ExampleCacheConfig cache;
};

class ShardedExampleCache : public ExampleStore {
 public:
  ShardedExampleCache(std::shared_ptr<const Embedder> embedder, ShardedCacheConfig config = {});

  // --- Admission -----------------------------------------------------------

  // One-shot admission (scrub + embed + insert). Thread-safe.
  uint64_t Put(const Request& request, std::string response_text, double response_quality,
               double source_capability, int response_tokens, double now);

  // Parallel-phase half: admission decision plus embedding of the sanitized
  // text. Const and lock-free; safe to call from many workers at once. When
  // the caller already embedded request.text (e.g. for retrieval), pass it as
  // `text_embedding`: it is reused whenever scrubbing left the text unchanged,
  // saving a second embedding pass on the PII-free common case.
  PreparedAdmission PrepareAdmission(
      const Request& request, const std::vector<float>* text_embedding = nullptr) const override;

  // Serial-phase half: inserts a prepared admission (and auto-evicts when the
  // insert pushes total usage past capacity * high_watermark). Returns 0 when
  // the preparation was rejected.
  uint64_t PutPrepared(const Request& request, PreparedAdmission prepared,
                       std::string response_text, double response_quality,
                       double source_capability, int response_tokens, double now) override;

  // --- Lookup --------------------------------------------------------------

  // Global top-k: per-shard search under shared locks, merged best-first
  // (ties broken by id so results are deterministic).
  std::vector<SearchResult> FindSimilar(const Request& request, size_t k) const override;
  std::vector<SearchResult> FindSimilar(const std::vector<float>& embedding,
                                        size_t k) const override;

  // Batched global top-k: each shard's shared lock is taken ONCE for the
  // whole batch (FindSimilar pays one lock round-trip per query per shard)
  // and the shard's index runs its batched kernel over all queries before the
  // lock drops. Per query the merge is the same best-first (score desc, id
  // asc) sort-and-truncate as FindSimilar, so results are byte-identical.
  void FindSimilarBatch(const float* queries, size_t num_queries, size_t query_dim, size_t k,
                        SearchScratch* scratch,
                        std::vector<std::vector<SearchResult>>* out) const override;

  // Copies the example out under the shard lock (a pointer would dangle once
  // the lock drops). Returns false when absent.
  bool Snapshot(uint64_t id, Example* out) const override;
  bool Contains(uint64_t id) const;

  // --- Bookkeeping ---------------------------------------------------------

  bool Remove(uint64_t id) override;
  void RecordAccess(uint64_t id, double now) override;
  bool UpdateExample(uint64_t id, const std::function<void(Example&)>& mutate) override;
  void RecordOffload(uint64_t id, double gain = 1.0) override;
  void DecayTick() override;

  // Global watermark eviction: when total usage exceeds the byte budget,
  // apportions capacity * low_watermark across shards in proportion to their
  // usage and runs each shard's knapsack down to its slice. Returns the
  // evicted global ids. Called automatically by PutPrepared past the high
  // watermark; safe (but non-deterministic in outcome order) under
  // concurrent mutation.
  std::vector<uint64_t> EnforceCapacity() override;

  size_t size() const override;
  int64_t used_bytes() const override { return used_bytes_total_.load(std::memory_order_relaxed); }
  std::vector<uint64_t> AllIds() const override;

  // --- Persistence surface (ExampleStore) ----------------------------------
  //
  // ExportExamples copies each example (global id) out under its shard lock,
  // so a checkpoint can run concurrently with serving. ImportExample
  // re-shards by id — the shard index lives in the id's low bits, so placing
  // each example at `id & shard_mask` reproduces the id round-trip under the
  // CURRENT shard count — and applies the byte delta to the global watermark
  // counter under the shard lock, keeping used_bytes() exact. Re-sharding
  // into the same or a smaller shard count always works; a LARGER count
  // cannot represent ids below the new shard stride (they would collapse to
  // the reserved inner id 0), so such imports return false and the restore
  // fails cleanly. The native index image is one HNSW graph per shard;
  // LoadIndexBlob rejects it when the shard count, backend, or graph
  // geometry changed (restore then falls back to rebuild-from-embeddings).
  void ExportExamples(
      const std::function<void(const Example&, const std::vector<float>&)>& fn) const override;
  // Holds ALL shard locks (shared, ascending) so the records and byte counts
  // describe one instant — the epoch view background maintenance plans
  // against. No embeddings or graph image: much cheaper than a snapshot cut.
  MaintenanceCut ExportMaintenanceCut() const override;
  // Holds ALL shard locks (shared, ascending) so the records, index image,
  // counters, and watermark bytes describe one instant even mid-serving.
  StoreSnapshotCut ExportSnapshotCut() const override;
  bool ImportExample(const Example& example, std::vector<float> embedding,
                     bool add_to_index) override;
  std::vector<uint64_t> ExportNextIds() const override;
  bool ImportNextIds(const std::vector<uint64_t>& next_ids) override;
  bool SaveIndexBlob(std::string* out) const override;
  bool LoadIndexBlob(const std::string& blob) override;

  // Lifetime count of knapsack-evicted examples (maintenance observability).
  uint64_t evicted_total() const { return evicted_total_.load(std::memory_order_relaxed); }

  // --- Per-lane commit surface ---------------------------------------------
  //
  // A sharded commit pipeline inserts one window's admissions from several
  // lanes at once, one lane per shard (per-shard arrival order keeps the id
  // assignment deterministic). While those lanes run, the automatic
  // watermark eviction inside PutPrepared must be OFF: a global knapsack
  // triggered from whichever lane happens to cross the watermark first would
  // evict under a racing, scheduling-dependent pool view. The publisher
  // wraps the fan-out in set_defer_capacity(true/false) — the atomic byte
  // counter still tracks every insert — and is then responsible for
  // restoring the budget invariant itself at a deterministic point: the
  // serving driver treats it as a SOFT watermark, requesting a background
  // eviction tick when the counter is over the trigger and running one
  // synchronous EnforceCapacity() before Run returns. The store does NOT
  // self-enforce after a deferred fan-out.

  // Which shard PutPrepared will place this request's admission in. Lanes
  // and publish tasks group work by this value so each shard only ever sees
  // inserts from one task at a time.
  size_t shard_for_request(const Request& request) const { return ShardOfRequest(request); }

  // Suspends (true) / resumes (false) PutPrepared's automatic watermark
  // eviction. Set and cleared by the serial coordinator around a publish
  // fan-out; tasks observe it through the pool's synchronization.
  void set_defer_capacity(bool defer) {
    defer_capacity_.store(defer, std::memory_order_relaxed);
  }

  size_t num_shards() const { return shards_.size(); }
  std::shared_ptr<const Embedder> embedder() const override { return embedder_; }
  const ShardedCacheConfig& config() const { return config_; }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unique_ptr<ExampleCache> cache;
  };

  size_t ShardOfRequest(const Request& request) const;
  size_t ShardOfId(uint64_t id) const { return id & shard_mask_; }
  uint64_t InnerId(uint64_t id) const { return id >> shard_bits_; }
  uint64_t GlobalId(uint64_t inner, size_t shard) const {
    return inner == 0 ? 0 : (inner << shard_bits_) | static_cast<uint64_t>(shard);
  }

  std::shared_ptr<const Embedder> embedder_;
  ShardedCacheConfig config_;
  PiiScrubber scrubber_;
  std::vector<Shard> shards_;
  size_t shard_bits_ = 0;
  uint64_t shard_mask_ = 0;
  // Global byte accounting; every delta is applied while holding the mutated
  // shard's write lock, so the counter tracks the exact sum of shard usage.
  std::atomic<int64_t> used_bytes_total_{0};
  std::atomic<uint64_t> evicted_total_{0};
  std::atomic<bool> defer_capacity_{false};
};

}  // namespace iccache

#endif  // SRC_CORE_SHARDED_CACHE_H_
