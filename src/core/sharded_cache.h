// Mutex-sharded wrapper around ExampleCache for concurrent serving.
//
// The plain ExampleCache is single-threaded; the serving driver runs stage-1
// retrieval for a whole batch of requests in parallel, so cache reads must
// scale across workers while admissions still land safely. Requests are
// hashed onto `num_shards` independent ExampleCache shards, each guarded by
// its own std::shared_mutex: lookups take a shard-local shared lock (readers
// never contend with readers), admissions take an exclusive lock on exactly
// one shard.
//
// Example ids are globally unique: the shard index is encoded in the low bits
// of the public id (`global = inner << shard_bits | shard`), so ids returned
// by Put/FindSimilar round-trip through every other accessor.
//
// Admission is split in two so the expensive part (PII scrub + embedding) can
// run in a parallel phase: PrepareAdmission() is const and thread-safe;
// PutPrepared() takes the prepared payload and only pays the index insert
// under the shard's write lock.
#ifndef SRC_CORE_SHARDED_CACHE_H_
#define SRC_CORE_SHARDED_CACHE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/core/example_cache.h"

namespace iccache {

struct ShardedCacheConfig {
  // Rounded up to a power of two; each shard is an independent ExampleCache.
  size_t num_shards = 8;
  // Per-deployment settings; capacity_bytes is the TOTAL budget and is split
  // evenly across shards.
  ExampleCacheConfig cache;
};

// Result of the parallel-phase half of an admission.
struct PreparedAdmission {
  bool admit = false;
  std::string sanitized_text;
  std::vector<float> embedding;
};

class ShardedExampleCache : public ExampleStore {
 public:
  ShardedExampleCache(std::shared_ptr<const Embedder> embedder, ShardedCacheConfig config = {});

  // --- Admission -----------------------------------------------------------

  // One-shot admission (scrub + embed + insert). Thread-safe.
  uint64_t Put(const Request& request, std::string response_text, double response_quality,
               double source_capability, int response_tokens, double now);

  // Parallel-phase half: admission decision plus embedding of the sanitized
  // text. Const and lock-free; safe to call from many workers at once. When
  // the caller already embedded request.text (e.g. for retrieval), pass it as
  // `text_embedding`: it is reused whenever scrubbing left the text unchanged,
  // saving a second embedding pass on the PII-free common case.
  PreparedAdmission PrepareAdmission(const Request& request,
                                     const std::vector<float>* text_embedding = nullptr) const;

  // Serial-phase half: inserts a prepared admission. Returns 0 when the
  // preparation was rejected.
  uint64_t PutPrepared(const Request& request, PreparedAdmission prepared,
                       std::string response_text, double response_quality,
                       double source_capability, int response_tokens, double now);

  // --- Lookup --------------------------------------------------------------

  // Global top-k: per-shard search under shared locks, merged best-first
  // (ties broken by id so results are deterministic).
  std::vector<SearchResult> FindSimilar(const Request& request, size_t k) const override;
  std::vector<SearchResult> FindSimilar(const std::vector<float>& embedding,
                                        size_t k) const override;

  // Copies the example out under the shard lock (a pointer would dangle once
  // the lock drops). Returns false when absent.
  bool Snapshot(uint64_t id, Example* out) const override;
  bool Contains(uint64_t id) const;

  // --- Bookkeeping ---------------------------------------------------------

  bool Remove(uint64_t id);
  void RecordAccess(uint64_t id, double now) override;
  void RecordOffload(uint64_t id, double gain = 1.0);
  void DecayTick();
  std::vector<uint64_t> EnforceCapacity();

  size_t size() const;
  int64_t used_bytes() const;
  std::vector<uint64_t> AllIds() const;

  size_t num_shards() const { return shards_.size(); }
  std::shared_ptr<const Embedder> embedder() const override { return embedder_; }
  const ShardedCacheConfig& config() const { return config_; }

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unique_ptr<ExampleCache> cache;
  };

  size_t ShardOfRequest(const Request& request) const;
  size_t ShardOfId(uint64_t id) const { return id & shard_mask_; }
  uint64_t InnerId(uint64_t id) const { return id >> shard_bits_; }
  uint64_t GlobalId(uint64_t inner, size_t shard) const {
    return inner == 0 ? 0 : (inner << shard_bits_) | static_cast<uint64_t>(shard);
  }

  std::shared_ptr<const Embedder> embedder_;
  ShardedCacheConfig config_;
  PiiScrubber scrubber_;
  std::vector<Shard> shards_;
  size_t shard_bits_ = 0;
  uint64_t shard_mask_ = 0;
};

}  // namespace iccache

#endif  // SRC_CORE_SHARDED_CACHE_H_
