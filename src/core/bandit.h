// Contextual multi-armed bandit machinery for the Request Router
// (section 4.2, Appendix A.2).
//
// Each arm (candidate model) keeps a Bayesian linear-regression posterior over
// the context features; Thompson sampling draws a weight vector from the
// posterior and scores the context with it. A Beta-Bernoulli arm is also
// provided — it is the formulation the paper's sample-complexity analysis
// (Theorems 1-3) is stated in, and the property tests exercise it directly.
#ifndef SRC_CORE_BANDIT_H_
#define SRC_CORE_BANDIT_H_

#include <cstddef>
#include <vector>

#include "src/common/rng.h"

namespace iccache {

// Bayesian linear regression arm: posterior N(mu, noise_var * A^-1) with
// A = prior_precision * I + sum x x^T and mu = A^-1 sum r x.
class LinearThompsonArm {
 public:
  // The prior must be wide relative to the [0, 1] reward scale: with a tight
  // prior an arm that collects one good reward permanently outruns the
  // never-pulled arms (no exploration). prior_precision 0.5 / noise_var 0.1
  // give a prior weight stddev of ~0.45, comparable to the reward range.
  //
  // forget_rate geometrically discounts old observations (recency-weighted
  // least squares), bounding the effective sample size at ~1/forget_rate (~250 samples) so
  // the posterior can track model upgrades and drift (section 8) instead of
  // freezing once confident.
  LinearThompsonArm(size_t dim, double prior_precision = 0.5, double noise_var = 0.10,
                    double forget_rate = 0.004);

  // Posterior-mean score mu . x.
  double MeanScore(const std::vector<double>& x) const;

  // Thompson sample: draws w ~ posterior and returns w . x.
  double SampleScore(const std::vector<double>& x, Rng& rng) const;

  // Rank-1 posterior update with observed reward for context x.
  void Update(const std::vector<double>& x, double reward);

  // Forces the lazy mean/Cholesky refresh NOW, on the calling thread.
  // Concurrent const readers (MeanScore/SampleScore from many worker threads)
  // are race-free only after the posterior has been refreshed since the last
  // Update/RestoreState; a serial coordinator calls this before fanning out.
  void EnsureFresh() const { Refresh(); }

  size_t updates() const { return updates_; }
  size_t dim() const { return dim_; }

  // Posterior sufficient statistics (snapshot persistence). The lazily
  // derived mean/Cholesky are NOT part of the state: RestoreState marks them
  // stale and they are recomputed on the next score.
  const std::vector<double>& precision() const { return precision_; }
  const std::vector<double>& b() const { return b_; }
  // Returns false (leaving the arm untouched) on a dimension mismatch.
  bool RestoreState(const std::vector<double>& precision, const std::vector<double>& b,
                    size_t updates);

 private:
  void Refresh() const;

  size_t dim_;
  double noise_var_;
  double prior_precision_;
  double forget_rate_;
  std::vector<double> precision_;  // A, row-major dim x dim
  std::vector<double> b_;          // discounted sum r x
  size_t updates_ = 0;

  // Lazily recomputed posterior mean and Cholesky factor of the covariance.
  mutable std::vector<double> mu_;
  mutable std::vector<double> cov_chol_;  // lower triangular, row-major
  mutable bool fresh_ = false;
};

// Beta-Bernoulli arm (Appendix A.2): belief over a win probability.
class BetaBernoulliArm {
 public:
  BetaBernoulliArm(double alpha = 1.0, double beta = 1.0);

  double Sample(Rng& rng) const;
  double Mean() const;
  void Update(bool win);

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

 private:
  double alpha_;
  double beta_;
};

struct BanditSelection {
  size_t arm = 0;
  size_t second_choice = 0;          // runner-up for preference solicitation
  std::vector<double> sampled_scores;
  std::vector<double> mean_scores;
  std::vector<double> confidence;    // softmax of mean scores
  double confidence_std = 0.0;       // near-uniform (< ~0.1) == uncertain
};

// A set of linear Thompson arms with per-selection additive biases (the
// router's load controller injects the tanh bias here).
class ContextualBandit {
 public:
  ContextualBandit(size_t num_arms, size_t context_dim, uint64_t seed);

  // Selects an arm for the context; `biases[i]` is added to arm i's score
  // (pass {} for none).
  BanditSelection Select(const std::vector<double>& context,
                         const std::vector<double>& biases);

  // Same selection with an external sampling stream and no internal-state
  // mutation. Safe to call concurrently from many threads PROVIDED the
  // posteriors were refreshed (RefreshAll) after the last Update and no
  // Update runs concurrently — the contract the serving driver's commit
  // lanes rely on (posteriors frozen per batch window, per-request streams).
  BanditSelection SelectWithRng(const std::vector<double>& context,
                                const std::vector<double>& biases, Rng& rng) const;

  // Eagerly refreshes every arm's lazy posterior factorization so subsequent
  // concurrent const reads do not race on the refresh.
  void RefreshAll() const;

  void Update(size_t arm, const std::vector<double>& context, double reward);

  size_t num_arms() const { return arms_.size(); }
  const LinearThompsonArm& arm(size_t i) const { return arms_[i]; }

  // Snapshot persistence: Thompson-sampling RNG stream + per-arm posteriors.
  LinearThompsonArm& mutable_arm(size_t i) { return arms_[i]; }
  RngState rng_state() const { return rng_.SaveState(); }
  void restore_rng_state(const RngState& state) { rng_.RestoreState(state); }

 private:
  std::vector<LinearThompsonArm> arms_;
  Rng rng_;
};

}  // namespace iccache

#endif  // SRC_CORE_BANDIT_H_
