// Hierarchical Navigable Small World (HNSW) graph index — the online ANN
// substrate for stage-1 retrieval at cache sizes where brute force and static
// K-Means clustering stop being viable (millions of cached examples; cf. the
// paper's GPU FAISS deployment, section 5).
//
// Properties the serving path relies on:
//
//  * Incremental Add: each insert wires the new vector into the multi-layer
//    graph in O(ef_construction * degree) distance evaluations — no global
//    rebuild, so the index never goes stale under churn (unlike KMeansIndex,
//    whose clusters drift between rebuilds).
//  * Tombstone Remove: deletion marks the node and keeps it as a traversal
//    waypoint (removing it outright would tear holes in the graph). Search
//    filters tombstones from results; when tombstones exceed
//    `max_tombstone_fraction` of all slots the graph is compacted by
//    re-inserting the live nodes.
//  * Concurrent readers: Search takes a shared lock and uses thread-local
//    scratch, so any number of threads may search while at most one mutates
//    (Add/Remove/Compact take the exclusive lock). This matches the sharded
//    cache's locking discipline but also makes the index safe standalone.
//
// Vectors are expected L2-normalized (HashingEmbedder output); similarity is
// the inner product == cosine, higher is better, consistent with FlatIndex.
#ifndef SRC_INDEX_HNSW_H_
#define SRC_INDEX_HNSW_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/index/vector_index.h"

namespace iccache {

struct HnswIndexConfig {
  size_t dim = 128;
  // Degree bound M: layers >= 1 keep at most M links per node, layer 0 keeps
  // 2M (the standard HNSW setting; layer 0 holds every node).
  size_t max_neighbors = 32;
  // Beam width while wiring a new node in. Larger = better graph, slower Add.
  size_t ef_construction = 200;
  // Default beam width for Search; raise for recall, lower for latency.
  // SearchEf overrides per call.
  size_t ef_search = 192;
  // Compact (rebuild from live nodes) when tombstones exceed this fraction of
  // total slots and there are at least `min_tombstones_to_compact` of them.
  double max_tombstone_fraction = 0.25;
  size_t min_tombstones_to_compact = 64;
  // Int8 scalar quantization of the vector arena: each vector is stored as
  // dim int8 codes plus one float scale (symmetric, scale = max|x| / 127),
  // cutting arena memory ~3.9x at dim=128 and letting graph traversal run on
  // the bit-exact integer dot kernel. Queries quantize once on entry; the
  // top `rerank_k` beam candidates are re-scored against the float query
  // (asymmetric f32xi8 dot) so quantization noise does not reorder the final
  // top-k. Takes effect at construction; LoadGraph rejects images whose
  // quantization mode differs (caller falls back to a rebuild).
  bool quantize_int8 = false;
  // Number of beam candidates re-scored with the float query before the final
  // top-k cut (only meaningful with quantize_int8; clamped up to k).
  size_t rerank_k = 64;
  // Reader visited-scratch high-watermark: a search scratch's epoch buffer is
  // rebuilt when its capacity exceeds BOTH this floor and 4x the current node
  // count, so long-lived serving threads stop pinning peak-size buffers after
  // the graph shrinks (eviction, compaction). Never fires near the peak, so
  // steady-state search stays allocation-free.
  size_t visited_shrink_floor = size_t{1} << 16;
  uint64_t seed = 0x9f5eed;
};

// Process-wide rerank counters (monotonic; all HnswIndex instances). The
// serving driver samples these at window boundaries and publishes deltas as
// metrics — plumbing a hub through every index would couple layers for two
// numbers.
uint64_t HnswRerankQueriesTotal();
uint64_t HnswRerankCandidatesTotal();

class HnswIndex : public VectorIndex {
 public:
  explicit HnswIndex(HnswIndexConfig config = {});

  // Inserts (or overwrites) the vector for id. Takes the exclusive lock.
  Status Add(uint64_t id, std::vector<float> vec) override;

  // Tombstones id; returns false when absent. May trigger compaction.
  bool Remove(uint64_t id) override;

  // Top-k by cosine similarity with beam width ef_search. Shared lock;
  // safe to call from many threads concurrently with one writer.
  std::vector<SearchResult> Search(const std::vector<float>& query, size_t k) const override;

  // Search with an explicit beam width (recall/latency sweeps).
  std::vector<SearchResult> SearchEf(const std::vector<float>& query, size_t k, size_t ef) const;

  // Batched top-k: ONE shared lock for the whole batch, queries traversed in
  // interleaved groups so one query's compute hides another's arena-line
  // misses (each 2a pass prefetches the next hop's neighbor vectors/codes;
  // the matching 2b pass scores them after the other queries' passes have
  // covered the latency). Per query the traversal is the exact single-query
  // algorithm over per-query beam state, so results are bit-identical to
  // Search(query_i, k) — and every buffer lives in the caller's SearchScratch,
  // so steady-state batches allocate nothing.
  void SearchBatch(const float* queries, size_t num_queries, size_t query_dim, size_t k,
                   SearchScratch* scratch) const override;

  // Batched search with an explicit beam width.
  void SearchBatchEf(const float* queries, size_t num_queries, size_t query_dim, size_t k,
                     size_t ef, SearchScratch* scratch) const;

  // Copies the vector for a live id; false for absent or tombstoned ids.
  bool GetVector(uint64_t id, std::vector<float>* out) const override;

  size_t size() const override;  // live (non-tombstoned) vectors

  // --- Native graph persistence (snapshot subsystem) -----------------------
  //
  // SaveGraph serializes the complete graph image — nodes with their
  // per-layer links (tombstones included: they are traversal waypoints),
  // the vector arena, the entry point, and the level-sampler RNG stream —
  // so LoadGraph reproduces a BIT-IDENTICAL index: identical searches now
  // and identical graphs after any sequence of future inserts. Loading is
  // O(bytes) (no re-insertion), which is what makes restoring a 100k-vector
  // pool cheap compared to an O(N * ef_construction) rebuild.
  void SaveGraph(std::string* out) const;

  // Validates the blob's embedded format version, dimension, and degree
  // bound against this index's config before touching any state; on
  // mismatch or corruption the index is left untouched and false is
  // returned (the caller falls back to rebuilding from raw embeddings).
  // On success the previous contents are replaced wholesale.
  bool LoadGraph(const std::string& blob);

  // Diagnostics.
  size_t tombstones() const;
  int max_level() const;
  // Bytes of vector storage currently held (float arena, or int8 codes plus
  // scales when quantized). Tombstoned slots included — they still occupy
  // arena space until compaction. Feeds the bytes-per-vector CI gate.
  size_t arena_bytes() const;

  // Rebuilds the graph from the live nodes, dropping every tombstone.
  // Normally triggered automatically by Remove; exposed for tests and for
  // maintenance windows.
  void Compact();

  const HnswIndexConfig& config() const { return config_; }

 private:
  struct Node {
    uint64_t id = 0;
    int level = 0;
    bool deleted = false;
    // links[l] = neighbor slots at layer l, 0 <= l <= level.
    std::vector<std::vector<uint32_t>> links;
  };

  // (similarity, slot) scored candidate; ordered best-first where sorted.
  struct ScoredSlot {
    double sim = 0.0;
    uint32_t slot = 0;
  };

  size_t LayerCap(int layer) const {
    return layer == 0 ? 2 * config_.max_neighbors : config_.max_neighbors;
  }

  int SampleLevel();

  // Vectors live in one flat arena (slot-major): `dim` floats per slot, or —
  // with quantize_int8 — `dim` int8 codes per slot plus a parallel scales_
  // array. One indirection per distance evaluation and prefetchable by
  // address arithmetic, which is what makes graph hops cheap at 100k+
  // vectors.
  const float* VecOf(uint32_t slot) const { return arena_.data() + slot * config_.dim; }
  const int8_t* QVecOf(uint32_t slot) const { return qarena_.data() + slot * config_.dim; }

  // A query as the traversal kernels see it: the float form always, plus the
  // int8 codes + scale when the arena is quantized. For inserts the int8 side
  // aliases the just-appended arena slot (stable until the next Add).
  struct QueryRef {
    const float* f32 = nullptr;
    const int8_t* i8 = nullptr;
    float scale = 0.0f;
  };

  // query-vs-slot similarity (quantized domain when enabled).
  double SimQ(const QueryRef& query, uint32_t slot) const;
  // stored-vs-stored similarity, for the diversity heuristic and link pruning.
  double SimSlots(uint32_t a, uint32_t b) const;

  // Greedy hill-climb at `layer` starting from `slot`; returns the local
  // optimum slot for `query`.
  uint32_t GreedyStep(const QueryRef& query, uint32_t slot, int layer) const;

  // Beam search at one layer. `epochs`/`epoch` implement an O(1)-reset
  // visited set (slot visited iff epochs[slot] == epoch). Traverses through
  // tombstones (they remain waypoints); the caller filters them. When
  // `visited`/`hops` are non-null they accumulate the number of distinct
  // nodes marked visited and of frontier expansions (tracing only — callers
  // pass nullptr on the untraced path so the loop stays counter-free).
  std::vector<ScoredSlot> SearchLayer(const QueryRef& query, uint32_t entry, int layer, size_t ef,
                                      std::vector<uint32_t>& epochs, uint32_t epoch,
                                      uint64_t* visited = nullptr,
                                      uint64_t* hops = nullptr) const;

  // The HNSW diversity heuristic (Malkov & Yashunin, Alg. 4): scanning
  // best-first, keep a candidate only if it is closer to the query than to
  // every already-kept neighbor (no backfill — redundant links waste degree
  // slots that long-range edges need).
  std::vector<uint32_t> SelectNeighbors(const std::vector<ScoredSlot>& candidates,
                                        size_t max_count) const;

  // Re-prunes `slot`'s layer-`layer` neighbor list down to LayerCap.
  void ShrinkLinks(uint32_t slot, int layer);

  void InsertLocked(uint64_t id, std::vector<float> vec);
  bool RemoveLocked(uint64_t id);
  void CompactLocked();
  void MaybeCompactLocked();
  std::vector<SearchResult> SearchLocked(const std::vector<float>& query, size_t k,
                                         size_t ef) const;
  // The shared batch core (Search/SearchEf run it at batch size 1 over a
  // thread-local scratch — one traversal implementation, so batch-vs-single
  // identity is structural rather than re-proved per change).
  void SearchBatchLocked(const float* queries, size_t num_queries, size_t query_dim, size_t k,
                         size_t ef, SearchScratch& scratch) const;

  mutable std::shared_mutex mu_;
  HnswIndexConfig config_;
  double level_multiplier_;  // 1 / ln(M)
  Rng rng_;

  std::vector<Node> nodes_;
  // Exactly one arena is populated: arena_ (float mode) or qarena_ + scales_
  // (quantized mode) — keeping both would defeat the memory point of
  // quantizing.
  std::vector<float> arena_;    // nodes_[s]'s vector at [s*dim, (s+1)*dim)
  std::vector<int8_t> qarena_;  // int8 codes, same slot-major layout
  std::vector<float> scales_;   // scales_[s]: dequant factor for slot s
  std::unordered_map<uint64_t, uint32_t> slot_of_;  // live ids only
  uint32_t entry_ = 0;
  int entry_level_ = -1;  // -1 == empty graph
  size_t live_ = 0;

  // Writer-side visited scratch (Add/Compact hold the exclusive lock, so a
  // shared buffer is safe there; Search uses a thread_local one so concurrent
  // readers never share state).
  std::vector<uint32_t> insert_epochs_;
  uint32_t insert_epoch_ = 0;
};

}  // namespace iccache

#endif  // SRC_INDEX_HNSW_H_
