#include "src/index/vector_index.h"

#include <algorithm>
#include <cmath>

#include "src/common/mathutil.h"
#include "src/common/topk.h"
#include "src/index/kmeans.h"

namespace iccache {

FlatIndex::FlatIndex(size_t dim) : dim_(dim) {}

Status FlatIndex::Add(uint64_t id, std::vector<float> vec) {
  if (vec.size() != dim_) {
    return Status::InvalidArgument("vector dimension mismatch");
  }
  const auto it = slot_of_.find(id);
  if (it != slot_of_.end()) {
    vectors_[it->second] = std::move(vec);
    return Status::Ok();
  }
  slot_of_[id] = ids_.size();
  ids_.push_back(id);
  vectors_.push_back(std::move(vec));
  return Status::Ok();
}

bool FlatIndex::Remove(uint64_t id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return false;
  }
  const size_t slot = it->second;
  const size_t last = ids_.size() - 1;
  if (slot != last) {
    ids_[slot] = ids_[last];
    vectors_[slot] = std::move(vectors_[last]);
    slot_of_[ids_[slot]] = slot;
  }
  ids_.pop_back();
  vectors_.pop_back();
  slot_of_.erase(it);
  return true;
}

std::vector<SearchResult> FlatIndex::Search(const std::vector<float>& query, size_t k) const {
  TopK<uint64_t> top(k);
  for (size_t i = 0; i < ids_.size(); ++i) {
    top.Push(Dot(query, vectors_[i]), ids_[i]);
  }
  std::vector<SearchResult> results;
  for (auto& [score, id] : top.TakeSortedDescending()) {
    results.push_back(SearchResult{id, score});
  }
  return results;
}

bool FlatIndex::GetVector(uint64_t id, std::vector<float>* out) const {
  const std::vector<float>* vec = Find(id);
  if (vec == nullptr) {
    return false;
  }
  *out = *vec;
  return true;
}

const std::vector<float>* FlatIndex::Find(uint64_t id) const {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return nullptr;
  }
  return &vectors_[it->second];
}

KMeansIndex::KMeansIndex(KMeansIndexConfig config) : config_(config), rng_(config.seed) {}

Status KMeansIndex::Add(uint64_t id, std::vector<float> vec) {
  if (vec.size() != config_.dim) {
    return Status::InvalidArgument("vector dimension mismatch");
  }
  const bool existed = vectors_.count(id) > 0;
  if (existed) {
    Remove(id);
  }
  if (clustered()) {
    const size_t cluster = NearestCluster(vec);
    cluster_of_[id] = cluster;
    cluster_members_[cluster].push_back(id);
  }
  vectors_[id] = std::move(vec);
  MaybeRebuild();
  return Status::Ok();
}

bool KMeansIndex::Remove(uint64_t id) {
  const auto it = vectors_.find(id);
  if (it == vectors_.end()) {
    return false;
  }
  const auto cit = cluster_of_.find(id);
  if (cit != cluster_of_.end()) {
    auto& members = cluster_members_[cit->second];
    members.erase(std::remove(members.begin(), members.end(), id), members.end());
    cluster_of_.erase(cit);
  }
  vectors_.erase(it);
  return true;
}

bool KMeansIndex::GetVector(uint64_t id, std::vector<float>* out) const {
  const auto it = vectors_.find(id);
  if (it == vectors_.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

void KMeansIndex::MaybeRebuild() {
  if (vectors_.size() < config_.min_points_to_cluster) {
    return;
  }
  if (clustered() &&
      static_cast<double>(vectors_.size()) <
          config_.rebuild_growth_factor * static_cast<double>(size_at_last_build_)) {
    return;
  }
  Rebuild();
}

void KMeansIndex::Rebuild() {
  if (vectors_.empty()) {
    centroids_.clear();
    cluster_members_.clear();
    cluster_of_.clear();
    size_at_last_build_ = 0;
    return;
  }
  std::vector<uint64_t> ids;
  std::vector<std::vector<float>> points;
  ids.reserve(vectors_.size());
  points.reserve(vectors_.size());
  for (const auto& [id, vec] : vectors_) {
    ids.push_back(id);
    points.push_back(vec);
  }
  const size_t k = OptimalClusterCount(points.size());
  const KMeansResult clustering = KMeansCluster(points, k, rng_);
  centroids_ = clustering.centroids;
  cluster_members_.assign(centroids_.size(), {});
  cluster_of_.clear();
  for (size_t i = 0; i < ids.size(); ++i) {
    const size_t c = clustering.assignments[i];
    cluster_of_[ids[i]] = c;
    cluster_members_[c].push_back(ids[i]);
  }
  size_at_last_build_ = vectors_.size();
}

size_t KMeansIndex::NearestCluster(const std::vector<float>& vec) const {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    const double d = SquaredL2Distance(vec, centroids_[c]);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

std::vector<size_t> KMeansIndex::NearestClusters(const std::vector<float>& vec, size_t n) const {
  TopK<size_t> top(n);
  for (size_t c = 0; c < centroids_.size(); ++c) {
    top.Push(-SquaredL2Distance(vec, centroids_[c]), c);
  }
  std::vector<size_t> clusters;
  for (auto& [neg_dist, c] : top.TakeSortedDescending()) {
    (void)neg_dist;
    clusters.push_back(c);
  }
  return clusters;
}

std::vector<SearchResult> KMeansIndex::Search(const std::vector<float>& query, size_t k) const {
  TopK<uint64_t> top(k);
  if (!clustered()) {
    // Flat fallback below the clustering threshold.
    for (const auto& [id, vec] : vectors_) {
      top.Push(Dot(query, vec), id);
    }
  } else {
    for (size_t cluster : NearestClusters(query, config_.nprobe)) {
      for (uint64_t id : cluster_members_[cluster]) {
        const auto it = vectors_.find(id);
        if (it != vectors_.end()) {
          top.Push(Dot(query, it->second), id);
        }
      }
    }
  }
  std::vector<SearchResult> results;
  for (auto& [score, id] : top.TakeSortedDescending()) {
    results.push_back(SearchResult{id, score});
  }
  return results;
}

}  // namespace iccache
