#include "src/index/vector_index.h"

#include <algorithm>
#include <cmath>

#include "src/common/simd.h"
#include "src/common/topk.h"
#include "src/index/kmeans.h"

namespace iccache {

namespace {

// Arena slots scored per block in the blocked multi-query scans: 256 slots at
// dim=128 is 128 KB of float arena (32 KB quantized) — sized so a block stays
// resident in L2 while every query of the batch streams through it.
constexpr size_t kScanBlockSlots = 256;

}  // namespace

void VectorIndex::SearchBatch(const float* queries, size_t num_queries, size_t query_dim,
                              size_t k, SearchScratch* scratch) const {
  // Fallback for backends without a native batch kernel: loop the single-query
  // path. Correct (and trivially bit-identical) but not allocation-free.
  scratch->BeginOutput(num_queries);
  static thread_local std::vector<float> query;
  for (size_t i = 0; i < num_queries; ++i) {
    query.assign(queries + i * query_dim, queries + (i + 1) * query_dim);
    for (const SearchResult& r : Search(query, k)) {
      scratch->GrowPush(scratch->results, r);
    }
    scratch->EndQuery(i);
  }
}

FlatIndex::FlatIndex(size_t dim) : dim_(dim) {}

Status FlatIndex::Add(uint64_t id, std::vector<float> vec) {
  if (vec.size() != dim_) {
    return Status::InvalidArgument("vector dimension mismatch");
  }
  const auto it = slot_of_.find(id);
  if (it != slot_of_.end()) {
    std::copy(vec.begin(), vec.end(), arena_.begin() + it->second * dim_);
    return Status::Ok();
  }
  slot_of_[id] = ids_.size();
  ids_.push_back(id);
  arena_.insert(arena_.end(), vec.begin(), vec.end());
  return Status::Ok();
}

bool FlatIndex::Remove(uint64_t id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return false;
  }
  const size_t slot = it->second;
  const size_t last = ids_.size() - 1;
  if (slot != last) {
    ids_[slot] = ids_[last];
    std::copy(arena_.begin() + last * dim_, arena_.begin() + (last + 1) * dim_,
              arena_.begin() + slot * dim_);
    slot_of_[ids_[slot]] = slot;
  }
  ids_.pop_back();
  arena_.resize(arena_.size() - dim_);
  slot_of_.erase(it);
  return true;
}

std::vector<SearchResult> FlatIndex::Search(const std::vector<float>& query, size_t k) const {
  TopK<uint64_t> top(k);
  const float* q = query.data();
  const size_t n = std::min(query.size(), dim_);
  for (size_t i = 0; i < ids_.size(); ++i) {
    top.Push(simd::Dot(q, VecOf(i), n), ids_[i]);
  }
  std::vector<SearchResult> results;
  for (auto& [score, id] : top.TakeSortedDescending()) {
    results.push_back(SearchResult{id, score});
  }
  return results;
}

void FlatIndex::SearchBatch(const float* queries, size_t num_queries, size_t query_dim,
                            size_t k, SearchScratch* scratch) const {
  SearchScratch& s = *scratch;
  s.BeginOutput(num_queries);
  if (num_queries == 0) {
    return;
  }
  if (s.heaps.size() < num_queries) {
    ++s.grows;
    s.heaps.resize(num_queries);
  }
  for (size_t q = 0; q < num_queries; ++q) {
    s.heaps[q].clear();
  }
  const size_t n = std::min(query_dim, dim_);
  // Blocked sweep: each arena block is scored against every query while it is
  // hot. Per query the push order is still ascending slot order, so the heap
  // state — equal-score tie-breaks included — matches the single-query scan.
  for (size_t base = 0; base < ids_.size(); base += kScanBlockSlots) {
    const size_t end = std::min(base + kScanBlockSlots, ids_.size());
    for (size_t q = 0; q < num_queries; ++q) {
      const float* qv = queries + q * query_dim;
      auto& heap = s.heaps[q];
      for (size_t i = base; i < end; ++i) {
        ScratchTopK::Push(heap, k, simd::Dot(qv, VecOf(i), n), ids_[i], s);
      }
    }
  }
  for (size_t q = 0; q < num_queries; ++q) {
    ScratchTopK::DrainDescending(s.heaps[q], &s.results, s);
    s.EndQuery(q);
  }
}

bool FlatIndex::GetVector(uint64_t id, std::vector<float>* out) const {
  const float* vec = Find(id);
  if (vec == nullptr) {
    return false;
  }
  out->assign(vec, vec + dim_);
  return true;
}

const float* FlatIndex::Find(uint64_t id) const {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return nullptr;
  }
  return VecOf(it->second);
}

KMeansIndex::KMeansIndex(KMeansIndexConfig config) : config_(config), rng_(config.seed) {}

Status KMeansIndex::Add(uint64_t id, std::vector<float> vec) {
  if (vec.size() != config_.dim) {
    return Status::InvalidArgument("vector dimension mismatch");
  }
  if (slot_of_.count(id) > 0) {
    Remove(id);
  }
  if (clustered()) {
    const size_t cluster = NearestCluster(vec.data());
    cluster_of_[id] = cluster;
    cluster_members_[cluster].push_back(id);
  }
  slot_of_[id] = ids_.size();
  ids_.push_back(id);
  arena_.insert(arena_.end(), vec.begin(), vec.end());
  MaybeRebuild();
  return Status::Ok();
}

bool KMeansIndex::Remove(uint64_t id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return false;
  }
  const auto cit = cluster_of_.find(id);
  if (cit != cluster_of_.end()) {
    auto& members = cluster_members_[cit->second];
    members.erase(std::remove(members.begin(), members.end(), id), members.end());
    cluster_of_.erase(cit);
  }
  const size_t slot = it->second;
  const size_t last = ids_.size() - 1;
  if (slot != last) {
    ids_[slot] = ids_[last];
    std::copy(arena_.begin() + last * config_.dim, arena_.begin() + (last + 1) * config_.dim,
              arena_.begin() + slot * config_.dim);
    slot_of_[ids_[slot]] = slot;
  }
  ids_.pop_back();
  arena_.resize(arena_.size() - config_.dim);
  slot_of_.erase(it);
  return true;
}

bool KMeansIndex::GetVector(uint64_t id, std::vector<float>* out) const {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    return false;
  }
  out->assign(VecOf(it->second), VecOf(it->second) + config_.dim);
  return true;
}

void KMeansIndex::MaybeRebuild() {
  if (ids_.size() < config_.min_points_to_cluster) {
    return;
  }
  if (clustered() &&
      static_cast<double>(ids_.size()) <
          config_.rebuild_growth_factor * static_cast<double>(size_at_last_build_)) {
    return;
  }
  Rebuild();
}

void KMeansIndex::Rebuild() {
  if (ids_.empty()) {
    centroids_.clear();
    cluster_members_.clear();
    cluster_of_.clear();
    size_at_last_build_ = 0;
    return;
  }
  // Points are handed to the clusterer in slot (insertion) order, which is a
  // deterministic function of the Add/Remove history.
  std::vector<std::vector<float>> points;
  points.reserve(ids_.size());
  for (size_t slot = 0; slot < ids_.size(); ++slot) {
    points.emplace_back(VecOf(slot), VecOf(slot) + config_.dim);
  }
  const size_t k = OptimalClusterCount(points.size());
  const KMeansResult clustering = KMeansCluster(points, k, rng_);
  centroids_ = clustering.centroids;
  cluster_members_.assign(centroids_.size(), {});
  cluster_of_.clear();
  for (size_t slot = 0; slot < ids_.size(); ++slot) {
    const size_t c = clustering.assignments[slot];
    cluster_of_[ids_[slot]] = c;
    cluster_members_[c].push_back(ids_[slot]);
  }
  size_at_last_build_ = ids_.size();
}

size_t KMeansIndex::NearestCluster(const float* vec) const {
  size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < centroids_.size(); ++c) {
    const double d = simd::L2Sq(vec, centroids_[c].data(), config_.dim);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

std::vector<size_t> KMeansIndex::NearestClusters(const std::vector<float>& vec, size_t n) const {
  TopK<size_t> top(n);
  for (size_t c = 0; c < centroids_.size(); ++c) {
    top.Push(-simd::L2Sq(vec.data(), centroids_[c].data(), config_.dim), c);
  }
  std::vector<size_t> clusters;
  for (auto& [neg_dist, c] : top.TakeSortedDescending()) {
    (void)neg_dist;
    clusters.push_back(c);
  }
  return clusters;
}

void KMeansIndex::SearchBatch(const float* queries, size_t num_queries, size_t query_dim,
                              size_t k, SearchScratch* scratch) const {
  SearchScratch& s = *scratch;
  s.BeginOutput(num_queries);
  if (num_queries == 0) {
    return;
  }
  if (s.heaps.empty()) {
    ++s.grows;
    s.heaps.resize(1);
  }
  const size_t n = std::min(query_dim, config_.dim);
  if (!clustered()) {
    // Blocked flat sweep below the clustering threshold (same discipline as
    // FlatIndex): per query the push order stays ascending slot order.
    if (s.heaps.size() < num_queries) {
      ++s.grows;
      s.heaps.resize(num_queries);
    }
    for (size_t q = 0; q < num_queries; ++q) {
      s.heaps[q].clear();
    }
    for (size_t base = 0; base < ids_.size(); base += kScanBlockSlots) {
      const size_t end = std::min(base + kScanBlockSlots, ids_.size());
      for (size_t q = 0; q < num_queries; ++q) {
        const float* qv = queries + q * query_dim;
        auto& h = s.heaps[q];
        for (size_t slot = base; slot < end; ++slot) {
          ScratchTopK::Push(h, k, simd::Dot(qv, VecOf(slot), n), ids_[slot], s);
        }
      }
    }
    for (size_t q = 0; q < num_queries; ++q) {
      ScratchTopK::DrainDescending(s.heaps[q], &s.results, s);
      s.EndQuery(q);
    }
    return;
  }
  auto& heap = s.heaps[0];
  for (size_t q = 0; q < num_queries; ++q) {
    const float* qv = queries + q * query_dim;
    // Probe selection: the exact NearestClusters sequence (ascending centroid
    // pushes on the negated distance, drained best-first) over reused scratch.
    heap.clear();
    s.cluster_heap.clear();
    s.cluster_order.clear();
    for (size_t c = 0; c < centroids_.size(); ++c) {
      ScratchTopK::Push(s.cluster_heap, config_.nprobe,
                        -simd::L2Sq(qv, centroids_[c].data(), config_.dim), c, s);
    }
    ScratchTopK::DrainDescending(s.cluster_heap, &s.cluster_order, s);
    for (const SearchResult& probe : s.cluster_order) {
      for (uint64_t id : cluster_members_[probe.id]) {
        const auto it = slot_of_.find(id);
        if (it != slot_of_.end()) {
          ScratchTopK::Push(heap, k, simd::Dot(qv, VecOf(it->second), n), id, s);
        }
      }
    }
    ScratchTopK::DrainDescending(heap, &s.results, s);
    s.EndQuery(q);
  }
}

std::vector<SearchResult> KMeansIndex::Search(const std::vector<float>& query, size_t k) const {
  TopK<uint64_t> top(k);
  const size_t n = std::min(query.size(), config_.dim);
  if (!clustered()) {
    // Flat fallback below the clustering threshold: one sequential arena scan.
    for (size_t slot = 0; slot < ids_.size(); ++slot) {
      top.Push(simd::Dot(query.data(), VecOf(slot), n), ids_[slot]);
    }
  } else {
    for (size_t cluster : NearestClusters(query, config_.nprobe)) {
      for (uint64_t id : cluster_members_[cluster]) {
        const auto it = slot_of_.find(id);
        if (it != slot_of_.end()) {
          top.Push(simd::Dot(query.data(), VecOf(it->second), n), id);
        }
      }
    }
  }
  std::vector<SearchResult> results;
  for (auto& [score, id] : top.TakeSortedDescending()) {
    results.push_back(SearchResult{id, score});
  }
  return results;
}

}  // namespace iccache
